"""Batch/serial equivalence: the batched plant's core contract.

A :class:`BatchSimulator` over a mixed batch of modes, workloads, seeds
and durations must produce traces *byte-identical* to the same runs
executed one at a time -- which also keeps cache content byte-identical,
so batching can never change what lands in (or comes out of) the
content-addressed store.  These tests pin that contract end-to-end and
per kernel (thermal step, power evaluation, fan controller, sensors).
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.platform.fan import Fan, FanSpeed, FanThresholds
from repro.platform.soc import ExynosSoc
from repro.platform.specs import PlatformSpec, Resource
from repro.platform.state import BatchPlant, PlantState
from repro.power.batch import BatchPowerModel
from repro.runner import (
    ExperimentMatrix,
    ParallelRunner,
    ResultCache,
    execute_batch,
    plan_batches,
    result_bytes,
)
from repro.runner.execute import default_batch
from repro.runner.spec import RunSpec
from repro.sim.engine import BatchSimulator, Simulator, ThermalMode
from repro.thermal import floorplan, kernels
from repro.units import celsius_to_kelvin
from repro.workloads.generator import synthesize


def _mixed_sims():
    """A deliberately heterogeneous batch: modes, seeds, durations, warm
    starts -- including a lane that hits its duration cap early."""
    recipes = [
        ("high", ThermalMode.DEFAULT_WITH_FAN, 1, 40.0, None),
        ("high", ThermalMode.NO_FAN, 2, 30.0, 48.0),
        ("medium", ThermalMode.REACTIVE, 3, 25.0, 52.0),
        ("low", ThermalMode.DEFAULT_WITH_FAN, 4, 35.0, 52.0),
        ("high", ThermalMode.NO_FAN, 5, 8.0, 60.0),  # duration-capped
    ]
    sims = []
    for category, mode, seed, duration, warm in recipes:
        workload = synthesize(category, 18.0, threads=2, seed=seed)
        sims.append(
            Simulator(
                workload,
                mode,
                max_duration_s=duration,
                seed=seed * 11,
                warm_start_c=warm,
            )
        )
    return sims


def test_mixed_batch_byte_identical_to_serial_runs():
    serial = [sim.run() for sim in _mixed_sims()]
    batched = BatchSimulator(_mixed_sims()).run()
    assert len(serial) == len(batched)
    for one, many in zip(serial, batched):
        assert result_bytes(one) == result_bytes(many)


def test_dtpm_lane_in_batch_byte_identical(models):
    from repro.runner import make_dtpm_governor

    def sims():
        out = []
        for seed in (1, 2):
            workload = synthesize("high", 12.0, threads=2, seed=seed)
            out.append(
                Simulator(
                    workload,
                    ThermalMode.DTPM,
                    dtpm=make_dtpm_governor(models),
                    max_duration_s=20.0,
                    seed=seed,
                )
            )
        out.append(
            Simulator(
                synthesize("medium", 12.0, threads=2, seed=9),
                ThermalMode.NO_FAN,
                max_duration_s=20.0,
                seed=9,
            )
        )
        return out

    serial = [sim.run() for sim in sims()]
    batched = BatchSimulator(sims()).run()
    for one, many in zip(serial, batched):
        assert result_bytes(one) == result_bytes(many)


def test_batch_validation_errors():
    sims = _mixed_sims()
    with pytest.raises(ConfigurationError):
        BatchSimulator([])
    with pytest.raises(ConfigurationError):
        BatchSimulator([sims[0], sims[0]])  # one sim, twice
    slower = Simulator(
        synthesize("high", 10.0, seed=1),
        ThermalMode.NO_FAN,
        config=sims[0].config.with_(control_period_s=0.2),
    )
    with pytest.raises(ConfigurationError):
        BatchSimulator([sims[0], slower])


# ---------------------------------------------------------------------------
# kernels, lane for lane
# ---------------------------------------------------------------------------
def test_thermal_step_batch_is_lane_independent(rng):
    network = floorplan.build_exynos_network(298.15)
    n = network.num_nodes
    batch = 13
    temps = 295.0 + 60.0 * rng.random((batch, n))
    powers = 3.0 * rng.random((batch, n))
    gains = np.array([1.0, 1.15, 2.6, 3.6])[rng.integers(0, 4, size=batch)]
    full = network.step_batch(temps, powers, 0.01, gains)
    for lane in range(batch):
        alone = network.step_batch(
            temps[lane : lane + 1],
            powers[lane : lane + 1],
            0.01,
            gains[lane : lane + 1],
        )
        assert np.array_equal(alone[0], full[lane])


def test_scalar_network_step_is_b1_view(rng):
    a = floorplan.build_exynos_network(298.15)
    b = floorplan.build_exynos_network(298.15)
    temps = 295.0 + 60.0 * rng.random(a.num_nodes)
    a.set_temperatures_k(temps)
    powers = 3.0 * rng.random(a.num_nodes)
    stepped = a.step(powers, 0.01)
    batched = b.step_batch(
        temps[np.newaxis, :], powers[np.newaxis, :], 0.01, np.array([1.0])
    )
    assert np.array_equal(stepped, batched[0])


def test_batch_power_matches_scalar_soc(rng):
    spec = PlatformSpec()
    model = BatchPowerModel(spec)
    lanes = []
    for _ in range(10):
        soc = ExynosSoc(spec)
        if rng.integers(0, 2):
            soc.switch_cluster(Resource.LITTLE)
        cluster = soc.active_cpu()
        cluster.set_num_online(int(rng.integers(1, 5)))
        soc.big.set_frequency(float(rng.choice(spec.big_opp.frequencies_hz)))
        soc.little.set_frequency(
            float(rng.choice(spec.little_opp.frequencies_hz))
        )
        soc.gpu.set_frequency(float(rng.choice(spec.gpu_opp.frequencies_hz)))
        soc.gpu.set_utilisation(float(rng.random()))
        soc.mem.set_traffic(float(rng.random()))
        lanes.append(
            (soc, rng.random(4), rng.random(4), 0.5 + float(rng.random()),
             0.5 + float(rng.random()))
        )
    temps = {k: 300.0 + 60.0 * rng.random(len(lanes))
             for k in ("big", "little", "gpu", "mem")}
    cores = spec.cores_per_cluster
    inputs = model.interval_inputs(
        np.array([soc.big.active for soc, *_ in lanes]),
        np.array([soc.big.frequency_hz for soc, *_ in lanes]),
        np.array([soc.little.frequency_hz for soc, *_ in lanes]),
        np.array([soc.gpu.frequency_hz for soc, *_ in lanes]),
        np.array([[soc.big.is_online(c) for c in range(cores)]
                  for soc, *_ in lanes]),
        np.array([[soc.little.is_online(c) for c in range(cores)]
                  for soc, *_ in lanes]),
        np.array([bu for _, bu, *_ in lanes]),
        np.array([lu for _, _, lu, *_ in lanes]),
        np.array([soc.gpu.utilisation for soc, *_ in lanes]),
        np.array([soc.mem.traffic for soc, *_ in lanes]),
        np.array([ca for *_, ca, _ in lanes]),
        np.array([ga for *_, ga in lanes]),
    )
    out = model.evaluate(
        inputs, temps["big"], temps["little"], temps["gpu"], temps["mem"]
    )
    for b, (soc, big_u, little_u, cpu_act, gpu_act) in enumerate(lanes):
        ref = soc.power_state(
            {k: float(v[b]) for k, v in temps.items()},
            tuple(big_u),
            tuple(little_u),
            cpu_act,
            gpu_act,
        )
        assert np.array_equal(ref.resource_vector_w(), out.powers_w[b])
        assert np.array_equal(
            ref.big_core_powers_w, out.big_core_powers_w[b]
        )
        assert ref.total_w == out.soc_total_w[b]


def test_batched_fan_controller_matches_scalar(rng):
    spec = PlatformSpec()
    batch = 8
    fans = [
        Fan(spec.fan_power_w, spec.fan_conductance_gain, FanThresholds(),
            enabled=(lane % 4 != 3))
        for lane in range(batch)
    ]

    from repro.platform.board import OdroidBoard

    boards = [OdroidBoard(spec) for _ in range(batch)]
    plant = BatchPlant(boards)
    state = PlantState.gather(boards)
    state.fan_enabled = np.array([f.enabled for f in fans])
    state.fan_speed = np.array([int(f.speed) for f in fans])
    # a hot ramp up and back down sweeps every threshold + hysteresis edge
    ramp_c = np.concatenate([np.linspace(40, 80, 30), np.linspace(80, 40, 30)])
    for base_c in ramp_c:
        max_hot_k = celsius_to_kelvin(base_c) + 3.0 * rng.random(batch)
        expected = [f.update(float(t)) for f, t in zip(fans, max_hot_k)]
        state.fan_speed = kernels.fan_step(
            state.fan_speed, state.fan_enabled, max_hot_k,
            plant._fan_up_k, plant._fan_hyst_k,
        )
        assert [FanSpeed(int(s)) for s in state.fan_speed] == expected


def test_sensor_read_all_matches_scalar_reads(rng):
    from repro.platform.sensors import SensorBank

    for sigma, quantum, rel in [(0.15, 0.25, 0.01), (0.0, 0.25, 0.0),
                                (0.15, 0.0, 0.01), (0.0, 0.0, 0.0)]:
        scalar_bank = SensorBank(
            np.random.default_rng(42), temp_noise_k=sigma,
            temp_quantum_k=quantum, power_noise_rel=rel,
        )
        vector_bank = SensorBank(
            np.random.default_rng(42), temp_noise_k=sigma,
            temp_quantum_k=quantum, power_noise_rel=rel,
        )
        for _ in range(20):
            temps = 300.0 + 50.0 * rng.random(4)
            powers = 4.0 * rng.random(4)
            expected_t = scalar_bank.read_temperatures(temps)
            expected_p = scalar_bank.read_powers(powers)
            got_t, got_p = vector_bank.read_all(temps, powers)
            assert np.array_equal(expected_t, got_t)
            assert np.array_equal(expected_p, got_p)


def test_state_space_batched_prediction_matches_scalar(models, rng):
    thermal = models.thermal
    temps = 300.0 + 40.0 * rng.random((7, thermal.num_states))
    powers = 4.0 * rng.random((7, thermal.num_inputs))
    batched = thermal.predict_next_batch(temps, powers)
    for lane in range(temps.shape[0]):
        assert np.array_equal(
            thermal.predict_next(temps[lane], powers[lane]), batched[lane]
        )


# ---------------------------------------------------------------------------
# runner-level packing
# ---------------------------------------------------------------------------
def _grid_specs():
    workloads = [synthesize(c, 15.0, threads=2, seed=s)
                 for s, c in enumerate(("high", "medium", "low"))]
    matrix = ExperimentMatrix(
        workloads=tuple(workloads),
        modes=(ThermalMode.DEFAULT_WITH_FAN, ThermalMode.NO_FAN),
        max_duration_s=25.0,
        base_seed=100,
    )
    return matrix.specs()


def test_execute_batch_byte_identical_to_unbatched():
    specs = _grid_specs()
    unbatched = execute_batch(specs, batch_size=1)
    batched = execute_batch(specs, batch_size=4)
    assert len(unbatched) == len(batched) == len(specs)
    for one, many in zip(unbatched, batched):
        assert [result_bytes(r) for r in one] == [result_bytes(r) for r in many]


def test_batched_runner_fills_cache_identically(tmp_path):
    specs = _grid_specs()
    cache = ResultCache(root=str(tmp_path))
    batched = ParallelRunner(cache=cache, batch=4)
    batched_results = batched.run(specs)
    assert batched.last_stats.executed == len(specs)

    # a serial, unbatched runner answers the same grid entirely from the
    # cache the batched one filled: batching changed no content keys
    serial = ParallelRunner(cache=ResultCache(root=str(tmp_path)), batch=1)
    cached_results = serial.run(specs)
    assert serial.last_stats.executed == 0
    assert serial.last_stats.cache_hits == len(specs)
    for fresh, cached in zip(batched_results, cached_results):
        assert result_bytes(fresh) == result_bytes(cached)


def test_plan_batches_groups_only_compatible_specs():
    workload = synthesize("high", 10.0, seed=1)
    other = synthesize("medium", 10.0, seed=2)
    plain = [
        RunSpec(workload=workload, mode=ThermalMode.NO_FAN, seed=i)
        for i in range(3)
    ]
    scheduled = [
        RunSpec(
            workload=other, mode=ThermalMode.NO_FAN, history=(workload,),
            seed=i,
        )
        for i in range(2)
    ]
    longer = RunSpec(
        workload=other,
        mode=ThermalMode.NO_FAN,
        history=(workload, workload),
    )
    from repro.config import SimulationConfig

    different_shape = RunSpec(
        workload=other,
        mode=ThermalMode.NO_FAN,
        config=SimulationConfig(ambient_c=30.0),
    )
    specs = [
        plain[0], scheduled[0], plain[1], different_shape, plain[2],
        scheduled[1], longer,
    ]
    jobs = plan_batches(specs, batch_size=8)
    assert [0, 2, 4] in jobs  # compatible plain specs pack together
    assert [1, 5] in jobs  # same-shape same-length schedules lock-step
    assert [3] in jobs  # a different plant shape cannot lock-step
    assert [6] in jobs  # a different chain length keeps positions aligned
    # chunking respects the batch width
    jobs = plan_batches([plain[0], plain[1], plain[2]], batch_size=2)
    assert jobs == [[0, 1], [2]]
    # batch_size=1 disables packing entirely (the pre-batching behaviour)
    assert plan_batches(specs, batch_size=1) == [[i] for i in range(len(specs))]


def _scheduled_matrix():
    a = synthesize("medium", 10.0, threads=2, seed=31)
    b = synthesize("high", 10.0, threads=4, seed=32)
    return ExperimentMatrix(
        schedules=((a, b), (b, a)),
        modes=(ThermalMode.DEFAULT_WITH_FAN, ThermalMode.NO_FAN),
        idle_gap_s=3.0,
        max_duration_s=20.0,
        base_seed=500,
    )


def test_scheduled_matrix_batched_equals_serial_with_dtpm(models):
    """Mixed chain positions with DTPM lanes: batch width changes nothing."""
    a = synthesize("medium", 10.0, threads=2, seed=31)
    b = synthesize("high", 10.0, threads=4, seed=32)
    specs = [
        RunSpec(workload=b, mode=ThermalMode.DTPM, history=(a,),
                idle_gap_s=4.0, seed=61, max_duration_s=20.0),
        RunSpec(workload=a, mode=ThermalMode.DTPM, history=(b,),
                seed=62, max_duration_s=20.0),
        RunSpec(workload=a, mode=ThermalMode.NO_FAN, history=(a,),
                idle_gap_s=4.0, seed=63, max_duration_s=20.0),
        # a mixed-mode chain: stock governor first, DTPM-managed second
        RunSpec(workload=b, mode=ThermalMode.DTPM, history=(a,),
                history_modes=(ThermalMode.NO_FAN,), seed=64,
                max_duration_s=20.0),
    ]
    serial = execute_batch(specs, models=models, batch_size=1)
    batched = execute_batch(specs, models=models, batch_size=8)
    for one, many in zip(serial, batched):
        assert [result_bytes(r) for r in one] == [
            result_bytes(r) for r in many
        ]


def test_warm_batched_scheduled_matrix_executes_zero_sims(tmp_path):
    matrix = _scheduled_matrix()
    cold = ParallelRunner(cache=ResultCache(root=str(tmp_path)), batch=4)
    cold_results = cold.run(matrix)
    assert cold.last_stats.executed == len(matrix)

    warm = ParallelRunner(cache=ResultCache(root=str(tmp_path)), batch=4)
    warm_results = warm.run(matrix)
    assert warm.last_stats.executed == 0
    assert warm.last_stats.cache_hits == len(matrix)

    # the serial, unbatched chain path reads the very same entries back:
    # scheduled batching changed no content keys
    serial = ParallelRunner(cache=ResultCache(root=str(tmp_path)), batch=1)
    serial_results = serial.run(matrix)
    assert serial.last_stats.executed == 0
    for fresh, cached, lone in zip(
        cold_results, warm_results, serial_results
    ):
        assert result_bytes(fresh) == result_bytes(cached)
        assert result_bytes(fresh) == result_bytes(lone)


def test_board_power_state_restored_after_batched_run():
    serial_sim, batch_sim = _mixed_sims()[0], _mixed_sims()[0]
    serial_sim.run()
    BatchSimulator([batch_sim]).run()
    for sim in (serial_sim, batch_sim):
        state = sim.board._last_power_state
        assert state is not None and state.total_w > 0
        assert sim.board.true_platform_power_w() > sim.spec.platform_static_power_w
    assert np.array_equal(
        serial_sim.board._last_power_state.resource_vector_w(),
        batch_sim.board._last_power_state.resource_vector_w(),
    )
    assert np.array_equal(
        serial_sim.board._last_power_state.big_core_powers_w,
        batch_sim.board._last_power_state.big_core_powers_w,
    )


def test_pool_path_caps_batch_to_keep_workers_busy(monkeypatch):
    import repro.runner.runner as runner_mod

    captured = {}
    real_plan = runner_mod.plan_batches

    def spy(specs, batch_size):
        captured["batch"] = batch_size
        return real_plan(specs, batch_size)

    monkeypatch.setattr(runner_mod, "plan_batches", spy)
    workload = synthesize("low", 8.0, threads=1, seed=5)
    specs = [
        RunSpec(workload=workload, mode=ThermalMode.NO_FAN, seed=s,
                max_duration_s=12.0)
        for s in range(4)
    ]
    pooled = ParallelRunner(workers=2, batch=8)
    pooled_results = pooled.run(specs)
    # 4 specs over 2 workers: the plan must hand each worker work
    assert captured["batch"] == 2
    serial = ParallelRunner(batch=1)
    for fresh, lone in zip(pooled_results, serial.run(specs)):
        assert result_bytes(fresh) == result_bytes(lone)


def test_default_batch_env_knob(monkeypatch):
    from repro.runner.execute import BATCH_ENV, DEFAULT_BATCH

    monkeypatch.delenv(BATCH_ENV, raising=False)
    assert default_batch() == DEFAULT_BATCH
    monkeypatch.setenv(BATCH_ENV, "3")
    assert default_batch() == 3
    assert ParallelRunner().batch == 3
    monkeypatch.setenv(BATCH_ENV, "zero")
    with pytest.raises(ConfigurationError):
        default_batch()
    monkeypatch.setenv(BATCH_ENV, "0")
    with pytest.raises(ConfigurationError):
        default_batch()
