"""Project-scoped lint rules: codec coherence, pinned manifests, parity.

The centrepiece is the RPR021 mutation test: deleting a ``RunSpec``
field from any of the three wire-codec surfaces must fail lint -- that
is the exact regression (a field silently round-tripping to its
default and aliasing cache keys) the rule exists to prevent.
"""

import json
import os
import shutil
import textwrap

import repro
from repro.devtools import LintConfig, lint_paths
from repro.devtools.cachekey import update_cache_manifest
from repro.devtools.framework import semantic_hash

SRC_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
RUNNER_DIR = os.path.join(SRC_ROOT, "repro", "runner")


def rules_of(findings):
    return [f.rule for f in findings]


def _copy_codec(tmp_path):
    """Copy the real spec/wire modules into an isolated runner/ tree."""
    runner = tmp_path / "runner"
    runner.mkdir()
    for name in ("spec.py", "wire.py"):
        shutil.copy(os.path.join(RUNNER_DIR, name), runner / name)
    return runner


def _mutate(path, old, new):
    text = path.read_text()
    assert old in text, "mutation anchor %r not found" % old
    path.write_text(text.replace(old, new))


def test_unmutated_codec_copies_lint_clean(tmp_path):
    _copy_codec(tmp_path)
    assert rules_of(lint_paths([str(tmp_path)])) == []


def test_dropping_field_from_spec_fields_tuple_fires_rpr021(tmp_path):
    runner = _copy_codec(tmp_path)
    _mutate(runner / "wire.py", '"seed", "history", "idle_gap_s",',
            '"seed", "history",')
    findings = lint_paths([str(tmp_path)])
    assert "RPR021" in rules_of(findings)
    assert any("idle_gap_s" in f.message for f in findings)


def test_dropping_field_from_spec_to_wire_fires_rpr021(tmp_path):
    runner = _copy_codec(tmp_path)
    _mutate(runner / "wire.py", '"idle_gap_s": spec.idle_gap_s,', "")
    findings = lint_paths([str(tmp_path)])
    assert "RPR021" in rules_of(findings)
    assert any(
        "idle_gap_s" in f.message and "spec_to_wire" in f.message
        for f in findings
    )


def test_dropping_kwarg_from_spec_from_wire_fires_rpr021(tmp_path):
    runner = _copy_codec(tmp_path)
    _mutate(runner / "wire.py", 'idle_gap_s=default("idle_gap_s"),', "")
    findings = lint_paths([str(tmp_path)])
    assert "RPR021" in rules_of(findings)
    assert any(
        "idle_gap_s" in f.message and "spec_from_wire" in f.message
        for f in findings
    )


def test_new_dataclass_field_without_codec_entry_fires_rpr021(tmp_path):
    runner = _copy_codec(tmp_path)
    _mutate(
        runner / "spec.py",
        "    history_modes: Tuple[ThermalMode, ...] = ()",
        "    history_modes: Tuple[ThermalMode, ...] = ()\n"
        "    trace_decimation: int = 1",
    )
    findings = lint_paths([str(tmp_path)])
    messages = [f.message for f in findings if f.rule == "RPR021"]
    # a brand-new field is missing from all three codec surfaces
    assert len(messages) == 3
    assert all("trace_decimation" in m for m in messages)


def test_stale_codec_entry_fires_rpr021(tmp_path):
    runner = _copy_codec(tmp_path)
    _mutate(runner / "wire.py", '"seed", "history", "idle_gap_s",',
            '"seed", "history", "idle_gap_s", "retired_knob",')
    findings = lint_paths([str(tmp_path)])
    assert any(
        f.rule == "RPR021" and "retired_knob" in f.message for f in findings
    )


def test_matrix_field_drop_fires_rpr021(tmp_path):
    runner = _copy_codec(tmp_path)
    _mutate(runner / "wire.py", '"base_seed", "schedules", "idle_gap_s",',
            '"base_seed", "schedules",')
    findings = lint_paths([str(tmp_path)])
    assert any(
        f.rule == "RPR021" and "ExperimentMatrix" in f.message
        and "idle_gap_s" in f.message
        for f in findings
    )


# ---------------------------------------------------------------------------
# RPR022 pinned numeric-semantics manifest
# ---------------------------------------------------------------------------
def _pinned_tree(tmp_path, kernel_body, cache_format=3):
    pkg = tmp_path / "repro"
    (pkg / "runner").mkdir(parents=True)
    (pkg / "thermal").mkdir()
    (pkg / "runner" / "spec.py").write_text(
        "CACHE_FORMAT = %d\n" % cache_format
    )
    kernel = pkg / "thermal" / "kernels.py"
    kernel.write_text(textwrap.dedent(kernel_body))
    return kernel


def _manifest(tmp_path, cache_format, kernel_hash):
    path = tmp_path / "cache_manifest.json"
    path.write_text(json.dumps({
        "cache_format": cache_format,
        "modules": {"repro/thermal/kernels.py": kernel_hash},
    }))
    return LintConfig(cache_manifest=str(path))


def test_rpr022_clean_when_hash_and_format_match(tmp_path):
    kernel = _pinned_tree(tmp_path, """\
        def advance(t, a):
            return a * t
    """)
    config = _manifest(tmp_path, 3, semantic_hash(kernel.read_text()))
    assert rules_of(lint_paths([str(tmp_path)], config)) == []


def test_rpr022_fires_on_semantic_drift_without_bump(tmp_path):
    kernel = _pinned_tree(tmp_path, """\
        def advance(t, a):
            return a * t + 0.5
    """)
    config = _manifest(tmp_path, 3, "0" * 64)
    findings = lint_paths([str(tmp_path)], config)
    assert rules_of(findings) == ["RPR022"]
    assert "CACHE_FORMAT" in findings[0].message


def test_rpr022_fires_on_format_mismatch(tmp_path):
    kernel = _pinned_tree(tmp_path, """\
        def advance(t, a):
            return a * t
    """, cache_format=4)
    config = _manifest(tmp_path, 3, semantic_hash(kernel.read_text()))
    findings = lint_paths([str(tmp_path)], config)
    assert rules_of(findings) == ["RPR022"]
    assert "manifest pins" in findings[0].message


def test_semantic_hash_ignores_comments_and_docstrings(tmp_path):
    bare = "def advance(t, a):\n    return a * t\n"
    commented = (
        "def advance(t, a):\n"
        '    """Propagate one step."""\n'
        "    # the propagator is precomputed\n"
        "    return a * t\n"
    )
    changed = "def advance(t, a):\n    return a * t + 1\n"
    assert semantic_hash(bare) == semantic_hash(commented)
    assert semantic_hash(bare) != semantic_hash(changed)


def test_update_cache_manifest_refuses_drift_without_bump(tmp_path):
    import pytest

    src = tmp_path / "src"
    (src / "repro" / "runner").mkdir(parents=True)
    (src / "repro" / "thermal").mkdir()
    (src / "repro" / "platform").mkdir()
    (src / "repro" / "power").mkdir()
    (src / "repro" / "runner" / "spec.py").write_text("CACHE_FORMAT = 1\n")
    for mod in ("thermal/kernels.py", "platform/state.py", "power/leakage.py"):
        path = src / "repro" / mod
        path.write_text("def f(x):\n    return x\n")
    manifest = tmp_path / "manifest.json"

    update_cache_manifest(str(src), str(manifest))
    pinned = json.loads(manifest.read_text())
    assert pinned["cache_format"] == 1
    assert len(pinned["modules"]) == 3

    # semantic change without a bump: refused
    (src / "repro" / "thermal" / "kernels.py").write_text(
        "def f(x):\n    return x + 1\n"
    )
    with pytest.raises(ValueError, match="CACHE_FORMAT"):
        update_cache_manifest(str(src), str(manifest))

    # bump the format: the refresh goes through
    (src / "repro" / "runner" / "spec.py").write_text("CACHE_FORMAT = 2\n")
    update_cache_manifest(str(src), str(manifest))
    assert json.loads(manifest.read_text())["cache_format"] == 2


# ---------------------------------------------------------------------------
# RPR031 parity manifest
# ---------------------------------------------------------------------------
def _parity_setup(tmp_path, pairs, module_body, with_test=True):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "mod.py").write_text(textwrap.dedent(module_body))
    manifest = tmp_path / "parity.json"
    manifest.write_text(json.dumps({"pairs": pairs}))
    if with_test:
        (tmp_path / "tests").mkdir()
        (tmp_path / "tests" / "pin_step.py").write_text(
            "def test_step_batch_parity():\n"
            "    assert step_batch is not None\n"
        )
    return LintConfig(
        parity_manifest=str(manifest), repo_root=str(tmp_path)
    )


_PAIR = {
    "module": "pkg/mod.py",
    "scalar": "step",
    "batch": "step_batch",
    "test": "tests/pin_step.py",
}
_MODULE = """\
    def step(x):
        return x + 1

    def step_batch(xs):
        return [x + 1 for x in xs]
"""


def test_rpr031_clean_when_pair_registered_and_pinned(tmp_path):
    config = _parity_setup(tmp_path, [_PAIR], _MODULE)
    findings = lint_paths([str(tmp_path / "pkg")], config)
    assert rules_of(findings) == []


def test_rpr031_fires_on_unregistered_pair(tmp_path):
    config = _parity_setup(tmp_path, [], _MODULE)
    findings = lint_paths([str(tmp_path / "pkg")], config)
    assert rules_of(findings) == ["RPR031"]
    assert findings[0].line == 4
    assert "step_batch" in findings[0].message


def test_rpr031_fires_when_pinning_test_missing(tmp_path):
    config = _parity_setup(tmp_path, [_PAIR], _MODULE, with_test=False)
    findings = lint_paths([str(tmp_path / "pkg")], config)
    assert rules_of(findings) == ["RPR031"]
    assert "does not exist" in findings[0].message


def test_rpr031_fires_when_test_never_mentions_batch_fn(tmp_path):
    config = _parity_setup(tmp_path, [_PAIR], _MODULE)
    (tmp_path / "tests" / "pin_step.py").write_text(
        "def test_unrelated():\n    assert True\n"
    )
    findings = lint_paths([str(tmp_path / "pkg")], config)
    assert rules_of(findings) == ["RPR031"]
    assert "never mentions" in findings[0].message


def test_rpr031_fires_on_stale_manifest_entry(tmp_path):
    config = _parity_setup(tmp_path, [_PAIR], """\
        def unrelated(x):
            return x
    """)
    findings = lint_paths([str(tmp_path / "pkg")], config)
    assert any(
        f.rule == "RPR031" and "stale" in f.message for f in findings
    )
