"""Integration: the paper's headline behaviours on real benchmarks.

Slower tests (full benchmark runs); they pin down the qualitative claims of
Chapter 6 that the benchmark harness then quantifies figure by figure.
"""

import numpy as np
import pytest

from repro.sim.engine import ThermalMode
from repro.sim.experiment import compare_modes, run_benchmark
from repro.sim.metrics import performance_loss_pct, power_savings_pct
from repro.workloads.benchmarks import DIJKSTRA, MATRIX_MULT


@pytest.fixture(scope="module")
def matmul_runs(models):
    return compare_modes(MATRIX_MULT, models=models)


def test_no_fan_violates_constraint(matmul_runs, config):
    no_fan = matmul_runs[ThermalMode.NO_FAN]
    assert no_fan.peak_temp_c() > config.t_constraint_c + 1.0


def test_dtpm_regulates_near_constraint(matmul_runs, config):
    dtpm = matmul_runs[ThermalMode.DTPM]
    # regulation: bounded overshoot (sensor noise + prediction error)
    assert dtpm.peak_temp_c() < config.t_constraint_c + 2.5
    assert dtpm.interventions > 0


def test_dtpm_beats_fan_on_power(matmul_runs):
    base = matmul_runs[ThermalMode.DEFAULT_WITH_FAN]
    dtpm = matmul_runs[ThermalMode.DTPM]
    assert power_savings_pct(base, dtpm) > 2.0


def test_dtpm_performance_loss_small(matmul_runs):
    base = matmul_runs[ThermalMode.DEFAULT_WITH_FAN]
    dtpm = matmul_runs[ThermalMode.DTPM]
    assert 0.0 <= performance_loss_pct(base, dtpm) < 10.0


def test_reactive_loses_more_performance_than_dtpm(matmul_runs):
    base = matmul_runs[ThermalMode.DEFAULT_WITH_FAN]
    dtpm = matmul_runs[ThermalMode.DTPM]
    reactive = matmul_runs[ThermalMode.REACTIVE]
    assert performance_loss_pct(base, reactive) > performance_loss_pct(
        base, dtpm
    )


def test_all_configurations_complete(matmul_runs):
    for result in matmul_runs.values():
        assert result.completed


def test_low_benchmark_is_non_intrusive(models):
    """Dijkstra barely triggers the DTPM (Fig. 6.6's story)."""
    base = run_benchmark(DIJKSTRA, ThermalMode.DEFAULT_WITH_FAN, models=models)
    dtpm = run_benchmark(DIJKSTRA, ThermalMode.DTPM, models=models)
    assert performance_loss_pct(base, dtpm) < 1.0
    # frequencies essentially identical to the default's
    assert (
        np.mean(dtpm.big_freqs_ghz() < base.big_freqs_ghz().max() - 0.05)
        < 0.2
    )


def test_dtpm_never_uses_fan(matmul_runs):
    dtpm = matmul_runs[ThermalMode.DTPM]
    assert np.all(dtpm.trace.column("fan_speed") == 0.0)


def test_fan_active_in_default_run(matmul_runs):
    base = matmul_runs[ThermalMode.DEFAULT_WITH_FAN]
    assert base.trace.column("fan_speed").max() >= 1.0
