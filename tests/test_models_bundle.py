"""Model-bundle construction (the Chapter-4 pipeline end to end)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.platform.specs import Resource
from repro.sim.models import build_models, default_models


def test_default_models_cached():
    a = default_models()
    b = default_models()
    assert a is b


def test_bundle_contents(models):
    assert models.thermal.num_states == 4
    assert models.thermal.num_inputs == 4
    assert models.thermal.is_stable()
    for resource in Resource:
        assert models.power[resource] is not None


def test_identification_method_selection():
    joint = build_models(prbs_duration_s=300.0, method="joint")
    staged = build_models(prbs_duration_s=300.0, method="staged")
    structured = build_models(prbs_duration_s=300.0, method="structured")
    for bundle in (joint, staged, structured):
        assert bundle.thermal.is_stable()
    # the structured estimator retains the spread mode the others lose
    def spread_retention(model):
        t = np.array([340.0, 330.0, 330.0, 330.0])
        pred = model.predict_n_constant(t, np.full(4, 0.5), 10)
        return pred[0] - pred[1:].max()

    assert spread_retention(structured.thermal) > spread_retention(joint.thermal)


def test_unknown_method_rejected():
    with pytest.raises(ConfigurationError):
        build_models(prbs_duration_s=300.0, method="magic")


def test_furnace_backed_build():
    bundle = build_models(prbs_duration_s=300.0, run_furnace=True)
    assert bundle.thermal.is_stable()
    # furnace-fitted big leakage close to the cached default fit
    cached = default_models()
    t, vdd = 330.0, 1.0
    assert bundle.power[Resource.BIG].leakage.power_w(t, vdd) == pytest.approx(
        cached.power[Resource.BIG].leakage.power_w(t, vdd), rel=0.2
    )
