"""Temperature observer (steady-state Kalman filter on the thermal model)."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.thermal.observer import TemperatureObserver
from repro.thermal.state_space import DiscreteThermalModel


@pytest.fixture()
def model():
    a = 0.9 * np.eye(4) + 0.01 * np.ones((4, 4))
    b = 0.2 * np.eye(4) + 0.05
    return DiscreteThermalModel(a=a, b=b, offset=np.full(4, 18.0), ts_s=0.1)


def _rollout(model, rng, steps=400, noise=0.3):
    t = np.full(4, 320.0)
    truth, measured, powers = [], [], []
    p = np.array([1.0, 0.2, 0.3, 0.2])
    for k in range(steps):
        if k % 60 == 0:
            p = rng.uniform(0.0, 2.0, size=4)
        truth.append(t.copy())
        measured.append(t + rng.normal(0, noise, 4))
        powers.append(p.copy())
        t = model.predict_next(t, p)
    return np.stack(truth), np.stack(measured), np.stack(powers)


def test_filter_reduces_measurement_error(model, rng):
    truth, measured, powers = _rollout(model, rng)
    observer = TemperatureObserver(
        model, process_noise_k=0.05, measurement_noise_k=0.3
    )
    filtered = np.stack(
        [observer.update(measured[k], powers[k]) for k in range(len(measured))]
    )
    raw_err = np.abs(measured[50:] - truth[50:]).mean()
    flt_err = np.abs(filtered[50:] - truth[50:]).mean()
    assert flt_err < 0.7 * raw_err


def test_first_update_initialises_to_measurement(model, rng):
    observer = TemperatureObserver(model)
    y = np.full(4, 330.0)
    out = observer.update(y, np.zeros(4))
    assert np.allclose(out, y)
    assert observer.state_k is not None


def test_reset(model, rng):
    observer = TemperatureObserver(model)
    observer.update(np.full(4, 330.0), np.zeros(4))
    observer.reset()
    assert observer.state_k is None
    assert observer.innovation_k(np.full(4, 330.0)) is None


def test_innovation_shrinks_as_filter_locks(model, rng):
    truth, measured, powers = _rollout(model, rng, steps=200, noise=0.2)
    observer = TemperatureObserver(
        model, process_noise_k=0.05, measurement_noise_k=0.2
    )
    innovations = []
    for k in range(len(measured)):
        if k > 0:
            inn = observer.innovation_k(measured[k])
            innovations.append(float(np.abs(inn).mean()))
        observer.update(measured[k], powers[k])
    # innovations are bounded by roughly the sensor noise scale
    assert np.mean(innovations[20:]) < 0.5


def test_gain_shape_and_range(model):
    observer = TemperatureObserver(model)
    gain = observer.gain
    assert gain.shape == (4, 4)
    eigs = np.linalg.eigvals(gain)
    assert np.all(np.real(eigs) > 0)
    assert np.all(np.abs(eigs) <= 1.0 + 1e-9)


def test_strong_process_noise_trusts_measurements(model):
    trusting = TemperatureObserver(
        model, process_noise_k=5.0, measurement_noise_k=0.1
    )
    sceptical = TemperatureObserver(
        model, process_noise_k=0.01, measurement_noise_k=1.0
    )
    assert np.trace(trusting.gain) > np.trace(sceptical.gain)


def test_input_validation(model):
    with pytest.raises(ModelError):
        TemperatureObserver(model, process_noise_k=0.0)
    observer = TemperatureObserver(model)
    with pytest.raises(ModelError):
        observer.update(np.zeros(2), np.zeros(4))
    with pytest.raises(ModelError):
        observer.update(np.full(4, 300.0), np.zeros(2))


def test_filter_on_identified_model(models, rng):
    """Works with the real identified model, not just synthetic fixtures."""
    observer = TemperatureObserver(models.thermal)
    y = np.full(4, 325.0)
    p = np.array([1.5, 0.0, 0.2, 0.2])
    for _ in range(20):
        out = observer.update(y + rng.normal(0, 0.25, 4), p)
    assert np.all(np.abs(out - y) < 1.5)
