"""Scenario runner: consecutive benchmarks on one warm device."""

import pytest

from repro.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.sim.engine import ThermalMode
from repro.sim.experiment import make_dtpm_governor
from repro.sim.scenario import ScenarioRunner
from repro.workloads.generator import synthesize


@pytest.fixture()
def workloads():
    return [
        synthesize("medium", 20.0, threads=2, seed=1),
        synthesize("high", 20.0, threads=4, seed=2),
    ]


def test_sequence_carries_heat(workloads):
    runner = ScenarioRunner(ThermalMode.NO_FAN, initial_temp_c=30.0)
    first, second = runner.run(workloads)
    # the second run starts where the first ended, so it begins hotter
    assert second.max_temps_c()[0] > first.max_temps_c()[0] + 3.0
    assert runner.device_temps_k is not None


def test_sequence_vs_cold_runs(workloads):
    warm = ScenarioRunner(ThermalMode.NO_FAN, initial_temp_c=30.0).run(workloads)
    cold = [
        ScenarioRunner(ThermalMode.NO_FAN, initial_temp_c=30.0).run([w])[0]
        for w in workloads
    ]
    # back-to-back execution makes the later run peak hotter
    assert warm[1].peak_temp_c() > cold[1].peak_temp_c() + 1.0


def test_idle_gap_cools_between_runs(workloads):
    packed = ScenarioRunner(ThermalMode.NO_FAN, initial_temp_c=30.0)
    gapped = ScenarioRunner(
        ThermalMode.NO_FAN, initial_temp_c=30.0, idle_gap_s=60.0
    )
    packed_results = packed.run(workloads)
    gapped_results = gapped.run(workloads)
    assert (
        gapped_results[1].max_temps_c()[0]
        < packed_results[1].max_temps_c()[0] - 1.0
    )


def test_dtpm_scenario_regulates_sustained_use(models):
    config = SimulationConfig()
    heavy = [synthesize("high", 25.0, threads=4, seed=s) for s in (1, 2, 3)]
    runner = ScenarioRunner(
        ThermalMode.DTPM,
        dtpm=make_dtpm_governor(models),
        config=config,
        initial_temp_c=40.0,
    )
    results = runner.run(heavy)
    # even the third consecutive heavy run stays regulated
    assert all(r.completed for r in results)
    assert results[-1].peak_temp_c() < config.t_constraint_c + 2.7
    # and the controller worked progressively harder as the device warmed
    assert results[-1].interventions >= results[0].interventions


def test_notes_record_position(workloads):
    results = ScenarioRunner(ThermalMode.NO_FAN).run(workloads)
    assert results[0].notes == ["scenario position 0"]
    assert results[1].notes == ["scenario position 1"]


def test_annotate_false_leaves_notes_empty(workloads):
    results = ScenarioRunner(ThermalMode.NO_FAN, annotate=False).run(workloads)
    assert all(r.notes == [] for r in results)


def test_base_seed_overrides_config_seed(workloads):
    a = ScenarioRunner(ThermalMode.NO_FAN, base_seed=1234).run(workloads)
    b = ScenarioRunner(ThermalMode.NO_FAN, base_seed=1234).run(workloads)
    c = ScenarioRunner(ThermalMode.NO_FAN, base_seed=999).run(workloads)
    from repro.runner import result_bytes

    assert [result_bytes(r) for r in a] == [result_bytes(r) for r in b]
    assert result_bytes(a[0]) != result_bytes(c[0])


def test_validation(workloads):
    with pytest.raises(ConfigurationError):
        ScenarioRunner(ThermalMode.DTPM)  # needs a governor
    with pytest.raises(ConfigurationError):
        ScenarioRunner(ThermalMode.NO_FAN, idle_gap_s=-1.0)
    with pytest.raises(ConfigurationError):
        ScenarioRunner(ThermalMode.NO_FAN).run([])
