"""Scenario runner: consecutive benchmarks on one warm device.

Includes the batched-chain contract: a :class:`BatchScenarioRunner` over
mixed schedules must produce chains byte-identical to the same schedules
executed one at a time, and the serial runner itself must match a
reference transcription of the pre-batching per-board idle loop.
"""

import pytest

from repro.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.runner import result_bytes
from repro.sim.engine import Simulator, ThermalMode
from repro.sim.experiment import make_dtpm_governor
from repro.sim.scenario import BatchScenarioRunner, ScenarioRunner, diurnal
from repro.workloads.generator import synthesize


@pytest.fixture()
def workloads():
    return [
        synthesize("medium", 20.0, threads=2, seed=1),
        synthesize("high", 20.0, threads=4, seed=2),
    ]


def test_sequence_carries_heat(workloads):
    runner = ScenarioRunner(ThermalMode.NO_FAN, initial_temp_c=30.0)
    first, second = runner.run(workloads)
    # the second run starts where the first ended, so it begins hotter
    assert second.max_temps_c()[0] > first.max_temps_c()[0] + 3.0
    assert runner.device_temps_k is not None


def test_sequence_vs_cold_runs(workloads):
    warm = ScenarioRunner(ThermalMode.NO_FAN, initial_temp_c=30.0).run(workloads)
    cold = [
        ScenarioRunner(ThermalMode.NO_FAN, initial_temp_c=30.0).run([w])[0]
        for w in workloads
    ]
    # back-to-back execution makes the later run peak hotter
    assert warm[1].peak_temp_c() > cold[1].peak_temp_c() + 1.0


def test_idle_gap_cools_between_runs(workloads):
    packed = ScenarioRunner(ThermalMode.NO_FAN, initial_temp_c=30.0)
    gapped = ScenarioRunner(
        ThermalMode.NO_FAN, initial_temp_c=30.0, idle_gap_s=60.0
    )
    packed_results = packed.run(workloads)
    gapped_results = gapped.run(workloads)
    assert (
        gapped_results[1].max_temps_c()[0]
        < packed_results[1].max_temps_c()[0] - 1.0
    )


def test_dtpm_scenario_regulates_sustained_use(models):
    config = SimulationConfig()
    heavy = [synthesize("high", 25.0, threads=4, seed=s) for s in (1, 2, 3)]
    runner = ScenarioRunner(
        ThermalMode.DTPM,
        dtpm=make_dtpm_governor(models),
        config=config,
        initial_temp_c=40.0,
    )
    results = runner.run(heavy)
    # even the third consecutive heavy run stays regulated
    assert all(r.completed for r in results)
    assert results[-1].peak_temp_c() < config.t_constraint_c + 2.7
    # and the controller worked progressively harder as the device warmed
    assert results[-1].interventions >= results[0].interventions


def test_notes_record_position(workloads):
    results = ScenarioRunner(ThermalMode.NO_FAN).run(workloads)
    assert results[0].notes == ["scenario position 0"]
    assert results[1].notes == ["scenario position 1"]


def test_annotate_false_leaves_notes_empty(workloads):
    results = ScenarioRunner(ThermalMode.NO_FAN, annotate=False).run(workloads)
    assert all(r.notes == [] for r in results)


def test_base_seed_overrides_config_seed(workloads):
    a = ScenarioRunner(ThermalMode.NO_FAN, base_seed=1234).run(workloads)
    b = ScenarioRunner(ThermalMode.NO_FAN, base_seed=1234).run(workloads)
    c = ScenarioRunner(ThermalMode.NO_FAN, base_seed=999).run(workloads)
    from repro.runner import result_bytes

    assert [result_bytes(r) for r in a] == [result_bytes(r) for r in b]
    assert result_bytes(a[0]) != result_bytes(c[0])


def test_validation(workloads):
    with pytest.raises(ConfigurationError):
        ScenarioRunner(ThermalMode.DTPM)  # needs a governor
    with pytest.raises(ConfigurationError):
        ScenarioRunner(ThermalMode.NO_FAN, idle_gap_s=-1.0)
    with pytest.raises(ConfigurationError):
        ScenarioRunner(ThermalMode.NO_FAN).run([])


# ---------------------------------------------------------------------------
# batched scenario chains
# ---------------------------------------------------------------------------
def _reference_chain(
    mode, workloads, initial_temp_c, idle_gap_s=0.0, base_seed=None, dtpm=None
):
    """The pre-batching serial semantics, transcribed: one Simulator per
    position, carried temperatures, and a per-board ``step`` idle loop."""
    from repro.platform.specs import PlatformSpec

    spec, config = PlatformSpec(), SimulationConfig()
    seed0 = base_seed if base_seed is not None else config.seed
    carry, results = None, []
    for i, workload in enumerate(workloads):
        sim = Simulator(
            workload, mode, dtpm=dtpm, spec=spec, config=config,
            warm_start_c=None if carry is not None else initial_temp_c,
            max_duration_s=900.0, seed=seed0 + i,
        )
        if carry is not None:
            sim.board.network.set_temperatures_k(carry)
            if idle_gap_s > 0:
                sim.board.soc.big.set_frequency(spec.big_opp.f_min_hz)
                for _ in range(int(round(idle_gap_s / 0.1))):
                    sim.board.step(
                        (0.03, 0.02, 0.02, 0.02), (0.0,) * 4, 0.0, 0.03, 0.1
                    )
                sim.board.meter.reset()
        result = sim.run()
        result.notes.append("scenario position %d" % i)
        results.append(result)
        carry = sim.board.network.temperatures_k
    return results


def test_serial_runner_matches_per_board_idle_loop(workloads):
    """The batched idle-gap integration is bit-equal to board.step loops."""
    reference = _reference_chain(
        ThermalMode.NO_FAN, workloads, initial_temp_c=30.0, idle_gap_s=7.0
    )
    runner = ScenarioRunner(
        ThermalMode.NO_FAN, initial_temp_c=30.0, idle_gap_s=7.0
    )
    results = runner.run(workloads)
    assert [result_bytes(r) for r in reference] == [
        result_bytes(r) for r in results
    ]


def _lane_recipes(models):
    """Heterogeneous scenario lanes: modes, gaps, seeds, chain lengths."""
    a = synthesize("medium", 12.0, threads=2, seed=21)
    b = synthesize("high", 12.0, threads=4, seed=22)
    recipes = [
        (dict(mode=ThermalMode.NO_FAN, initial_temp_c=30.0, idle_gap_s=6.0,
              base_seed=10), [a, b]),
        (dict(mode=ThermalMode.DEFAULT_WITH_FAN, initial_temp_c=45.0,
              base_seed=20), [b, a]),
        (dict(mode=ThermalMode.DTPM, initial_temp_c=50.0, idle_gap_s=3.0,
              base_seed=30), [b, b, a]),  # longer chain drops in later
        (dict(mode=ThermalMode.REACTIVE, initial_temp_c=35.0, base_seed=40),
         [a]),
    ]

    def runners():
        out = []
        for kwargs, _ in recipes:
            kwargs = dict(kwargs)
            if kwargs["mode"] is ThermalMode.DTPM:
                kwargs["dtpm"] = make_dtpm_governor(models)
            out.append(ScenarioRunner(**kwargs))
        return out

    return runners, [schedule for _, schedule in recipes]


def test_batch_of_schedules_byte_identical_to_serial(models):
    runners, schedules = _lane_recipes(models)
    serial = [
        runner.run(schedule)
        for runner, schedule in zip(runners(), schedules)
    ]
    batched = BatchScenarioRunner(runners()).run(schedules)
    assert len(serial) == len(batched)
    for one, many in zip(serial, batched):
        assert [result_bytes(r) for r in one] == [
            result_bytes(r) for r in many
        ]


def test_per_position_modes(workloads, models):
    mixed = [ThermalMode.NO_FAN, ThermalMode.DTPM]
    runner = ScenarioRunner(
        ThermalMode.NO_FAN,
        dtpm=make_dtpm_governor(models),
        initial_temp_c=40.0,
    )
    results = runner.run(workloads, modes=mixed)
    assert [r.mode for r in results] == ["without_fan", "dtpm"]
    # the DTPM-managed second position matches the same mixed chain run
    # under a default mode of DTPM with the first position pinned instead
    other = ScenarioRunner(
        ThermalMode.DTPM,
        dtpm=make_dtpm_governor(models),
        initial_temp_c=40.0,
    ).run(workloads, modes=mixed)
    assert [result_bytes(r) for r in results] == [
        result_bytes(r) for r in other
    ]


def test_batch_scenario_validation(workloads):
    runner = ScenarioRunner(ThermalMode.NO_FAN)
    with pytest.raises(ConfigurationError):
        BatchScenarioRunner([])
    with pytest.raises(ConfigurationError):
        BatchScenarioRunner([runner, runner])
    with pytest.raises(ConfigurationError):
        BatchScenarioRunner([runner]).run([])  # lane-count mismatch
    with pytest.raises(ConfigurationError):
        BatchScenarioRunner([runner]).run([[]])  # empty schedule
    with pytest.raises(ConfigurationError):
        runner.run(workloads, modes=[ThermalMode.NO_FAN])  # wrong length
    with pytest.raises(ConfigurationError):
        # DTPM position without a governor
        runner.run(workloads, modes=[ThermalMode.NO_FAN, ThermalMode.DTPM])


# ---------------------------------------------------------------------------
# schedule generators
# ---------------------------------------------------------------------------
def test_diurnal_repeats_days_with_overnight(workloads):
    schedule = diurnal(workloads, days=3)
    assert len(schedule) == 3 * len(workloads) + 2
    overnight = schedule[len(workloads)]
    assert overnight.name == "overnight" and overnight.category == "low"
    assert schedule[: len(workloads)] == tuple(workloads)
    # names resolve and per-position modes attach
    tagged = diurnal(
        [("dijkstra", "dtpm")], days=2, night_mode=ThermalMode.NO_FAN
    )
    workload, mode = tagged[0]
    assert workload.name == "dijkstra" and mode is ThermalMode.DTPM
    assert tagged[1][1] is ThermalMode.NO_FAN
    with pytest.raises(ConfigurationError):
        diurnal([], days=2)
    with pytest.raises(ConfigurationError):
        diurnal(workloads, days=0)
    with pytest.raises(ConfigurationError):
        diurnal([("dijkstra", "warp-speed")])
