"""Golden fixtures for every file-level lint rule.

Each rule gets one seeded violation (asserting rule id and line) and one
clean twin, so a rule that silently stops firing -- or starts flagging
sanctioned idioms -- fails here before it ships.
"""

import textwrap

from repro.devtools import LintConfig, lint_paths


def lint_snippet(tmp_path, relpath, source, config=None):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return lint_paths([str(tmp_path)], config or LintConfig())


def rules_of(findings):
    return [f.rule for f in findings]


# ---------------------------------------------------------------------------
# RPR011 builtin hash()
# ---------------------------------------------------------------------------
def test_rpr011_flags_builtin_hash_in_numeric_layer(tmp_path):
    findings = lint_snippet(tmp_path, "sim/seeding.py", """\
        def derive(spec):
            return hash(spec) % 2**32
    """)
    assert rules_of(findings) == ["RPR011"]
    assert findings[0].line == 2


def test_rpr011_clean_crc_and_out_of_scope_hash(tmp_path):
    findings = lint_snippet(tmp_path, "sim/seeding.py", """\
        import zlib

        def derive(payload: bytes) -> int:
            return zlib.crc32(payload)
    """)
    findings += lint_snippet(tmp_path, "analysis/report.py", """\
        def memo_key(obj):
            return hash(obj)
    """)
    assert rules_of(findings) == []


# ---------------------------------------------------------------------------
# RPR012 wall clock
# ---------------------------------------------------------------------------
def test_rpr012_flags_wall_clock_reads(tmp_path):
    findings = lint_snippet(tmp_path, "thermal/clock.py", """\
        import time
        from datetime import datetime

        def stamp():
            t = time.time()
            return t, datetime.now()
    """)
    assert rules_of(findings) == ["RPR012", "RPR012"]
    assert [f.line for f in findings] == [5, 6]


def test_rpr012_clean_simulated_time(tmp_path):
    findings = lint_snippet(tmp_path, "thermal/clock.py", """\
        def stamp(state):
            return state.time_s + state.dt_s
    """)
    assert rules_of(findings) == []


# ---------------------------------------------------------------------------
# RPR013 global RNG
# ---------------------------------------------------------------------------
def test_rpr013_flags_global_rng_calls(tmp_path):
    findings = lint_snippet(tmp_path, "power/noise.py", """\
        import random
        import numpy as np

        def jitter(n):
            a = random.random()
            b = np.random.rand(n)
            np.random.seed(0)
            return a, b
    """)
    assert rules_of(findings) == ["RPR013", "RPR013", "RPR013"]
    assert [f.line for f in findings] == [5, 6, 7]


def test_rpr013_clean_seeded_generator(tmp_path):
    findings = lint_snippet(tmp_path, "power/noise.py", """\
        import numpy as np

        def jitter(n, seed):
            rng = np.random.default_rng(seed)
            return rng.normal(size=n)
    """)
    assert rules_of(findings) == []


# ---------------------------------------------------------------------------
# RPR014 float-literal equality
# ---------------------------------------------------------------------------
def test_rpr014_flags_float_literal_equality(tmp_path):
    findings = lint_snippet(tmp_path, "core/check.py", """\
        def saturated(duty):
            return duty == 1.0
    """)
    assert rules_of(findings) == ["RPR014"]
    assert findings[0].line == 2


def test_rpr014_clean_tolerance_and_int_compare(tmp_path):
    findings = lint_snippet(tmp_path, "core/check.py", """\
        def saturated(duty, count):
            return abs(duty - 1.0) < 1e-9 and count == 0
    """)
    assert rules_of(findings) == []


# ---------------------------------------------------------------------------
# RPR015 mutable default arguments
# ---------------------------------------------------------------------------
def test_rpr015_flags_mutable_defaults(tmp_path):
    findings = lint_snippet(tmp_path, "core/args.py", """\
        def collect(item, into=[]):
            into.append(item)
            return into

        def index(key, table=dict()):
            return table.setdefault(key, 0)
    """)
    assert rules_of(findings) == ["RPR015", "RPR015"]
    assert [f.line for f in findings] == [1, 5]


def test_rpr015_clean_none_default(tmp_path):
    findings = lint_snippet(tmp_path, "core/args.py", """\
        def collect(item, into=None):
            into = [] if into is None else into
            into.append(item)
            return into
    """)
    assert rules_of(findings) == []


# ---------------------------------------------------------------------------
# RPR032 batch-axis loops in hot modules
# ---------------------------------------------------------------------------
def test_rpr032_flags_batch_axis_loop_in_hot_module(tmp_path):
    findings = lint_snippet(tmp_path, "thermal/kernels.py", """\
        def advance(batch, temps):
            out = temps.copy()
            for b in range(batch):
                out[b] = out[b] * 2.0
            return out
    """)
    assert rules_of(findings) == ["RPR032"]
    assert findings[0].line == 3


def test_rpr032_exempts_comprehensions_and_cold_modules(tmp_path):
    findings = lint_snippet(tmp_path, "platform/state.py", """\
        import numpy as np

        def gather(boards):
            return np.array([b.time_s for b in boards])
    """)
    findings += lint_snippet(tmp_path, "analysis/cold.py", """\
        def tally(boards):
            total = 0.0
            for board in boards:
                total += board.time_s
            return total
    """)
    assert rules_of(findings) == []


def test_rpr032_waiver_with_justification_suppresses(tmp_path):
    findings = lint_snippet(tmp_path, "power/batch.py", """\
        def writeback(boards, values):
            for i, board in enumerate(boards):  # repro-lint: disable=RPR032 -- O(B) scatter
                board.value = values[i]
    """)
    assert rules_of(findings) == []


# ---------------------------------------------------------------------------
# RPR041 guarded-by discipline
# ---------------------------------------------------------------------------
def test_rpr041_flags_unlocked_access(tmp_path):
    findings = lint_snippet(tmp_path, "service/pool.py", """\
        import threading

        class Pool:
            def __init__(self):
                self._lock = threading.Lock()
                self._jobs = {}  # guarded-by: _lock

            def depth(self):
                return len(self._jobs)
    """)
    assert rules_of(findings) == ["RPR041"]
    assert findings[0].line == 9


def test_rpr041_clean_access_under_lock(tmp_path):
    findings = lint_snippet(tmp_path, "service/pool.py", """\
        import threading

        class Pool:
            def __init__(self):
                self._lock = threading.Lock()
                self._jobs = {}  # guarded-by: _lock

            def depth(self):
                with self._lock:
                    return len(self._jobs)
    """)
    assert rules_of(findings) == []


# ---------------------------------------------------------------------------
# RPR042 daemon threads without a join path
# ---------------------------------------------------------------------------
def test_rpr042_flags_joinless_daemon_thread(tmp_path):
    findings = lint_snippet(tmp_path, "service/fire.py", """\
        import threading

        class FireAndForget:
            def start(self):
                self._t = threading.Thread(target=self._run, daemon=True)
                self._t.start()

            def _run(self):
                pass
    """)
    assert rules_of(findings) == ["RPR042"]
    assert findings[0].line == 5


def test_rpr042_clean_thread_with_join(tmp_path):
    findings = lint_snippet(tmp_path, "service/fire.py", """\
        import threading

        class Drained:
            def start(self):
                self._t = threading.Thread(target=self._run, daemon=True)
                self._t.start()

            def close(self):
                self._t.join()

            def _run(self):
                pass
    """)
    assert rules_of(findings) == []


# ---------------------------------------------------------------------------
# RPR001/RPR002 waiver hygiene
# ---------------------------------------------------------------------------
def test_rpr001_flags_unknown_rule_in_waiver(tmp_path):
    findings = lint_snippet(tmp_path, "sim/w.py", """\
        x = 1  # repro-lint: disable=RPR999 -- no such rule
    """)
    assert rules_of(findings) == ["RPR001"]
    assert findings[0].severity == "error"


def test_rpr002_flags_unused_waiver(tmp_path):
    findings = lint_snippet(tmp_path, "sim/w.py", """\
        x = 1  # repro-lint: disable=RPR011 -- nothing here triggers it
    """)
    assert rules_of(findings) == ["RPR002"]
    assert findings[0].severity == "warning"


def test_waiver_suppresses_only_named_rule(tmp_path):
    findings = lint_snippet(tmp_path, "sim/w.py", """\
        import time

        def stamp():
            return hash(time.time())  # repro-lint: disable=RPR011 -- fixture
    """)
    # RPR011 waived; the RPR012 wall-clock finding on the same line stays
    assert rules_of(findings) == ["RPR012"]
