"""Sharded store layout, blob compression, pack index, in-place migration."""

import json
import os

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.runner import (
    ParallelRunner,
    ResultCache,
    RunSpec,
    disk_usage,
    migrate,
    prune,
    result_bytes,
    store_depth,
    trace_blob_bytes,
)
from repro.runner.cache import _zstandard
from repro.sim.engine import ThermalMode
from repro.workloads.generator import synthesize


@pytest.fixture(scope="module")
def workload():
    return synthesize("medium", 12.0, threads=2, seed=3)


@pytest.fixture(scope="module")
def result(workload):
    return ParallelRunner().run_one(
        RunSpec(workload=workload, mode=ThermalMode.NO_FAN)
    )


@pytest.fixture(scope="module")
def results(workload):
    specs = [
        RunSpec(workload=synthesize("medium", 12.0, threads=2, seed=s),
                mode=ThermalMode.NO_FAN)
        for s in (3, 4, 5)
    ]
    return ParallelRunner().run(specs)


def _files(root):
    out = []
    for base, _dirs, names in os.walk(root):
        for name in names:
            out.append(os.path.relpath(os.path.join(base, name), root))
    return sorted(out)


# ---------------------------------------------------------------------------
# shard depth
# ---------------------------------------------------------------------------
def test_fanout2_writes_depth2_and_marks_layout(tmp_path, result):
    cache = ResultCache(root=str(tmp_path), fanout=2)
    cache.put("ab" * 32, result)
    key = "ab" * 32
    assert (tmp_path / key[:2] / key[2:4] / (key + ".json")).exists()
    assert store_depth(str(tmp_path)) == 2
    # a depth-agnostic cache adopts the marker
    assert ResultCache(root=str(tmp_path), memory=False).depth == 2


def test_depths_read_each_other(tmp_path, result):
    key = "cd" * 32
    flat = ResultCache(root=str(tmp_path / "flat"), fanout=1)
    flat.put(key, result)
    deep = ResultCache(root=str(tmp_path / "flat"), memory=False, fanout=2)
    assert key in deep
    assert result_bytes(deep.get(key)) == result_bytes(result)

    sharded = ResultCache(root=str(tmp_path / "deep"), fanout=2)
    sharded.put(key, result)
    legacy = ResultCache(
        root=str(tmp_path / "deep"), memory=False, fanout=1
    )
    assert result_bytes(legacy.get(key)) == result_bytes(result)
    assert legacy.keys() == [key]


def test_fanout_validation(tmp_path):
    with pytest.raises(ConfigurationError):
        ResultCache(root=str(tmp_path), fanout=3)


# ---------------------------------------------------------------------------
# blob compression
# ---------------------------------------------------------------------------
def test_deflate_round_trip_is_byte_identical(tmp_path, result):
    key = "ef" * 32
    cache = ResultCache(root=str(tmp_path), compress="deflate")
    cache.put(key, result)
    blob = tmp_path / key[:2] / (key + ".npz.z")
    assert blob.exists()
    assert blob.stat().st_size < len(trace_blob_bytes(result))
    reader = ResultCache(root=str(tmp_path), memory=False)
    assert result_bytes(reader.get(key)) == result_bytes(result)
    assert blob.exists()  # non-mmap reads decompress in memory


def test_mmap_read_rehydrates_compressed_blob(tmp_path, result):
    key = "0f" * 32
    ResultCache(root=str(tmp_path), compress="deflate").put(key, result)
    reader = ResultCache(root=str(tmp_path), memory=False, mmap=True)
    got = reader.get(key)
    assert result_bytes(got) == result_bytes(result)
    base = got.trace.array()
    while not isinstance(base, np.memmap) and getattr(base, "base", None) is not None:
        base = base.base
    assert isinstance(base, np.memmap)  # the trace really is file-backed
    # first touch replaced the compressed blob with the plain npz
    assert not (tmp_path / key[:2] / (key + ".npz.z")).exists()
    plain = tmp_path / key[:2] / (key + ".npz")
    assert plain.exists()
    again = ResultCache(root=str(tmp_path), memory=False, mmap=True)
    assert result_bytes(again.get(key)) == result_bytes(result)


def test_zstd_gated_when_package_missing(tmp_path):
    if _zstandard is not None:
        pytest.skip("zstandard installed; the gate does not apply")
    with pytest.raises(ConfigurationError):
        ResultCache(root=str(tmp_path), compress="zstd")
    with pytest.raises(ConfigurationError):
        migrate(str(tmp_path), compress="zstd")


def test_unknown_codec_rejected(tmp_path):
    with pytest.raises(ConfigurationError):
        ResultCache(root=str(tmp_path), compress="lz4")


# ---------------------------------------------------------------------------
# migration
# ---------------------------------------------------------------------------
def test_migrate_reshards_and_stays_byte_identical(tmp_path, results):
    root = str(tmp_path)
    cache = ResultCache(root=root)
    keys = ["%02x" % i * 32 for i in range(len(results))]
    for key, res in zip(keys, results):
        cache.put(key, res)
    before = {k: result_bytes(cache.get(k)) for k in keys}
    stats = migrate(root, fanout=2, compress="deflate")
    assert stats.examined == len(keys)
    assert stats.moved == len(keys)
    after = ResultCache(root=root, memory=False)
    assert after.depth == 2
    assert after.keys() == sorted(keys)
    for key in keys:
        assert result_bytes(after.get(key)) == before[key]
    # every old flat copy is gone
    for key in keys:
        assert not os.path.exists(os.path.join(root, key[:2], key + ".json"))
        assert not os.path.exists(os.path.join(root, key[:2], key + ".npz"))


def test_migrate_is_idempotent(tmp_path, result):
    root = str(tmp_path)
    ResultCache(root=root).put("aa" * 32, result)
    first = migrate(root, fanout=2)
    files = _files(root)
    second = migrate(root, fanout=2)
    assert second.moved == 0 and second.cleaned == 0
    assert _files(root) == files
    assert first.moved == 1


def test_migrate_resumes_after_interruption(tmp_path, result):
    """A pass killed between copy and unlink finishes on the next run."""
    root = str(tmp_path)
    key = "bc" * 32
    ResultCache(root=root).put(key, result)
    # simulate the interrupted state: target copies exist, old copies too
    target = os.path.join(root, key[:2], key[2:4])
    os.makedirs(target)
    for suffix in (".json", ".npz"):
        src = os.path.join(root, key[:2], key + suffix)
        with open(src, "rb") as fh:
            blob = fh.read()
        with open(os.path.join(target, key + suffix), "wb") as fh:
            fh.write(blob)
    # both copies are readable mid-migration and count once
    mid = ResultCache(root=root, memory=False)
    assert mid.keys() == [key]
    assert len(mid) == 1
    stats = migrate(root, fanout=2)
    assert stats.cleaned == 2  # the two leftover flat copies
    assert not os.path.exists(os.path.join(root, key[:2], key + ".json"))
    done = ResultCache(root=root, memory=False)
    assert result_bytes(done.get(key)) == result_bytes(result)


def test_migrate_round_trips_back_to_flat(tmp_path, result):
    root = str(tmp_path)
    key = "de" * 32
    before = result_bytes(result)
    ResultCache(root=root, fanout=2, compress="deflate").put(key, result)
    migrate(root, fanout=1, compress="none")
    flat = ResultCache(root=root, memory=False)
    assert flat.depth == 1
    assert os.path.exists(os.path.join(root, key[:2], key + ".npz"))
    assert result_bytes(flat.get(key)) == before


def test_migrate_rejects_bad_fanout(tmp_path):
    with pytest.raises(ConfigurationError):
        migrate(str(tmp_path), fanout=3)


# ---------------------------------------------------------------------------
# pack index
# ---------------------------------------------------------------------------
def test_indexed_summaries_match_directory_walk(tmp_path, results):
    cache = ResultCache(root=str(tmp_path), fanout=2)
    keys = ["%02x" % (16 * i) * 32 for i in range(len(results))]
    for key, res in zip(keys, results):
        cache.put(key, res)
    walked = list(cache.iter_summaries())
    indexed = cache.indexed_summaries()
    assert indexed == walked
    assert (tmp_path / ".index").is_dir()
    # warm path: packs answer without rescanning, same rows
    assert cache.indexed_summaries() == walked


def test_pack_index_invalidates_on_writes_and_prune(tmp_path, results):
    root = str(tmp_path)
    cache = ResultCache(root=root, fanout=2)
    key_a = "11" * 32
    key_b = "11" + "ab" * 31  # same top-level shard, new depth-2 subdir
    cache.put(key_a, results[0])
    assert len(cache.indexed_summaries()) == 1
    cache.put(key_b, results[1])
    assert {k for k, _ in cache.indexed_summaries()} == {key_a, key_b}
    prune(root, max_bytes=None)
    assert cache.indexed_summaries() == []


def test_suiteframe_open_dir_same_with_and_without_index(tmp_path, results):
    from repro.analysis.suite import SuiteFrame

    cache = ResultCache(root=str(tmp_path), fanout=2, compress="deflate")
    keys = ["%02x" % (7 * i + 1) * 32 for i in range(len(results))]
    for key, res in zip(keys, results):
        cache.put(key, res)
    fast = SuiteFrame.open_dir(str(tmp_path))
    slow = SuiteFrame.open_dir(str(tmp_path), use_index=False)
    assert fast.keys == slow.keys == sorted(keys)
    for field in ("execution_time_s", "average_platform_power_w"):
        assert fast.column(field).tolist() == slow.column(field).tolist()
    for i in range(len(fast)):
        assert np.array_equal(fast.trace(i), slow.trace(i))


def test_disk_usage_counts_compressed_blobs(tmp_path, result):
    cache = ResultCache(root=str(tmp_path), fanout=2, compress="deflate")
    cache.put("21" * 32, result)
    usage = disk_usage(str(tmp_path))
    assert usage.entries == 1
    assert usage.v2_entries == 1
    assert usage.compressed_blobs == 1


def test_prune_walks_both_depths(tmp_path, result):
    root = str(tmp_path)
    ResultCache(root=root, fanout=1).put("31" * 32, result)
    ResultCache(root=root, fanout=2).put("32" * 32, result)
    removed, freed = prune(root, max_bytes=None)
    assert removed == 2
    assert freed > 0
    assert ResultCache(root=root, memory=False).keys() == []


def test_layout_marker_ignores_garbage(tmp_path):
    (tmp_path / ".layout.json").write_text("not json")
    assert store_depth(str(tmp_path)) == 1
    (tmp_path / ".layout.json").write_text(json.dumps({"depth": 9}))
    assert store_depth(str(tmp_path)) == 1
