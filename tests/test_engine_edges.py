"""Engine edge paths: hotplug victim selection, penalties, idle governor."""


from repro.platform.cluster import CpuCluster
from repro.platform.specs import (
    BIG_CORE,
    BIG_LEAKAGE,
    BIG_OPP_TABLE,
    Resource,
)
from repro.sim.engine import Simulator, ThermalMode
from repro.workloads.generator import synthesize


def _cluster():
    cluster = CpuCluster(Resource.BIG, BIG_OPP_TABLE, BIG_CORE, BIG_LEAKAGE)
    cluster.activate()
    return cluster


def test_set_online_prefers_requested_victim():
    cluster = _cluster()
    changed = Simulator._set_online(cluster, 3, prefer_off=1)
    assert changed == 1
    assert not cluster.is_online(1)
    assert cluster.online_cores == [0, 2, 3]


def test_set_online_falls_back_to_highest_index():
    cluster = _cluster()
    changed = Simulator._set_online(cluster, 2, prefer_off=None)
    assert changed == 2
    assert cluster.online_cores == [0, 1]


def test_set_online_restores_lowest_first():
    cluster = _cluster()
    Simulator._set_online(cluster, 2, prefer_off=None)
    changed = Simulator._set_online(cluster, 4, prefer_off=None)
    assert changed == 2
    assert cluster.num_online == 4


def test_set_online_noop():
    cluster = _cluster()
    assert Simulator._set_online(cluster, 4, prefer_off=None) == 0


def test_idle_governor_downsizes_light_load():
    """A near-idle workload sheds cores through the idle governor."""
    workload = synthesize(
        "low", 40.0, threads=1, seed=2, num_phases=0
    )
    object.__setattr__(workload, "background_util", 0.02)
    object.__setattr__(workload, "thread_demand", 0.05)
    sim = Simulator(workload, ThermalMode.DEFAULT_WITH_FAN, max_duration_s=600.0)
    result = sim.run()
    online = result.trace.column("online_cores")
    assert online.min() < 4  # hotplug actually engaged
    assert online.min() >= 1


def test_migration_penalty_costs_work(models):
    """A run with forced migrations takes longer than its nominal time."""
    from repro.config import SimulationConfig
    from repro.sim.experiment import make_dtpm_governor

    config = SimulationConfig(t_constraint_c=42.0)
    workload = synthesize("high", 20.0, threads=4, seed=3)
    sim = Simulator(
        workload,
        ThermalMode.DTPM,
        dtpm=make_dtpm_governor(models, config=config),
        config=config,
        warm_start_c=38.0,
        max_duration_s=600.0,
    )
    result = sim.run()
    assert result.completed
    assert result.execution_time_s > workload.nominal_duration_s() * 1.1
