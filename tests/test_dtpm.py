"""DtpmGovernor: the per-interval control path (Fig. 3.1)."""

import numpy as np
import pytest

from repro.core.dtpm import DtpmGovernor
from repro.governors.base import PlatformConfig
from repro.platform.board import SensorSnapshot
from repro.platform.specs import PlatformSpec, Resource
from repro.power.characterization import default_power_model
from repro.thermal.state_space import DiscreteThermalModel
from repro.units import celsius_to_kelvin as c2k, mhz


@pytest.fixture()
def governor():
    spec = PlatformSpec()
    a = 0.90 * np.eye(4) + 0.02 * (np.ones((4, 4)) - np.eye(4))
    # ~18 K/W DC gain on the big cluster: a 2.3 W cluster equilibrates in
    # the mid-60s C, so 64 C + full power must predict a violation
    b = np.tile(np.array([0.90, 0.15, 0.30, 0.24]), (4, 1))
    offset = (np.eye(4) - a) @ np.full(4, c2k(25.0))
    model = DiscreteThermalModel(a=a, b=b, offset=offset, ts_s=0.1)
    gov = DtpmGovernor(model, default_power_model(spec), spec=spec)
    return gov


BIG_CONFIG = PlatformConfig(
    cluster=Resource.BIG,
    big_freq_hz=mhz(1600),
    little_freq_hz=mhz(1200),
    gpu_freq_hz=mhz(177),
    big_online=4,
    little_online=4,
)


def _snapshot(temp_c, p_big=2.3):
    return SensorSnapshot(
        time_s=10.0,
        temperatures_k=np.full(4, c2k(temp_c)),
        powers_w=np.array([p_big, 0.01, 0.2, 0.25]),
        platform_power_w=5.0,
    )


def _prime(governor, temp_c=50.0, p_big=2.3, n=5):
    for _ in range(n):
        governor.control(_snapshot(temp_c, p_big), BIG_CONFIG, BIG_CONFIG)


def test_non_intrusive_when_cool(governor):
    _prime(governor)
    outcome = governor.control(_snapshot(45.0), BIG_CONFIG, BIG_CONFIG)
    assert not outcome.violation_predicted
    assert not outcome.intervened
    assert outcome.config == BIG_CONFIG


def test_intervenes_when_violation_predicted(governor):
    _prime(governor)
    outcome = governor.control(_snapshot(64.0), BIG_CONFIG, BIG_CONFIG)
    assert outcome.violation_predicted
    assert outcome.intervened
    assert outcome.budget is not None
    assert (
        outcome.config.big_freq_hz < BIG_CONFIG.big_freq_hz
        or outcome.config.big_online < 4
        or outcome.config.cluster is Resource.LITTLE
    )


def test_budget_respected_by_chosen_config(governor):
    _prime(governor)
    outcome = governor.control(_snapshot(64.0), BIG_CONFIG, BIG_CONFIG)
    cfg = outcome.config
    if cfg.cluster is Resource.BIG:
        power = governor.policy.predicted_cluster_power_w(
            governor.power_model,
            Resource.BIG,
            cfg.big_freq_hz,
            cfg.big_online,
            BIG_CONFIG.big_online,
            c2k(64.0),
        )
        assert power <= outcome.budget.total_budget_w + 1e-9


def test_alpha_c_learning_from_observations(governor):
    est = governor.power_model[Resource.BIG].dynamic.estimator
    assert est.sample_count == 0
    _prime(governor, n=3)
    assert est.sample_count == 3
    assert est.alpha_c_f > 1e-11


def test_operating_point_reflects_cluster(governor):
    op_big = governor.operating_point(BIG_CONFIG)
    assert op_big.big is not None and op_big.little is None
    little_cfg = BIG_CONFIG.with_(cluster=Resource.LITTLE)
    op_little = governor.operating_point(little_cfg)
    assert op_little.big is None and op_little.little is not None
    assert op_little.mem == (governor.spec.mem_vdd, 1.0)


def test_predicted_power_vector_uses_measurement_when_unchanged(governor):
    _prime(governor)
    snap = _snapshot(55.0)
    p = governor.predicted_power_vector(snap, BIG_CONFIG, BIG_CONFIG)
    assert np.allclose(p, snap.powers_w)


def test_predicted_power_vector_repredicts_on_freq_change(governor):
    _prime(governor)
    snap = _snapshot(55.0)
    slower = BIG_CONFIG.with_(big_freq_hz=mhz(800))
    p = governor.predicted_power_vector(snap, BIG_CONFIG, slower)
    assert p[0] < snap.powers_w[0]  # lower f, lower V -> less power


def test_predicted_power_vector_handles_gpu_change(governor):
    _prime(governor)
    snap = _snapshot(55.0)
    faster_gpu = BIG_CONFIG.with_(gpu_freq_hz=mhz(533))
    p = governor.predicted_power_vector(snap, BIG_CONFIG, faster_gpu)
    assert p[2] != snap.powers_w[2]


def test_reset_clears_policy_state(governor):
    governor.policy._return_counter = 7
    governor.reset()
    assert governor.policy._return_counter == 0


def test_observer_integration(governor):
    """With an observer attached, control consumes filtered temperatures."""
    import numpy as np
    from repro.thermal.observer import TemperatureObserver

    observed = DtpmGovernor(
        governor.predictor.model,
        default_power_model(governor.spec),
        spec=governor.spec,
        observer=TemperatureObserver(governor.predictor.model),
    )
    _prime(observed)
    assert observed.observer.state_k is not None
    outcome = observed.control(_snapshot(64.0), BIG_CONFIG, BIG_CONFIG)
    assert outcome.violation_predicted
    observed.reset()
    assert observed.observer.state_k is None
