"""Idle (hotplug) governor."""

import pytest

from repro.errors import ConfigurationError
from repro.governors.idle import IdleGovernor


def test_saturated_cores_bring_one_up():
    gov = IdleGovernor(up_threshold=0.85)
    assert gov.propose((0.95, 0.9, 0.0, 0.0), online=2) == 3


def test_no_growth_beyond_max():
    gov = IdleGovernor(max_cores=4)
    assert gov.propose((1.0, 1.0, 1.0, 1.0), online=4) == 4


def test_light_load_takes_core_down_after_delay():
    gov = IdleGovernor(down_threshold=0.35, down_delay_samples=3)
    sample = (0.05, 0.05, 0.05, 0.05)
    assert gov.propose(sample, online=4) == 4
    assert gov.propose(sample, online=4) == 4
    assert gov.propose(sample, online=4) == 3  # third consecutive quiet sample


def test_moderate_load_holds_core_count():
    gov = IdleGovernor()
    for _ in range(30):
        assert gov.propose((0.6, 0.6, 0.6, 0.6), online=4) == 4


def test_busy_interval_resets_down_delay():
    gov = IdleGovernor(down_delay_samples=2)
    quiet = (0.05, 0.05, 0.05, 0.05)
    gov.propose(quiet, online=4)
    gov.propose((0.9, 0.9, 0.9, 0.9), online=4)  # busy resets
    assert gov.propose(quiet, online=4) == 4


def test_never_below_one_core():
    gov = IdleGovernor(down_delay_samples=1)
    assert gov.propose((0.0,), online=1) == 1


def test_validation():
    with pytest.raises(ConfigurationError):
        IdleGovernor(max_cores=0)
    with pytest.raises(ConfigurationError):
        IdleGovernor(up_threshold=0.3, down_threshold=0.5)
    gov = IdleGovernor()
    with pytest.raises(ConfigurationError):
        gov.propose((1.0,), online=9)


def test_reset():
    gov = IdleGovernor(down_delay_samples=5)
    gov.propose((0.01,) * 4, online=4)
    gov.reset()
    assert gov._down_count == 0
