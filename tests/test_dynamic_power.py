"""Run-time alpha*C tracking and dynamic power model (Fig. 4.4, Eq. 5.7)."""

import pytest

from repro.errors import ModelError
from repro.power.dynamic import AlphaCEstimator, DynamicPowerModel
from repro.power.leakage import LeakageModel
from repro.units import celsius_to_kelvin as c2k


def test_estimator_first_sample_snaps():
    est = AlphaCEstimator(initial_alpha_c_f=0.1e-9)
    est.update(dynamic_power_w=1.0, vdd=1.0, frequency_hz=1e9)
    assert est.alpha_c_f == pytest.approx(1e-9)


def test_estimator_converges_to_true_value():
    est = AlphaCEstimator(smoothing=0.3)
    true_alpha_c = 0.28e-9
    for _ in range(60):
        p = true_alpha_c * 1.25 ** 2 * 1.6e9
        est.update(p, 1.25, 1.6e9)
    assert est.alpha_c_f == pytest.approx(true_alpha_c, rel=1e-6)
    assert est.sample_count == 60


def test_estimator_clamps_negative_observations():
    est = AlphaCEstimator(floor_f=1e-12)
    est.update(-0.5, 1.0, 1e9)  # leakage model overshoot at idle
    assert est.alpha_c_f >= 1e-12


def test_estimator_ceiling():
    est = AlphaCEstimator(ceiling_f=1e-9)
    est.update(1e3, 1.0, 1e9)
    assert est.alpha_c_f <= 1e-9


def test_estimator_parameter_validation():
    with pytest.raises(ModelError):
        AlphaCEstimator(smoothing=0.0)
    with pytest.raises(ModelError):
        AlphaCEstimator(floor_f=1.0, ceiling_f=0.5)
    est = AlphaCEstimator()
    with pytest.raises(ModelError):
        est.update(1.0, 0.0, 1e9)


def test_predict_matches_eq_4_1():
    model = DynamicPowerModel(AlphaCEstimator(initial_alpha_c_f=0.2e-9))
    assert model.predict_w(1.6e9, 1.25) == pytest.approx(
        0.2e-9 * 1.25 ** 2 * 1.6e9
    )


def test_frequency_for_budget_inverts_prediction():
    model = DynamicPowerModel(AlphaCEstimator(initial_alpha_c_f=0.2e-9))
    budget = model.predict_w(1.2e9, 1.1)
    assert model.frequency_for_budget_hz(budget, 1.1) == pytest.approx(1.2e9)


def test_frequency_for_nonpositive_budget_is_zero():
    model = DynamicPowerModel()
    assert model.frequency_for_budget_hz(-1.0, 1.0) == 0.0
    assert model.frequency_for_budget_hz(0.0, 1.0) == 0.0


def test_observe_decomposes_total_power():
    leak = LeakageModel(c1=7.7e-3, c2=-2900.0, i_gate=0.010)
    model = DynamicPowerModel(AlphaCEstimator(smoothing=1.0))
    t = c2k(55)
    vdd, f = 1.1, 1.2e9
    true_dynamic = 0.9
    total = true_dynamic + leak.power_w(t, vdd)
    observed_dynamic = model.observe(total, t, vdd, f, leak)
    assert observed_dynamic == pytest.approx(true_dynamic)
    assert model.estimator.alpha_c_f == pytest.approx(
        true_dynamic / (vdd ** 2 * f)
    )
