"""Prediction-error metrics (Section 4.2.2)."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.thermal.state_space import DiscreteThermalModel
from repro.thermal.validation import (
    error_vs_horizon,
    horizon_predictions,
    prediction_error_report,
)


@pytest.fixture()
def model():
    return DiscreteThermalModel(
        a=0.9 * np.eye(2),
        b=0.2 * np.eye(2),
        offset=[33.0, 33.0],
        ts_s=0.1,
    )


def _rollout(model, steps, rng):
    t = np.array([330.0, 331.0])
    temps, powers = [], []
    for k in range(steps):
        p = rng.uniform(0.0, 2.0, size=2)
        temps.append(t.copy())
        powers.append(p)
        t = model.predict_next(t, p)
    return np.stack(temps), np.stack(powers)


def test_perfect_model_has_zero_error(model, rng):
    temps, powers = _rollout(model, 200, rng)
    report = prediction_error_report(model, temps, powers, 10)
    assert report.mean_abs_c < 1e-9
    assert report.max_abs_c < 1e-9
    assert report.samples == (200 - 10) * 2


def test_wrong_model_has_positive_error(model, rng):
    temps, powers = _rollout(model, 200, rng)
    wrong = DiscreteThermalModel(
        a=0.85 * np.eye(2), b=0.2 * np.eye(2), offset=[33.0, 33.0], ts_s=0.1
    )
    report = prediction_error_report(wrong, temps, powers, 10)
    assert report.mean_abs_c > 0.1


def test_error_grows_with_horizon(model, rng):
    temps, powers = _rollout(model, 400, rng)
    wrong = DiscreteThermalModel(
        a=0.88 * np.eye(2), b=0.2 * np.eye(2), offset=[33.0, 33.0], ts_s=0.1
    )
    reports = error_vs_horizon(wrong, temps, powers, [1, 5, 20])
    assert reports[1].mean_abs_c < reports[5].mean_abs_c < reports[20].mean_abs_c


def test_predictions_alignment(model, rng):
    temps, powers = _rollout(model, 50, rng)
    preds = horizon_predictions(model, temps, powers, 5)
    assert preds.shape == (45, 2)
    assert np.allclose(preds, temps[5:])


def test_report_fields(model, rng):
    temps, powers = _rollout(model, 100, rng)
    report = prediction_error_report(model, temps, powers, 10)
    assert report.horizon_s == pytest.approx(1.0)
    assert report.rms_c >= 0
    assert report.mean_pct >= 0


def test_invalid_horizons(model, rng):
    temps, powers = _rollout(model, 20, rng)
    with pytest.raises(ModelError):
        prediction_error_report(model, temps, powers, 0)
    with pytest.raises(ModelError):
        prediction_error_report(model, temps, powers, 20)
    with pytest.raises(ModelError):
        horizon_predictions(model, temps[:10], powers, 5)
