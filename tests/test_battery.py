"""Battery lifetime model (the Section 6.3.3 arithmetic)."""

import pytest

from repro.errors import ConfigurationError
from repro.platform.battery import Battery


def test_lifetime_basics():
    battery = Battery(capacity_wh=10.0, rate_derating=0.0)
    assert battery.lifetime_h(5.0) == pytest.approx(2.0)
    assert battery.lifetime_h(4.0) == pytest.approx(2.5)


def test_paper_arithmetic_14_percent_to_25_percent():
    """14 % platform savings -> ~25 % battery life (the paper's example)."""
    # the paper's datum: 0.7 W saved off a 5 W platform, 2 h baseline
    battery = Battery(capacity_wh=10.0, reference_power_w=3.0, rate_derating=0.03)
    baseline = 5.0
    improved = baseline - 0.7  # the 14 % savings
    gain = battery.lifetime_extension_pct(baseline, improved)
    assert 15.0 < gain < 35.0  # the paper's ~25 % band
    assert battery.lifetime_h(baseline) == pytest.approx(2.0, abs=0.15)


def test_rate_derating_reduces_capacity():
    battery = Battery(capacity_wh=10.0, reference_power_w=3.0, rate_derating=0.05)
    assert battery.effective_capacity_wh(3.0) == pytest.approx(10.0)
    assert battery.effective_capacity_wh(5.0) < 10.0
    # derating floored at 50 %
    assert battery.effective_capacity_wh(100.0) == pytest.approx(5.0)


def test_derating_makes_savings_compound():
    flat = Battery(capacity_wh=10.0, rate_derating=0.0)
    derated = Battery(capacity_wh=10.0, reference_power_w=3.0, rate_derating=0.05)
    assert derated.lifetime_extension_pct(5.0, 4.3) > flat.lifetime_extension_pct(
        5.0, 4.3
    )


def test_validation():
    with pytest.raises(ConfigurationError):
        Battery(capacity_wh=0.0)
    with pytest.raises(ConfigurationError):
        Battery(rate_derating=-1.0)
    with pytest.raises(ConfigurationError):
        Battery().lifetime_h(0.0)
