"""Property-based tests (hypothesis) on core data structures and invariants."""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.budget import PowerBudgetComputer
from repro.core.distribution import Component, solve_branch_and_bound, solve_greedy
from repro.platform.specs import BIG_OPP_TABLE, Resource
from repro.power.leakage import LeakageModel
from repro.thermal.prbs import prbs_bits
from repro.thermal.state_space import DiscreteThermalModel
from repro.units import celsius_to_kelvin as c2k

# ---------------------------------------------------------------------------
# OPP table quantisation
# ---------------------------------------------------------------------------
@given(st.floats(min_value=1e8, max_value=3e9, allow_nan=False))
def test_opp_floor_ceil_bracket_request(freq):
    lo = BIG_OPP_TABLE.floor(freq)
    hi = BIG_OPP_TABLE.ceil(freq)
    assert lo in BIG_OPP_TABLE.frequencies_hz
    assert hi in BIG_OPP_TABLE.frequencies_hz
    if BIG_OPP_TABLE.f_min_hz <= freq <= BIG_OPP_TABLE.f_max_hz:
        assert lo <= freq + 0.5
        assert hi + 0.5 >= freq
        assert lo <= hi


@given(st.sampled_from(BIG_OPP_TABLE.frequencies_hz))
def test_opp_floor_is_idempotent_on_table(freq):
    assert BIG_OPP_TABLE.floor(freq) == freq
    assert BIG_OPP_TABLE.ceil(freq) == freq


# ---------------------------------------------------------------------------
# Leakage model
# ---------------------------------------------------------------------------
@given(
    st.floats(min_value=280.0, max_value=400.0),
    st.floats(min_value=281.0, max_value=401.0),
    st.floats(min_value=0.5, max_value=1.5),
)
def test_leakage_monotone_in_temperature(t1, t2, vdd):
    model = LeakageModel(c1=7.7e-3, c2=-2900.0, i_gate=0.01)
    lo, hi = sorted((t1, t2))
    if hi - lo > 1e-6:
        assert model.power_w(hi, vdd) >= model.power_w(lo, vdd)


@given(st.floats(min_value=280.0, max_value=400.0))
def test_leakage_positive(t):
    model = LeakageModel(c1=7.7e-3, c2=-2900.0, i_gate=0.01)
    assert model.power_w(t, 1.0) > 0


# ---------------------------------------------------------------------------
# PRBS
# ---------------------------------------------------------------------------
@given(st.sampled_from([4, 5, 6, 7, 8, 9]), st.integers(min_value=1, max_value=10_000))
def test_prbs_balance_over_full_period(order, seed):
    bits = prbs_bits(order, seed=seed)
    assert int(bits.sum()) == 2 ** (order - 1)


@given(
    st.sampled_from([5, 6, 7]),
    st.integers(min_value=1, max_value=1000),
    st.integers(min_value=1, max_value=50),
)
def test_prbs_prefix_consistency(order, seed, length):
    full = prbs_bits(order, seed=seed)
    prefix = prbs_bits(order, length=length, seed=seed)
    assert np.array_equal(prefix, np.resize(full, length))


# ---------------------------------------------------------------------------
# State-space model linearity / superposition
# ---------------------------------------------------------------------------
_temps = st.lists(
    st.floats(min_value=290.0, max_value=360.0), min_size=4, max_size=4
)
_powers = st.lists(
    st.floats(min_value=0.0, max_value=4.0), min_size=4, max_size=4
)


def _model():
    a = 0.9 * np.eye(4) + 0.01 * np.ones((4, 4))
    b = 0.1 * np.ones((4, 4)) + 0.2 * np.eye(4)
    return DiscreteThermalModel(a=a, b=b, offset=np.full(4, 10.0), ts_s=0.1)


@given(_temps, _powers, _powers)
@settings(max_examples=50)
def test_prediction_superposition(temps, p1, p2):
    """T(t, p1) - T(t, p2) depends only on (p1 - p2): affine in power."""
    model = _model()
    t = np.array(temps)
    d1 = model.predict_n_constant(t, np.array(p1), 10)
    d2 = model.predict_n_constant(t, np.array(p2), 10)
    _, m_n, _ = model.horizon_matrices(10)
    assert np.allclose(d1 - d2, m_n @ (np.array(p1) - np.array(p2)), atol=1e-8)


@given(_temps, _powers)
@settings(max_examples=50)
def test_monotonicity_in_power(temps, powers):
    """More power never predicts a lower temperature (non-negative B)."""
    model = _model()
    t = np.array(temps)
    p = np.array(powers)
    hotter = model.predict_n_constant(t, p + 0.5, 10)
    cooler = model.predict_n_constant(t, p, 10)
    assert np.all(hotter >= cooler - 1e-9)


# ---------------------------------------------------------------------------
# Budget algebra
# ---------------------------------------------------------------------------
@given(
    st.floats(min_value=40.0, max_value=62.0),
    st.floats(min_value=63.0, max_value=75.0),
    _powers,
)
@settings(max_examples=50)
def test_budget_monotone_in_tmax(temp_c, tmax_c, powers):
    model = _model()
    computer = PowerBudgetComputer(model, horizon_steps=10)
    temps = np.full(4, c2k(temp_c))
    p = np.array(powers)
    tight = computer.compute(temps, p, c2k(tmax_c), Resource.BIG, row=0)
    loose = computer.compute(temps, p, c2k(tmax_c + 3.0), Resource.BIG, row=0)
    assert loose.total_budget_w > tight.total_budget_w


@given(_temps, _powers)
@settings(max_examples=50)
def test_budget_equality_invariant(temps, powers):
    """Plugging the budget back in hits Tmax exactly on the solved row."""
    model = _model()
    computer = PowerBudgetComputer(model, horizon_steps=10)
    t = np.array(temps)
    p = np.array(powers)
    tmax = c2k(63.0)
    res = computer.compute(t, p, tmax, Resource.BIG)
    p_at_budget = p.copy()
    p_at_budget[0] = res.total_budget_w
    pred = model.predict_n_constant(t, p_at_budget, 10)
    assert pred[res.row] == pytest.approx(tmax, abs=1e-6)


# ---------------------------------------------------------------------------
# Budget distribution
# ---------------------------------------------------------------------------
_component = st.builds(
    Component,
    name=st.sampled_from(["a", "b", "c"]),
    frequencies_ghz=st.lists(
        st.floats(min_value=0.1, max_value=3.0), min_size=2, max_size=5
    ).map(lambda fs: tuple(sorted(set(round(f, 3) for f in fs)))).filter(
        lambda fs: len(fs) >= 2
    ),
    perf_coeff=st.floats(min_value=0.1, max_value=5.0),
    power_coeff=st.floats(min_value=0.1, max_value=3.0),
)


@given(st.lists(_component, min_size=1, max_size=3), st.floats(min_value=0.5, max_value=30.0))
@settings(max_examples=40, deadline=None)
def test_greedy_never_beats_branch_and_bound(components, budget):
    greedy = solve_greedy(components, budget)
    optimal = solve_branch_and_bound(components, budget)
    assert greedy.feasible == optimal.feasible or optimal.feasible
    if optimal.feasible and greedy.feasible:
        assert greedy.cost >= optimal.cost - 1e-9
        assert optimal.power_w <= budget + 1e-9


# ---------------------------------------------------------------------------
# Scheduler work conservation
# ---------------------------------------------------------------------------
from repro.governors.base import PlatformConfig
from repro.platform.specs import PlatformSpec
from repro.sim.scheduler import LoadBalancer
from repro.workloads.generator import synthesize
from repro.workloads.trace import WorkloadProgress


@given(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
    st.sampled_from(BIG_OPP_TABLE.frequencies_hz),
    st.floats(min_value=0.05, max_value=1.0),
)
@settings(max_examples=60, deadline=None)
def test_scheduler_work_bounded_by_capacity(threads, online, freq, demand):
    """Retired work never exceeds what the online cores can execute."""
    spec = PlatformSpec()
    balancer = LoadBalancer(spec, np.random.default_rng(0))
    trace = synthesize("high", 60.0, threads=threads, seed=1, num_phases=0)
    object.__setattr__(trace, "demand_jitter", 0.0)
    object.__setattr__(trace, "thread_demand", demand)
    config = PlatformConfig(
        cluster=Resource.BIG,
        big_freq_hz=freq,
        little_freq_hz=1.2e9,
        gpu_freq_hz=533e6,
        big_online=online,
        little_online=4,
    )
    out = balancer.assign(trace, WorkloadProgress(trace), config, 0.1)
    capacity = online * freq * 0.1 / 1e9  # Gcycles available this interval
    demand_total = threads * demand * 1.6e9 * 0.1 / 1e9
    assert out.work_gcycles <= capacity + 1e-9
    assert out.work_gcycles <= demand_total + 1e-9
    # utilisation stays in range on every core
    assert all(0.0 <= u <= 1.0 for u in out.big_utils)


@given(st.floats(min_value=0.0, max_value=0.1))
@settings(max_examples=30, deadline=None)
def test_scheduler_frozen_time_scales_work(frozen):
    spec = PlatformSpec()
    balancer = LoadBalancer(spec, np.random.default_rng(0))
    trace = synthesize("high", 60.0, threads=4, seed=1, num_phases=0)
    object.__setattr__(trace, "demand_jitter", 0.0)
    config = PlatformConfig(
        cluster=Resource.BIG,
        big_freq_hz=1.6e9,
        little_freq_hz=1.2e9,
        gpu_freq_hz=533e6,
        big_online=4,
        little_online=4,
    )
    progress = WorkloadProgress(trace)
    full = balancer.assign(trace, progress, config, 0.1, frozen_s=0.0)
    partial = balancer.assign(trace, progress, config, 0.1, frozen_s=frozen)
    expected = full.work_gcycles * (0.1 - frozen) / 0.1
    assert partial.work_gcycles == pytest.approx(expected, rel=1e-6, abs=1e-9)
