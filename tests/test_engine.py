"""Simulation engine: the closed loop on short synthetic workloads."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator, ThermalMode
from repro.sim.models import build_models
from repro.sim.experiment import make_dtpm_governor
from repro.workloads.generator import synthesize


def _short_workload(seed=1, threads=2, category="high", duration=20.0):
    return synthesize(category, duration, threads=threads, seed=seed)


def test_default_run_completes():
    sim = Simulator(_short_workload(), ThermalMode.DEFAULT_WITH_FAN)
    result = sim.run()
    assert result.completed
    assert result.execution_time_s > 0
    assert len(result.trace) > 100
    assert result.mode == "with_fan"


def test_time_axis_is_uniform():
    sim = Simulator(_short_workload(), ThermalMode.NO_FAN)
    result = sim.run()
    t = result.times_s()
    assert np.allclose(np.diff(t), 0.1, atol=1e-9)


def test_execution_time_close_to_nominal():
    wl = _short_workload(duration=20.0)
    sim = Simulator(wl, ThermalMode.DEFAULT_WITH_FAN, warm_start_c=40.0)
    result = sim.run()
    # governor ramp adds a little; throttling none at these temps
    assert wl.nominal_duration_s() <= result.execution_time_s < 2.0 * wl.nominal_duration_s()


def test_ondemand_reaches_fmax_for_cpu_bound():
    sim = Simulator(_short_workload(), ThermalMode.DEFAULT_WITH_FAN)
    result = sim.run()
    assert result.big_freqs_ghz().max() == pytest.approx(1.6)


def test_duration_cap_interrupts():
    wl = _short_workload(duration=60.0)
    sim = Simulator(wl, ThermalMode.NO_FAN, max_duration_s=5.0)
    result = sim.run()
    assert not result.completed
    assert result.execution_time_s == pytest.approx(5.0, abs=0.2)


def test_fan_disabled_outside_default_mode():
    for mode in (ThermalMode.NO_FAN, ThermalMode.REACTIVE):
        sim = Simulator(_short_workload(), mode)
        assert not sim.board.fan.enabled
    sim = Simulator(_short_workload(), ThermalMode.DEFAULT_WITH_FAN)
    assert sim.board.fan.enabled


def test_dtpm_mode_requires_governor():
    with pytest.raises(ConfigurationError):
        Simulator(_short_workload(), ThermalMode.DTPM)


def test_seed_reproducibility():
    a = Simulator(_short_workload(), ThermalMode.NO_FAN, seed=9).run()
    b = Simulator(_short_workload(), ThermalMode.NO_FAN, seed=9).run()
    assert a.execution_time_s == b.execution_time_s
    assert np.allclose(a.max_temps_c(), b.max_temps_c())


def test_different_seeds_differ_slightly():
    a = Simulator(_short_workload(), ThermalMode.NO_FAN, seed=9).run()
    b = Simulator(_short_workload(), ThermalMode.NO_FAN, seed=10).run()
    assert not np.allclose(a.max_temps_c(), b.max_temps_c())


def test_trace_records_power_columns():
    sim = Simulator(_short_workload(), ThermalMode.DEFAULT_WITH_FAN)
    result = sim.run()
    assert result.trace.column("p_big_w").max() > 0.5
    assert result.trace.column("platform_power_w").min() > 1.0
    assert np.all(result.trace.column("cluster_is_big") == 1.0)


def test_energy_consistency():
    sim = Simulator(_short_workload(), ThermalMode.DEFAULT_WITH_FAN)
    result = sim.run()
    assert result.energy_j == pytest.approx(
        result.average_platform_power_w * result.execution_time_s, rel=0.02
    )


@pytest.fixture(scope="module")
def quick_models():
    return build_models(prbs_duration_s=300.0)


def test_dtpm_engine_runs_and_counts(quick_models):
    wl = synthesize("high", 40.0, threads=4, seed=3)
    dtpm = make_dtpm_governor(quick_models)
    sim = Simulator(wl, ThermalMode.DTPM, dtpm=dtpm, warm_start_c=58.0)
    result = sim.run()
    assert result.completed
    assert result.violations_predicted > 0
    assert result.interventions > 0
    assert result.trace.column("intervened").sum() == result.interventions
