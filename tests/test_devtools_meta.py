"""Meta checks: the shipped tree lints clean and the CLI behaves.

These are the gate CI leans on -- if a change to src/ introduces a
violation (or a rule regresses into flagging sanctioned code), the
first test here fails with the offending findings in the message.
"""

import json
import os
import textwrap

import pytest

import repro
from repro.devtools import LintConfig, all_rule_classes, lint_paths
from repro.devtools.cli import main

SRC_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
REPO_ROOT = os.path.dirname(SRC_ROOT)


def test_shipped_tree_lints_clean():
    config = LintConfig(repo_root=REPO_ROOT)
    findings = lint_paths([SRC_ROOT], config)
    assert findings == [], "\n".join(f.render() for f in findings)


def test_rule_ids_are_unique_and_well_formed():
    ids = [cls.id for cls in all_rule_classes()]
    assert len(ids) == len(set(ids))
    assert all(i.startswith("RPR") and len(i) == 6 for i in ids)
    families = {i[:5] for i in ids}
    # at least two rules per shipped family
    for family in ("RPR01", "RPR02", "RPR03", "RPR04"):
        assert sum(1 for i in ids if i.startswith(family)) >= 2, family


def test_cli_clean_tree_exits_zero(monkeypatch, capsys):
    monkeypatch.chdir(REPO_ROOT)
    assert main(["src"]) == 0
    assert "clean" in capsys.readouterr().out


def _violating_tree(tmp_path):
    mod = tmp_path / "sim" / "bad.py"
    mod.parent.mkdir(parents=True)
    mod.write_text(textwrap.dedent("""\
        def derive(spec):
            return hash(spec)
    """))
    return tmp_path


def test_cli_violation_exits_one(tmp_path, capsys):
    _violating_tree(tmp_path)
    assert main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "RPR011" in out and "1 error(s)" in out


def test_cli_json_output_schema(tmp_path, capsys):
    _violating_tree(tmp_path)
    assert main([str(tmp_path), "--format=json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert payload["errors"] == 1
    assert payload["warnings"] == 0
    (finding,) = payload["findings"]
    assert finding["rule"] == "RPR011"
    assert finding["line"] == 2
    assert finding["severity"] == "error"


def test_cli_severity_override_downgrades_exit_code(tmp_path):
    _violating_tree(tmp_path)
    assert main([str(tmp_path), "--severity", "RPR011=warning"]) == 0


def test_cli_rejects_bad_severity_spec(tmp_path, capsys):
    assert main([str(tmp_path), "--severity", "RPR011=fatal"]) == 2
    assert main([str(tmp_path), "--severity", "bogus"]) == 2


def test_cli_rejects_missing_path(tmp_path):
    assert main([str(tmp_path / "nowhere")]) == 2


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for cls in all_rule_classes():
        assert cls.id in out


def test_cli_update_manifests_round_trips(tmp_path, monkeypatch, capsys):
    # refreshing the manifest against the shipped tree must be a no-op
    monkeypatch.chdir(REPO_ROOT)
    shipped = os.path.join(
        SRC_ROOT, "repro", "devtools", "data", "cache_manifest.json"
    )
    with open(shipped) as fh:
        before = json.load(fh)
    target = tmp_path / "cache_manifest.json"
    from repro.devtools.cachekey import update_cache_manifest

    update_cache_manifest(SRC_ROOT, str(target))
    assert json.loads(target.read_text()) == before


def test_repro_cli_exposes_lint_subcommand(monkeypatch, capsys):
    from repro.cli import build_parser

    monkeypatch.chdir(REPO_ROOT)
    parser = build_parser()
    args = parser.parse_args(["lint", "src"])
    assert args.func(args) == 0
    assert "clean" in capsys.readouterr().out
