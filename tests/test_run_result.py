"""TraceRecorder and RunResult metrics."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.run_result import RUN_COLUMNS, RunResult, TraceRecorder


def _recorder_with(temps, dt=0.1):
    rec = TraceRecorder(RUN_COLUMNS)
    for i, t in enumerate(temps):
        row = {c: 0.0 for c in RUN_COLUMNS}
        row["time_s"] = (i + 1) * dt
        row["max_temp_c"] = t
        rec.append(**row)
    return rec


def _result(temps, **kw):
    rec = _recorder_with(temps)
    defaults = dict(
        benchmark="t",
        mode="dtpm",
        completed=True,
        execution_time_s=len(temps) * 0.1,
        average_platform_power_w=5.0,
        energy_j=5.0 * len(temps) * 0.1,
        trace=rec,
    )
    defaults.update(kw)
    return RunResult(**defaults)


def test_recorder_columns_and_access():
    rec = TraceRecorder(["a", "b"])
    rec.append(a=1.0, b=2.0)
    rec.append(a=3.0, b=4.0)
    assert len(rec) == 2
    assert np.allclose(rec.column("a"), [1.0, 3.0])
    assert set(rec.as_dict()) == {"a", "b"}


def test_recorder_grows_past_initial_capacity():
    rec = TraceRecorder(["a", "b"])
    n = TraceRecorder.INITIAL_CAPACITY * 2 + 7
    for i in range(n):
        rec.append(a=float(i), b=float(2 * i))
    assert len(rec) == n
    assert rec.capacity >= n
    assert np.allclose(rec.column("a"), np.arange(n, dtype=float))
    assert rec.array()[-1].tolist() == [float(n - 1), float(2 * (n - 1))]


def test_recorder_accessors_are_views():
    rec = TraceRecorder(["a", "b"])
    rec.append(a=1.0, b=2.0)
    rec.append(a=3.0, b=4.0)
    matrix = rec.array()
    assert matrix.shape == (2, 2)
    assert np.shares_memory(rec.column("a"), matrix)
    assert np.shares_memory(rec.as_dict()["b"], matrix)
    # appending within capacity is reflected by freshly-taken views
    rec.append(a=5.0, b=6.0)
    assert rec.column("a").tolist() == [1.0, 3.0, 5.0]


def test_from_rows_round_trip_and_validation():
    rec = TraceRecorder(["a", "b"])
    rec.append(a=1.0, b=2.0)
    with pytest.deprecated_call():
        rows = rec.rows()
    with pytest.deprecated_call():
        clone = TraceRecorder.from_rows(clone_cols := rec.columns, rows)
    assert clone.columns == clone_cols
    assert clone.array().tolist() == rec.array().tolist()
    with pytest.deprecated_call(), pytest.raises(SimulationError):
        TraceRecorder.from_rows(["a", "b"], [[1.0, 2.0], [3.0]])  # ragged
    with pytest.deprecated_call(), pytest.raises(SimulationError):
        TraceRecorder.from_rows(["a", "b"], [[1.0, 2.0, 3.0]])  # too wide


def test_from_array_adopts_matrix():
    data = np.arange(6, dtype=float).reshape(3, 2)
    rec = TraceRecorder.from_array(["a", "b"], data)
    assert len(rec) == 3
    assert np.shares_memory(rec.array(), data)
    # appending after adoption grows a fresh buffer (copy) and works
    rec.append(a=10.0, b=11.0)
    assert rec.column("b").tolist() == [1.0, 3.0, 5.0, 11.0]
    with pytest.raises(SimulationError):
        TraceRecorder.from_array(["a", "b"], np.zeros((2, 3)))


def test_recorder_rejects_missing_columns():
    rec = TraceRecorder(["a", "b"])
    with pytest.raises(SimulationError):
        rec.append(a=1.0)
    with pytest.raises(SimulationError):
        rec.column("c")
    with pytest.raises(SimulationError):
        TraceRecorder([])


def test_stability_metrics():
    temps = [50.0] * 200 + [60.0, 62.0, 61.0, 63.0] * 100
    res = _result(temps)
    assert res.peak_temp_c() == 63.0
    mm = res.temp_max_min_c(skip_s=25.0)
    assert mm == pytest.approx(3.0)  # only the oscillating tail
    assert res.average_temp_c(skip_s=25.0) == pytest.approx(61.5, abs=0.05)
    assert res.temp_variance(skip_s=25.0) > 0


def test_settle_slice_skips_transient():
    res = _result([40.0] * 100 + [60.0] * 100)
    sl = res.settle_slice(skip_s=10.0)
    assert sl.start == pytest.approx(100, abs=2)


def test_constraint_exceedance():
    res = _result([60.0, 64.5, 62.0])
    assert res.constraint_exceedance_c(63.0) == pytest.approx(1.5)
    assert res.constraint_exceedance_c(70.0) == 0.0


def test_summary_mentions_key_facts():
    res = _result([60.0] * 50, benchmark="dijkstra", mode="with_fan")
    s = res.summary()
    assert "dijkstra" in s and "with_fan" in s and "completed" in s


def test_big_freqs_ghz_conversion():
    rec = TraceRecorder(RUN_COLUMNS)
    row = {c: 0.0 for c in RUN_COLUMNS}
    row.update(time_s=0.1, big_freq_hz=1.6e9)
    rec.append(**row)
    res = _result([50.0])
    assert res.big_freqs_ghz().shape == (1,)


def test_short_trace_raises_on_metrics():
    res = _result([])
    with pytest.raises(SimulationError):
        res.temp_max_min_c()
