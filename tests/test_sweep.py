"""Parameter-sweep utilities (the ablation machinery)."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.engine import ThermalMode
from repro.sim.sweep import (
    sweep_constraint,
    sweep_days,
    sweep_guard_band,
    sweep_horizon,
    sweep_idle_gap,
    sweep_sensor_noise,
)
from repro.workloads.generator import synthesize


@pytest.fixture(scope="module")
def workload():
    return synthesize("high", 25.0, threads=4, seed=6)


def test_constraint_sweep_orders_regulation(models, workload):
    points = sweep_constraint(workload, [58.0, 66.0], models, warm_start_c=54.0)
    tight, loose = points
    # a tighter constraint means a cooler (or equal) peak...
    assert tight.peak_c <= loose.peak_c + 0.5
    # ...bought with more interventions and more time
    assert tight.interventions >= loose.interventions
    assert tight.execution_time_s >= loose.execution_time_s - 0.2


def test_horizon_sweep_runs(models, workload):
    points = sweep_horizon(workload, [1, 10], models, warm_start_c=56.0)
    assert [p.value for p in points] == [1.0, 10.0]
    for p in points:
        assert p.result.completed


def test_guard_band_reduces_overshoot(models, workload):
    points = sweep_guard_band(workload, [0.0, 2.0], models, warm_start_c=56.0)
    none, wide = points
    assert wide.overshoot_c <= none.overshoot_c + 0.3


def test_sensor_noise_sweep_still_regulates(models, workload):
    points = sweep_sensor_noise(workload, [0.0, 0.6], models, warm_start_c=56.0)
    for p in points:
        assert p.result.completed
        assert p.peak_c < 67.0  # regulation survives noisy sensors


def test_horizon_validation(models, workload):
    with pytest.raises(ConfigurationError):
        sweep_horizon(workload, [0], models)


def test_idle_gap_sweep_cools_the_second_app(workload):
    first = synthesize("high", 16.0, threads=4, seed=8)
    points = sweep_idle_gap(
        [first, workload], [0.0, 90.0], mode=ThermalMode.NO_FAN
    )
    packed, gapped = points
    assert [p.value for p in points] == [0.0, 90.0]
    # a long cooling gap means the final app starts measurably cooler
    assert (
        gapped.result.max_temps_c()[0] < packed.result.max_temps_c()[0] - 1.0
    )
    with pytest.raises(ConfigurationError):
        sweep_idle_gap([workload], [0.0])  # needs a real sequence


def test_days_sweep_dedups_prefix_chains():
    from repro.runner import ParallelRunner, ResultCache

    day = [synthesize("medium", 10.0, threads=2, seed=9)]
    runner = ParallelRunner(cache=ResultCache())
    longest = sweep_days(
        day, [3], mode=ThermalMode.NO_FAN, night_s=20.0,
        idle_gap_s=5.0, max_duration_s=30.0, runner=runner,
    )
    assert runner.last_stats.executed == 1
    # shorter day counts are chain prefixes of the longest schedule: the
    # harvested positions answer the whole sweep from the cache
    points = sweep_days(
        day, [1, 2, 3], mode=ThermalMode.NO_FAN, night_s=20.0,
        idle_gap_s=5.0, max_duration_s=30.0, runner=runner,
    )
    assert runner.last_stats.executed == 0
    assert runner.last_stats.cache_hits == 3
    assert [p.value for p in points] == [1.0, 2.0, 3.0]
    for p in points:
        assert p.result.completed
        assert p.result.benchmark == day[0].name
    # each extra day starts from carried state, never a colder device
    assert points[-1].result.max_temps_c()[0] >= points[0].result.max_temps_c()[0] - 0.5
    assert points[-1].peak_c == longest[0].peak_c
    with pytest.raises(ConfigurationError):
        sweep_days(day, [])
    with pytest.raises(ConfigurationError):
        sweep_days(day, [0, 1])
