"""Cross-run comparison metrics."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.metrics import (
    ComparisonRow,
    overall_summary,
    performance_loss_pct,
    power_savings_pct,
    summarize_categories,
    variance_reduction_factor,
)
from repro.sim.run_result import RUN_COLUMNS, RunResult, TraceRecorder


def _result(power_w, time_s, temps=None):
    rec = TraceRecorder(RUN_COLUMNS)
    temps = temps if temps is not None else [60.0] * 100
    for i, t in enumerate(temps):
        row = {c: 0.0 for c in RUN_COLUMNS}
        row["time_s"] = (i + 1) * 0.1
        row["max_temp_c"] = t
        rec.append(**row)
    return RunResult(
        benchmark="x",
        mode="m",
        completed=True,
        execution_time_s=time_s,
        average_platform_power_w=power_w,
        energy_j=power_w * time_s,
        trace=rec,
    )


def test_power_savings_sign_and_magnitude():
    base = _result(5.0, 100.0)
    better = _result(4.5, 100.0)
    assert power_savings_pct(base, better) == pytest.approx(10.0)
    assert power_savings_pct(better, base) == pytest.approx(-100 * 0.5 / 4.5)


def test_performance_loss():
    base = _result(5.0, 100.0)
    slower = _result(5.0, 105.0)
    assert performance_loss_pct(base, slower) == pytest.approx(5.0)


def test_variance_reduction():
    rng = np.random.default_rng(0)
    noisy = _result(5.0, 100.0, temps=list(60 + 3 * rng.standard_normal(400)))
    flat = _result(5.0, 100.0, temps=list(60 + 0.5 * rng.standard_normal(400)))
    factor = variance_reduction_factor(noisy, flat, skip_s=1.0)
    assert factor > 10.0


def test_zero_baseline_rejected():
    with pytest.raises(SimulationError):
        power_savings_pct(_result(0.0, 10.0), _result(1.0, 10.0))
    with pytest.raises(SimulationError):
        performance_loss_pct(_result(1.0, 0.0), _result(1.0, 10.0))


def _row(bench, cat, sav, loss):
    return ComparisonRow(
        benchmark=bench,
        category=cat,
        power_savings_pct=sav,
        performance_loss_pct=loss,
        baseline_power_w=5.0,
        dtpm_power_w=5.0 * (1 - sav / 100),
        baseline_time_s=100.0,
        dtpm_time_s=100.0 * (1 + loss / 100),
    )


def test_category_summary():
    rows = [
        _row("a", "low", 2.0, 0.0),
        _row("b", "low", 4.0, 1.0),
        _row("c", "high", 14.0, 5.0),
    ]
    summary = summarize_categories(rows)
    assert summary["low"]["power_savings_pct"] == pytest.approx(3.0)
    assert summary["low"]["count"] == 2
    assert summary["high"]["performance_loss_pct"] == pytest.approx(5.0)


def test_overall_summary():
    rows = [_row("a", "low", 2.0, 0.5), _row("b", "high", 14.0, 5.0)]
    summary = overall_summary(rows)
    assert summary["power_savings_pct"] == pytest.approx(8.0)
    assert summary["max_power_savings_pct"] == pytest.approx(14.0)
    assert summary["max_performance_loss_pct"] == pytest.approx(5.0)
    with pytest.raises(SimulationError):
        overall_summary([])
