"""Load balancer: thread placement, rate-limited demand, work accounting."""

import pytest

from repro.errors import SimulationError
from repro.governors.base import PlatformConfig
from repro.platform.specs import PlatformSpec, Resource
from repro.sim.scheduler import LoadBalancer
from repro.workloads.benchmarks import MATRIX_MULT, TEMPLERUN
from repro.workloads.generator import synthesize
from repro.workloads.trace import WorkloadProgress
from repro.units import mhz


@pytest.fixture()
def balancer(rng):
    return LoadBalancer(PlatformSpec(), rng)


def _config(freq=mhz(1600), online=4, cluster=Resource.BIG, little_freq=mhz(1200)):
    return PlatformConfig(
        cluster=cluster,
        big_freq_hz=freq,
        little_freq_hz=little_freq,
        gpu_freq_hz=mhz(533),
        big_online=online,
        little_online=4,
    )


def _steady(threads=4, demand=1.0, seed=0):
    trace = synthesize("high", 60.0, threads=threads, seed=seed, num_phases=0)
    # remove jitter for exact arithmetic
    object.__setattr__(trace, "demand_jitter", 0.0)
    object.__setattr__(trace, "thread_demand", demand)
    object.__setattr__(trace, "background_util", 0.2)
    return trace


def test_cpu_bound_threads_saturate_cores(balancer):
    trace = _steady(threads=4)
    out = balancer.assign(trace, WorkloadProgress(trace), _config(), 0.1)
    assert all(u == 1.0 for u in out.big_utils)
    assert out.little_utils == (0.0, 0.0, 0.0, 0.0)


def test_work_scales_with_frequency_for_cpu_bound(balancer, rng):
    trace = _steady(threads=4)
    progress = WorkloadProgress(trace)
    fast = balancer.assign(trace, progress, _config(mhz(1600)), 0.1)
    slow = balancer.assign(trace, progress, _config(mhz(800)), 0.1)
    assert fast.work_gcycles == pytest.approx(2.0 * slow.work_gcycles)


def test_rate_limited_work_immune_to_mild_throttling(balancer):
    trace = _steady(threads=2, demand=0.5)  # each thread needs 0.8 GHz
    progress = WorkloadProgress(trace)
    fast = balancer.assign(trace, progress, _config(mhz(1600)), 0.1)
    throttled = balancer.assign(trace, progress, _config(mhz(1000)), 0.1)
    assert throttled.work_gcycles == pytest.approx(fast.work_gcycles)
    # but utilisation rises to compensate
    assert max(throttled.big_utils) > max(fast.big_utils)


def test_threads_fold_onto_fewer_cores(balancer):
    trace = _steady(threads=4)
    progress = WorkloadProgress(trace)
    out = balancer.assign(trace, progress, _config(online=2), 0.1)
    assert out.big_utils[2] == 0.0 and out.big_utils[3] == 0.0
    assert out.big_utils[0] == 1.0  # two threads share, saturated
    # saturated 2 cores retire half the work of 4
    full = balancer.assign(trace, progress, _config(online=4), 0.1)
    assert out.work_gcycles == pytest.approx(0.5 * full.work_gcycles)


def test_little_cluster_ipc_penalty(balancer):
    trace = _steady(threads=4)
    progress = WorkloadProgress(trace)
    spec = PlatformSpec()
    big = balancer.assign(trace, progress, _config(), 0.1)
    little = balancer.assign(
        trace, progress, _config(cluster=Resource.LITTLE), 0.1
    )
    expected_ratio = (mhz(1200) * spec.little_core.ipc_factor) / mhz(1600)
    assert little.work_gcycles / big.work_gcycles == pytest.approx(
        expected_ratio, rel=1e-6
    )
    assert little.big_utils == (0.0, 0.0, 0.0, 0.0)


def test_frozen_time_retires_no_work(balancer):
    trace = _steady(threads=4)
    progress = WorkloadProgress(trace)
    normal = balancer.assign(trace, progress, _config(), 0.1, frozen_s=0.0)
    frozen = balancer.assign(trace, progress, _config(), 0.1, frozen_s=0.1)
    assert frozen.work_gcycles == 0.0
    assert normal.work_gcycles > 0.0
    half = balancer.assign(trace, progress, _config(), 0.1, frozen_s=0.05)
    assert half.work_gcycles == pytest.approx(0.5 * normal.work_gcycles)


def test_gpu_demand_rises_at_lower_gpu_clock(balancer):
    progress = WorkloadProgress(TEMPLERUN)
    cfg_fast = _config()
    cfg_slow = cfg_fast.with_(gpu_freq_hz=mhz(266))
    fast = balancer.assign(TEMPLERUN, progress, cfg_fast, 0.1)
    slow = balancer.assign(TEMPLERUN, progress, cfg_slow, 0.1)
    assert slow.gpu_util >= fast.gpu_util
    assert slow.gpu_util <= 1.0


def test_cpu_only_benchmark_leaves_gpu_idle(balancer):
    progress = WorkloadProgress(MATRIX_MULT)
    out = balancer.assign(MATRIX_MULT, progress, _config(), 0.1)
    assert out.gpu_util == 0.0
    assert out.cpu_activity == MATRIX_MULT.activity


def test_invalid_interval_rejected(balancer):
    trace = _steady()
    with pytest.raises(SimulationError):
        balancer.assign(trace, WorkloadProgress(trace), _config(), 0.0)
