"""Platform specifications: OPP tables (Tables 6.1-6.3), voltage, leakage."""


import pytest

from repro.errors import ConfigurationError, InvalidFrequencyError
from repro.platform.specs import (
    BIG_FREQUENCIES_HZ,
    BIG_OPP_TABLE,
    GPU_FREQUENCIES_HZ,
    GPU_OPP_TABLE,
    LITTLE_FREQUENCIES_HZ,
    LITTLE_OPP_TABLE,
    POWER_RESOURCES,
    BIG_LEAKAGE,
    CoreSpec,
    OppTable,
    PlatformSpec,
    Resource,
    VoltageCurve,
    opp_table_for,
)
from repro.units import celsius_to_kelvin, mhz


# -- Tables 6.1-6.3 ---------------------------------------------------------
def test_table_6_1_big_cluster_frequencies():
    expected = [800, 900, 1000, 1100, 1200, 1300, 1400, 1500, 1600]
    assert [f / 1e6 for f in BIG_FREQUENCIES_HZ] == expected


def test_table_6_2_little_cluster_frequencies():
    expected = [500, 600, 700, 800, 900, 1000, 1100, 1200]
    assert [f / 1e6 for f in LITTLE_FREQUENCIES_HZ] == expected


def test_table_6_3_gpu_frequencies():
    expected = [177, 266, 350, 480, 533]
    assert [f / 1e6 for f in GPU_FREQUENCIES_HZ] == expected


def test_power_vector_layout_matches_eq_5_3():
    assert POWER_RESOURCES == (
        Resource.BIG,
        Resource.LITTLE,
        Resource.GPU,
        Resource.MEM,
    )


# -- OppTable behaviour ------------------------------------------------------
def test_opp_floor_quantises_down():
    assert BIG_OPP_TABLE.floor(mhz(1250)) == mhz(1200)
    assert BIG_OPP_TABLE.floor(mhz(1200)) == mhz(1200)
    assert BIG_OPP_TABLE.floor(mhz(100)) == mhz(800)  # below table -> f_min


def test_opp_ceil_quantises_up():
    assert BIG_OPP_TABLE.ceil(mhz(1250)) == mhz(1300)
    assert BIG_OPP_TABLE.ceil(mhz(5000)) == mhz(1600)  # above table -> f_max


def test_opp_step_up_down_clamped():
    assert BIG_OPP_TABLE.step_down(mhz(800)) == mhz(800)
    assert BIG_OPP_TABLE.step_up(mhz(1600)) == mhz(1600)
    assert BIG_OPP_TABLE.step_down(mhz(1600), steps=2) == mhz(1400)


def test_opp_validate_rejects_off_table():
    with pytest.raises(InvalidFrequencyError):
        BIG_OPP_TABLE.validate(mhz(850))


def test_opp_contains():
    assert mhz(1600) in BIG_OPP_TABLE
    assert mhz(850) not in BIG_OPP_TABLE


def test_opp_requires_increasing_frequencies():
    curve = VoltageCurve(mhz(100), 0.9, mhz(200), 1.0)
    with pytest.raises(ConfigurationError):
        OppTable("bad", (mhz(200), mhz(100)), curve)


def test_opp_table_for_resources():
    assert opp_table_for(Resource.BIG) is BIG_OPP_TABLE
    assert opp_table_for(Resource.LITTLE) is LITTLE_OPP_TABLE
    assert opp_table_for(Resource.GPU) is GPU_OPP_TABLE
    with pytest.raises(ConfigurationError):
        opp_table_for(Resource.MEM)


# -- voltage curves -----------------------------------------------------------
def test_voltage_monotone_in_frequency():
    freqs = BIG_OPP_TABLE.frequencies_hz
    volts = [BIG_OPP_TABLE.voltage(f) for f in freqs]
    assert all(b > a for a, b in zip(volts, volts[1:]))


def test_voltage_anchors():
    assert BIG_OPP_TABLE.voltage(mhz(800)) == pytest.approx(0.92)
    assert BIG_OPP_TABLE.voltage(mhz(1600)) == pytest.approx(1.25)


def test_voltage_curve_validation():
    with pytest.raises(ConfigurationError):
        VoltageCurve(mhz(200), 0.9, mhz(100), 1.0)
    with pytest.raises(ConfigurationError):
        VoltageCurve(mhz(100), 1.0, mhz(200), 0.9)


# -- leakage spec -------------------------------------------------------------
def test_leakage_grows_superlinearly_with_temperature():
    p40 = BIG_LEAKAGE.power(celsius_to_kelvin(40), 0.92)
    p60 = BIG_LEAKAGE.power(celsius_to_kelvin(60), 0.92)
    p80 = BIG_LEAKAGE.power(celsius_to_kelvin(80), 0.92)
    assert p40 < p60 < p80
    # Fig. 4.3 shows ~3-4x growth over the 40->80 degC sweep
    assert 2.5 < p80 / p40 < 5.0


def test_leakage_power_scales_with_vdd():
    t = celsius_to_kelvin(60)
    assert BIG_LEAKAGE.power(t, 1.2) == pytest.approx(
        1.2 / 0.9 * BIG_LEAKAGE.power(t, 0.9)
    )


def test_leakage_rejects_nonpositive_temperature():
    with pytest.raises(ConfigurationError):
        BIG_LEAKAGE.current(0.0)


# -- core spec ----------------------------------------------------------------
def test_dynamic_power_formula():
    core = CoreSpec(switching_capacitance_f=0.28e-9, ipc_factor=1.0)
    p = core.dynamic_power(1.6e9, 1.25, 1.0)
    assert p == pytest.approx(0.28e-9 * 1.25 ** 2 * 1.6e9)


def test_dynamic_power_clamps_utilisation():
    core = CoreSpec(switching_capacitance_f=0.28e-9, ipc_factor=1.0)
    assert core.dynamic_power(1.6e9, 1.25, 2.0) == pytest.approx(
        core.dynamic_power(1.6e9, 1.25, 1.0)
    )
    assert core.dynamic_power(1.6e9, 1.25, -1.0) == 0.0


def test_platform_spec_bundles_defaults():
    spec = PlatformSpec()
    assert spec.big_opp is BIG_OPP_TABLE
    assert spec.cores_per_cluster == 4
    assert len(spec.fan_power_w) == 4
    assert spec.opp_table(Resource.GPU) is GPU_OPP_TABLE
