"""GPU and memory device models."""

import pytest

from repro.platform.gpu import GpuDevice
from repro.platform.memory import MemoryDevice
from repro.platform.specs import (
    GPU_DEVICE_CAPACITANCE_F,
    GPU_LEAKAGE,
    GPU_OPP_TABLE,
    MEM_DYNAMIC_FULL_TRAFFIC_W,
    MEM_LEAKAGE,
    MEM_VDD,
)
from repro.units import celsius_to_kelvin, mhz


@pytest.fixture()
def gpu():
    return GpuDevice(GPU_OPP_TABLE, GPU_DEVICE_CAPACITANCE_F, GPU_LEAKAGE)


@pytest.fixture()
def mem():
    return MemoryDevice(MEM_DYNAMIC_FULL_TRAFFIC_W, MEM_VDD, MEM_LEAKAGE)


def test_gpu_starts_at_min_frequency(gpu):
    assert gpu.frequency_hz == mhz(177)


def test_gpu_frequency_setting(gpu):
    gpu.set_frequency(mhz(480))
    assert gpu.frequency_hz == mhz(480)
    assert gpu.request_frequency(mhz(500)) == mhz(480)


def test_gpu_power_zero_dynamic_when_idle(gpu):
    gpu.set_utilisation(0.0)
    p = gpu.power(celsius_to_kelvin(50))
    assert p.dynamic_w == 0.0
    assert p.leakage_w > 0.0  # clock-gated, not power-gated


def test_gpu_dynamic_power_scales_with_utilisation(gpu):
    gpu.set_frequency(mhz(533))
    gpu.set_utilisation(0.5)
    p_half = gpu.power(celsius_to_kelvin(50))
    gpu.set_utilisation(1.0)
    p_full = gpu.power(celsius_to_kelvin(50))
    assert p_full.dynamic_w == pytest.approx(2.0 * p_half.dynamic_w)


def test_gpu_utilisation_clamped(gpu):
    gpu.set_utilisation(1.5)
    assert gpu.utilisation == 1.0
    gpu.set_utilisation(-0.5)
    assert gpu.utilisation == 0.0


def test_gpu_full_speed_power_magnitude(gpu):
    # games drive the GPU around 1-2 W on this class of part
    gpu.set_frequency(mhz(533))
    gpu.set_utilisation(1.0)
    p = gpu.power(celsius_to_kelvin(60))
    assert 0.8 < p.total_w < 2.5


def test_memory_power_tracks_traffic(mem):
    mem.set_traffic(0.0)
    p0 = mem.power(celsius_to_kelvin(50))
    mem.set_traffic(1.0)
    p1 = mem.power(celsius_to_kelvin(50))
    assert p0.dynamic_w == 0.0
    assert p1.dynamic_w == pytest.approx(MEM_DYNAMIC_FULL_TRAFFIC_W)


def test_memory_traffic_clamped(mem):
    mem.set_traffic(2.0)
    assert mem.traffic == 1.0


def test_memory_leakage_grows_with_temperature(mem):
    p_cool = mem.power(celsius_to_kelvin(40))
    p_hot = mem.power(celsius_to_kelvin(80))
    assert p_hot.leakage_w > p_cool.leakage_w
