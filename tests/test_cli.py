"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_tables_command(capsys):
    assert main(["tables"]) == 0
    out = capsys.readouterr().out
    assert "Table 6.1" in out
    assert "1600" in out
    assert "templerun" in out


def test_run_command(capsys):
    assert main(["run", "dijkstra", "with_fan"]) == 0
    out = capsys.readouterr().out
    assert "dijkstra/with_fan" in out
    assert "peak" in out


def test_run_rejects_unknown_benchmark():
    with pytest.raises(SystemExit):
        main(["run", "doom", "with_fan"])


def test_run_rejects_unknown_mode():
    with pytest.raises(SystemExit):
        main(["run", "dijkstra", "turbo"])


def test_identify_command(capsys):
    assert main(["identify", "--duration", "300"]) == 0
    out = capsys.readouterr().out
    assert "identified A:" in out
    assert "spectral radius" in out


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_compare_command(capsys, models):
    # uses the cached default models (session fixture already built them)
    assert main(["compare", "dijkstra"]) == 0
    out = capsys.readouterr().out
    assert "with_fan" in out and "dtpm" in out
    assert "savings %" in out
