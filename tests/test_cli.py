"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_tables_command(capsys):
    assert main(["tables"]) == 0
    out = capsys.readouterr().out
    assert "Table 6.1" in out
    assert "1600" in out
    assert "templerun" in out


def test_run_command(capsys):
    assert main(["run", "dijkstra", "with_fan"]) == 0
    out = capsys.readouterr().out
    assert "dijkstra/with_fan" in out
    assert "peak" in out


def test_run_rejects_unknown_benchmark():
    with pytest.raises(SystemExit):
        main(["run", "doom", "with_fan"])


def test_run_rejects_unknown_mode():
    with pytest.raises(SystemExit):
        main(["run", "dijkstra", "turbo"])


def test_identify_command(capsys):
    assert main(["identify", "--duration", "300"]) == 0
    out = capsys.readouterr().out
    assert "identified A:" in out
    assert "spectral radius" in out


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_compare_command(capsys, models):
    # uses the cached default models (session fixture already built them)
    assert main(["compare", "dijkstra"]) == 0
    out = capsys.readouterr().out
    assert "with_fan" in out and "dtpm" in out
    assert "savings %" in out


def _seed_model_store(root, models):
    """Pre-populate the on-disk model store so CLI tests skip the build."""
    import json

    from repro.runner import models_key, models_to_payload

    path = root / "models" / (models_key() + ".json")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(models_to_payload(models)))


def test_matrix_command_caches_runs(capsys, tmp_path):
    args = [
        "matrix",
        "--benchmarks", "dijkstra",
        "--modes", "with_fan,without_fan",
        "--cache-dir", str(tmp_path),
    ]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "2 executed, 0 cache hits" in out
    # second invocation answers entirely from the cache
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "0 executed, 2 cache hits" in out
    assert "dijkstra" in out and "without_fan" in out


def test_sweep_command_through_model_store(capsys, tmp_path, models):
    _seed_model_store(tmp_path, models)
    args = [
        "sweep", "constraint",
        "--benchmark", "dijkstra",
        "--values", "60,66",
        "--cache-dir", str(tmp_path),
    ]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "constraint sweep on dijkstra" in out
    assert "2 executed, 0 cache hits" in out
    assert main(args) == 0
    assert "0 executed, 2 cache hits" in capsys.readouterr().out


def test_sweep_rejects_unknown_knob():
    with pytest.raises(SystemExit):
        main(["sweep", "voltage"])


def test_matrix_schedule_runs_with_carryover(capsys, tmp_path):
    args = [
        "matrix",
        "--schedule", "dijkstra,patricia",
        "--modes", "without_fan",
        "--cache-dir", str(tmp_path),
    ]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "(pos 1)" in out  # the scheduled second app is labelled
    assert "2 executed, 0 cache hits" in out
    assert main(args) == 0
    assert "0 executed, 2 cache hits" in capsys.readouterr().out


def test_matrix_rejects_unknown_schedule_benchmark(capsys):
    assert main(["matrix", "--schedule", "doom,quake"]) == 2
    assert "error" in capsys.readouterr().err


def test_matrix_schedule_pins_per_position_modes(capsys, tmp_path):
    args = [
        "matrix",
        "--schedule", "dijkstra:with_fan,patricia",
        "--modes", "without_fan",
        "--cache-dir", str(tmp_path),
    ]
    assert main(args) == 0
    out = capsys.readouterr().out
    # the pinned first position keeps its mode; the rest follow the axis
    assert "with_fan" in out and "without_fan" in out
    assert main(["matrix", "--schedule", "dijkstra:overclock"]) == 2
    assert "unknown mode" in capsys.readouterr().err


def test_matrix_days_repeats_schedule_with_overnight(capsys, tmp_path):
    args = [
        "matrix",
        "--schedule", "dijkstra",
        "--days", "2",
        "--modes", "without_fan",
        "--idle-gap", "2.0",
        "--cache-dir", str(tmp_path),
    ]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "overnight" in out  # the night standby position is on the grid
    assert "(pos 2)" in out  # day 2's app carries the overnight state
    assert main(["matrix", "--days", "2"]) == 2
    assert "--days only applies" in capsys.readouterr().err


def test_cache_stats_and_prune(capsys, tmp_path):
    cache_args = ["--cache-dir", str(tmp_path)]
    # populate two entries through a real (tiny) matrix run
    assert main([
        "matrix", "--benchmarks", "dijkstra",
        "--modes", "with_fan,without_fan",
    ] + cache_args) == 0
    capsys.readouterr()
    assert main(["cache", "stats"] + cache_args) == 0
    out = capsys.readouterr().out
    assert "2 results" in out and "2 v2 json+npz" in out
    assert main(["cache", "prune", "--all"] + cache_args) == 0
    out = capsys.readouterr().out
    assert "pruned 2 entries" in out
    assert main(["cache", "stats"] + cache_args) == 0
    assert "0 results" in capsys.readouterr().out


def test_report_days_requires_schedule(capsys):
    assert main(["report", "--days", "2"]) == 2
    assert "--days only applies" in capsys.readouterr().err
    assert main(["report", "--schedule", "doom"]) == 2
    assert "error" in capsys.readouterr().err


def test_suite_summarize_over_cache_directory(capsys, tmp_path):
    cache_args = ["--cache-dir", str(tmp_path)]
    assert main([
        "matrix", "--benchmarks", "dijkstra",
        "--modes", "with_fan,without_fan",
    ] + cache_args) == 0
    capsys.readouterr()
    assert main(["suite", "summarize"] + cache_args) == 0
    out = capsys.readouterr().out
    assert "Suite summary: 2 cached runs" in out
    assert "with_fan" in out and "without_fan" in out
    assert "big-cluster residency" in out
    # the flag also works before the subcommand token (the parent
    # parser owns it there; the subparser must not clobber the value)
    assert main(["suite"] + cache_args + ["summarize"]) == 0
    assert "Suite summary: 2 cached runs" in capsys.readouterr().out
    assert main(["suite", "summarize", "--cache-dir", ""]) == 2
    assert "no cache directory" in capsys.readouterr().err


def test_cache_requires_directory(capsys, monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    # the parser default was captured at build time, so pass an empty dir
    assert main(["cache", "stats", "--cache-dir", ""]) == 2
    assert "no cache directory" in capsys.readouterr().err


def test_cache_prune_requires_bound():
    with pytest.raises(SystemExit):
        main(["cache", "prune", "--cache-dir", "/tmp/x"])


def test_cache_stats_missing_dir_fails_clearly(capsys, tmp_path):
    missing = tmp_path / "never-created"
    assert main(["cache", "stats", "--cache-dir", str(missing)]) == 2
    err = capsys.readouterr().err
    assert "no result cache" in err and str(missing) in err


def test_cache_stats_empty_dir_fails_clearly(capsys, tmp_path):
    empty = tmp_path / "empty"
    empty.mkdir()
    assert main(["cache", "stats", "--cache-dir", str(empty)]) == 2
    assert "no result cache" in capsys.readouterr().err


def test_suite_summarize_missing_dir_fails_clearly(capsys, tmp_path):
    missing = tmp_path / "never-created"
    assert main(["suite", "summarize", "--cache-dir", str(missing)]) == 2
    err = capsys.readouterr().err
    assert "no cache directory" in err and str(missing) in err


def test_suite_summarize_empty_dir_fails_clearly(capsys, tmp_path):
    assert main(["suite", "summarize", "--cache-dir", str(tmp_path)]) == 2
    assert "no readable run entries" in capsys.readouterr().err


def test_serve_parser_defaults():
    args = build_parser().parse_args(["serve"])
    assert args.host == "127.0.0.1"
    assert args.port == 8765
    assert args.workers == 2
    assert args.batch is None


def test_serve_parser_accepts_overrides():
    args = build_parser().parse_args([
        "serve", "--host", "0.0.0.0", "--port", "9000",
        "--workers", "4", "--batch", "2", "--cache-dir", "/tmp/c",
    ])
    assert (args.host, args.port, args.workers, args.batch) == (
        "0.0.0.0", 9000, 4, 2
    )
    assert args.cache_dir == "/tmp/c"
