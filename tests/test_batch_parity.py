"""Parity pins for the batch kernels the other suites don't cover.

Every scalar/batch pair registered in
``src/repro/devtools/data/parity_manifest.json`` must be backed by a
test that exercises the batch form against its scalar twin -- the
RPR031 lint rule checks the manifest names these tests and that they
actually mention the batch functions.  This module pins the metric and
frame accessors; the simulation kernels are pinned by
``test_batch_sim.py`` / ``test_analysis.py``.
"""

import numpy as np
import pytest

from repro.analysis.suite import SuiteFrame
from repro.runner import ParallelRunner, ResultCache, RunSpec
from repro.sim.engine import ThermalMode
from repro.sim.metrics import (
    performance_loss_pct,
    performance_loss_pct_batch,
    power_savings_pct,
    power_savings_pct_batch,
)
from repro.workloads.generator import synthesize


def _specs(n=4, duration_s=10.0):
    specs = []
    for i in range(n):
        workload = synthesize(
            "medium", duration_s, threads=1, seed=i // 2,
            name="par%d" % (i // 2),
        )
        mode = (ThermalMode.DEFAULT_WITH_FAN, ThermalMode.NO_FAN)[i % 2]
        specs.append(
            RunSpec(
                workload=workload,
                mode=mode,
                max_duration_s=4 * duration_s,
                seed=900 + i,
            )
        )
    return specs


@pytest.fixture(scope="module")
def results():
    return ParallelRunner(cache=ResultCache()).run(_specs())


def test_power_savings_batch_matches_scalar(results):
    baselines = results[0::2]
    candidates = results[1::2]
    batch = power_savings_pct_batch(
        np.array([r.average_platform_power_w for r in baselines]),
        np.array([r.average_platform_power_w for r in candidates]),
    )
    scalar = [
        power_savings_pct(b, c) for b, c in zip(baselines, candidates)
    ]
    assert batch.shape == (len(baselines),)
    # bit-exact: the scalar form is defined as the B=1 view of the batch
    assert batch.tolist() == scalar


def test_performance_loss_batch_matches_scalar(results):
    baselines = results[0::2]
    candidates = results[1::2]
    batch = performance_loss_pct_batch(
        np.array([r.execution_time_s for r in baselines]),
        np.array([r.execution_time_s for r in candidates]),
    )
    scalar = [
        performance_loss_pct(b, c) for b, c in zip(baselines, candidates)
    ]
    assert batch.tolist() == scalar


def test_metric_batch_rejects_degenerate_baselines():
    with pytest.raises(Exception):
        power_savings_pct_batch(np.array([0.0, 4.0]), np.array([1.0, 2.0]))
    with pytest.raises(Exception):
        performance_loss_pct_batch(np.array([-1.0]), np.array([1.0]))


def test_suite_frame_column_batch_matches_per_row_access(results):
    frame = SuiteFrame.from_results(results)
    batch = frame.column_batch("max_temp_c")
    assert len(batch) == len(frame)
    for i, column in enumerate(batch):
        np.testing.assert_array_equal(column, frame.trace_column(i, "max_temp_c"))
    # the summary-scalar accessor stays consistent with the trace columns
    summary = frame.column("execution_time_s")
    assert summary.shape == (len(frame),)
