"""Fused substep kernel parity: the hot loop's correctness contract.

The fused interval kernel (:mod:`repro.thermal.kernels`) must be
unobservable: fused chain == per-substep loop == scalar ``step()`` +
``Fan.update`` byte-for-byte, whatever mix of fan transitions, cooldowns
and B=1 views a batch throws at it.  The optional numba backend is held
to a documented tolerance instead (it may fuse multiply-adds), and is
never the default.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.platform.fan import Fan, FanThresholds
from repro.platform.specs import PlatformSpec
from repro.runner import result_bytes
from repro.sim.engine import BatchSimulator, Simulator, ThermalMode
from repro.thermal import floorplan, kernels
from repro.units import celsius_to_kelvin
from repro.workloads.generator import synthesize

SPEC = PlatformSpec()
FAN = Fan(SPEC.fan_power_w, SPEC.fan_conductance_gain, FanThresholds())
UP_K = FAN.threshold_points_k()
HYST_K = FAN.hysteresis_k
GAINS = FAN.conductance_gain_table()


def _network():
    return floorplan.build_exynos_network(298.15)


def _random_states(rng, network, batch):
    """Interval-entry states straddling every fan threshold and edge case."""
    n = network.num_nodes
    # spread entry temperatures across 35..80 C so some lanes sit well
    # inside a fan band (clean) and others ride a threshold (dirty)
    base = celsius_to_kelvin(35.0 + 45.0 * rng.random((batch, 1)))
    temps = base + 4.0 * rng.random((batch, n))
    fan_speed = rng.integers(0, 4, size=batch)
    fan_enabled = rng.random(batch) < 0.8
    fan_speed[~fan_enabled] = 0
    cooling_gain = GAINS[fan_speed]
    # a couple of lanes carry an externally forced gain (warm-start case)
    forced = rng.random(batch) < 0.15
    cooling_gain = np.where(forced, 1.0, cooling_gain)
    u = np.concatenate(
        [4.0 * rng.random((batch, n)), np.full((batch, 1), network.ambient_k)],
        axis=1,
    )
    return temps, cooling_gain, fan_speed, fan_enabled, u


def _advance(network, states, backend, substeps=10, dt=0.01):
    temps, gain, speed, enabled, u = states
    return kernels.advance_held_interval(
        network, temps.copy(), gain.copy(), speed.copy(), enabled.copy(),
        u.copy(), dt, substeps, UP_K, HYST_K, GAINS, floorplan.hot_indices(network),
        backend=backend,
    )


# ---------------------------------------------------------------------------
# backend selection
# ---------------------------------------------------------------------------
def test_active_backend_default_is_numpy(monkeypatch):
    monkeypatch.delenv(kernels.ENV_VAR, raising=False)
    assert kernels.active_backend() == "numpy"
    monkeypatch.setenv(kernels.ENV_VAR, "numpy-substep")
    assert kernels.active_backend() == "numpy-substep"


def test_active_backend_rejects_unknown(monkeypatch):
    monkeypatch.setenv(kernels.ENV_VAR, "fortran")
    with pytest.raises(ConfigurationError):
        kernels.active_backend()


@pytest.mark.skipif(kernels.HAVE_NUMBA, reason="numba is installed here")
def test_numba_request_without_numba_fails(monkeypatch):
    monkeypatch.setenv(kernels.ENV_VAR, "numba")
    with pytest.raises(ConfigurationError):
        kernels.active_backend()


def test_bad_backend_fails_at_engine_construction(monkeypatch):
    monkeypatch.setenv(kernels.ENV_VAR, "fortran")
    sim = Simulator(
        synthesize("low", 6.0, threads=1, seed=3),
        ThermalMode.NO_FAN,
        max_duration_s=2.0,
    )
    with pytest.raises(ConfigurationError):
        BatchSimulator([sim])


# ---------------------------------------------------------------------------
# kernel-level parity (byte-for-byte)
# ---------------------------------------------------------------------------
def test_fused_matches_substep_loop_bitwise(rng):
    network = _network()
    states = _random_states(rng, network, batch=41)
    t_fused, s_fused = _advance(network, states, "numpy")
    t_ref, s_ref = _advance(network, states, "numpy-substep")
    assert np.array_equal(t_fused, t_ref)
    assert np.array_equal(s_fused, s_ref)


def test_fused_lanes_are_batch_independent(rng):
    network = _network()
    temps, gain, speed, enabled, u = _random_states(rng, network, batch=17)
    t_full, s_full = _advance(network, (temps, gain, speed, enabled, u), "numpy")
    for b in range(temps.shape[0]):
        one = (
            temps[b : b + 1], gain[b : b + 1], speed[b : b + 1],
            enabled[b : b + 1], u[b : b + 1],
        )
        t_one, s_one = _advance(network, one, "numpy")
        assert np.array_equal(t_one[0], t_full[b])
        assert np.array_equal(s_one[0], s_full[b])


def test_substep_loop_matches_scalar_step_and_fan(rng):
    """B=1 kernel == the serial board's step()/Fan.update interleaving."""
    network = _network()
    scalar_net = _network()
    temps, gain, speed, enabled, u = _random_states(rng, network, batch=6)
    for b in range(temps.shape[0]):
        t_kernel, s_kernel = _advance(
            network,
            (
                temps[b : b + 1], gain[b : b + 1], speed[b : b + 1],
                enabled[b : b + 1], u[b : b + 1],
            ),
            "numpy-substep",
            substeps=10,
        )
        fan = Fan(
            SPEC.fan_power_w, SPEC.fan_conductance_gain, FanThresholds(),
            enabled=bool(enabled[b]),
        )
        fan.restore_speed(int(speed[b]))
        scalar_net.set_temperatures_k(temps[b])
        scalar_net.set_cooling_gain(float(gain[b]))
        hot = floorplan.hot_indices(scalar_net)
        for _ in range(10):
            t = scalar_net.step(u[b, :-1], 0.01)
            fan.update(float(np.max(t[hot])))
            scalar_net.set_cooling_gain(fan.conductance_gain)
        assert np.array_equal(t_kernel[0], scalar_net.temperatures_k)
        assert int(s_kernel[0, -1]) == int(fan.speed)


def test_dirty_lane_detection_flags_transitions(rng):
    network = _network()
    n = network.num_nodes
    hot = floorplan.hot_indices(network)
    # lane 0: cold and steady (clean); lane 1: just below the first
    # threshold with enough power to cross it mid-interval (dirty)
    temps = np.full((2, n), celsius_to_kelvin(40.0))
    temps[1] = celsius_to_kelvin(56.8)
    u = np.zeros((2, n + 1))
    u[:, -1] = network.ambient_k
    u[1, hot] = 6.0
    speed = np.zeros(2, dtype=np.int64)
    enabled = np.ones(2, dtype=bool)
    gain = GAINS[speed]
    nl_entry = network.nonlinear_factors(temps)
    gains = gain * nl_entry
    ad, bd = network.discretise_stack(0.01, gains)
    bu = np.einsum("bij,bj->bi", bd, u)
    traj = kernels.fused_chain(ad, bu, temps, 10)
    dirty = kernels.dirty_lanes(
        network, traj, nl_entry, gain, speed, enabled, UP_K, HYST_K, GAINS, hot
    )
    assert not dirty[0]
    assert dirty[1]
    # and the full kernel still matches the reference on both lanes
    states = (temps, gain, speed, enabled, u)
    t_fused, s_fused = _advance(network, states, "numpy")
    t_ref, s_ref = _advance(network, states, "numpy-substep")
    assert np.array_equal(t_fused, t_ref)
    assert np.array_equal(s_fused, s_ref)
    assert s_fused[1, -1] >= 1  # the dirty lane really did engage its fan


def test_disabled_fan_with_forced_speed_is_dirty(rng):
    """A disabled fan pins to OFF; entering at speed>0 must take the
    fallback so the pin happens on the first substep, not at the end."""
    network = _network()
    n = network.num_nodes
    temps = np.full((1, n), celsius_to_kelvin(50.0))
    u = np.zeros((1, n + 1))
    u[:, -1] = network.ambient_k
    states = (
        temps, np.array([GAINS[2]]), np.array([2], dtype=np.int64),
        np.array([False]), u,
    )
    t_fused, s_fused = _advance(network, states, "numpy")
    t_ref, s_ref = _advance(network, states, "numpy-substep")
    assert np.array_equal(t_fused, t_ref)
    assert np.array_equal(s_fused, s_ref)
    assert s_fused[0, 0] == 0


def test_cooldown_interval_parity(rng):
    """Hot lanes cooling through the hysteresis band (the gap-cooldown
    shape): step-downs mid-interval must be bit-reproduced."""
    network = _network()
    n = network.num_nodes
    batch = 12
    temps = celsius_to_kelvin(55.0) + 12.0 * rng.random((batch, n))
    speed = np.full(batch, 3, dtype=np.int64)
    enabled = np.ones(batch, dtype=bool)
    u = np.zeros((batch, n + 1))
    u[:, -1] = network.ambient_k
    states = (temps, GAINS[speed], speed, enabled, u)
    t_fused, s_fused = _advance(network, states, "numpy", substeps=50, dt=0.5)
    t_ref, s_ref = _advance(network, states, "numpy-substep", substeps=50, dt=0.5)
    assert np.array_equal(t_fused, t_ref)
    assert np.array_equal(s_fused, s_ref)
    assert np.any(s_fused[:, -1] < 3)  # the cooldown really stepped down


@pytest.mark.skipif(not kernels.HAVE_NUMBA, reason="numba not installed")
def test_numba_chain_within_tolerance(rng):
    network = _network()
    states = _random_states(rng, network, batch=23)
    t_np, s_np = _advance(network, states, "numpy")
    t_nb, s_nb = _advance(network, states, "numba")
    # fan speeds are discrete decisions on the (tolerance-close)
    # trajectory; any drift would surface as a speed flip
    assert np.array_equal(s_np, s_nb)
    np.testing.assert_allclose(t_nb, t_np, rtol=1e-12, atol=1e-9)


# ---------------------------------------------------------------------------
# engine-level parity (full closed loop, byte-for-byte)
# ---------------------------------------------------------------------------
def _engine_sims():
    out = []
    for seed, mode, warm in (
        (1, ThermalMode.DEFAULT_WITH_FAN, 52.0),  # crosses fan thresholds
        (2, ThermalMode.NO_FAN, 48.0),
        (3, ThermalMode.REACTIVE, None),
    ):
        out.append(
            Simulator(
                synthesize("high", 10.0, threads=2, seed=seed),
                mode,
                max_duration_s=16.0,
                seed=seed * 7,
                warm_start_c=warm,
            )
        )
    return out


def test_engine_fused_backend_byte_identical_to_substep(monkeypatch):
    monkeypatch.setenv(kernels.ENV_VAR, "numpy-substep")
    reference = BatchSimulator(_engine_sims()).run()
    monkeypatch.setenv(kernels.ENV_VAR, "numpy")
    fused = BatchSimulator(_engine_sims()).run()
    for one, two in zip(reference, fused):
        assert result_bytes(one) == result_bytes(two)
