"""Analysis helpers: stats, tables, ASCII figures."""

import numpy as np
import pytest

from repro.analysis.figures import ascii_bars, ascii_grouped_bars, ascii_timeseries
from repro.analysis.stats import (
    average_fan_power_w,
    fan_duty,
    frequency_residency,
    regulation_quality,
    stability_stats,
)
from repro.analysis.tables import benchmark_table, frequency_table, render_table
from repro.errors import SimulationError
from repro.platform.specs import BIG_FREQUENCIES_HZ, FAN_POWER_W
from repro.sim.run_result import RUN_COLUMNS, RunResult, TraceRecorder
from repro.workloads.benchmarks import table_6_4_rows


def _result(temps=None, freqs=None, fans=None):
    n = 100
    temps = temps if temps is not None else [62.0] * n
    freqs = freqs if freqs is not None else [1.6e9] * n
    fans = fans if fans is not None else [0] * n
    rec = TraceRecorder(RUN_COLUMNS)
    for i in range(len(temps)):
        row = {c: 0.0 for c in RUN_COLUMNS}
        row.update(
            time_s=(i + 1) * 0.1,
            max_temp_c=temps[i],
            big_freq_hz=freqs[i],
            fan_speed=float(fans[i]),
        )
        rec.append(**row)
    return RunResult(
        benchmark="x", mode="dtpm", completed=True,
        execution_time_s=len(temps) * 0.1,
        average_platform_power_w=5.0, energy_j=50.0, trace=rec,
    )


def test_stability_stats():
    res = _result(temps=[50.0] * 50 + [62.0, 63.0] * 25)
    stats = stability_stats(res, skip_s=5.0)
    assert stats.max_min_c == pytest.approx(1.0)
    assert stats.average_temp_c == pytest.approx(62.5)
    assert stats.peak_c == 63.0


def test_regulation_quality():
    res = _result(temps=[62.0] * 80 + [64.0] * 20)
    q = regulation_quality(res, 63.0, skip_s=0.5)
    assert q["peak_exceedance_c"] == pytest.approx(1.0)
    assert 0 < q["fraction_over"] < 1


def test_frequency_residency():
    res = _result(freqs=[1.6e9] * 50 + [1.2e9] * 50)
    resid = frequency_residency(res)
    assert resid[1.6] == pytest.approx(0.5)
    assert resid[1.2] == pytest.approx(0.5)


def test_fan_duty_and_average_power():
    res = _result(fans=[0] * 50 + [2] * 50)
    duty = fan_duty(res)
    assert duty[0] == pytest.approx(0.5)
    assert duty[2] == pytest.approx(0.5)
    avg = average_fan_power_w(res, FAN_POWER_W)
    assert avg == pytest.approx(0.5 * FAN_POWER_W[2])


def test_render_table_alignment():
    out = render_table(["a", "bb"], [[1, 2], [30, 40]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert len(lines) == 5


def test_render_table_validation():
    with pytest.raises(SimulationError):
        render_table(["a"], [])
    with pytest.raises(SimulationError):
        render_table(["a"], [[1, 2]])


def test_frequency_table_output():
    out = frequency_table(BIG_FREQUENCIES_HZ, "Table 6.1")
    assert "Table 6.1" in out
    assert "1600" in out and "800" in out


def test_benchmark_table_output():
    out = benchmark_table(table_6_4_rows())
    assert "templerun" in out
    assert "security" in out


def test_ascii_timeseries_renders_all_series():
    t = np.linspace(0, 10, 50)
    out = ascii_timeseries(
        {"with fan": (t, 60 + np.sin(t)), "dtpm": (t, 62 + 0 * t)},
        title="Fig 6.3",
    )
    assert "Fig 6.3" in out
    assert "with fan" in out and "dtpm" in out
    assert "*" in out and "o" in out


def test_ascii_timeseries_validation():
    with pytest.raises(SimulationError):
        ascii_timeseries({})


def test_ascii_bars():
    out = ascii_bars({"dijkstra": 3.0, "matmul": 14.0}, unit="%")
    assert "dijkstra" in out and "#" in out


def test_ascii_grouped_bars():
    out = ascii_grouped_bars(
        {"fft": {"savings": 9.0, "loss": 2.0}}, unit="%"
    )
    assert "fft" in out and "savings" in out and "loss" in out
    with pytest.raises(SimulationError):
        ascii_grouped_bars({})
