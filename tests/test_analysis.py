"""Analysis helpers: stats, tables, ASCII figures."""

import numpy as np
import pytest

from repro.analysis.figures import (
    ascii_bars,
    ascii_grouped_bars,
    ascii_timeseries,
    sparkline,
)
from repro.analysis.stats import (
    average_fan_power_w,
    fan_duty,
    frequency_residency,
    frequency_residency_batch,
    regulation_quality,
    regulation_quality_batch,
    stability_stats,
    stability_stats_batch,
)
from repro.analysis.tables import (
    benchmark_table,
    frequency_table,
    markdown_table,
    render_table,
)
from repro.errors import SimulationError
from repro.platform.specs import BIG_FREQUENCIES_HZ, FAN_POWER_W
from repro.sim.run_result import RUN_COLUMNS, RunResult, TraceRecorder
from repro.workloads.benchmarks import table_6_4_rows


def _result(temps=None, freqs=None, fans=None):
    n = 100
    temps = temps if temps is not None else [62.0] * n
    freqs = freqs if freqs is not None else [1.6e9] * n
    fans = fans if fans is not None else [0] * n
    rec = TraceRecorder(RUN_COLUMNS)
    for i in range(len(temps)):
        row = {c: 0.0 for c in RUN_COLUMNS}
        row.update(
            time_s=(i + 1) * 0.1,
            max_temp_c=temps[i],
            big_freq_hz=freqs[i],
            fan_speed=float(fans[i]),
        )
        rec.append(**row)
    return RunResult(
        benchmark="x", mode="dtpm", completed=True,
        execution_time_s=len(temps) * 0.1,
        average_platform_power_w=5.0, energy_j=50.0, trace=rec,
    )


def test_stability_stats():
    res = _result(temps=[50.0] * 50 + [62.0, 63.0] * 25)
    stats = stability_stats(res, skip_s=5.0)
    assert stats.max_min_c == pytest.approx(1.0)
    assert stats.average_temp_c == pytest.approx(62.5)
    assert stats.peak_c == 63.0


def test_regulation_quality():
    res = _result(temps=[62.0] * 80 + [64.0] * 20)
    q = regulation_quality(res, 63.0, skip_s=0.5)
    assert q["peak_exceedance_c"] == pytest.approx(1.0)
    assert 0 < q["fraction_over"] < 1


def test_frequency_residency():
    res = _result(freqs=[1.6e9] * 50 + [1.2e9] * 50)
    resid = frequency_residency(res)
    assert resid[1.6] == pytest.approx(0.5)
    assert resid[1.2] == pytest.approx(0.5)


def test_stability_batch_pins_scalar_as_b1_view():
    results = [
        _result(temps=[50.0] * 50 + [62.0, 63.0] * 25),
        _result(temps=[55.0] * 30 + [60.0] * 70),
    ]
    batch = stability_stats_batch(
        [r.times_s() for r in results],
        [r.max_temps_c() for r in results],
        skip_s=5.0,
    )
    for i, res in enumerate(results):
        scalar = stability_stats(res, skip_s=5.0)
        assert batch["average_temp_c"][i] == scalar.average_temp_c
        assert batch["max_min_c"][i] == scalar.max_min_c
        assert batch["variance_c2"][i] == scalar.variance_c2
        assert batch["peak_c"][i] == scalar.peak_c
    # per-run skip windows are allowed
    ragged = stability_stats_batch(
        [r.times_s() for r in results],
        [r.max_temps_c() for r in results],
        skip_s=[5.0, 2.0],
    )
    assert ragged["average_temp_c"][1] == stability_stats(
        results[1], skip_s=2.0
    ).average_temp_c


def test_regulation_batch_pins_scalar_as_b1_view():
    res = _result(temps=[62.0] * 80 + [64.0] * 20)
    batch = regulation_quality_batch(
        [res.times_s()], [res.max_temps_c()], 63.0, skip_s=0.5
    )
    scalar = regulation_quality(res, 63.0, skip_s=0.5)
    for field, values in batch.items():
        assert values[0] == scalar[field]


def test_frequency_residency_batch_unions_keys():
    a = _result(freqs=[1.6e9] * 50 + [1.2e9] * 50)
    b = _result(freqs=[0.8e9] * 100)
    resid = frequency_residency_batch(
        [a.big_freqs_ghz(), b.big_freqs_ghz()]
    )
    assert set(resid) == {0.8, 1.2, 1.6}
    assert resid[1.6][0] == pytest.approx(0.5)
    assert resid[1.6][1] == 0.0
    assert resid[0.8][1] == pytest.approx(1.0)


def test_fan_duty_and_average_power():
    res = _result(fans=[0] * 50 + [2] * 50)
    duty = fan_duty(res)
    assert duty[0] == pytest.approx(0.5)
    assert duty[2] == pytest.approx(0.5)
    avg = average_fan_power_w(res, FAN_POWER_W)
    assert avg == pytest.approx(0.5 * FAN_POWER_W[2])


def test_render_table_alignment():
    out = render_table(["a", "bb"], [[1, 2], [30, 40]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert len(lines) == 5


def test_render_table_validation():
    with pytest.raises(SimulationError):
        render_table(["a"], [])
    with pytest.raises(SimulationError):
        render_table(["a"], [[1, 2]])


def test_frequency_table_output():
    out = frequency_table(BIG_FREQUENCIES_HZ, "Table 6.1")
    assert "Table 6.1" in out
    assert "1600" in out and "800" in out


def test_benchmark_table_output():
    out = benchmark_table(table_6_4_rows())
    assert "templerun" in out
    assert "security" in out


def test_ascii_timeseries_renders_all_series():
    t = np.linspace(0, 10, 50)
    out = ascii_timeseries(
        {"with fan": (t, 60 + np.sin(t)), "dtpm": (t, 62 + 0 * t)},
        title="Fig 6.3",
    )
    assert "Fig 6.3" in out
    assert "with fan" in out and "dtpm" in out
    assert "*" in out and "o" in out


def test_ascii_timeseries_validation():
    with pytest.raises(SimulationError):
        ascii_timeseries({})


def test_ascii_bars():
    out = ascii_bars({"dijkstra": 3.0, "matmul": 14.0}, unit="%")
    assert "dijkstra" in out and "#" in out


def test_markdown_table_shape():
    lines = markdown_table(["a", "bb"], [["1", "2"], ["3", "4"]])
    assert lines == [
        "| a | bb |",
        "|---|---|",
        "| 1 | 2 |",
        "| 3 | 4 |",
    ]
    with pytest.raises(SimulationError):
        markdown_table([], [])
    with pytest.raises(SimulationError):
        markdown_table(["a"], [[1, 2]])


def test_sparkline():
    out = sparkline([0.0, 5.0, 10.0])
    assert len(out) == 3
    assert out[0] == " " and out[-1] == "@"
    assert len(set(sparkline([3.0, 3.0, 3.0]))) == 1  # constant mid-level
    with pytest.raises(SimulationError):
        sparkline([])


def test_ascii_grouped_bars():
    out = ascii_grouped_bars(
        {"fft": {"savings": 9.0, "loss": 2.0}}, unit="%"
    )
    assert "fft" in out and "savings" in out and "loss" in out
    with pytest.raises(SimulationError):
        ascii_grouped_bars({})
