"""The experiment runner: matrix expansion, determinism, fan-out."""

import os
import time

import pytest

from repro.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.runner import (
    ExperimentMatrix,
    ParallelRunner,
    ResultCache,
    RunSpec,
    execute_spec,
    result_bytes,
    spec_key,
)
from repro.sim.engine import ThermalMode
from repro.workloads.benchmarks import get_benchmark
from repro.workloads.generator import synthesize


@pytest.fixture(scope="module")
def workload():
    return synthesize("high", 18.0, threads=4, seed=6)


# ---------------------------------------------------------------------------
# RunSpec
# ---------------------------------------------------------------------------
def test_spec_validation(workload):
    with pytest.raises(ConfigurationError):
        RunSpec(workload="dijkstra", mode=ThermalMode.DTPM)  # not a trace
    with pytest.raises(ConfigurationError):
        RunSpec(workload=workload, mode="dtpm")
    with pytest.raises(ConfigurationError):
        # guard band is a DTPM-only knob
        RunSpec(
            workload=workload,
            mode=ThermalMode.DEFAULT_WITH_FAN,
            guard_band_k=0.5,
        )
    with pytest.raises(ConfigurationError):
        RunSpec(workload=workload, mode=ThermalMode.NO_FAN, max_duration_s=0)


def test_spec_for_benchmark_resolves_names():
    spec = RunSpec.for_benchmark("dijkstra", ThermalMode.NO_FAN)
    assert spec.workload is get_benchmark("dijkstra")
    assert "dijkstra/without_fan" in spec.describe()


# ---------------------------------------------------------------------------
# ExperimentMatrix
# ---------------------------------------------------------------------------
def test_matrix_expansion_order_and_seeds(workload):
    configs = (SimulationConfig(), SimulationConfig(t_constraint_c=60.0))
    matrix = ExperimentMatrix(
        workloads=(workload, "dijkstra"),
        modes=(ThermalMode.DEFAULT_WITH_FAN, ThermalMode.NO_FAN),
        configs=configs,
        base_seed=500,
    )
    specs = matrix.specs()
    assert len(matrix) == len(specs) == 8
    # workload-major, then mode, then config; seeds count up in that order
    assert [s.seed for s in specs] == list(range(500, 508))
    assert specs[0].workload is workload and specs[-1].workload.name == "dijkstra"
    assert specs[0].mode is ThermalMode.DEFAULT_WITH_FAN
    assert specs[1].config.t_constraint_c == 60.0
    # expansion is deterministic
    assert specs == matrix.specs()


def test_matrix_without_base_seed_leaves_config_seed(workload):
    matrix = ExperimentMatrix(workloads=(workload,))
    assert all(s.seed is None for s in matrix)


def test_matrix_rejects_empty_axes(workload):
    with pytest.raises(ConfigurationError):
        ExperimentMatrix(workloads=())
    with pytest.raises(ConfigurationError):
        ExperimentMatrix(workloads=(workload,), modes=())
    with pytest.raises(ConfigurationError):
        # guard bands on a non-DTPM axis make no sense
        ExperimentMatrix(
            workloads=(workload,),
            modes=(ThermalMode.NO_FAN,),
            guard_bands_k=(0.5,),
        )


# ---------------------------------------------------------------------------
# spec_key
# ---------------------------------------------------------------------------
def test_spec_key_stable_and_discriminating(workload, models):
    a = RunSpec(workload=workload, mode=ThermalMode.NO_FAN)
    assert spec_key(a) == spec_key(a)
    # execution-relevant changes move the key
    b = RunSpec(workload=workload, mode=ThermalMode.NO_FAN, seed=1)
    c = RunSpec(
        workload=workload,
        mode=ThermalMode.NO_FAN,
        config=SimulationConfig(t_constraint_c=60.0),
    )
    assert len({spec_key(a), spec_key(b), spec_key(c)}) == 3
    # baseline runs ignore the models; DTPM runs fold the fingerprint in
    assert spec_key(a, models) == spec_key(a, None)
    d = RunSpec(workload=workload, mode=ThermalMode.DTPM)
    assert spec_key(d, models) != spec_key(d, None)


# ---------------------------------------------------------------------------
# ParallelRunner
# ---------------------------------------------------------------------------
def test_serial_and_parallel_results_byte_identical(workload):
    matrix = ExperimentMatrix(
        workloads=(workload,),
        modes=(ThermalMode.DEFAULT_WITH_FAN, ThermalMode.NO_FAN),
        configs=(SimulationConfig(), SimulationConfig(ambient_c=28.0)),
        base_seed=9,
    )
    serial = ParallelRunner(workers=1).run(matrix)
    parallel = ParallelRunner(workers=2).run(matrix)
    assert [result_bytes(r) for r in serial] == [
        result_bytes(r) for r in parallel
    ]
    assert [r.benchmark for r in serial] == [
        s.workload.name for s in matrix.specs()
    ]


def test_parallel_dtpm_matches_serial(workload, models):
    # warm-start near the constraint so the controller actually intervenes
    specs = [
        RunSpec(workload=workload, mode=ThermalMode.DTPM, warm_start_c=58.0),
        RunSpec(
            workload=workload,
            mode=ThermalMode.DTPM,
            warm_start_c=58.0,
            guard_band_k=3.0,
        ),
    ]
    serial = ParallelRunner(workers=1, models=models).run(specs)
    parallel = ParallelRunner(workers=2, models=models).run(specs)
    assert [result_bytes(r) for r in serial] == [
        result_bytes(r) for r in parallel
    ]
    # the guard band is actually honoured (different controller behaviour)
    assert result_bytes(serial[0]) != result_bytes(serial[1])


def test_second_invocation_executes_nothing(tmp_path, workload):
    matrix = ExperimentMatrix(
        workloads=(workload,),
        modes=(ThermalMode.DEFAULT_WITH_FAN, ThermalMode.NO_FAN),
    )
    first = ParallelRunner(cache=ResultCache(root=str(tmp_path)))
    res1 = first.run(matrix)
    assert first.last_stats.executed == 2
    assert first.last_stats.cache_hits == 0

    # fresh runner, fresh process-independent cache view: zero executions
    second = ParallelRunner(cache=ResultCache(root=str(tmp_path)))
    res2 = second.run(matrix)
    assert second.last_stats.executed == 0
    assert second.last_stats.cache_hits == 2
    assert [result_bytes(r) for r in res1] == [result_bytes(r) for r in res2]


def test_runner_rejects_bad_inputs(workload):
    with pytest.raises(ConfigurationError):
        ParallelRunner(workers=0)
    with pytest.raises(ConfigurationError):
        ParallelRunner().run([workload])  # not a RunSpec


def test_run_one_equals_execute_spec(workload):
    spec = RunSpec(workload=workload, mode=ThermalMode.NO_FAN)
    assert result_bytes(ParallelRunner().run_one(spec)) == result_bytes(
        execute_spec(spec)
    )


def _usable_cpus() -> int:
    if hasattr(os, "sched_getaffinity"):  # Linux only
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


@pytest.mark.skipif(
    _usable_cpus() < 4,
    reason="needs >= 4 CPUs for a meaningful wall-clock comparison",
)
def test_parallel_beats_serial_wall_clock(workload):
    # the acceptance bar: 4 workers beat serial on an 8-point sweep
    matrix = ExperimentMatrix(
        workloads=(workload,),
        modes=(ThermalMode.NO_FAN,),
        configs=tuple(
            SimulationConfig(ambient_c=20.0 + i) for i in range(8)
        ),
    )
    t0 = time.perf_counter()
    serial = ParallelRunner(workers=1).run(matrix)
    t_serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = ParallelRunner(workers=4).run(matrix)
    t_parallel = time.perf_counter() - t0
    assert [result_bytes(r) for r in serial] == [
        result_bytes(r) for r in parallel
    ]
    assert t_parallel < t_serial
