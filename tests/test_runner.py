"""The experiment runner: matrix expansion, determinism, fan-out."""

import os
import time

import pytest

from repro.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.runner import (
    ExperimentMatrix,
    ParallelRunner,
    ResultCache,
    RunSpec,
    execute_schedule,
    execute_spec,
    result_bytes,
    spec_key,
)
from repro.sim.engine import ThermalMode
from repro.sim.scenario import ScenarioRunner
from repro.workloads.benchmarks import get_benchmark
from repro.workloads.generator import synthesize


@pytest.fixture(scope="module")
def workload():
    return synthesize("high", 18.0, threads=4, seed=6)


@pytest.fixture(scope="module")
def second_workload():
    return synthesize("medium", 14.0, threads=2, seed=7)


# ---------------------------------------------------------------------------
# RunSpec
# ---------------------------------------------------------------------------
def test_spec_validation(workload):
    with pytest.raises(ConfigurationError):
        RunSpec(workload="dijkstra", mode=ThermalMode.DTPM)  # not a trace
    with pytest.raises(ConfigurationError):
        RunSpec(workload=workload, mode="dtpm")
    with pytest.raises(ConfigurationError):
        # guard band is a DTPM-only knob
        RunSpec(
            workload=workload,
            mode=ThermalMode.DEFAULT_WITH_FAN,
            guard_band_k=0.5,
        )
    with pytest.raises(ConfigurationError):
        RunSpec(workload=workload, mode=ThermalMode.NO_FAN, max_duration_s=0)


def test_spec_for_benchmark_resolves_names():
    spec = RunSpec.for_benchmark("dijkstra", ThermalMode.NO_FAN)
    assert spec.workload is get_benchmark("dijkstra")
    assert "dijkstra/without_fan" in spec.describe()


# ---------------------------------------------------------------------------
# ExperimentMatrix
# ---------------------------------------------------------------------------
def test_matrix_expansion_order_and_seeds(workload):
    configs = (SimulationConfig(), SimulationConfig(t_constraint_c=60.0))
    matrix = ExperimentMatrix(
        workloads=(workload, "dijkstra"),
        modes=(ThermalMode.DEFAULT_WITH_FAN, ThermalMode.NO_FAN),
        configs=configs,
        base_seed=500,
    )
    specs = matrix.specs()
    assert len(matrix) == len(specs) == 8
    # workload-major, then mode, then config; seeds count up in that order
    assert [s.seed for s in specs] == list(range(500, 508))
    assert specs[0].workload is workload and specs[-1].workload.name == "dijkstra"
    assert specs[0].mode is ThermalMode.DEFAULT_WITH_FAN
    assert specs[1].config.t_constraint_c == 60.0
    # expansion is deterministic
    assert specs == matrix.specs()


def test_matrix_without_base_seed_leaves_config_seed(workload):
    matrix = ExperimentMatrix(workloads=(workload,))
    assert all(s.seed is None for s in matrix)


def test_matrix_rejects_empty_axes(workload):
    with pytest.raises(ConfigurationError):
        ExperimentMatrix(workloads=())
    with pytest.raises(ConfigurationError):
        ExperimentMatrix(workloads=(workload,), modes=())
    with pytest.raises(ConfigurationError):
        # guard bands on a non-DTPM axis make no sense
        ExperimentMatrix(
            workloads=(workload,),
            modes=(ThermalMode.NO_FAN,),
            guard_bands_k=(0.5,),
        )


# ---------------------------------------------------------------------------
# spec_key
# ---------------------------------------------------------------------------
def test_spec_key_stable_and_discriminating(workload, models):
    a = RunSpec(workload=workload, mode=ThermalMode.NO_FAN)
    assert spec_key(a) == spec_key(a)
    # execution-relevant changes move the key
    b = RunSpec(workload=workload, mode=ThermalMode.NO_FAN, seed=1)
    c = RunSpec(
        workload=workload,
        mode=ThermalMode.NO_FAN,
        config=SimulationConfig(t_constraint_c=60.0),
    )
    assert len({spec_key(a), spec_key(b), spec_key(c)}) == 3
    # baseline runs ignore the models; DTPM runs fold the fingerprint in
    assert spec_key(a, models) == spec_key(a, None)
    d = RunSpec(workload=workload, mode=ThermalMode.DTPM)
    assert spec_key(d, models) != spec_key(d, None)


# ---------------------------------------------------------------------------
# ParallelRunner
# ---------------------------------------------------------------------------
def test_serial_and_parallel_results_byte_identical(workload):
    matrix = ExperimentMatrix(
        workloads=(workload,),
        modes=(ThermalMode.DEFAULT_WITH_FAN, ThermalMode.NO_FAN),
        configs=(SimulationConfig(), SimulationConfig(ambient_c=28.0)),
        base_seed=9,
    )
    serial = ParallelRunner(workers=1).run(matrix)
    parallel = ParallelRunner(workers=2).run(matrix)
    assert [result_bytes(r) for r in serial] == [
        result_bytes(r) for r in parallel
    ]
    assert [r.benchmark for r in serial] == [
        s.workload.name for s in matrix.specs()
    ]


def test_parallel_dtpm_matches_serial(workload, models):
    # warm-start near the constraint so the controller actually intervenes
    specs = [
        RunSpec(workload=workload, mode=ThermalMode.DTPM, warm_start_c=58.0),
        RunSpec(
            workload=workload,
            mode=ThermalMode.DTPM,
            warm_start_c=58.0,
            guard_band_k=3.0,
        ),
    ]
    serial = ParallelRunner(workers=1, models=models).run(specs)
    parallel = ParallelRunner(workers=2, models=models).run(specs)
    assert [result_bytes(r) for r in serial] == [
        result_bytes(r) for r in parallel
    ]
    # the guard band is actually honoured (different controller behaviour)
    assert result_bytes(serial[0]) != result_bytes(serial[1])


def test_second_invocation_executes_nothing(tmp_path, workload):
    matrix = ExperimentMatrix(
        workloads=(workload,),
        modes=(ThermalMode.DEFAULT_WITH_FAN, ThermalMode.NO_FAN),
    )
    first = ParallelRunner(cache=ResultCache(root=str(tmp_path)))
    res1 = first.run(matrix)
    assert first.last_stats.executed == 2
    assert first.last_stats.cache_hits == 0

    # fresh runner, fresh process-independent cache view: zero executions
    second = ParallelRunner(cache=ResultCache(root=str(tmp_path)))
    res2 = second.run(matrix)
    assert second.last_stats.executed == 0
    assert second.last_stats.cache_hits == 2
    assert [result_bytes(r) for r in res1] == [result_bytes(r) for r in res2]


def test_runner_rejects_bad_inputs(workload):
    with pytest.raises(ConfigurationError):
        ParallelRunner(workers=0)
    with pytest.raises(ConfigurationError):
        ParallelRunner().run([workload])  # not a RunSpec


def test_run_one_equals_execute_spec(workload):
    spec = RunSpec(workload=workload, mode=ThermalMode.NO_FAN)
    assert result_bytes(ParallelRunner().run_one(spec)) == result_bytes(
        execute_spec(spec)
    )


# ---------------------------------------------------------------------------
# scenario schedules through the runner
# ---------------------------------------------------------------------------
def test_schedule_spec_validation(workload, second_workload):
    with pytest.raises(ConfigurationError):
        RunSpec(
            workload=workload, mode=ThermalMode.NO_FAN, idle_gap_s=5.0
        )  # idle gap without a history
    with pytest.raises(ConfigurationError):
        RunSpec(
            workload=workload,
            mode=ThermalMode.NO_FAN,
            history=("dijkstra",),  # not resolved to a trace
        )
    spec = RunSpec(
        workload=second_workload,
        mode=ThermalMode.NO_FAN,
        history=(workload,),
        idle_gap_s=3.0,
    )
    assert spec.schedule == (workload, second_workload)
    assert "after" in spec.describe() and "gap=3s" in spec.describe()


def test_chain_positions(workload, second_workload):
    spec = RunSpec(
        workload=second_workload,
        mode=ThermalMode.NO_FAN,
        history=(workload,),
        idle_gap_s=2.0,
        seed=42,
    )
    first, last = spec.chain()
    assert last == spec
    assert first.workload is workload and first.history == ()
    assert first.idle_gap_s == 0.0  # no gap before the first run
    assert first.seed == 42  # positions share the scenario base seed
    # a plain spec is its own 1-element chain and keeps its key
    plain = RunSpec(workload=workload, mode=ThermalMode.NO_FAN)
    assert plain.chain() == [plain]


def test_schedule_key_stability(workload):
    """Adding the scenario fields must not move pre-existing cache keys."""
    from repro.runner import canonical_json

    plain = RunSpec(workload=workload, mode=ThermalMode.NO_FAN)
    rendered = canonical_json(plain)
    assert "history" not in rendered and "idle_gap_s" not in rendered
    scheduled = RunSpec(
        workload=workload,
        mode=ThermalMode.NO_FAN,
        history=(workload,),
    )
    assert spec_key(scheduled) != spec_key(plain)


def test_matrix_schedules_axis(workload, second_workload):
    matrix = ExperimentMatrix(
        workloads=(workload,),
        modes=(ThermalMode.NO_FAN,),
        schedules=((workload, second_workload),),
        idle_gap_s=4.0,
        base_seed=100,
    )
    specs = matrix.specs()
    assert len(matrix) == len(specs) == 3  # 1 plain + 2 schedule positions
    plain, pos0, pos1 = specs
    assert plain.history == () and plain.seed == 100
    assert pos0.history == () and pos0.idle_gap_s == 0.0
    assert pos1.history == (workload,) and pos1.idle_gap_s == 4.0
    # the whole schedule is one experiment: both positions share one seed
    assert pos0.seed == pos1.seed == 101
    with pytest.raises(ConfigurationError):
        ExperimentMatrix(modes=(ThermalMode.NO_FAN,))  # no workloads at all
    with pytest.raises(ConfigurationError):
        ExperimentMatrix(schedules=((),))


def test_execute_schedule_matches_scenario_runner(workload, second_workload):
    spec = RunSpec(
        workload=second_workload,
        mode=ThermalMode.NO_FAN,
        warm_start_c=40.0,
        history=(workload,),
    )
    chain_results = execute_schedule(spec)
    direct = ScenarioRunner(
        ThermalMode.NO_FAN, initial_temp_c=40.0, annotate=False
    ).run([workload, second_workload])
    assert [result_bytes(r) for r in chain_results] == [
        result_bytes(r) for r in direct
    ]
    # execute_spec returns the final position
    assert result_bytes(execute_spec(spec)) == result_bytes(chain_results[-1])
    # the carried thermal state is visible: position 1 starts hotter
    assert (
        chain_results[1].max_temps_c()[0]
        > chain_results[0].max_temps_c()[0] + 3.0
    )


def test_runner_harvests_chain_positions(tmp_path, workload, second_workload):
    """One schedule through the matrix: every position cached, no rework."""
    matrix = ExperimentMatrix(
        workloads=(),
        modes=(ThermalMode.NO_FAN,),
        schedules=((workload, second_workload),),
        warm_start_c=40.0,
    )
    runner = ParallelRunner(cache=ResultCache(root=str(tmp_path)))
    results = runner.run(matrix)
    assert len(results) == 2
    assert runner.last_stats.executed == 2
    # position 0 is byte-identical to the plain spec executed standalone
    plain = RunSpec(
        workload=workload, mode=ThermalMode.NO_FAN, warm_start_c=40.0
    )
    assert result_bytes(results[0]) == result_bytes(execute_spec(plain))
    # a fresh runner over the same directory answers everything from disk,
    # including the plain spec harvested from the schedule's chain
    warm = ParallelRunner(cache=ResultCache(root=str(tmp_path)))
    warm_results = warm.run(matrix)
    assert warm.last_stats.executed == 0
    assert warm.last_stats.cache_hits == 2
    assert [result_bytes(r) for r in warm_results] == [
        result_bytes(r) for r in results
    ]
    assert warm.run_one(plain) is not None
    assert warm.last_stats.cache_hits == 1 and warm.last_stats.executed == 0


def test_schedules_serial_equals_parallel(workload, second_workload):
    specs = [
        RunSpec(
            workload=second_workload,
            mode=ThermalMode.NO_FAN,
            warm_start_c=40.0,
            history=(workload,),
        ),
        RunSpec(workload=workload, mode=ThermalMode.NO_FAN, warm_start_c=40.0),
    ]
    serial = ParallelRunner(workers=1).run(specs)
    parallel = ParallelRunner(workers=2).run(specs)
    assert [result_bytes(r) for r in serial] == [
        result_bytes(r) for r in parallel
    ]


def _usable_cpus() -> int:
    if hasattr(os, "sched_getaffinity"):  # Linux only
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


@pytest.mark.skipif(
    _usable_cpus() < 4,
    reason="needs >= 4 CPUs for a meaningful wall-clock comparison",
)
def test_parallel_beats_serial_wall_clock(workload):
    # the acceptance bar: 4 workers beat serial on an 8-point sweep
    matrix = ExperimentMatrix(
        workloads=(workload,),
        modes=(ThermalMode.NO_FAN,),
        configs=tuple(
            SimulationConfig(ambient_c=20.0 + i) for i in range(8)
        ),
    )
    t0 = time.perf_counter()
    serial = ParallelRunner(workers=1).run(matrix)
    t_serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = ParallelRunner(workers=4).run(matrix)
    t_parallel = time.perf_counter() - t0
    assert [result_bytes(r) for r in serial] == [
        result_bytes(r) for r in parallel
    ]
    assert t_parallel < t_serial
