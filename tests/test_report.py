"""Evaluation report generator."""

import pytest

from repro.analysis.report import generate_report
from repro.workloads.benchmarks import get_benchmark


@pytest.fixture(scope="module")
def quick_report(models):
    workloads = [get_benchmark("dijkstra"), get_benchmark("matrix_mult")]
    return generate_report(models=models, workloads=workloads)


def test_report_has_all_sections(quick_report):
    assert "# DTPM evaluation report" in quick_report
    assert "## Temperature prediction accuracy" in quick_report
    assert "## Regulation quality" in quick_report
    assert "## DTPM vs fan-cooled default" in quick_report
    assert "**Overall**" in quick_report


def test_report_covers_requested_benchmarks(quick_report):
    assert "dijkstra" in quick_report
    assert "matrix_mult" in quick_report
    assert "templerun" not in quick_report


def test_report_sections_toggle(models):
    text = generate_report(
        models=models,
        workloads=[get_benchmark("dijkstra")],
        include_prediction=False,
        include_regulation=False,
    )
    assert "prediction accuracy" not in text
    assert "Fig. 6.9" in text


def test_report_is_markdown_table_shaped(quick_report):
    lines = [l for l in quick_report.splitlines() if l.startswith("|")]
    assert len(lines) > 6
    widths = {l.count("|") for l in lines if "category" in l or "---" in l}
    assert widths  # header + separator rows present
