"""Power-budget computation (Eqs. 5.4-5.6)."""

import numpy as np
import pytest

from repro.core.budget import PowerBudgetComputer
from repro.errors import BudgetError
from repro.platform.specs import Resource
from repro.thermal.state_space import DiscreteThermalModel
from repro.units import celsius_to_kelvin as c2k


@pytest.fixture()
def model():
    a = 0.90 * np.eye(4) + 0.02 * (np.ones((4, 4)) - np.eye(4))
    b = np.array(
        [
            [0.30, 0.05, 0.10, 0.08],
            [0.28, 0.06, 0.09, 0.08],
            [0.29, 0.05, 0.11, 0.07],
            [0.27, 0.06, 0.10, 0.08],
        ]
    )
    offset = (np.eye(4) - a) @ np.full(4, c2k(25.0))
    return DiscreteThermalModel(a=a, b=b, offset=offset, ts_s=0.1)


@pytest.fixture()
def computer(model):
    return PowerBudgetComputer(model, horizon_steps=10)


TEMPS = np.full(4, c2k(55.0))
POWERS = np.array([2.0, 0.01, 0.3, 0.25])


def test_budget_is_consistent_with_prediction(model, computer):
    """Running exactly at the budget puts the target row exactly at Tmax."""
    tmax = c2k(63.0)
    res = computer.compute(TEMPS, POWERS, tmax, Resource.BIG)
    p = POWERS.copy()
    p[0] = res.total_budget_w
    pred = model.predict_n_constant(TEMPS, p, 10)
    assert pred[res.row] == pytest.approx(tmax)


def test_budget_monotone_in_constraint(computer):
    loose = computer.compute(TEMPS, POWERS, c2k(70.0), Resource.BIG)
    tight = computer.compute(TEMPS, POWERS, c2k(60.0), Resource.BIG)
    assert loose.total_budget_w > tight.total_budget_w


def test_budget_monotone_in_temperature(computer):
    cool = computer.compute(np.full(4, c2k(45.0)), POWERS, c2k(63.0))
    hot = computer.compute(np.full(4, c2k(60.0)), POWERS, c2k(63.0))
    assert cool.total_budget_w > hot.total_budget_w


def test_budget_shrinks_when_other_resources_draw_more(computer):
    light = computer.compute(TEMPS, np.array([2.0, 0.01, 0.1, 0.1]), c2k(63.0))
    heavy = computer.compute(TEMPS, np.array([2.0, 0.01, 1.5, 0.5]), c2k(63.0))
    assert heavy.total_budget_w < light.total_budget_w


def test_budget_targets_hottest_predicted_row(computer):
    temps = np.array([c2k(60.0), c2k(52.0), c2k(52.0), c2k(52.0)])
    res = computer.compute(temps, POWERS, c2k(63.0))
    assert res.row == 0


def test_budget_for_other_resources(computer):
    res_little = computer.compute(TEMPS, POWERS, c2k(63.0), Resource.LITTLE)
    res_gpu = computer.compute(TEMPS, POWERS, c2k(63.0), Resource.GPU)
    assert np.isfinite(res_little.total_budget_w)
    assert np.isfinite(res_gpu.total_budget_w)


def test_strict_budget_never_larger(computer):
    res = computer.compute(TEMPS, POWERS, c2k(63.0))
    strict = computer.compute_strict(TEMPS, POWERS, c2k(63.0))
    assert strict.total_budget_w <= res.total_budget_w + 1e-9


def test_dynamic_budget_subtracts_leakage(computer):
    res = computer.compute(TEMPS, POWERS, c2k(63.0))
    assert res.dynamic_budget_w(0.3) == pytest.approx(res.total_budget_w - 0.3)


def test_headroom_sign(computer):
    head_cool = computer.headroom_k(np.full(4, c2k(40.0)), c2k(63.0))
    head_hot = computer.headroom_k(np.full(4, c2k(70.0)), c2k(63.0))
    assert np.all(head_cool > head_hot)


def test_explicit_row_selection(computer):
    res = computer.compute(TEMPS, POWERS, c2k(63.0), row=2)
    assert res.row == 2


def test_one_step_horizon_matches_eq_5_5(model):
    """With n = 1 the computation reduces to the paper's exact Eq. 5.5."""
    computer = PowerBudgetComputer(model, horizon_steps=1)
    tmax = c2k(63.0)
    res = computer.compute(TEMPS, POWERS, tmax, Resource.BIG, row=0)
    # manual Eq. 5.5: B_1 P = Tmax - A_1 T  (with the affine offset term)
    rhs = tmax - model.a[0] @ TEMPS - model.offset[0]
    manual = (rhs - model.b[0, 1:] @ POWERS[1:]) / model.b[0, 0]
    assert res.total_budget_w == pytest.approx(manual)


def test_input_validation(computer, model):
    with pytest.raises(BudgetError):
        computer.compute(TEMPS[:2], POWERS, c2k(63.0))
    with pytest.raises(BudgetError):
        computer.compute(TEMPS, POWERS[:2], c2k(63.0))
    with pytest.raises(BudgetError):
        PowerBudgetComputer(model, horizon_steps=0)


def test_unusable_coefficient_rejected(model):
    # zero out the big column: no row can budget the big cluster
    b = model.b.copy()
    b[:, 0] = 0.0
    degenerate = DiscreteThermalModel(
        a=model.a, b=b, offset=model.offset, ts_s=0.1
    )
    computer = PowerBudgetComputer(degenerate, horizon_steps=10)
    with pytest.raises(BudgetError):
        computer.compute(TEMPS, POWERS, c2k(63.0), Resource.BIG)
