"""SimulationConfig invariants and derived quantities."""

import pytest

from repro.config import DEFAULT_CONFIG, SimulationConfig
from repro.errors import ConfigurationError


def test_defaults_match_paper():
    cfg = DEFAULT_CONFIG
    assert cfg.control_period_s == pytest.approx(0.1)  # 100 ms driver period
    assert cfg.t_constraint_c == pytest.approx(63.0)  # fan's MID threshold
    assert cfg.prediction_horizon_steps == 10  # 1 s window
    assert cfg.min_big_cores == 3  # three big cores before migrating


def test_substeps_per_control():
    cfg = SimulationConfig(control_period_s=0.1, thermal_substep_s=0.02)
    assert cfg.substeps_per_control == 5


def test_derived_kelvin_properties():
    cfg = SimulationConfig(ambient_c=25.0, t_constraint_c=63.0)
    assert cfg.ambient_k == pytest.approx(298.15)
    assert cfg.t_constraint_k == pytest.approx(336.15)


def test_prediction_horizon_seconds():
    cfg = SimulationConfig(prediction_horizon_steps=10, control_period_s=0.1)
    assert cfg.prediction_horizon_s == pytest.approx(1.0)


def test_with_replaces_fields():
    cfg = DEFAULT_CONFIG.with_(t_constraint_c=70.0)
    assert cfg.t_constraint_c == 70.0
    assert cfg.control_period_s == DEFAULT_CONFIG.control_period_s
    assert DEFAULT_CONFIG.t_constraint_c == 63.0  # original untouched


def test_substep_must_divide_control_period():
    with pytest.raises(ConfigurationError):
        SimulationConfig(control_period_s=0.1, thermal_substep_s=0.03)


def test_rejects_nonpositive_periods():
    with pytest.raises(ConfigurationError):
        SimulationConfig(control_period_s=0.0)
    with pytest.raises(ConfigurationError):
        SimulationConfig(thermal_substep_s=-0.1)


def test_rejects_bad_horizon_and_core_counts():
    with pytest.raises(ConfigurationError):
        SimulationConfig(prediction_horizon_steps=0)
    with pytest.raises(ConfigurationError):
        SimulationConfig(min_big_cores=0)
    with pytest.raises(ConfigurationError):
        SimulationConfig(min_big_cores=5)
