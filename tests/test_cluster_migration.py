"""Integration: the full last-resort path (core shutdown -> little cluster).

Under an aggressive thermal constraint the big cluster cannot satisfy the
budget even at three cores x f_min, so the policy must migrate everything
to the little cluster -- and migrate back once the headroom returns
(Section 5.2's complete decision ladder, exercised in closed loop).
"""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.sim.engine import Simulator, ThermalMode
from repro.sim.experiment import make_dtpm_governor
from repro.workloads.generator import synthesize


@pytest.fixture(scope="module")
def aggressive_run(models):
    config = SimulationConfig(t_constraint_c=42.0)
    workload = synthesize("high", 30.0, threads=4, seed=3)
    governor = make_dtpm_governor(models, config=config)
    sim = Simulator(
        workload,
        ThermalMode.DTPM,
        dtpm=governor,
        config=config,
        warm_start_c=38.0,
        max_duration_s=400.0,
    )
    return sim.run(), config


def test_run_completes_despite_migrations(aggressive_run):
    result, _ = aggressive_run
    assert result.completed


def test_migrates_to_little_and_back(aggressive_run):
    result, _ = aggressive_run
    cluster = result.trace.column("cluster_is_big")
    assert result.cluster_migrations >= 2  # there and back again
    assert 0.02 < float(np.mean(cluster == 0.0)) < 0.9
    # starts and (having cooled) finishes on the big cluster
    assert cluster[0] == 1.0


def test_cores_offlined_before_migrating(aggressive_run):
    result, _ = aggressive_run
    assert result.cores_offlined > 0
    online = result.trace.column("online_cores")
    assert online.min() <= 3


def test_constraint_respected_within_tolerance(aggressive_run):
    result, config = aggressive_run
    # bounded overshoot even under the pathological constraint
    assert result.peak_temp_c() < config.t_constraint_c + 2.5


def test_little_cluster_frequency_valid(aggressive_run):
    result, _ = aggressive_run
    cluster = result.trace.column("cluster_is_big")
    little_f = result.trace.column("little_freq_hz")[cluster == 0.0]
    if little_f.size:
        from repro.platform.specs import LITTLE_FREQUENCIES_HZ

        for f in np.unique(little_f):
            assert any(abs(f - lf) < 1.0 for lf in LITTLE_FREQUENCIES_HZ)


def test_migration_costs_performance(models):
    """The same workload at a relaxed constraint finishes faster."""
    workload = synthesize("high", 30.0, threads=4, seed=3)
    tight_cfg = SimulationConfig(t_constraint_c=42.0)
    loose_cfg = SimulationConfig(t_constraint_c=75.0)
    tight = Simulator(
        workload,
        ThermalMode.DTPM,
        dtpm=make_dtpm_governor(models, config=tight_cfg),
        config=tight_cfg,
        warm_start_c=38.0,
        max_duration_s=500.0,
    ).run()
    loose = Simulator(
        workload,
        ThermalMode.DTPM,
        dtpm=make_dtpm_governor(models, config=loose_cfg),
        config=loose_cfg,
        warm_start_c=38.0,
        max_duration_s=500.0,
    ).run()
    assert tight.execution_time_s > loose.execution_time_s
