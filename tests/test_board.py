"""OdroidBoard: plant integration, warm start, sensor view, power meter."""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.platform.board import OdroidBoard
from repro.units import KELVIN_OFFSET


@pytest.fixture()
def board():
    return OdroidBoard(config=SimulationConfig(), fan_enabled=False)


def _run(board, seconds, utils=(1.0,) * 4, freq=1.6e9, gpu=0.05, mem=0.3):
    board.soc.big.set_frequency(freq)
    for _ in range(int(seconds * 10)):
        board.step(utils, (0.0,) * 4, gpu, mem, 0.1)


def test_warm_start_sets_hotspots(board):
    board.warm_start(50.0)
    temps = board.true_hotspots_k() - KELVIN_OFFSET
    assert np.allclose(temps, 50.0, atol=0.01)


def test_time_advances(board):
    _run(board, 2.0)
    assert board.time_s == pytest.approx(2.0)


def test_full_load_heats_up(board):
    board.warm_start(40.0)
    t0 = board.true_hotspots_k().max()
    _run(board, 30.0)
    assert board.true_hotspots_k().max() > t0 + 8.0


def test_idle_cools_down(board):
    board.warm_start(70.0)
    _run(board, 30.0, utils=(0.05,) * 4, freq=8e8, gpu=0.0, mem=0.05)
    assert board.true_hotspots_k().max() < 70.0 + KELVIN_OFFSET


def test_fan_limits_temperature():
    hot = OdroidBoard(config=SimulationConfig(), fan_enabled=False)
    cooled = OdroidBoard(config=SimulationConfig(), fan_enabled=True)
    for b in (hot, cooled):
        b.warm_start(50.0)
        _run(b, 120.0)
    assert cooled.true_hotspots_k().max() < hot.true_hotspots_k().max() - 1.0
    assert cooled.fan.speed > 0


def test_sensor_snapshot_contents(board):
    board.warm_start(45.0)
    _run(board, 1.0)
    snap = board.read_sensors()
    assert snap.temperatures_k.shape == (4,)
    assert snap.powers_w.shape == (4,)
    assert snap.max_temperature_k == pytest.approx(
        snap.temperatures_k.max()
    )
    assert 0 <= snap.hottest_core < 4
    # sensors should be near ground truth
    assert np.allclose(
        snap.temperatures_k, board.true_hotspots_k(), atol=1.0
    )


def test_platform_power_includes_static_floor(board):
    _run(board, 1.0, utils=(0.0,) * 4, freq=8e8, gpu=0.0, mem=0.0)
    assert board.true_platform_power_w() > board.spec.platform_static_power_w


def test_meter_accumulates_energy(board):
    _run(board, 5.0)
    assert board.meter.energy_j > 0
    assert board.meter.average_power_w == pytest.approx(
        board.meter.energy_j / 5.0, rel=0.01
    )


def test_loaded_board_draws_more_power(board):
    b_idle = OdroidBoard(config=SimulationConfig(), fan_enabled=False)
    _run(b_idle, 5.0, utils=(0.05,) * 4, freq=8e8, gpu=0.0, mem=0.05)
    _run(board, 5.0)
    assert (
        board.meter.average_power_w > b_idle.meter.average_power_w + 1.0
    )
