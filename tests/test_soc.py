"""ExynosSoc: cluster exclusivity, switching, power aggregation."""

import numpy as np
import pytest

from repro.errors import ClusterStateError
from repro.platform.soc import ExynosSoc
from repro.platform.specs import CLUSTER_MIGRATION_PENALTY_S, Resource
from repro.units import celsius_to_kelvin as c2k


@pytest.fixture()
def soc():
    return ExynosSoc()


TEMPS = {"big": c2k(55), "little": c2k(50), "gpu": c2k(52), "mem": c2k(50)}


def test_boots_on_big_cluster(soc):
    assert soc.active_cluster is Resource.BIG
    assert soc.big.active
    assert not soc.little.active


def test_switch_to_little_and_back(soc):
    penalty = soc.switch_cluster(Resource.LITTLE)
    assert penalty == pytest.approx(CLUSTER_MIGRATION_PENALTY_S)
    assert soc.active_cluster is Resource.LITTLE
    assert soc.little.num_online == 4
    assert soc.little.frequency_hz == soc.little.opp_table.f_min_hz
    penalty2 = soc.switch_cluster(Resource.BIG)
    assert penalty2 > 0
    assert soc.active_cluster is Resource.BIG


def test_switch_to_same_cluster_is_free(soc):
    assert soc.switch_cluster(Resource.BIG) == 0.0


def test_cannot_switch_to_gpu(soc):
    with pytest.raises(ClusterStateError):
        soc.switch_cluster(Resource.GPU)


def test_power_state_layout(soc):
    soc.big.set_frequency(1.6e9)
    soc.gpu.set_utilisation(0.5)
    soc.mem.set_traffic(0.3)
    state = soc.power_state(TEMPS, (1.0,) * 4, (0.0,) * 4)
    vec = state.resource_vector_w()
    assert vec.shape == (4,)
    assert vec[0] > vec[1]  # active big >> gated little
    assert state.total_w == pytest.approx(vec.sum())
    assert vec.sum() == pytest.approx(
        state.dynamic_vector_w().sum() + state.leakage_vector_w().sum()
    )


def test_big_core_powers_follow_utilisation(soc):
    soc.big.set_frequency(1.6e9)
    state = soc.power_state(TEMPS, (1.0, 0.2, 0.2, 0.2), (0.0,) * 4)
    per_core = state.big_core_powers_w
    assert per_core.shape == (4,)
    assert per_core[0] > per_core[1]
    assert per_core[0] > 2.0 * per_core[2]


def test_offline_core_gets_no_power(soc):
    soc.big.set_core_online(3, False)
    state = soc.power_state(TEMPS, (1.0,) * 4, (0.0,) * 4)
    assert state.big_core_powers_w[3] == 0.0


def test_gated_big_cluster_spreads_residual_leakage(soc):
    soc.switch_cluster(Resource.LITTLE)
    state = soc.power_state(TEMPS, (0.0,) * 4, (1.0,) * 4)
    per_core = state.big_core_powers_w
    assert np.all(per_core > 0)
    assert np.allclose(per_core, per_core[0])
    assert per_core.sum() == pytest.approx(
        state.per_resource[Resource.BIG].leakage_w
    )


def test_active_cpu_accessor(soc):
    assert soc.active_cpu() is soc.big
    soc.switch_cluster(Resource.LITTLE)
    assert soc.active_cpu() is soc.little


def test_inconsistent_state_detected(soc):
    soc.little.activate()  # both clusters active: illegal platform state
    with pytest.raises(ClusterStateError):
        _ = soc.active_cluster
