"""Combined power model (ResourcePowerModel / PowerModel / OperatingPoint)."""

import numpy as np
import pytest

from repro.errors import ModelError, NotFittedError
from repro.platform.specs import BIG_OPP_TABLE, POWER_RESOURCES, Resource
from repro.power.characterization import default_power_model
from repro.power.leakage import LeakageModel
from repro.power.model import OperatingPoint, PowerModel, ResourcePowerModel
from repro.units import celsius_to_kelvin as c2k


@pytest.fixture()
def big_model():
    leak = LeakageModel(c1=7.7e-3, c2=-2900.0, i_gate=0.010)
    return ResourcePowerModel(Resource.BIG, leak, BIG_OPP_TABLE)


def test_observe_updates_alpha_c(big_model):
    t, f = c2k(55), 1.6e9
    vdd = BIG_OPP_TABLE.voltage(f)
    total = 2.0 + big_model.leakage.power_w(t, vdd)
    decomp = big_model.observe(total, t, vdd, f)
    assert decomp.dynamic_w == pytest.approx(2.0)
    assert decomp.leakage_w == pytest.approx(total - 2.0)
    assert big_model.dynamic.estimator.sample_count == 1


def test_predict_total_roundtrip(big_model):
    t, f = c2k(55), 1.6e9
    vdd = BIG_OPP_TABLE.voltage(f)
    total = 2.0 + big_model.leakage.power_w(t, vdd)
    big_model.observe(total, t, vdd, f)
    assert big_model.predict_total_w(f, t) == pytest.approx(total, rel=1e-6)


def test_predict_uses_opp_voltage(big_model):
    t = c2k(55)
    big_model.observe(1.0, t, 1.25, 1.6e9)
    p_low = big_model.predict_total_w(8e8, t)
    p_high = big_model.predict_total_w(1.6e9, t)
    assert p_high > p_low


def test_predict_requires_vdd_without_table():
    leak = LeakageModel(c1=1e-3, c2=-2900.0, i_gate=0.004)
    model = ResourcePowerModel(Resource.MEM, leak, opp_table=None)
    with pytest.raises(ModelError):
        model.predict_total_w(1.0, c2k(50))
    assert model.predict_total_w(1.0, c2k(50), vdd=1.2) > 0


def test_power_model_requires_all_resources():
    leak = LeakageModel(c1=1e-3, c2=-2900.0, i_gate=0.004)
    with pytest.raises(NotFittedError):
        PowerModel({Resource.BIG: ResourcePowerModel(Resource.BIG, leak)})


def test_observe_vector_skips_gated_resources():
    pm = default_power_model()
    op = OperatingPoint(
        big=(1.25, 1.6e9), little=None, gpu=(0.9, 1.77e8), mem=(1.2, 1.0)
    )
    powers = np.array([2.0, 0.01, 0.2, 0.3])
    out = pm.observe_vector(powers, c2k(55), op)
    assert Resource.BIG in out
    assert Resource.LITTLE not in out  # gated -> not observed
    assert Resource.GPU in out and Resource.MEM in out


def test_leakage_vector_layout():
    pm = default_power_model()
    op = OperatingPoint(
        big=(1.25, 1.6e9), little=None, gpu=(0.9, 1.77e8), mem=(1.2, 1.0)
    )
    leaks = pm.leakage_vector_w(c2k(60), op)
    assert leaks.shape == (len(POWER_RESOURCES),)
    assert leaks[0] > 0 and leaks[2] > 0 and leaks[3] > 0
    assert leaks[1] == 0.0  # gated little contributes nothing


def test_operating_point_lookup():
    op = OperatingPoint(big=(1.0, 1e9), little=None, gpu=(0.9, 2e8), mem=(1.2, 1.0))
    assert op.for_resource(Resource.BIG) == (1.0, 1e9)
    assert op.for_resource(Resource.LITTLE) is None
