"""Nonlinear leakage fit (the furnace's estimator)."""

import math

import numpy as np
import pytest

from repro.errors import ModelError
from repro.power.fitting import fit_leakage, linear_fit
from repro.units import celsius_to_kelvin as c2k


def _synth_total_power(temps_k, c1, c2, i_gate, p_dyn, vdd):
    return [
        vdd * (c1 * t ** 2 * math.exp(c2 / t) + i_gate) + p_dyn for t in temps_k
    ]


def test_fit_recovers_leakage_curve():
    temps = [c2k(t) for t in (40, 50, 60, 70, 80)]
    vdd = 0.92
    true = dict(c1=7.7e-3, c2=-2900.0, i_gate=0.010, p_dyn=0.35)
    powers = _synth_total_power(temps, true["c1"], true["c2"], true["i_gate"], true["p_dyn"], vdd)
    fit = fit_leakage(temps, powers, vdd)
    # The gate current is confounded with the constant dynamic power, so
    # only the temperature-dependent component and the *total* constant are
    # identifiable from a furnace sweep.
    for t in temps:
        truth_var = true["c1"] * t ** 2 * math.exp(true["c2"] / t)
        assert fit.c1 * t ** 2 * math.exp(fit.c2 / t) == pytest.approx(
            truth_var, rel=0.10
        )
    assert fit.i_gate == 0.0
    assert fit.p_dynamic_w == pytest.approx(
        true["p_dyn"] + vdd * true["i_gate"], abs=0.03
    )
    assert fit.residual_rms_w < 1e-3


def test_fit_tolerates_measurement_noise():
    rng = np.random.default_rng(0)
    temps = [c2k(t) for t in np.linspace(40, 80, 9)]
    vdd = 0.92
    powers = np.array(
        _synth_total_power(temps, 7.7e-3, -2900.0, 0.010, 0.35, vdd)
    )
    powers *= 1.0 + rng.normal(0.0, 0.005, size=powers.shape)
    fit = fit_leakage(temps, powers, vdd)
    for t in (temps[0], temps[-1]):
        truth_var = 7.7e-3 * t ** 2 * math.exp(-2900.0 / t)
        assert fit.c1 * t ** 2 * math.exp(fit.c2 / t) == pytest.approx(
            truth_var, rel=0.20
        )


def test_fit_requires_enough_points():
    with pytest.raises(ModelError):
        fit_leakage([c2k(40), c2k(50)], [0.4, 0.5], 0.92)


def test_fit_rejects_bad_inputs():
    temps = [c2k(t) for t in (40, 50, 60, 70, 80)]
    with pytest.raises(ModelError):
        fit_leakage(temps, [0.4] * 5, -1.0)
    with pytest.raises(ModelError):
        fit_leakage([-1.0] * 5, [0.4] * 5, 0.92)


def test_linear_fit():
    slope, intercept = linear_fit([0.0, 1.0, 2.0], [1.0, 3.0, 5.0])
    assert slope == pytest.approx(2.0)
    assert intercept == pytest.approx(1.0)
    with pytest.raises(ModelError):
        linear_fit([1.0], [1.0])
