"""Furnace characterization: the full Section 4.1.1 procedure end to end.

These tests run the simulated furnace against the board's ground truth and
verify that what the procedure recovers matches what the silicon actually
does -- without ever reading the hidden constants directly.
"""

import pytest

from repro.platform.specs import LEAKAGE_SPECS, Resource
from repro.power.characterization import (
    DEFAULT_SETPOINTS_C,
    FurnaceRig,
    default_leakage_models,
    default_power_model,
)
from repro.units import celsius_to_kelvin as c2k


@pytest.fixture(scope="module")
def characterization():
    rig = FurnaceRig(soak_s=60.0, measure_s=30.0)
    return rig, rig.characterize()


def test_furnace_covers_paper_setpoints():
    assert DEFAULT_SETPOINTS_C == (40.0, 50.0, 60.0, 70.0, 80.0)


def test_total_power_rises_with_furnace_temperature(characterization):
    _, result = characterization
    big_powers = [p.powers_w[0] for p in result.points_big_session]
    assert all(b > a for a, b in zip(big_powers, big_powers[1:]))


def test_junction_tracks_setpoint(characterization):
    _, result = characterization
    for point in result.points_big_session:
        # light workload: small self-heating above the furnace setpoint
        assert 0.0 < (point.junction_temp_k - c2k(point.setpoint_c)) < 8.0


def test_fitted_models_match_ground_truth(characterization):
    rig, result = characterization
    models = result.leakage_models()
    spec = rig.spec
    vdds = {
        Resource.BIG: spec.big_opp.voltage(spec.big_opp.f_min_hz),
        Resource.LITTLE: spec.little_opp.voltage(spec.little_opp.f_min_hz),
        Resource.GPU: spec.gpu_opp.voltage(spec.gpu_opp.f_min_hz),
        Resource.MEM: spec.mem_vdd,
    }
    for resource, model in models.items():
        truth = LEAKAGE_SPECS[resource]
        for t_c in (45.0, 60.0, 75.0):
            t = c2k(t_c)
            assert model.power_w(t, vdds[resource]) == pytest.approx(
                truth.power(t, vdds[resource]), rel=0.25
            ), "%s leakage off at %.0f C" % (resource, t_c)


def test_build_power_model_covers_all_resources(characterization):
    rig, result = characterization
    pm = rig.build_power_model(result)
    for resource in Resource:
        assert pm[resource] is not None


def test_default_leakage_models_match_cached_fit():
    models = default_leakage_models()
    assert set(models) == set(Resource)
    big = models[Resource.BIG]
    # cached fit reproduces Fig. 4.3's range at the furnace voltage
    assert 0.05 < big.power_w(c2k(40), 0.92) < 0.12
    assert 0.20 < big.power_w(c2k(80), 0.92) < 0.35


def test_default_power_model_has_opp_tables():
    pm = default_power_model()
    assert pm[Resource.BIG].opp_table is not None
    assert pm[Resource.MEM].opp_table is None  # memory has no DVFS
