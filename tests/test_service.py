"""The evaluation service: warm path, cold jobs, coalescing, error shapes."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.runner import ParallelRunner, ResultCache
from repro.runner.spec import RunSpec
from repro.service import EvaluationService, JobQueue, ServiceClosed
from repro.sim.engine import ThermalMode
from repro.workloads import synthesize


def _spec(seed=1, name="svc-test"):
    """A seconds-scale model-free spec (NO_FAN needs no identified models)."""
    workload = synthesize("medium", duration_s=3.0, threads=2, seed=seed,
                          name="%s-%d" % (name, seed))
    return RunSpec(workload=workload, mode=ThermalMode.NO_FAN,
                   max_duration_s=10.0)


@pytest.fixture()
def service():
    svc = EvaluationService(cache=ResultCache(root=None), workers=2).start()
    yield svc
    svc.shutdown(drain=False)


def _post(service, path, payload):
    data = json.dumps(payload).encode()
    req = urllib.request.Request(
        service.url + path, data=data,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def _get(service, path):
    try:
        with urllib.request.urlopen(service.url + path, timeout=60) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def _await_job(service, job_id, timeout_s=60.0):
    deadline = time.time() + timeout_s
    while time.time() < deadline:
        status, body = _get(service, "/v1/jobs/" + job_id)
        assert status == 200
        if body["state"] in ("done", "failed"):
            return body
        time.sleep(0.05)
    raise AssertionError("job %s did not finish" % job_id)


def test_warm_request_executes_nothing(service, monkeypatch):
    spec = _spec(seed=10)
    ParallelRunner(workers=1, cache=service.cache).run([spec])

    # any attempt to simulate from here on is a test failure
    def _forbidden(*args, **kwargs):
        raise AssertionError("warm request reached the execution layer")

    monkeypatch.setattr("repro.runner.runner.execute_batch", _forbidden)
    status, body = _post(service, "/v1/runs", spec.to_dict())
    assert status == 200
    assert body["status"] == "done" and body["cached"] is True
    assert body["summary"]["benchmark"] == spec.workload.name
    assert service.jobs.executed == 0
    # and again: the byte-identical body rides the warm-response memo
    status, body2 = _post(service, "/v1/runs", spec.to_dict())
    assert status == 200 and body2 == body


def test_cold_request_completes_through_job_endpoint(service):
    spec = _spec(seed=11)
    status, body = _post(service, "/v1/runs", spec.to_dict())
    assert status == 202
    assert body["status"] == "queued" and not body["coalesced"]
    job = _await_job(service, body["job"])
    assert job["state"] == "done"
    assert job["executed"] == 1 and job["completed"] == 1
    status, summary = _get(service, "/v1/runs/" + body["key"])
    assert status == 200
    assert summary["benchmark"] == spec.workload.name
    assert summary["key"] == body["key"]
    # the run is warm now
    status, again = _post(service, "/v1/runs", spec.to_dict())
    assert status == 200 and again["cached"] is True


def test_identical_inflight_requests_coalesce(service, monkeypatch):
    import repro.runner.runner as runner_mod

    real = runner_mod.execute_batch
    calls = []
    gate = threading.Event()

    def slow_execute(specs, *args, **kwargs):
        calls.append(len(specs))
        gate.wait(10.0)  # hold the job in flight until every POST landed
        return real(specs, *args, **kwargs)

    monkeypatch.setattr(runner_mod, "execute_batch", slow_execute)

    spec = _spec(seed=12)
    payload = spec.to_dict()
    responses = []

    def post():
        responses.append(_post(service, "/v1/runs", payload))

    threads = [threading.Thread(target=post) for _ in range(5)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    gate.set()

    assert all(status == 202 for status, _ in responses)
    job_ids = {body["job"] for _, body in responses}
    assert len(job_ids) == 1, "coalesced requests must share one job"
    assert sum(body["coalesced"] for _, body in responses) == 4
    job = _await_job(service, job_ids.pop())
    assert job["state"] == "done"
    assert job["waiters"] == 5
    assert calls == [1], "five identical requests, exactly one execution"
    assert service.jobs.coalesced == 4


def test_malformed_payloads_get_structured_400(service):
    # not even JSON
    req = urllib.request.Request(
        service.url + "/v1/runs", data=b"{nope",
        headers={"Content-Type": "application/json"},
    )
    with pytest.raises(urllib.error.HTTPError) as err:
        urllib.request.urlopen(req, timeout=30)
    assert err.value.code == 400
    body = json.loads(err.value.read())
    assert body["error"]["type"] == "invalid_json"

    # JSON, but not a schema-1 spec
    for payload, fragment in [
        ({"workload": "dijkstra", "mode": "dtpm"}, "schema"),
        ({"schema": 1, "workload": "dijkstra", "mode": "x"}, "mode"),
        ({"schema": 1, "workload": "dijkstra", "mode": "dtpm",
          "bogus": 1}, "bogus"),
    ]:
        status, body = _post(service, "/v1/runs", payload)
        assert status == 400
        assert body["error"]["type"] == "WireError"
        assert fragment in body["error"]["message"]


def test_unknown_key_and_job_are_404(service):
    status, body = _get(service, "/v1/runs/" + "0" * 64)
    assert status == 404 and body["error"]["type"] == "unknown_key"
    status, body = _get(service, "/v1/runs/" + "0" * 64 + "/trace")
    assert status == 404 and body["error"]["type"] == "unknown_key"
    status, body = _get(service, "/v1/jobs/job-999999")
    assert status == 404 and body["error"]["type"] == "unknown_job"
    # non-hex keys never reach the filesystem
    status, body = _get(service, "/v1/runs/..%2f..%2fetc")
    assert status == 404 and body["error"]["type"] == "unknown_path"


def test_matrix_endpoint_reports_per_key_status(service):
    from repro.runner import ExperimentMatrix

    matrix = ExperimentMatrix(
        workloads=(_spec(seed=13).workload, _spec(seed=14).workload),
        modes=(ThermalMode.NO_FAN,),
        max_duration_s=10.0,
    )
    status, body = _post(service, "/v1/matrix", matrix.to_dict())
    assert status == 202
    assert body["total"] == 2 and body["queued"] == 2
    assert body["job"] is not None
    job = _await_job(service, body["job"])
    assert job["state"] == "done" and job["completed"] == 2
    status, body = _post(service, "/v1/matrix", matrix.to_dict())
    assert status == 200
    assert body["cached"] == 2 and body["job"] is None
    assert all(r["status"] == "cached" for r in body["runs"])


def test_health_and_stats(service):
    status, body = _get(service, "/healthz")
    assert status == 200 and body["ok"] is True
    status, body = _get(service, "/v1/stats")
    assert status == 200
    assert body["queue"]["workers"] == 2
    assert body["cache"]["root"] is None


def test_queue_rejects_work_after_close():
    cache = ResultCache(root=None)
    queue = JobQueue(cache=cache, workers=1)
    queue.close(drain=True)
    spec = _spec(seed=15)
    with pytest.raises(ServiceClosed):
        queue.submit([spec], ["0" * 64])


def test_graceful_shutdown_drains_queued_jobs():
    service = EvaluationService(cache=ResultCache(root=None), workers=1)
    service.start()
    try:
        spec = _spec(seed=16)
        status, body = _post(service, "/v1/runs", spec.to_dict())
        assert status == 202
        key = body["key"]
        service.shutdown(drain=True)
        assert service.cache.get(key) is not None, (
            "drain must finish queued work before the service exits"
        )
    finally:
        service.jobs.close(drain=False)
