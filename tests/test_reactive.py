"""Reactive throttling heuristic (the paper's fan-mimicking baseline)."""

import pytest

from repro.errors import ConfigurationError
from repro.governors.base import PlatformConfig
from repro.governors.reactive import ReactiveThrottleGovernor
from repro.platform.specs import BIG_OPP_TABLE, Resource
from repro.units import celsius_to_kelvin as c2k, mhz


@pytest.fixture()
def gov():
    return ReactiveThrottleGovernor(BIG_OPP_TABLE)


PROPOSAL = PlatformConfig(
    cluster=Resource.BIG,
    big_freq_hz=mhz(1600),
    little_freq_hz=mhz(1200),
    gpu_freq_hz=mhz(177),
    big_online=4,
    little_online=4,
)


def test_no_throttle_below_63(gov):
    out = gov.control(c2k(60.0), PROPOSAL)
    assert out == PROPOSAL
    assert gov.level == 0


def test_first_level_is_18_percent(gov):
    out = gov.control(c2k(64.0), PROPOSAL)
    assert gov.level == 1
    assert out.big_freq_hz == BIG_OPP_TABLE.floor(mhz(1600) * 0.82)


def test_second_level_is_25_percent(gov):
    out = gov.control(c2k(69.0), PROPOSAL)
    assert gov.level == 2
    assert out.big_freq_hz == BIG_OPP_TABLE.floor(mhz(1600) * 0.75)


def test_throttle_is_sticky_until_release_point(gov):
    gov.control(c2k(64.0), PROPOSAL)
    # cooled a bit, but above the release point: still throttled
    out = gov.control(c2k(60.0), PROPOSAL)
    assert gov.level == 1
    assert out.big_freq_hz < mhz(1600)
    # well below the release hysteresis: free again
    out = gov.control(c2k(56.0), PROPOSAL)
    assert gov.level == 0
    assert out.big_freq_hz == mhz(1600)


def test_level_descends_one_at_a_time(gov):
    gov.control(c2k(69.0), PROPOSAL)
    assert gov.level == 2
    gov.control(c2k(61.0), PROPOSAL)  # below 68-6
    assert gov.level == 1
    gov.control(c2k(56.0), PROPOSAL)
    assert gov.level == 0


def test_throttle_always_reduces_frequency(gov):
    """Even when the ratio rounds to the same OPP, step down at least one."""
    low_proposal = PROPOSAL.with_(big_freq_hz=mhz(900))
    out = gov.control(c2k(64.0), low_proposal)
    assert out.big_freq_hz < mhz(900)


def test_reset(gov):
    gov.control(c2k(69.0), PROPOSAL)
    gov.reset()
    assert gov.level == 0


def test_validation():
    with pytest.raises(ConfigurationError):
        ReactiveThrottleGovernor(
            BIG_OPP_TABLE, first_threshold_c=68.0, second_threshold_c=63.0
        )
    with pytest.raises(ConfigurationError):
        ReactiveThrottleGovernor(BIG_OPP_TABLE, first_throttle=0.0)
