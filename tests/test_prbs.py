"""PRBS generation (Section 4.2.1's excitation signals)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.thermal.prbs import PrbsSignal, balance, prbs_bits, prbs_levels


@pytest.mark.parametrize("order", [4, 5, 6, 7, 8, 9, 10, 11])
def test_maximal_length_period(order):
    bits = prbs_bits(order)
    n = 2 ** order - 1
    assert bits.size == n
    # every non-zero length-`order` window appears exactly once
    ext = np.concatenate([bits, bits[:order]])
    windows = {tuple(ext[i : i + order]) for i in range(n)}
    assert len(windows) == n


@pytest.mark.parametrize("order", [5, 7, 9])
def test_balance_property(order):
    bits = prbs_bits(order)
    ones = int(bits.sum())
    assert ones == 2 ** (order - 1)  # maximal-length: one extra '1'


def test_levels_are_plus_minus_one():
    levels = prbs_levels(6)
    assert set(np.unique(levels)) == {-1, 1}


def test_seed_changes_phase_not_content():
    a = prbs_bits(7, seed=1)
    b = prbs_bits(7, seed=5)
    assert not np.array_equal(a, b)
    # same m-sequence: some cyclic shift matches
    doubled = np.concatenate([a, a])
    assert any(
        np.array_equal(doubled[s : s + a.size], b) for s in range(a.size)
    )


def test_zero_seed_coerced():
    assert prbs_bits(5, length=10, seed=0).size == 10


def test_unsupported_order_rejected():
    with pytest.raises(ConfigurationError):
        prbs_bits(3)
    with pytest.raises(ConfigurationError):
        prbs_bits(5, length=0)


def test_signal_holds_chip_value():
    sig = PrbsSignal(0.0, 1.0, chip_s=2.0, order=5)
    assert sig.value_at(0.0) == sig.value_at(1.9)


def test_signal_levels_are_endpoints():
    sig = PrbsSignal(8e8, 1.6e9, chip_s=1.0, order=6)
    values = {sig.value_at(t * 0.5) for t in range(100)}
    assert values <= {8e8, 1.6e9}
    assert len(values) == 2


def test_signal_sample_grid():
    sig = PrbsSignal(0.0, 1.0, chip_s=1.0, order=5)
    samples = sig.sample(10.0, 0.1)
    assert samples.shape == (100,)
    assert 0.2 < samples.mean() < 0.8  # both levels present


def test_signal_validation():
    with pytest.raises(ConfigurationError):
        PrbsSignal(1.0, 0.5, chip_s=1.0)
    with pytest.raises(ConfigurationError):
        PrbsSignal(0.0, 1.0, chip_s=0.0)


def test_balance_helper():
    assert balance([0, 1, 1, 1]) == pytest.approx(0.75)
    with pytest.raises(ConfigurationError):
        balance([])
