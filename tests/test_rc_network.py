"""Ground-truth thermal RC network: physics sanity and exact integration."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.thermal.rc_network import ThermalNode, ThermalRCNetwork, node_power_vector


def _two_node(ambient_k=300.0, nonlinear=0.0):
    nodes = [
        ThermalNode("chip", 1.0),
        ThermalNode("sink", 10.0, g_ambient_w_per_k=0.1, cooled=True),
    ]
    return ThermalRCNetwork(
        nodes, [("chip", "sink", 0.5)], ambient_k, nonlinear_cooling_coeff=nonlinear
    )


def test_starts_at_ambient():
    net = _two_node()
    assert np.allclose(net.temperatures_k, 300.0)


def test_zero_power_stays_at_ambient():
    net = _two_node()
    net.step([0.0, 0.0], 10.0)
    assert np.allclose(net.temperatures_k, 300.0, atol=1e-9)


def test_steady_state_matches_hand_calculation():
    net = _two_node()
    # 1 W into the chip: all of it crosses sink->ambient (R = 10 K/W),
    # and chip sits another 1 W * 2 K/W above the sink.
    ss = net.steady_state_k([1.0, 0.0])
    assert ss[1] == pytest.approx(300.0 + 10.0)
    assert ss[0] == pytest.approx(300.0 + 10.0 + 2.0)


def test_long_integration_converges_to_steady_state():
    net = _two_node()
    for _ in range(5000):
        net.step([1.0, 0.0], 0.5)
    assert np.allclose(net.temperatures_k, net.steady_state_k([1.0, 0.0]), atol=0.01)


def test_integration_step_size_invariance():
    """Exact ZOH discretisation: many small steps == one large step."""
    net_a, net_b = _two_node(), _two_node()
    for _ in range(100):
        net_a.step([1.0, 0.0], 0.01)
    net_b.step([1.0, 0.0], 1.0)
    assert np.allclose(net_a.temperatures_k, net_b.temperatures_k, atol=1e-9)


def test_cooling_gain_lowers_steady_state():
    net = _two_node()
    ss_slow = net.steady_state_k([1.0, 0.0])
    net.set_cooling_gain(2.0)
    ss_fast = net.steady_state_k([1.0, 0.0])
    assert ss_fast[1] < ss_slow[1]


def test_nonlinear_cooling_reduces_hot_steady_state():
    lin = _two_node()
    nonlin = _two_node(nonlinear=0.01)
    ss_lin = lin.steady_state_k([3.0, 0.0])
    ss_non = nonlin.steady_state_k([3.0, 0.0])
    assert ss_non[1] < ss_lin[1]
    # but at zero power both sit at ambient
    assert np.allclose(nonlin.steady_state_k([0.0, 0.0]), 300.0)


def test_monotone_heating_no_oscillation():
    net = _two_node()
    prev = net.temperatures_k
    for _ in range(200):
        cur = net.step([2.0, 0.0], 0.2)
        assert np.all(cur >= prev - 1e-9)
        prev = cur


def test_time_constants_sorted_positive():
    net = _two_node()
    taus = net.dominant_time_constants_s()
    assert taus.shape == (2,)
    assert taus[0] >= taus[1] > 0


def test_temperature_accessors():
    net = _two_node()
    net.set_uniform_temperature_k(320.0)
    assert net.temperature_k("chip") == pytest.approx(320.0)
    net.set_temperatures_k([325.0, 315.0])
    assert net.temperature_k("chip") == pytest.approx(325.0)
    with pytest.raises(ConfigurationError):
        net.temperature_k("nope")


def test_node_power_vector_helper():
    net = _two_node()
    vec = node_power_vector(net, {"chip": 1.5})
    assert vec[net.index("chip")] == 1.5
    assert vec[net.index("sink")] == 0.0
    with pytest.raises(ConfigurationError):
        node_power_vector(net, {"nope": 1.0})


def test_validation_errors():
    with pytest.raises(ConfigurationError):
        ThermalRCNetwork([], [], 300.0)
    nodes = [ThermalNode("a", 1.0), ThermalNode("b", 1.0, g_ambient_w_per_k=0.1)]
    with pytest.raises(ConfigurationError):
        ThermalRCNetwork(nodes, [("a", "b", -0.5)], 300.0)
    with pytest.raises(ConfigurationError):
        ThermalRCNetwork(nodes, [("a", "a", 0.5)], 300.0)
    # no path to ambient anywhere
    iso = [ThermalNode("a", 1.0), ThermalNode("b", 1.0)]
    with pytest.raises(ConfigurationError):
        ThermalRCNetwork(iso, [("a", "b", 0.5)], 300.0)


def test_step_input_validation():
    net = _two_node()
    with pytest.raises(SimulationError):
        net.step([1.0], 0.1)
    with pytest.raises(SimulationError):
        net.step([1.0, 0.0], -0.1)


def test_discretisation_cache_stays_bounded():
    """Long varying-gain runs (continuous effective gains from the
    temperature-dependent nonlinear factor) must not grow the
    ``(dt, gain)`` cache without limit."""
    from repro.thermal.rc_network import DISC_CACHE_SIZE

    net = _two_node()
    for i in range(3 * DISC_CACHE_SIZE):
        net.set_cooling_gain(1.0 + 1e-4 * i)  # every step a fresh key
        net.step([1.0, 0.0], 0.1)
        assert len(net._disc_cache) <= DISC_CACHE_SIZE
    assert len(net._disc_cache) == DISC_CACHE_SIZE
    # eviction is least-recently-used: the hottest key survives a miss
    hot_key = next(reversed(net._disc_cache))
    net.set_cooling_gain(99.0)
    net.step([1.0, 0.0], 0.1)
    assert hot_key in net._disc_cache


def test_node_validation():
    with pytest.raises(ConfigurationError):
        ThermalNode("bad", -1.0)
    with pytest.raises(ConfigurationError):
        ThermalNode("bad", 1.0, g_ambient_w_per_k=-0.1)
