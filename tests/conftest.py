"""Shared fixtures: expensive model building happens once per session.

Set ``REPRO_CACHE_DIR`` to persist the identified models across sessions
(and CI jobs); unset, every session builds them once, as before.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.platform.specs import PlatformSpec
from repro.runner import cached_build_models
from repro.sim.models import ModelBundle


@pytest.fixture(scope="session")
def spec() -> PlatformSpec:
    """The default (paper-calibrated) platform spec."""
    return PlatformSpec()


@pytest.fixture(scope="session")
def config() -> SimulationConfig:
    """The default simulation configuration."""
    return SimulationConfig()


@pytest.fixture(scope="session")
def models() -> ModelBundle:
    """Characterized + identified model bundle (built once per session)."""
    return cached_build_models()


@pytest.fixture()
def rng() -> np.random.Generator:
    """Deterministic per-test RNG."""
    return np.random.default_rng(1234)
