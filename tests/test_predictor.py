"""ThermalPredictor: forecasts and violation flagging."""

import numpy as np
import pytest

from repro.core.predictor import ThermalPredictor
from repro.errors import ModelError
from repro.thermal.state_space import DiscreteThermalModel
from repro.units import celsius_to_kelvin as c2k


@pytest.fixture()
def model():
    # equilibrium ~= 25 C + 20 K/W * (row . P): realistic headroom shape
    return DiscreteThermalModel(
        a=0.95 * np.eye(4),
        b=np.tile(np.array([0.9, 0.15, 0.3, 0.24]), (4, 1)),
        offset=np.full(4, 0.05 * c2k(25.0)),
        ts_s=0.1,
    )


def test_forecast_matches_model(model):
    predictor = ThermalPredictor(model, horizon_steps=10)
    temps = np.full(4, c2k(50.0))
    powers = np.array([2.0, 0.0, 0.2, 0.3])
    fc = predictor.forecast(temps, powers, c2k(63.0))
    assert np.allclose(fc.temps_k, model.predict_n_constant(temps, powers, 10))
    assert fc.max_temp_k == pytest.approx(fc.temps_k.max())
    assert fc.hottest_core == int(np.argmax(fc.temps_k))


def test_violation_flag_and_margin(model):
    predictor = ThermalPredictor(model, horizon_steps=10)
    cool = predictor.forecast(
        np.full(4, c2k(40.0)), np.zeros(4), c2k(63.0)
    )
    assert not cool.violation
    assert cool.margin_k > 0
    hot = predictor.forecast(
        np.full(4, c2k(64.0)), np.array([3.0, 0.0, 0.5, 0.4]), c2k(63.0)
    )
    assert hot.violation
    assert hot.margin_k < 0


def test_guard_band_triggers_early(model):
    temps = np.full(4, c2k(60.0))
    powers = np.array([2.0, 0.0, 0.2, 0.3])
    tight = ThermalPredictor(model, horizon_steps=10, guard_band_k=0.0)
    fc = tight.forecast(temps, powers, c2k(63.0))
    if not fc.violation:
        # a guard band as large as the margin must flip the decision
        guarded = ThermalPredictor(
            model, horizon_steps=10, guard_band_k=fc.margin_k + 0.01
        )
        assert guarded.forecast(temps, powers, c2k(63.0)).violation


def test_horizon_seconds(model):
    predictor = ThermalPredictor(model, horizon_steps=10)
    assert predictor.horizon_s == pytest.approx(1.0)


def test_forecast_trajectory(model):
    predictor = ThermalPredictor(model, horizon_steps=5)
    traj = np.tile(np.array([1.0, 0.0, 0.1, 0.2]), (5, 1))
    preds = predictor.forecast_trajectory(np.full(4, c2k(50.0)), traj)
    assert preds.shape == (5, 4)


def test_parameter_validation(model):
    with pytest.raises(ModelError):
        ThermalPredictor(model, horizon_steps=0)
    with pytest.raises(ModelError):
        ThermalPredictor(model, horizon_steps=10, guard_band_k=-1.0)
