"""CpuCluster: symmetric DVFS, hotplug rules, power decomposition."""

import pytest

from repro.errors import ClusterStateError, ConfigurationError
from repro.platform.cluster import CpuCluster
from repro.platform.specs import (
    BIG_CORE,
    BIG_LEAKAGE,
    BIG_OPP_TABLE,
    LITTLE_CORE,
    LITTLE_LEAKAGE,
    LITTLE_OPP_TABLE,
    Resource,
)
from repro.units import celsius_to_kelvin, mhz


@pytest.fixture()
def big():
    cluster = CpuCluster(Resource.BIG, BIG_OPP_TABLE, BIG_CORE, BIG_LEAKAGE)
    cluster.activate()
    return cluster


@pytest.fixture()
def little():
    return CpuCluster(
        Resource.LITTLE, LITTLE_OPP_TABLE, LITTLE_CORE, LITTLE_LEAKAGE
    )


def test_initial_state(big):
    assert big.num_online == 4
    assert big.frequency_hz == BIG_OPP_TABLE.f_min_hz
    assert big.active


def test_set_frequency_exact_only(big):
    big.set_frequency(mhz(1200))
    assert big.frequency_hz == mhz(1200)
    with pytest.raises(Exception):
        big.set_frequency(mhz(1250))


def test_request_frequency_quantises(big):
    resolved = big.request_frequency(mhz(1250))
    assert resolved == mhz(1200)
    assert big.frequency_hz == mhz(1200)


def test_voltage_tracks_frequency(big):
    big.set_frequency(mhz(800))
    v_low = big.voltage
    big.set_frequency(mhz(1600))
    assert big.voltage > v_low


def test_hotplug_and_online_list(big):
    big.set_core_online(2, False)
    assert big.num_online == 3
    assert big.online_cores == [0, 1, 3]
    big.set_core_online(2, True)
    assert big.num_online == 4


def test_cannot_offline_last_core_of_active_cluster(big):
    for core in (1, 2, 3):
        big.set_core_online(core, False)
    with pytest.raises(ClusterStateError):
        big.set_core_online(0, False)


def test_inactive_cluster_can_offline_everything(little):
    little.deactivate()
    for core in range(4):
        little.set_core_online(core, False)
    assert little.num_online == 0


def test_set_num_online_bounds(big):
    big.set_num_online(2)
    assert big.online_cores == [0, 1]
    with pytest.raises(ClusterStateError):
        big.set_num_online(0)
    with pytest.raises(ClusterStateError):
        big.set_num_online(5)


def test_core_index_bounds(big):
    with pytest.raises(ClusterStateError):
        big.set_core_online(4, False)


def test_power_scales_with_online_cores(big):
    t = celsius_to_kelvin(55)
    big.set_frequency(mhz(1600))
    p4 = big.power((1.0, 1.0, 1.0, 1.0), t)
    big.set_num_online(2)
    p2 = big.power((1.0, 1.0, 1.0, 1.0), t)
    assert p2.dynamic_w == pytest.approx(p4.dynamic_w / 2)
    assert p2.leakage_w < p4.leakage_w  # power-gated cores stop leaking


def test_power_of_gated_cluster_is_residual_leakage(little):
    little.deactivate()
    p = little.power((1.0,) * 4, celsius_to_kelvin(55))
    assert p.dynamic_w == 0.0
    assert 0.0 < p.leakage_w < 0.02


def test_power_requires_four_utilisations(big):
    with pytest.raises(ConfigurationError):
        big.power((1.0, 1.0), celsius_to_kelvin(55))


def test_dynamic_power_increases_with_frequency(big):
    t = celsius_to_kelvin(55)
    big.set_frequency(mhz(800))
    p_low = big.power((1.0,) * 4, t)
    big.set_frequency(mhz(1600))
    p_high = big.power((1.0,) * 4, t)
    # f doubles and V^2 grows another ~1.85x
    assert p_high.dynamic_w > 3.0 * p_low.dynamic_w


def test_max_dynamic_power_is_upper_bound(big):
    t = celsius_to_kelvin(80)
    big.set_frequency(BIG_OPP_TABLE.f_max_hz)
    p = big.power((1.0,) * 4, t, activity=1.0)
    assert p.dynamic_w <= big.max_dynamic_power(activity=1.0) + 1e-12


def test_cluster_requires_positive_cores():
    with pytest.raises(ConfigurationError):
        CpuCluster(Resource.BIG, BIG_OPP_TABLE, BIG_CORE, BIG_LEAKAGE, num_cores=0)


def test_total_power_property(big):
    p = big.power((0.5,) * 4, celsius_to_kelvin(50))
    assert p.total_w == pytest.approx(p.dynamic_w + p.leakage_w)
