"""Streaming trace consumers: live vs replay vs post-hoc equivalence."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.analysis.stats import (
    regulation_quality,
    stability_stats,
    stability_stats_streaming,
    streaming_stability,
)
from repro.sim.consumers import (
    AsyncConsumerPump,
    RunningStats,
    StreamingPower,
    StreamingStability,
    TraceConsumer,
    ViolationCounter,
    replay,
)
from repro.sim.engine import Simulator, ThermalMode
from repro.sim.metrics import (
    variance_reduction_factor,
    variance_reduction_factor_streaming,
)
from repro.sim.scenario import ScenarioRunner
from repro.workloads.generator import synthesize


@pytest.fixture(scope="module")
def workload():
    return synthesize("high", 20.0, threads=4, seed=11)


class Recording(TraceConsumer):
    """Test double that logs every hook invocation."""

    def __init__(self):
        self.starts = []
        self.intervals = 0
        self.ends = []

    def on_run_start(self, benchmark, mode, columns):
        self.starts.append((benchmark, mode, tuple(columns)))

    def on_interval(self, values):
        self.intervals += 1

    def on_run_end(self, result):
        self.ends.append(result)


# ---------------------------------------------------------------------------
# RunningStats
# ---------------------------------------------------------------------------
def test_running_stats_matches_numpy(rng):
    samples = rng.normal(55.0, 3.0, size=500)
    stats = RunningStats()
    for x in samples:
        stats.push(float(x))
    assert stats.count == 500
    assert stats.mean == pytest.approx(np.mean(samples), rel=1e-12)
    assert stats.variance == pytest.approx(np.var(samples), rel=1e-9)
    assert stats.min == np.min(samples) and stats.max == np.max(samples)
    assert stats.band == pytest.approx(np.ptp(samples))


def test_running_stats_empty_raises():
    stats = RunningStats()
    with pytest.raises(SimulationError):
        stats.variance
    with pytest.raises(SimulationError):
        stats.band


# ---------------------------------------------------------------------------
# live publication from the engine
# ---------------------------------------------------------------------------
def test_simulator_publishes_every_interval(workload):
    probe = Recording()
    result = Simulator(
        workload, ThermalMode.NO_FAN, max_duration_s=120.0, consumers=[probe]
    ).run()
    assert probe.starts == [(workload.name, "without_fan", tuple(result.trace.columns))]
    assert probe.intervals == len(result.trace)
    assert probe.ends == [result]


def test_violation_counter_matches_result_fields(workload, models):
    from repro.sim.experiment import make_dtpm_governor

    counter = ViolationCounter()
    result = Simulator(
        workload,
        ThermalMode.DTPM,
        dtpm=make_dtpm_governor(models),
        warm_start_c=58.0,
        max_duration_s=120.0,
        consumers=[counter],
    ).run()
    assert result.interventions > 0  # warm start near the constraint
    assert counter.interventions == result.interventions
    assert counter.violations == result.violations_predicted
    assert counter.interventions == int(result.trace.column("intervened").sum())


def test_scenario_runner_forwards_consumers(workload):
    probe = Recording()
    runner = ScenarioRunner(
        ThermalMode.NO_FAN, initial_temp_c=30.0, consumers=[probe]
    )
    results = runner.run([workload, workload])
    assert len(probe.starts) == 2
    assert probe.intervals == sum(len(r.trace) for r in results)
    assert probe.ends == results


# ---------------------------------------------------------------------------
# streaming == post-hoc
# ---------------------------------------------------------------------------
def test_streaming_stability_matches_posthoc(workload):
    live = StreamingStability(skip_s=15.0)
    result = Simulator(
        workload, ThermalMode.NO_FAN, max_duration_s=120.0, consumers=[live]
    ).run()
    assert live.peak_c == result.peak_temp_c()
    assert live.average_temp_c == pytest.approx(
        result.average_temp_c(15.0), rel=1e-12
    )
    assert live.max_min_c == pytest.approx(result.temp_max_min_c(15.0))
    assert live.variance_c2 == pytest.approx(
        result.temp_variance(15.0), rel=1e-9
    )


def test_replay_equals_live(workload):
    live = StreamingStability(skip_s=10.0)
    result = Simulator(
        workload, ThermalMode.NO_FAN, max_duration_s=120.0, consumers=[live]
    ).run()
    replayed = StreamingStability(skip_s=10.0)
    replay(result, [replayed])
    assert replayed.peak_c == live.peak_c
    assert replayed.settled.count == live.settled.count
    assert replayed.average_temp_c == pytest.approx(live.average_temp_c, rel=1e-12)
    assert replayed.variance_c2 == pytest.approx(live.variance_c2, rel=1e-12)


def test_stability_stats_streaming_equals_posthoc(workload):
    result = Simulator(workload, ThermalMode.NO_FAN, max_duration_s=120.0).run()
    post = stability_stats(result, skip_s=20.0)
    stream = stability_stats_streaming(result, skip_s=20.0)
    assert stream.mode == post.mode
    assert stream.peak_c == post.peak_c
    assert stream.average_temp_c == pytest.approx(post.average_temp_c, rel=1e-12)
    assert stream.max_min_c == pytest.approx(post.max_min_c)
    assert stream.variance_c2 == pytest.approx(post.variance_c2, rel=1e-9)


def test_streaming_regulation_quality_matches_posthoc(workload):
    result = Simulator(workload, ThermalMode.NO_FAN, max_duration_s=120.0).run()
    consumer = streaming_stability(result, skip_s=20.0, constraint_c=63.0)
    post = regulation_quality(result, 63.0, skip_s=20.0)
    stream = consumer.regulation_quality()
    for key, value in post.items():
        assert stream[key] == pytest.approx(value, rel=1e-9), key


def test_variance_reduction_streaming_matches(workload, models):
    from repro.sim.experiment import make_dtpm_governor

    base = Simulator(workload, ThermalMode.NO_FAN, max_duration_s=100.0).run()
    dtpm = Simulator(
        workload,
        ThermalMode.DTPM,
        dtpm=make_dtpm_governor(models),
        max_duration_s=100.0,
    ).run()
    assert variance_reduction_factor_streaming(
        base, dtpm, skip_s=15.0
    ) == pytest.approx(variance_reduction_factor(base, dtpm, skip_s=15.0), rel=1e-9)


class TypeProbe(TraceConsumer):
    """Records the value types every interval publishes."""

    def __init__(self):
        self.rows = 0
        self.non_float = set()

    def on_interval(self, values):
        self.rows += 1
        for name, value in values.items():
            if type(value) is not float:
                self.non_float.add((name, type(value).__name__))


def test_live_and_replay_publish_plain_floats(workload):
    """Consumers see ``float`` values identically live and on replay."""
    live = TypeProbe()
    result = Simulator(
        workload, ThermalMode.NO_FAN, max_duration_s=60.0, consumers=[live]
    ).run()
    assert live.non_float == set()

    replayed = TypeProbe()
    replay(result, [replayed])
    assert replayed.non_float == set()
    assert replayed.rows == live.rows == len(result.trace)


def test_cached_replay_aggregates_equal_live(tmp_path, workload):
    """A cache round trip changes neither consumer types nor aggregates."""
    from repro.runner import ResultCache, RunSpec, spec_key

    live = StreamingStability(skip_s=10.0, constraint_c=55.0)
    power = StreamingPower()
    result = Simulator(
        workload,
        ThermalMode.NO_FAN,
        max_duration_s=60.0,
        consumers=[live, power],
    ).run()
    cache = ResultCache(root=str(tmp_path), memory=False)
    key = spec_key(RunSpec(workload=workload, mode=ThermalMode.NO_FAN))
    cache.put(key, result)
    cached = cache.get(key)

    probe = TypeProbe()
    re_stab = StreamingStability(skip_s=10.0, constraint_c=55.0)
    re_power = StreamingPower()
    replay(cached, [probe, re_stab, re_power])
    assert probe.non_float == set()
    assert re_stab.peak_c == live.peak_c
    assert re_stab.average_temp_c == live.average_temp_c
    assert re_stab.variance_c2 == live.variance_c2
    assert re_stab.regulation_quality() == live.regulation_quality()
    for rail in StreamingPower.RAILS:
        assert re_power.mean_w(rail) == power.mean_w(rail)


def test_short_trace_clamp_matches_posthoc(workload):
    """Streaming == post-hoc on traces shorter than the skip window."""
    short = Simulator(workload, ThermalMode.NO_FAN, max_duration_s=5.0).run()
    t = short.times_s()
    span = t[-1] - t[0]
    boundary_skips = [
        span + 1.0,  # trace entirely inside the skip window: 0 settled
        (t[-2] - t[0] + span) / 2.0,  # exactly 1 settled sample
        span - 0.5,  # a few settled samples, clamp inert
    ]
    for skip in boundary_skips:
        live = StreamingStability(skip_s=skip, constraint_c=50.0)
        replay(short, [live])
        assert live.average_temp_c == short.average_temp_c(skip), skip
        assert live.max_min_c == short.temp_max_min_c(skip), skip
        assert live.variance_c2 == pytest.approx(
            short.temp_variance(skip), rel=1e-12, abs=1e-12
        ), skip
        post = regulation_quality(short, 50.0, skip_s=skip)
        stream = live.regulation_quality()
        for key, value in post.items():
            assert stream[key] == pytest.approx(value, rel=1e-12), (skip, key)
        # the clamped region is never empty on a non-empty trace
        assert live.settled_samples >= 1
    # stability_stats_streaming no longer rejects short traces post-clamp
    stats = stability_stats_streaming(short, skip_s=span + 1.0)
    assert stats.average_temp_c == short.average_temp_c(span + 1.0)
    # ...and neither does the variance-reduction metric
    assert variance_reduction_factor_streaming(
        short, short, skip_s=span + 1.0
    ) == pytest.approx(
        variance_reduction_factor(short, short, skip_s=span + 1.0)
    )


def test_streaming_power_mean_matches_trace(workload):
    power = StreamingPower()
    result = Simulator(
        workload, ThermalMode.NO_FAN, max_duration_s=80.0, consumers=[power]
    ).run()
    for rail in StreamingPower.RAILS:
        assert power.mean_w(rail) == pytest.approx(
            float(np.mean(result.trace.column(rail))), rel=1e-12
        )


# ---------------------------------------------------------------------------
# async pump: off-thread draining with flush-on-finish
# ---------------------------------------------------------------------------
def test_async_pump_streaming_equals_direct(workload):
    """Pumped consumers see the complete run by the time ``run()``
    returns (flush-on-finish), and aggregate identically to direct
    attachment."""
    direct = StreamingStability(skip_s=10.0)
    result = Simulator(
        workload, ThermalMode.NO_FAN, max_duration_s=120.0, consumers=[direct]
    ).run()

    pumped = StreamingStability(skip_s=10.0)
    probe = Recording()
    pump = AsyncConsumerPump([pumped, probe])
    pump_result = Simulator(
        workload, ThermalMode.NO_FAN, max_duration_s=120.0, consumers=[pump]
    ).run()
    assert probe.intervals == len(pump_result.trace)
    assert probe.ends == [pump_result]
    assert pumped.peak_c == direct.peak_c
    assert pumped.settled.count == direct.settled.count
    assert pumped.average_temp_c == direct.average_temp_c
    assert pumped.variance_c2 == direct.variance_c2


def test_async_pump_snapshots_interval_mappings(workload):
    """The engine reuses its per-interval mapping; the pump must hand
    each wrapped consumer a stable snapshot instead."""

    class Holder(TraceConsumer):
        def __init__(self):
            self.times = []
            self.held = []

        def on_interval(self, values):
            self.times.append(values["time_s"])
            self.held.append(values)  # deliberately violates the
            # no-holding contract -- snapshots make it safe

    holder = Holder()
    pump = AsyncConsumerPump([holder])
    result = Simulator(
        workload, ThermalMode.NO_FAN, max_duration_s=60.0, consumers=[pump]
    ).run()
    assert holder.times == list(result.trace.column("time_s"))
    # held mappings are genuine snapshots, not one recycled dict
    assert [m["time_s"] for m in holder.held] == holder.times


def test_async_pump_surfaces_downstream_errors(workload):
    class Exploding(TraceConsumer):
        def on_interval(self, values):
            raise ValueError("downstream blew up")

    pump = AsyncConsumerPump([Exploding()])
    with pytest.raises(ValueError, match="downstream blew up"):
        Simulator(
            workload, ThermalMode.NO_FAN, max_duration_s=60.0,
            consumers=[pump],
        ).run()


def test_async_pump_validates_bound():
    with pytest.raises(SimulationError):
        AsyncConsumerPump([], maxsize=0)


def test_async_pump_replay_path(workload):
    """replay() through a pump == replay() direct (cached-result path)."""
    result = Simulator(workload, ThermalMode.NO_FAN, max_duration_s=60.0).run()
    direct = StreamingPower()
    replay(result, [direct])
    pumped = StreamingPower()
    pump = AsyncConsumerPump([pumped], maxsize=4)  # tiny bound still drains
    replay(result, [pump])
    for rail in StreamingPower.RAILS:
        assert pumped.mean_w(rail) == direct.mean_w(rail)
