"""Workload traces, the Table 6.4 registry, and progress accounting."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    ALL_BENCHMARKS,
    CATEGORY_HIGH,
    CATEGORY_LOW,
    CATEGORY_MEDIUM,
    MATRIX_MULT,
    TEMPLERUN,
    WorkloadPhase,
    WorkloadProgress,
    WorkloadTrace,
    benchmark_names,
    benchmarks_by_category,
    get_benchmark,
    table_6_4_rows,
)


def test_fifteen_benchmarks_as_in_table_6_4():
    assert len(ALL_BENCHMARKS) == 15
    names = benchmark_names()
    assert len(set(names)) == 15
    # the paper's headline benchmarks are present
    for name in (
        "blowfish", "sha", "dijkstra", "patricia", "basicmath",
        "matrix_mult", "bitcount", "qsort", "crc32", "gsm", "fft",
        "jpeg", "angry_birds", "templerun", "youtube",
    ):
        assert name in names


def test_table_6_4_category_assignments():
    assert get_benchmark("blowfish").category == CATEGORY_LOW
    assert get_benchmark("sha").category == CATEGORY_MEDIUM
    assert get_benchmark("dijkstra").category == CATEGORY_LOW
    assert get_benchmark("patricia").category == CATEGORY_MEDIUM
    assert get_benchmark("basicmath").category == CATEGORY_HIGH
    assert get_benchmark("matrix_mult").category == CATEGORY_HIGH
    assert get_benchmark("templerun").category == CATEGORY_HIGH
    assert get_benchmark("youtube").category == CATEGORY_LOW


def test_every_category_populated():
    for category in (CATEGORY_LOW, CATEGORY_MEDIUM, CATEGORY_HIGH):
        assert benchmarks_by_category(category)


def test_unknown_lookups_raise():
    with pytest.raises(WorkloadError):
        get_benchmark("doom")
    with pytest.raises(WorkloadError):
        benchmarks_by_category("extreme")


def test_table_rows_structure():
    rows = table_6_4_rows()
    assert len(rows) == 15
    assert rows[0] == ("security", "blowfish", "low")


def test_games_use_gpu_and_video_too():
    assert TEMPLERUN.uses_gpu
    assert get_benchmark("angry_birds").uses_gpu
    assert get_benchmark("youtube").uses_gpu
    assert not MATRIX_MULT.uses_gpu


def test_games_are_rate_limited():
    assert TEMPLERUN.thread_demand < 1.0
    assert MATRIX_MULT.thread_demand == 1.0


def test_matrix_mult_is_four_threaded():
    assert MATRIX_MULT.threads == 4


def test_nominal_durations_match_paper_traces():
    # the plotted run lengths of the paper's figures
    assert get_benchmark("dijkstra").nominal_duration_s() == pytest.approx(64, rel=0.05)
    assert MATRIX_MULT.nominal_duration_s() == pytest.approx(60, rel=0.05)
    assert TEMPLERUN.nominal_duration_s() == pytest.approx(100, rel=0.05)
    assert get_benchmark("basicmath").nominal_duration_s() == pytest.approx(140, rel=0.05)
    assert get_benchmark("patricia").nominal_duration_s() == pytest.approx(300, rel=0.05)


def test_phase_cycling():
    trace = get_benchmark("dijkstra")
    cycle = sum(p.duration_s for p in trace.phases)
    p0 = trace.phase_at(0.0)
    assert trace.phase_at(cycle) is p0  # wraps around
    assert trace.phase_at(cycle * 3 + 0.5) is p0


def test_phaseless_trace_returns_neutral_phase():
    trace = get_benchmark("sha")
    phase = trace.phase_at(12.0)
    assert phase.demand == 1.0 and phase.gpu == 1.0


def test_progress_accounting():
    progress = WorkloadProgress(MATRIX_MULT)
    assert not progress.done
    assert progress.fraction_done == 0.0
    half = MATRIX_MULT.total_work_gcycles / 2
    progress.retire(half, 30.0)
    assert progress.fraction_done == pytest.approx(0.5)
    progress.retire(half, 30.0)
    assert progress.done
    assert progress.elapsed_s == pytest.approx(60.0)


def test_progress_rejects_negative(rng):
    progress = WorkloadProgress(MATRIX_MULT)
    with pytest.raises(WorkloadError):
        progress.retire(-1.0, 0.1)


def test_trace_validation():
    with pytest.raises(WorkloadError):
        WorkloadTrace(
            name="bad", category="nope", benchmark_type="x",
            threads=1, total_work_gcycles=10.0,
        )
    with pytest.raises(WorkloadError):
        WorkloadTrace(
            name="bad", category="low", benchmark_type="x",
            threads=0, total_work_gcycles=10.0,
        )
    with pytest.raises(WorkloadError):
        WorkloadTrace(
            name="bad", category="low", benchmark_type="x",
            threads=1, total_work_gcycles=10.0, thread_demand=0.0,
        )
    with pytest.raises(WorkloadError):
        WorkloadPhase(duration_s=0.0)
