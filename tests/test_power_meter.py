"""Platform power meter accumulation."""

import pytest

from repro.platform.power_meter import PlatformPowerMeter


def test_energy_accumulation(rng):
    meter = PlatformPowerMeter(rng, relative_noise=0.0)
    for _ in range(100):
        meter.sample(2.0, 0.1)
    assert meter.energy_j == pytest.approx(20.0)
    assert meter.average_power_w == pytest.approx(2.0)
    assert meter.last_reading_w == pytest.approx(2.0)


def test_noisy_readings_average_out(rng):
    meter = PlatformPowerMeter(rng, relative_noise=0.02)
    for _ in range(5000):
        meter.sample(3.0, 0.1)
    assert meter.average_power_w == pytest.approx(3.0, rel=0.01)


def test_reset(rng):
    meter = PlatformPowerMeter(rng)
    meter.sample(5.0, 1.0)
    meter.reset()
    assert meter.energy_j == 0.0
    assert meter.average_power_w == 0.0
    assert meter.last_reading_w == 0.0


def test_zero_time_average(rng):
    meter = PlatformPowerMeter(rng)
    assert meter.average_power_w == 0.0
