"""Smoke: every Table-6.4 benchmark completes under the default stack."""

import numpy as np
import pytest

from repro.sim.engine import Simulator, ThermalMode
from repro.workloads.benchmarks import ALL_BENCHMARKS


@pytest.mark.parametrize("workload", ALL_BENCHMARKS, ids=lambda w: w.name)
def test_benchmark_completes_with_fan(workload):
    sim = Simulator(workload, ThermalMode.DEFAULT_WITH_FAN, max_duration_s=600.0)
    result = sim.run()
    assert result.completed, workload.name
    # execution time lands near the nominal sizing (governor ramp allowed)
    nominal = workload.nominal_duration_s()
    assert nominal * 0.95 <= result.execution_time_s <= nominal * 1.35
    # physically sane traces
    temps = result.max_temps_c()
    assert np.all(temps > 20.0) and np.all(temps < 95.0)
    power = result.trace.column("platform_power_w")
    assert np.all(power[5:] > 1.0) and np.all(power < 12.0)
    # the platform never runs both clusters at once
    assert set(np.unique(result.trace.column("cluster_is_big"))) <= {0.0, 1.0}


@pytest.mark.parametrize(
    "workload",
    [w for w in ALL_BENCHMARKS if w.category == "high"],
    ids=lambda w: w.name,
)
def test_high_benchmarks_complete_under_dtpm(workload, models):
    from repro.sim.experiment import make_dtpm_governor

    sim = Simulator(
        workload,
        ThermalMode.DTPM,
        dtpm=make_dtpm_governor(models),
        max_duration_s=900.0,
    )
    result = sim.run()
    assert result.completed, workload.name
    assert result.peak_temp_c() < 66.5, workload.name
