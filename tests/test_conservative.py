"""Conservative cpufreq governor."""

import pytest

from repro.errors import ConfigurationError
from repro.governors.base import LoadSample
from repro.governors.conservative import ConservativeGovernor
from repro.platform.specs import BIG_OPP_TABLE
from repro.units import mhz


def _sample(load, freq):
    return LoadSample((load,), freq, 0.0)


def test_steps_up_one_level_on_load():
    gov = ConservativeGovernor(BIG_OPP_TABLE)
    assert gov.propose(_sample(0.95, mhz(800))) == mhz(900)


def test_steps_down_one_level_when_idle():
    gov = ConservativeGovernor(BIG_OPP_TABLE)
    assert gov.propose(_sample(0.05, mhz(1600))) == mhz(1500)


def test_holds_in_band():
    gov = ConservativeGovernor(BIG_OPP_TABLE)
    assert gov.propose(_sample(0.5, mhz(1200))) == mhz(1200)


def test_clamped_at_extremes():
    gov = ConservativeGovernor(BIG_OPP_TABLE)
    assert gov.propose(_sample(1.0, mhz(1600))) == mhz(1600)
    assert gov.propose(_sample(0.0, mhz(800))) == mhz(800)


def test_configurable_step():
    gov = ConservativeGovernor(BIG_OPP_TABLE, freq_step=3)
    assert gov.propose(_sample(1.0, mhz(800))) == mhz(1100)


def test_never_jumps_to_max():
    """Unlike ondemand: a saturating load climbs gradually."""
    gov = ConservativeGovernor(BIG_OPP_TABLE)
    freq = mhz(800)
    history = []
    for _ in range(5):
        freq = gov.propose(_sample(1.0, freq))
        history.append(freq)
    assert history == [mhz(900), mhz(1000), mhz(1100), mhz(1200), mhz(1300)]


def test_validation():
    with pytest.raises(ConfigurationError):
        ConservativeGovernor(BIG_OPP_TABLE, up_threshold=0.2, down_threshold=0.5)
    with pytest.raises(ConfigurationError):
        ConservativeGovernor(BIG_OPP_TABLE, freq_step=0)
