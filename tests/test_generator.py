"""Synthetic workload generation."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.generator import synthesize
from repro.workloads.multithreaded import fft_mt, lu_mt, matrix_mult_mt
from repro.workloads.trace import CATEGORY_HIGH, CATEGORY_LOW


def test_synthesis_is_deterministic():
    a = synthesize("medium", 60.0, seed=7)
    b = synthesize("medium", 60.0, seed=7)
    assert a.activity == b.activity
    assert a.threads == b.threads
    assert [p.duration_s for p in a.phases] == [p.duration_s for p in b.phases]


def test_different_seeds_differ():
    a = synthesize("medium", 60.0, seed=1)
    b = synthesize("medium", 60.0, seed=2)
    assert (a.activity, a.background_util) != (b.activity, b.background_util)


def test_categories_order_by_activity():
    low = synthesize(CATEGORY_LOW, 60.0, seed=3)
    high = synthesize(CATEGORY_HIGH, 60.0, seed=3)
    assert low.activity < high.activity


def test_duration_sizing():
    trace = synthesize("high", 90.0, threads=2, seed=5)
    assert trace.nominal_duration_s() == pytest.approx(90.0)


def test_gpu_demand_passthrough():
    trace = synthesize("high", 60.0, gpu_demand=0.7, seed=1)
    assert trace.gpu_demand == 0.7
    assert trace.uses_gpu


def test_phases_optional():
    trace = synthesize("low", 60.0, num_phases=0, seed=1)
    assert trace.phases == ()


def test_validation():
    with pytest.raises(WorkloadError):
        synthesize("nope", 60.0)
    with pytest.raises(WorkloadError):
        synthesize("low", -5.0)
    with pytest.raises(WorkloadError):
        synthesize("low", 60.0, threads=0)


# -- multithreaded builders (Fig. 6.10 workloads) ------------------------------
def test_fft_mt_shape():
    trace = fft_mt(threads=4, duration_s=90.0)
    assert trace.threads == 4
    assert trace.category == CATEGORY_HIGH
    assert trace.nominal_duration_s() == pytest.approx(90.0)


def test_lu_mt_shape():
    trace = lu_mt(threads=2)
    assert trace.threads == 2
    assert trace.phases  # has barrier phases


def test_matrix_mult_mt_names_by_threads():
    assert matrix_mult_mt(threads=2).name == "matrix_mult_mt2"


def test_multithreaded_validation():
    with pytest.raises(WorkloadError):
        fft_mt(threads=5)
    with pytest.raises(WorkloadError):
        lu_mt(duration_s=0.0)
