"""Suite analytics core: columnar frames over many (cached) runs."""

import json
import os

import numpy as np
import pytest

from repro.analysis.stats import (
    frequency_residency,
    frequency_residency_batch,
    regulation_quality,
    regulation_quality_batch,
    stability_stats,
    stability_stats_batch,
)
from repro.analysis.suite import SuiteFrame, summarize_dir
from repro.errors import SimulationError
from repro.runner import ParallelRunner, ResultCache, RunSpec, spec_key
from repro.runner.cache import result_to_payload
from repro.sim.engine import ThermalMode
from repro.sim.metrics import performance_loss_pct, power_savings_pct
from repro.workloads.generator import synthesize


def _specs(n=4, duration_s=10.0):
    """A small two-mode grid of short synthetic runs."""
    specs = []
    for i in range(n):
        workload = synthesize(
            "medium", duration_s, threads=1, seed=i // 2, name="syn%d" % (i // 2)
        )
        mode = (ThermalMode.DEFAULT_WITH_FAN, ThermalMode.NO_FAN)[i % 2]
        specs.append(
            RunSpec(
                workload=workload,
                mode=mode,
                max_duration_s=4 * duration_s,
                seed=500 + i,
            )
        )
    return specs


@pytest.fixture(scope="module")
def populated(tmp_path_factory):
    """(cache root, specs, results) with every run persisted as v2."""
    root = tmp_path_factory.mktemp("suite-cache")
    specs = _specs()
    runner = ParallelRunner(cache=ResultCache(root=str(root)))
    results = runner.run(specs)
    return str(root), specs, results


def test_from_results_gathers_struct_of_arrays(populated):
    _, specs, results = populated
    frame = SuiteFrame.from_results(results, specs=specs)
    assert len(frame) == len(results)
    assert frame.benchmark == [r.benchmark for r in results]
    assert frame.mode == [r.mode for r in results]
    np.testing.assert_array_equal(
        frame.column("execution_time_s"),
        np.array([r.execution_time_s for r in results]),
    )
    np.testing.assert_array_equal(
        frame.column("interventions"),
        np.array([r.interventions for r in results]),
    )
    assert frame.column("completed").dtype == bool
    with pytest.raises(SimulationError):
        frame.column("no_such_field")


def test_batch_reductions_pin_scalar_functions_as_b1_views(populated):
    _, _, results = populated
    frame = SuiteFrame.from_results(results)
    stab = frame.stability()
    reg = frame.regulation(63.0)
    for i, result in enumerate(results):
        scalar = stability_stats(result)
        assert stab["average_temp_c"][i] == scalar.average_temp_c
        assert stab["max_min_c"][i] == scalar.max_min_c
        assert stab["variance_c2"][i] == scalar.variance_c2
        assert stab["peak_c"][i] == scalar.peak_c
        scalar_reg = regulation_quality(result, 63.0)
        for field, values in reg.items():
            assert values[i] == scalar_reg[field]


def test_residency_batch_and_aggregate(populated):
    _, _, results = populated
    frame = SuiteFrame.from_results(results)
    per_run = frame.residency()
    for i, result in enumerate(results):
        scalar = frequency_residency(result)
        visited = {f: v[i] for f, v in per_run.items() if v[i] > 0}
        assert visited == scalar
    pooled = frame.residency(aggregate=True)
    assert sum(pooled.values()) == pytest.approx(1.0)


def test_batch_kernels_validate_input():
    with pytest.raises(SimulationError):
        stability_stats_batch([np.arange(3.0)], [])
    with pytest.raises(SimulationError):
        stability_stats_batch([np.arange(3.0)], [np.arange(3.0)], skip_s=None)
    with pytest.raises(SimulationError):
        regulation_quality_batch([], [np.arange(3.0)], 63.0)
    with pytest.raises(SimulationError):
        frequency_residency_batch([np.array([])])


def test_open_dir_matches_in_memory_results(populated):
    root, specs, results = populated
    frame = SuiteFrame.open_dir(root)
    assert len(frame) == len(results)
    by_key = {spec_key(s): r for s, r in zip(specs, results)}
    for i, key in enumerate(frame.keys):
        result = by_key[key]
        assert frame.benchmark[i] == result.benchmark
        assert frame.mode[i] == result.mode
        assert frame.column("energy_j")[i] == result.energy_j
        np.testing.assert_array_equal(
            frame.trace_column(i, "max_temp_c"),
            result.trace.column("max_temp_c"),
        )


def test_open_dir_never_loads_blobs_eagerly(populated, monkeypatch):
    root, _, results = populated
    # the eager fallback is np.load; a memmap-only read path never calls it
    import repro.runner.cache as cache_mod

    def _forbid(*args, **kwargs):
        raise AssertionError("suite reduction loaded a trace blob eagerly")

    monkeypatch.setattr(cache_mod.np, "load", _forbid)
    frame = SuiteFrame.open_dir(root)
    # summary-only access touches no blob at all
    assert frame.column("average_platform_power_w").shape == (len(results),)
    assert all(t is None for t in frame._traces)
    # reductions pull the trace in as a memory map, not an eager read
    stab = frame.stability()
    assert stab["peak_c"].shape == (len(results),)
    assert isinstance(frame.trace(0), np.memmap)


def test_select_and_groupby(populated):
    _, specs, results = populated
    frame = SuiteFrame.from_results(results, specs=specs)
    by_mode = frame.groupby("mode")
    assert set(by_mode) == {"with_fan", "without_fan"}
    sub = frame.select(by_mode["with_fan"])
    assert set(sub.mode) == {"with_fan"}
    assert len(sub) == len(by_mode["with_fan"])
    by_cat = frame.groupby("category")
    assert set(by_cat) == {"medium"}
    # positions need spec metadata
    bare = SuiteFrame.from_results(results)
    with pytest.raises(SimulationError):
        bare.groupby("position")
    with pytest.raises(SimulationError):
        frame.groupby("seed")


def test_savings_pairs_modes_via_batch_metrics(populated):
    _, specs, results = populated
    frame = SuiteFrame.from_results(results, specs=specs)
    sav = frame.savings(
        baseline_mode="with_fan", candidate_mode="without_fan"
    )
    assert sav["baseline"].size == 2  # one pair per distinct benchmark
    for j in range(sav["baseline"].size):
        base = results[int(sav["baseline"][j])]
        cand = results[int(sav["candidate"][j])]
        assert sav["power_savings_pct"][j] == power_savings_pct(base, cand)
        assert sav["performance_loss_pct"][j] == performance_loss_pct(
            base, cand
        )


def test_savings_pairs_repeated_names_positionally(populated):
    _, specs, results = populated
    # duplicate the whole grid: same-named rows must pair k-th with k-th
    frame = SuiteFrame.from_results(
        list(results) + list(results), specs=list(specs) + list(specs)
    )
    sav = frame.savings(
        baseline_mode="with_fan", candidate_mode="without_fan"
    )
    assert sav["baseline"].size == 4
    np.testing.assert_array_equal(
        sav["power_savings_pct"][:2], sav["power_savings_pct"][2:]
    )
    # an unpaired baseline still raises
    with pytest.raises(SimulationError):
        SuiteFrame.from_results(results[:1]).savings(
            baseline_mode="with_fan", candidate_mode="without_fan"
        )


def test_cache_root_expands_user_home(monkeypatch, tmp_path):
    monkeypatch.setenv("HOME", str(tmp_path))
    cache = ResultCache(root="~/suite-cache")
    assert cache.root == str(tmp_path / "suite-cache")


def test_from_cache_reads_legacy_v1_entries(populated, tmp_path):
    _, _, results = populated
    key = "ab" + "0" * 62
    shard = tmp_path / key[:2]
    shard.mkdir()
    (shard / (key + ".json")).write_text(
        json.dumps(result_to_payload(results[0]))
    )
    frame = SuiteFrame.open_dir(str(tmp_path))
    assert frame.keys == [key]
    assert frame.benchmark == [results[0].benchmark]
    np.testing.assert_array_equal(
        frame.trace(0), results[0].trace.array()
    )


def test_from_cache_explicit_keys_raise_on_miss(populated):
    root, specs, results = populated
    cache = ResultCache(root=root, memory=False)
    keys = [spec_key(specs[0])]
    frame = SuiteFrame.from_cache(cache, keys=keys)
    assert len(frame) == 1
    with pytest.raises(SimulationError):
        SuiteFrame.from_cache(cache, keys=["f" * 64])


def test_summarize_dir_renders_per_mode_rows(populated, tmp_path):
    root, _, _ = populated
    text = summarize_dir(root)
    assert "Suite summary" in text
    assert "with_fan" in text and "without_fan" in text
    assert "big-cluster residency" in text
    assert "no readable run entries" in summarize_dir(str(tmp_path))


def test_cache_summary_iteration_api(populated):
    root, specs, results = populated
    cache = ResultCache(root=root, memory=False)
    keys = cache.keys()
    assert sorted(keys) == sorted(spec_key(s) for s in specs)
    summaries = dict(cache.iter_summaries())
    assert set(summaries) == set(keys)
    for key, payload in summaries.items():
        assert payload["artifact"] == 2
        assert "rows" not in payload["trace"]  # summaries carry no trace
        assert os.path.exists(cache.trace_path(key))
    assert cache.load_summary("e" * 64) is None
    blob = cache.open_trace(keys[0], mmap=True)
    assert isinstance(blob, np.memmap)
