"""Result cache + model store: round trips, invalidation, env wiring."""

import json
import os

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.errors import SimulationError
from repro.runner import (
    ARTIFACT_FORMAT,
    ParallelRunner,
    ResultCache,
    RunSpec,
    cached_build_models,
    disk_usage,
    load_trace_blob,
    model_fingerprint,
    models_key,
    models_to_payload,
    payload_bytes,
    payload_to_models,
    payload_to_result,
    prune,
    result_bytes,
    result_to_payload,
    result_to_summary,
    spec_key,
    summary_to_result,
    trace_blob_bytes,
)
from repro.sim.engine import ThermalMode
from repro.workloads.generator import synthesize


@pytest.fixture(scope="module")
def workload():
    return synthesize("medium", 12.0, threads=2, seed=3)


@pytest.fixture(scope="module")
def result(workload):
    return ParallelRunner().run_one(
        RunSpec(workload=workload, mode=ThermalMode.NO_FAN)
    )


# ---------------------------------------------------------------------------
# payload round trip
# ---------------------------------------------------------------------------
def test_result_payload_round_trip_is_lossless(result):
    clone = payload_to_result(
        json.loads(result_bytes(result).decode("utf-8"))
    )
    assert result_bytes(clone) == result_bytes(result)
    assert clone.benchmark == result.benchmark
    assert clone.trace.columns == result.trace.columns
    assert clone.peak_temp_c() == result.peak_temp_c()
    assert clone.times_s().tolist() == result.times_s().tolist()


def test_payload_rejects_malformed_trace(result):
    payload = result_to_payload(result)
    payload["trace"]["rows"] = [[1.0, 2.0]]  # wrong width
    with pytest.raises(SimulationError):
        payload_to_result(payload)


# ---------------------------------------------------------------------------
# ResultCache
# ---------------------------------------------------------------------------
def test_disk_cache_round_trip(tmp_path, workload, result):
    cache = ResultCache(root=str(tmp_path))
    key = spec_key(RunSpec(workload=workload, mode=ThermalMode.NO_FAN))
    assert cache.get(key) is None
    cache.put(key, result)
    assert key in cache
    assert len(cache) == 1
    # a second instance over the same directory sees the entry
    other = ResultCache(root=str(tmp_path))
    hit = other.get(key)
    assert hit is not None and result_bytes(hit) == result_bytes(result)
    assert other.stats.hits == 1


def test_memory_only_cache(result):
    cache = ResultCache()  # no root: in-process memo
    cache.put("k", result)
    assert cache.get("k") is not None
    assert len(cache) == 1
    with pytest.raises(SimulationError):
        ResultCache(root=None, memory=False)


def test_corrupt_entry_is_a_miss(tmp_path, workload, result):
    cache = ResultCache(root=str(tmp_path), memory=False)
    key = spec_key(RunSpec(workload=workload, mode=ThermalMode.NO_FAN))
    cache.put(key, result)
    path = os.path.join(str(tmp_path), key[:2], key + ".json")
    with open(path, "w") as fh:
        fh.write("{not json")
    assert cache.get(key) is None  # miss, not an exception


def test_from_env_honours_cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "shared"))
    cache = ResultCache.from_env()
    assert cache.root == str(tmp_path / "shared")
    monkeypatch.setenv("REPRO_CACHE_DIR", "")
    assert ResultCache.from_env().root is None


# ---------------------------------------------------------------------------
# v2 artifacts: summary JSON + npz trace blob
# ---------------------------------------------------------------------------
def _entry_paths(root, key):
    shard = os.path.join(str(root), key[:2])
    return os.path.join(shard, key + ".json"), os.path.join(shard, key + ".npz")


def test_put_writes_v2_summary_plus_blob(tmp_path, workload, result):
    cache = ResultCache(root=str(tmp_path), memory=False)
    key = spec_key(RunSpec(workload=workload, mode=ThermalMode.NO_FAN))
    cache.put(key, result)
    json_path, blob_path = _entry_paths(tmp_path, key)
    payload = json.loads(open(json_path, "rb").read().decode("utf-8"))
    assert payload["artifact"] == ARTIFACT_FORMAT
    assert "rows" not in payload["trace"]
    assert payload["trace"]["length"] == len(result.trace)
    data = load_trace_blob(blob_path)
    assert data.shape == (len(result.trace), len(result.trace.columns))


def test_npz_json_round_trip_numeric_equality(result):
    """The binary and the JSON codec agree bit-for-bit on every float."""
    via_json = payload_to_result(
        json.loads(result_bytes(result).decode("utf-8"))
    )
    blob = trace_blob_bytes(result)
    import io

    with np.load(io.BytesIO(blob)) as npz:
        via_npz = summary_to_result(result_to_summary(result), npz["data"])
    assert result_bytes(via_npz) == result_bytes(via_json) == result_bytes(result)
    assert np.array_equal(via_npz.trace.array(), via_json.trace.array())


def test_v1_entries_read_transparently(tmp_path, workload, result):
    """Entries written by the old JSON-rows code are still cache hits."""
    cache = ResultCache(root=str(tmp_path), memory=False)
    key = spec_key(RunSpec(workload=workload, mode=ThermalMode.NO_FAN))
    json_path, blob_path = _entry_paths(tmp_path, key)
    os.makedirs(os.path.dirname(json_path), exist_ok=True)
    with open(json_path, "wb") as fh:
        fh.write(payload_bytes(result_to_payload(result)))  # v1 layout
    assert not os.path.exists(blob_path)
    hit = cache.get(key)
    assert hit is not None
    assert result_bytes(hit) == result_bytes(result)


def test_mmap_read_back_is_identical(tmp_path, workload, result):
    cache = ResultCache(root=str(tmp_path), memory=False)
    key = spec_key(RunSpec(workload=workload, mode=ThermalMode.NO_FAN))
    cache.put(key, result)
    mapped = ResultCache(root=str(tmp_path), memory=False, mmap=True).get(key)
    assert mapped is not None
    assert result_bytes(mapped) == result_bytes(result)
    # the trace matrix really is file-backed
    base = mapped.trace.array()
    while not isinstance(base, np.memmap) and getattr(base, "base", None) is not None:
        base = base.base
    assert isinstance(base, np.memmap)


def test_corrupt_blob_is_a_miss(tmp_path, workload, result):
    cache = ResultCache(root=str(tmp_path), memory=False)
    key = spec_key(RunSpec(workload=workload, mode=ThermalMode.NO_FAN))
    cache.put(key, result)
    _, blob_path = _entry_paths(tmp_path, key)
    with open(blob_path, "wb") as fh:
        fh.write(b"not an npz")
    assert cache.get(key) is None


def test_disk_usage_and_prune(tmp_path, workload, result):
    cache = ResultCache(root=str(tmp_path), memory=False)
    keys = [
        spec_key(RunSpec(workload=workload, mode=ThermalMode.NO_FAN, seed=s))
        for s in range(3)
    ]
    for key in keys:
        cache.put(key, result)
    usage = disk_usage(str(tmp_path))
    assert usage.entries == usage.v2_entries == 3
    assert usage.blob_bytes > 0 and usage.result_bytes > 0
    # bound the store to roughly one entry: the oldest two are evicted
    per_entry = usage.total_bytes // 3
    removed, freed = prune(str(tmp_path), max_bytes=per_entry + 16)
    assert removed == 2 and freed > 0
    assert disk_usage(str(tmp_path)).entries == 1
    # an explicit None bound empties the result store entirely
    removed, _ = prune(str(tmp_path), max_bytes=None)
    assert removed == 1
    assert disk_usage(str(tmp_path)).entries == 0


def test_read_touches_entry_and_prune_is_lru(tmp_path, workload, result):
    cache = ResultCache(root=str(tmp_path), memory=False)
    keys = [
        spec_key(RunSpec(workload=workload, mode=ThermalMode.NO_FAN, seed=s))
        for s in range(3)
    ]
    for key in keys:
        cache.put(key, result)
    # backdate every summary, then read the *oldest-written* entry: the
    # access touch must move it to the head of the survival order
    paths = [
        os.path.join(str(tmp_path), k[:2], k + ".json") for k in keys
    ]
    for age, path in zip((3000.0, 2000.0, 1000.0), paths):
        stamp = os.path.getmtime(path) - age
        os.utime(path, (stamp, stamp))
    before = os.path.getmtime(paths[0])
    assert cache.get(keys[0]) is not None
    assert os.path.getmtime(paths[0]) > before

    per_entry = disk_usage(str(tmp_path)).total_bytes // 3
    removed, _ = prune(str(tmp_path), max_bytes=per_entry + 16)
    assert removed == 2
    # the recently-read entry survived; the unread ones were evicted
    assert os.path.exists(paths[0])
    assert not os.path.exists(paths[1]) and not os.path.exists(paths[2])

    # memory-layer hits keep the disk stamp warm too (a long-lived
    # process must not let prune evict its hottest keys)
    warm = ResultCache(root=str(tmp_path))
    assert warm.get(keys[0]) is not None  # disk load fills the memory layer
    stamp = os.path.getmtime(paths[0])
    os.utime(paths[0], (stamp - 500.0, stamp - 500.0))
    assert warm.get(keys[0]) is not None  # memory hit
    assert os.path.getmtime(paths[0]) > stamp - 500.0


def test_prune_with_open_memmap_reader(tmp_path, workload, result):
    """Evicting an entry must not strand a reader holding its memory map.

    Deletion goes blob-before-summary with per-file error tolerance, so a
    reader that already mapped the blob keeps its data (POSIX unlink
    semantics), a reader arriving mid-eviction sees a clean miss, and the
    prune itself always completes.
    """
    cache = ResultCache(root=str(tmp_path), memory=False, mmap=True)
    key = spec_key(RunSpec(workload=workload, mode=ThermalMode.NO_FAN))
    cache.put(key, result)
    mapped = cache.get(key)
    base = mapped.trace.array()
    while not isinstance(base, np.memmap) and getattr(base, "base", None) is not None:
        base = base.base
    assert isinstance(base, np.memmap)  # the reader really holds a map

    removed, freed = prune(str(tmp_path), max_bytes=None)
    assert removed == 1 and freed > 0
    assert disk_usage(str(tmp_path)).entries == 0
    assert disk_usage(str(tmp_path)).orphan_blobs == 0

    # the open map still serves the evicted entry's data...
    assert result_bytes(mapped) == result_bytes(result)
    # ...and a fresh reader sees a clean miss
    assert ResultCache(root=str(tmp_path), memory=False).get(key) is None


def test_half_removed_entry_reads_as_miss_and_reprunes(tmp_path, workload, result):
    """A summary whose blob is gone (pruner died mid-eviction) is a clean
    miss for readers and is collected by the next prune."""
    cache = ResultCache(root=str(tmp_path), memory=False)
    key = spec_key(RunSpec(workload=workload, mode=ThermalMode.NO_FAN))
    cache.put(key, result)
    _, blob_path = _entry_paths(tmp_path, key)
    os.unlink(blob_path)  # the state blob-before-summary deletion leaves
    assert cache.get(key) is None
    removed, _ = prune(str(tmp_path), max_bytes=None)
    assert removed == 1
    assert disk_usage(str(tmp_path)).entries == 0


def test_prune_collects_stale_orphan_blobs_keeps_models(tmp_path):
    shard = tmp_path / "ab"
    shard.mkdir()
    orphan = shard / ("ab" + "0" * 62 + ".npz")
    orphan.write_bytes(b"orphan")
    models_dir = tmp_path / "models"
    models_dir.mkdir()
    (models_dir / "deadbeef.json").write_text("{}")
    usage = disk_usage(str(tmp_path))
    assert usage.orphan_blobs == 1 and usage.model_entries == 1
    # a fresh orphan may belong to an in-flight writer: left alone
    removed, _ = prune(str(tmp_path), max_bytes=10**9)
    assert removed == 0 and orphan.exists()
    # backdate it past the grace window: now it is debris and collected
    stale = os.path.getmtime(orphan) - 3600.0
    os.utime(orphan, (stale, stale))
    removed, freed = prune(str(tmp_path), max_bytes=10**9)
    assert removed == 1 and freed == len(b"orphan")
    assert (models_dir / "deadbeef.json").exists()


# ---------------------------------------------------------------------------
# model fingerprint + store
# ---------------------------------------------------------------------------
def test_model_payload_round_trip_preserves_fingerprint(models):
    clone = payload_to_models(models_to_payload(models))
    assert model_fingerprint(clone) == model_fingerprint(models)
    assert model_fingerprint(None) is None


def test_models_key_depends_on_build_inputs():
    default = models_key()
    assert default == models_key()
    assert models_key(method="staged") != default
    assert models_key(prbs_duration_s=300.0) != default
    assert models_key(config=SimulationConfig(ambient_c=30.0)) != default


def test_cached_build_models_store(tmp_path, models, monkeypatch):
    # seed the store from the session bundle to avoid a 10 s rebuild
    key = models_key()
    path = tmp_path / "models" / (key + ".json")
    path.parent.mkdir(parents=True)
    path.write_text(json.dumps(models_to_payload(models)))
    loaded = cached_build_models(root=str(tmp_path))
    assert model_fingerprint(loaded) == model_fingerprint(models)
    # and the env-var path resolves the same file
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert model_fingerprint(cached_build_models()) == model_fingerprint(models)


def test_runner_cache_discriminates_models(tmp_path, workload, models):
    """A DTPM result cached under one model set must miss under another."""
    cache = ResultCache(root=str(tmp_path))
    spec = RunSpec(workload=workload, mode=ThermalMode.DTPM)
    runner = ParallelRunner(cache=cache, models=models)
    runner.run([spec])
    assert runner.last_stats.executed == 1

    # perturb the identified thermal model -> different fingerprint
    import dataclasses

    perturbed = dataclasses.replace(
        models, thermal=dataclasses.replace(models.thermal, ts_s=0.2)
    )
    other = ParallelRunner(cache=cache, models=perturbed)
    other.run([spec])
    assert other.last_stats.executed == 1  # miss: fingerprint changed
    assert other.last_stats.cache_hits == 0
