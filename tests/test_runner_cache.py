"""Result cache + model store: round trips, invalidation, env wiring."""

import json
import os

import pytest

from repro.config import SimulationConfig
from repro.errors import SimulationError
from repro.runner import (
    ParallelRunner,
    ResultCache,
    RunSpec,
    cached_build_models,
    model_fingerprint,
    models_key,
    models_to_payload,
    payload_to_models,
    payload_to_result,
    result_bytes,
    result_to_payload,
    spec_key,
)
from repro.sim.engine import ThermalMode
from repro.workloads.generator import synthesize


@pytest.fixture(scope="module")
def workload():
    return synthesize("medium", 12.0, threads=2, seed=3)


@pytest.fixture(scope="module")
def result(workload):
    return ParallelRunner().run_one(
        RunSpec(workload=workload, mode=ThermalMode.NO_FAN)
    )


# ---------------------------------------------------------------------------
# payload round trip
# ---------------------------------------------------------------------------
def test_result_payload_round_trip_is_lossless(result):
    clone = payload_to_result(
        json.loads(result_bytes(result).decode("utf-8"))
    )
    assert result_bytes(clone) == result_bytes(result)
    assert clone.benchmark == result.benchmark
    assert clone.trace.columns == result.trace.columns
    assert clone.peak_temp_c() == result.peak_temp_c()
    assert clone.times_s().tolist() == result.times_s().tolist()


def test_payload_rejects_malformed_trace(result):
    payload = result_to_payload(result)
    payload["trace"]["rows"] = [[1.0, 2.0]]  # wrong width
    with pytest.raises(SimulationError):
        payload_to_result(payload)


# ---------------------------------------------------------------------------
# ResultCache
# ---------------------------------------------------------------------------
def test_disk_cache_round_trip(tmp_path, workload, result):
    cache = ResultCache(root=str(tmp_path))
    key = spec_key(RunSpec(workload=workload, mode=ThermalMode.NO_FAN))
    assert cache.get(key) is None
    cache.put(key, result)
    assert key in cache
    assert len(cache) == 1
    # a second instance over the same directory sees the entry
    other = ResultCache(root=str(tmp_path))
    hit = other.get(key)
    assert hit is not None and result_bytes(hit) == result_bytes(result)
    assert other.stats.hits == 1


def test_memory_only_cache(result):
    cache = ResultCache()  # no root: in-process memo
    cache.put("k", result)
    assert cache.get("k") is not None
    assert len(cache) == 1
    with pytest.raises(SimulationError):
        ResultCache(root=None, memory=False)


def test_corrupt_entry_is_a_miss(tmp_path, workload, result):
    cache = ResultCache(root=str(tmp_path), memory=False)
    key = spec_key(RunSpec(workload=workload, mode=ThermalMode.NO_FAN))
    cache.put(key, result)
    path = os.path.join(str(tmp_path), key[:2], key + ".json")
    with open(path, "w") as fh:
        fh.write("{not json")
    assert cache.get(key) is None  # miss, not an exception


def test_from_env_honours_cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "shared"))
    cache = ResultCache.from_env()
    assert cache.root == str(tmp_path / "shared")
    monkeypatch.setenv("REPRO_CACHE_DIR", "")
    assert ResultCache.from_env().root is None


# ---------------------------------------------------------------------------
# model fingerprint + store
# ---------------------------------------------------------------------------
def test_model_payload_round_trip_preserves_fingerprint(models):
    clone = payload_to_models(models_to_payload(models))
    assert model_fingerprint(clone) == model_fingerprint(models)
    assert model_fingerprint(None) is None


def test_models_key_depends_on_build_inputs():
    default = models_key()
    assert default == models_key()
    assert models_key(method="staged") != default
    assert models_key(prbs_duration_s=300.0) != default
    assert models_key(config=SimulationConfig(ambient_c=30.0)) != default


def test_cached_build_models_store(tmp_path, models, monkeypatch):
    # seed the store from the session bundle to avoid a 10 s rebuild
    key = models_key()
    path = tmp_path / "models" / (key + ".json")
    path.parent.mkdir(parents=True)
    path.write_text(json.dumps(models_to_payload(models)))
    loaded = cached_build_models(root=str(tmp_path))
    assert model_fingerprint(loaded) == model_fingerprint(models)
    # and the env-var path resolves the same file
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert model_fingerprint(cached_build_models()) == model_fingerprint(models)


def test_runner_cache_discriminates_models(tmp_path, workload, models):
    """A DTPM result cached under one model set must miss under another."""
    cache = ResultCache(root=str(tmp_path))
    spec = RunSpec(workload=workload, mode=ThermalMode.DTPM)
    runner = ParallelRunner(cache=cache, models=models)
    runner.run([spec])
    assert runner.last_stats.executed == 1

    # perturb the identified thermal model -> different fingerprint
    import dataclasses

    perturbed = dataclasses.replace(
        models, thermal=dataclasses.replace(models.thermal, ts_s=0.2)
    )
    other = ParallelRunner(cache=cache, models=perturbed)
    other.run([spec])
    assert other.last_stats.executed == 1  # miss: fingerprint changed
    assert other.last_stats.cache_hits == 0
