"""The process-wide discretisation memo shared by physics-equal networks."""

import numpy as np
import pytest

import repro.thermal.rc_network as rc
from repro.thermal.rc_network import (
    ThermalNode,
    ThermalRCNetwork,
    clear_shared_disc_cache,
)


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_shared_disc_cache()
    yield
    clear_shared_disc_cache()


def _network(ambient_k=300.0, sink_c=10.0):
    nodes = [
        ThermalNode("chip", 1.0),
        ThermalNode("sink", sink_c, g_ambient_w_per_k=0.1, cooled=True),
    ]
    return ThermalRCNetwork(
        nodes, [("chip", "sink", 0.5)], ambient_k=ambient_k
    )


@pytest.fixture
def counted_expm(monkeypatch):
    calls = []
    real = rc.expm

    def counting(matrix):
        calls.append(1)
        return real(matrix)

    monkeypatch.setattr(rc, "expm", counting)
    return calls


def test_physics_equal_instances_share_discretisations(counted_expm):
    gains = np.array([1.0, 2.5, 1.0])
    first = _network()
    a1, b1 = first.discretise_stack(0.05, gains)
    paid = len(counted_expm)
    assert paid == 2  # one expm per unique gain, lanes deduped

    second = _network()
    assert second.physics_equal(first)
    a2, b2 = second.discretise_stack(0.05, gains)
    assert len(counted_expm) == paid  # zero new expm: served by the memo
    assert np.array_equal(a1, a2)
    assert np.array_equal(b1, b2)


def test_different_physics_never_share(counted_expm):
    _network().discretise_stack(0.05, np.array([1.0]))
    paid = len(counted_expm)
    _network(sink_c=11.0).discretise_stack(0.05, np.array([1.0]))
    assert len(counted_expm) == paid + 1  # different physics recomputes


def test_memo_results_match_direct_computation(counted_expm):
    net = _network()
    direct_a, direct_b = net.discretise_stack(0.05, np.array([1.3]))
    clone = _network()
    memo_a, memo_b = clone.discretise_stack(0.05, np.array([1.3]))
    assert np.array_equal(direct_a, memo_a)
    assert np.array_equal(direct_b, memo_b)
    # stepping through the memo'd matrices is bit-identical too
    t = np.array([[310.0, 305.0]])
    p = np.array([[2.0, 0.0]])
    g = np.array([1.3])
    assert np.array_equal(
        net.step_batch(t, p, 0.05, g), clone.step_batch(t, p, 0.05, g)
    )


def test_gather_copies_protect_the_memo(counted_expm):
    net = _network()
    a, _ = net.discretise_stack(0.05, np.array([1.0]))
    a[0, 0, 0] = 1e9  # mutating the gathered stack must not poison anyone
    clone = _network()
    a2, _ = clone.discretise_stack(0.05, np.array([1.0]))
    assert a2[0, 0, 0] != 1e9


def test_shared_memo_is_bounded():
    net = _network()
    for i in range(rc.SHARED_DISC_CACHE_SIZE + 5):
        net._discretise(0.05, 1.0 + i * 1e-3)
    assert len(rc._SHARED_DISC_CACHE) == rc.SHARED_DISC_CACHE_SIZE
