"""Sensor models: noise, quantisation, and the sensor bank."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.platform.sensors import PowerSensor, SensorBank, TemperatureSensor


def test_noiseless_sensor_is_exact(rng):
    sensor = TemperatureSensor(rng, noise_sigma_k=0.0, quantum_k=0.0)
    assert sensor.read(330.0) == pytest.approx(330.0)


def test_quantisation_steps(rng):
    sensor = TemperatureSensor(rng, noise_sigma_k=0.0, quantum_k=0.25)
    value = sensor.read(330.13)
    assert value == pytest.approx(round(330.13 / 0.25) * 0.25)


def test_temperature_noise_statistics(rng):
    sensor = TemperatureSensor(rng, noise_sigma_k=0.2, quantum_k=0.0)
    readings = np.array([sensor.read(330.0) for _ in range(4000)])
    assert abs(readings.mean() - 330.0) < 0.02
    assert 0.15 < readings.std() < 0.25


def test_power_sensor_relative_noise(rng):
    sensor = PowerSensor(rng, relative_noise=0.02)
    readings = np.array([sensor.read(2.0) for _ in range(4000)])
    assert abs(readings.mean() - 2.0) < 0.01
    assert 0.03 < readings.std() < 0.05


def test_power_sensor_never_negative(rng):
    sensor = PowerSensor(rng, relative_noise=0.5)
    assert all(sensor.read(0.001) >= 0 for _ in range(100))


def test_negative_noise_rejected(rng):
    with pytest.raises(ConfigurationError):
        TemperatureSensor(rng, noise_sigma_k=-1.0)
    with pytest.raises(ConfigurationError):
        PowerSensor(rng, relative_noise=-0.1)


def test_sensor_bank_shapes(rng):
    bank = SensorBank(rng)
    temps = bank.read_temperatures([330.0, 331.0, 332.0, 333.0])
    powers = bank.read_powers([1.0, 0.2, 0.5, 0.3])
    assert temps.shape == (4,)
    assert powers.shape == (4,)


def test_sensor_bank_rejects_wrong_lengths(rng):
    bank = SensorBank(rng)
    with pytest.raises(ConfigurationError):
        bank.read_temperatures([330.0, 331.0])
    with pytest.raises(ConfigurationError):
        bank.read_powers([1.0])
