"""Frequency governors: ondemand, interactive, trivial governors."""

import pytest

from repro.errors import ConfigurationError
from repro.governors.base import LoadSample, PlatformConfig
from repro.governors.interactive import InteractiveGovernor
from repro.governors.ondemand import OndemandGovernor
from repro.governors.performance import (
    PerformanceGovernor,
    PowersaveGovernor,
    UserspaceGovernor,
)
from repro.platform.specs import BIG_OPP_TABLE, Resource
from repro.units import mhz


def _sample(load, freq=mhz(800), per_core=None):
    utils = per_core if per_core is not None else (load,)
    return LoadSample(core_utilisations=utils, current_freq_hz=freq, time_s=0.0)


# -- ondemand -----------------------------------------------------------------
def test_ondemand_jumps_to_max_above_threshold():
    gov = OndemandGovernor(BIG_OPP_TABLE, up_threshold=0.8)
    assert gov.propose(_sample(0.95)) == BIG_OPP_TABLE.f_max_hz


def test_ondemand_uses_busiest_core():
    gov = OndemandGovernor(BIG_OPP_TABLE)
    sample = _sample(0.0, per_core=(0.1, 0.95, 0.2, 0.1))
    assert gov.propose(sample) == BIG_OPP_TABLE.f_max_hz


def test_ondemand_scales_down_after_sampling_down_factor():
    gov = OndemandGovernor(BIG_OPP_TABLE, sampling_down_factor=3)
    sample = _sample(0.3, freq=mhz(1600))
    assert gov.propose(sample) == mhz(1600)  # 1st below-threshold sample
    assert gov.propose(sample) == mhz(1600)  # 2nd
    down = gov.propose(sample)  # 3rd: allowed to drop
    assert down < mhz(1600)
    # proportional target: f * load / up_threshold, quantised up
    assert down == BIG_OPP_TABLE.ceil(mhz(1600) * 0.3 / 0.8)


def test_ondemand_burst_resets_down_counter():
    gov = OndemandGovernor(BIG_OPP_TABLE, sampling_down_factor=2)
    low = _sample(0.3, freq=mhz(1600))
    gov.propose(low)
    gov.propose(_sample(0.95, freq=mhz(1600)))  # burst
    assert gov.propose(low) == mhz(1600)  # counter restarted


def test_ondemand_reset():
    gov = OndemandGovernor(BIG_OPP_TABLE, sampling_down_factor=2)
    gov.propose(_sample(0.3, freq=mhz(1600)))
    gov.reset()
    assert gov._below_count == 0


def test_ondemand_validation():
    with pytest.raises(ConfigurationError):
        OndemandGovernor(BIG_OPP_TABLE, up_threshold=0.0)
    with pytest.raises(ConfigurationError):
        OndemandGovernor(BIG_OPP_TABLE, sampling_down_factor=0)


# -- interactive ----------------------------------------------------------------
def test_interactive_goes_hispeed_first():
    gov = InteractiveGovernor(BIG_OPP_TABLE, hispeed_freq_hz=mhz(1400))
    f = gov.propose(_sample(1.0, freq=mhz(800)))
    assert f == mhz(1400)  # not straight to max


def test_interactive_climbs_to_max_after_delay():
    gov = InteractiveGovernor(
        BIG_OPP_TABLE, hispeed_freq_hz=mhz(1400), above_hispeed_delay=2
    )
    gov.propose(_sample(1.0, freq=mhz(800)))
    f = gov.propose(_sample(1.0, freq=mhz(1400)))
    assert f == mhz(1400)  # holding
    f = gov.propose(_sample(1.0, freq=mhz(1400)))
    f = gov.propose(_sample(1.0, freq=mhz(1400)))
    assert f == BIG_OPP_TABLE.f_max_hz


def test_interactive_moderate_load_targets_load():
    gov = InteractiveGovernor(BIG_OPP_TABLE, target_load=0.9)
    f = gov.propose(_sample(0.5, freq=mhz(1600)))
    assert f == BIG_OPP_TABLE.ceil(mhz(1600) * 0.5 / 0.9)


def test_interactive_validation():
    with pytest.raises(ConfigurationError):
        InteractiveGovernor(BIG_OPP_TABLE, target_load=1.5)


# -- trivial governors ---------------------------------------------------------
def test_performance_and_powersave():
    assert PerformanceGovernor(BIG_OPP_TABLE).propose(_sample(0.0)) == mhz(1600)
    assert PowersaveGovernor(BIG_OPP_TABLE).propose(_sample(1.0)) == mhz(800)


def test_userspace_pins_frequency():
    gov = UserspaceGovernor(BIG_OPP_TABLE, mhz(1200))
    assert gov.propose(_sample(1.0)) == mhz(1200)
    gov.set_frequency(mhz(900))
    assert gov.propose(_sample(0.0)) == mhz(900)


# -- PlatformConfig --------------------------------------------------------------
def test_platform_config_accessors():
    cfg = PlatformConfig(
        cluster=Resource.BIG,
        big_freq_hz=mhz(1600),
        little_freq_hz=mhz(600),
        gpu_freq_hz=mhz(177),
        big_online=3,
        little_online=4,
    )
    assert cfg.active_freq_hz == mhz(1600)
    assert cfg.active_online == 3
    little = cfg.with_(cluster=Resource.LITTLE)
    assert little.active_freq_hz == mhz(600)
    assert little.active_online == 4


def test_platform_config_validation():
    with pytest.raises(ConfigurationError):
        PlatformConfig(
            cluster=Resource.GPU,
            big_freq_hz=mhz(1600),
            little_freq_hz=mhz(600),
            gpu_freq_hz=mhz(177),
            big_online=4,
            little_online=4,
        )
    with pytest.raises(ConfigurationError):
        PlatformConfig(
            cluster=Resource.BIG,
            big_freq_hz=mhz(1600),
            little_freq_hz=mhz(600),
            gpu_freq_hz=mhz(177),
            big_online=0,
            little_online=4,
        )


def test_load_sample_statistics():
    sample = LoadSample((0.2, 0.8, 0.5), mhz(1000), 1.0)
    assert sample.max_utilisation == pytest.approx(0.8)
    assert sample.mean_utilisation == pytest.approx(0.5)
    empty = LoadSample((), mhz(1000), 1.0)
    assert empty.max_utilisation == 0.0
    assert empty.mean_utilisation == 0.0
