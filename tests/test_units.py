"""Unit-conversion helpers."""


import pytest

from repro.units import (
    KELVIN_OFFSET,
    celsius_to_kelvin,
    clamp,
    ghz,
    hz_to_ghz,
    hz_to_mhz,
    kelvin_to_celsius,
    mhz,
    milliwatts,
)


def test_celsius_kelvin_round_trip():
    assert celsius_to_kelvin(0.0) == pytest.approx(273.15)
    assert kelvin_to_celsius(celsius_to_kelvin(63.0)) == pytest.approx(63.0)


def test_kelvin_offset_constant():
    assert KELVIN_OFFSET == pytest.approx(273.15)


def test_frequency_conversions():
    assert mhz(800) == pytest.approx(8e8)
    assert ghz(1.6) == pytest.approx(1.6e9)
    assert hz_to_mhz(8e8) == pytest.approx(800.0)
    assert hz_to_ghz(1.6e9) == pytest.approx(1.6)


def test_milliwatts():
    assert milliwatts(250.0) == pytest.approx(0.25)


def test_clamp_inside_and_outside():
    assert clamp(5.0, 0.0, 10.0) == 5.0
    assert clamp(-1.0, 0.0, 10.0) == 0.0
    assert clamp(11.0, 0.0, 10.0) == 10.0


def test_clamp_rejects_inverted_bounds():
    with pytest.raises(ValueError):
        clamp(1.0, 2.0, 0.0)
