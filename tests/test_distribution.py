"""Chapter-7 budget distribution: branch-and-bound vs the greedy of Eq. 7.3."""

import itertools

import pytest

from repro.core.distribution import (
    Component,
    exynos_components,
    solve_branch_and_bound,
    solve_greedy,
)
from repro.errors import BudgetError, ConfigurationError


@pytest.fixture()
def components():
    return exynos_components()


def _brute_force(components, budget):
    best = None
    for levels in itertools.product(
        *[range(len(c.frequencies_ghz)) for c in components]
    ):
        cost = sum(
            c.cost(c.frequencies_ghz[l]) for c, l in zip(components, levels)
        )
        power = sum(
            c.power(c.frequencies_ghz[l]) for c, l in zip(components, levels)
        )
        if power <= budget and (best is None or cost < best):
            best = cost
    return best


@pytest.mark.parametrize("budget", [1.0, 1.8, 2.5, 3.2, 4.0])
def test_branch_and_bound_is_optimal(components, budget):
    result = solve_branch_and_bound(components, budget)
    brute = _brute_force(components, budget)
    assert result.feasible
    assert result.cost == pytest.approx(brute)
    assert result.power_w <= budget + 1e-9


@pytest.mark.parametrize("budget", [1.0, 1.8, 2.5, 3.2, 4.0])
def test_greedy_is_feasible_and_near_optimal(components, budget):
    greedy = solve_greedy(components, budget)
    optimal = solve_branch_and_bound(components, budget)
    assert greedy.feasible
    assert greedy.power_w <= budget + 1e-9
    assert greedy.cost >= optimal.cost - 1e-12
    # the paper deploys greedy because it stays close to optimal
    assert greedy.cost <= 1.3 * optimal.cost


def test_unconstrained_budget_runs_everything_at_max(components):
    result = solve_greedy(components, budget_w=100.0)
    for comp in components:
        assert result.frequencies_ghz[comp.name] == comp.frequencies_ghz[-1]
    assert result.nodes_explored == 0  # no demotions needed


def test_infeasible_budget_reported(components):
    greedy = solve_greedy(components, budget_w=0.05)
    assert not greedy.feasible
    bnb = solve_branch_and_bound(components, budget_w=0.05)
    assert not bnb.feasible
    for comp in components:
        assert greedy.frequencies_ghz[comp.name] == comp.frequencies_ghz[0]


def test_greedy_throttles_least_costly_component_first():
    cheap = Component("cheap", (1.0, 2.0), perf_coeff=0.1, power_coeff=1.0)
    dear = Component("dear", (1.0, 2.0), perf_coeff=10.0, power_coeff=1.0)
    # budget forces exactly one demotion; Eq. 7.3 picks the cheap one
    budget = dear.power(2.0) + cheap.power(1.0) + 0.01
    result = solve_greedy([cheap, dear], budget)
    assert result.frequencies_ghz["cheap"] == 1.0
    assert result.frequencies_ghz["dear"] == 2.0


def test_three_component_problem():
    comps = exynos_components(include_little=True)
    bnb = solve_branch_and_bound(comps, 2.0)
    greedy = solve_greedy(comps, 2.0)
    assert bnb.feasible and greedy.feasible
    assert bnb.cost <= greedy.cost + 1e-12


def test_branch_and_bound_prunes(components):
    result = solve_branch_and_bound(components, 2.5)
    total_nodes = 1
    for c in components:
        total_nodes *= len(c.frequencies_ghz)
    assert result.nodes_explored < 3 * total_nodes  # visits bounded


def test_component_validation():
    with pytest.raises(ConfigurationError):
        Component("bad", (), 1.0, 1.0)
    with pytest.raises(ConfigurationError):
        Component("bad", (2.0, 1.0), 1.0, 1.0)
    with pytest.raises(ConfigurationError):
        Component("bad", (1.0,), -1.0, 1.0)


def test_budget_validation(components):
    with pytest.raises(BudgetError):
        solve_greedy(components, 0.0)
    with pytest.raises(BudgetError):
        solve_branch_and_bound(components, -1.0)
    with pytest.raises(ConfigurationError):
        solve_greedy([], 1.0)
