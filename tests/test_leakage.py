"""Controller-side leakage model (Eq. 4.2)."""

import pytest

from repro.errors import ModelError
from repro.power.fitting import LeakageFit
from repro.power.leakage import LeakageModel
from repro.units import celsius_to_kelvin as c2k


@pytest.fixture()
def model():
    return LeakageModel(c1=7.7e-3, c2=-2900.0, i_gate=0.010)


def test_power_monotone_in_temperature(model):
    powers = [model.power_w(c2k(t), 1.0) for t in range(30, 95, 5)]
    assert all(b > a for a, b in zip(powers, powers[1:]))


def test_power_linear_in_vdd(model):
    t = c2k(60)
    assert model.power_w(t, 1.2) == pytest.approx(2.0 * model.power_w(t, 0.6))


def test_celsius_convenience(model):
    assert model.power_at_celsius(60.0, 1.0) == pytest.approx(
        model.power_w(c2k(60.0), 1.0)
    )


def test_gate_leakage_floor():
    pure_gate = LeakageModel(c1=0.0, c2=-2900.0, i_gate=0.02)
    assert pure_gate.power_w(c2k(40), 1.0) == pytest.approx(0.02)
    assert pure_gate.power_w(c2k(80), 1.0) == pytest.approx(0.02)


def test_from_fit():
    fit = LeakageFit(c1=1e-3, c2=-2500.0, i_gate=0.005, p_dynamic_w=0.1, residual_rms_w=0.001)
    model = LeakageModel.from_fit(fit)
    assert model.c1 == fit.c1
    assert model.current_a(c2k(50)) == pytest.approx(fit.leakage_current(c2k(50)))


def test_rejects_bad_parameters():
    with pytest.raises(ModelError):
        LeakageModel(c1=-1.0, c2=-2900.0, i_gate=0.0)
    with pytest.raises(ModelError):
        LeakageModel(c1=1e-3, c2=100.0, i_gate=0.0)  # c2 must be negative


def test_rejects_bad_inputs(model):
    with pytest.raises(ModelError):
        model.power_w(-10.0, 1.0)
    with pytest.raises(ModelError):
        model.power_w(c2k(50), 0.0)
