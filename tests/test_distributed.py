"""Distributed dispatch: protocol, loopback parity, crash reassignment."""

import socket
import threading

import pytest

from repro.distributed.coordinator import run_batches
from repro.distributed.protocol import (
    ProtocolError,
    chains_from_wire,
    chains_to_wire,
    parse_endpoints,
    recv_frame,
    result_from_wire,
    result_to_wire,
    send_frame,
)
from repro.distributed.worker import WorkerServer
from repro.errors import ConfigurationError, SimulationError
from repro.runner import (
    ParallelRunner,
    ResultCache,
    RunSpec,
    plan_batches,
    result_bytes,
)
from repro.sim.engine import ThermalMode
from repro.workloads.generator import synthesize


@pytest.fixture(scope="module")
def specs():
    return [
        RunSpec(
            workload=synthesize("high", 18.0, threads=4, seed=seed),
            mode=mode,
        )
        for seed in (6, 7)
        for mode in (ThermalMode.NO_FAN, ThermalMode.DEFAULT_WITH_FAN)
    ]


@pytest.fixture(scope="module")
def serial(specs):
    return ParallelRunner().run(list(specs))


def _populate(root, specs, workers):
    runner = ParallelRunner(
        workers=workers, cache=ResultCache(root=root), batch=2
    )
    return runner, runner.run(list(specs))


def _summary_files(root):
    cache = ResultCache(root=root, memory=False)
    out = {}
    for key in cache.keys():
        with open(cache._find_summary(key), "rb") as fh:
            out[key] = fh.read()
    return out


# ---------------------------------------------------------------------------
# protocol
# ---------------------------------------------------------------------------
def test_frame_round_trip_over_socketpair():
    a, b = socket.socketpair()
    try:
        send_frame(a, {"op": "hello", "n": 3, "s": "x"})
        assert recv_frame(b) == {"op": "hello", "n": 3, "s": "x"}
    finally:
        a.close()
        b.close()


def test_recv_frame_rejects_eof_garbage_and_oversize():
    a, b = socket.socketpair()
    try:
        a.sendall(b"\x00\x00\x00\x02{]")
        with pytest.raises(ProtocolError):
            recv_frame(b)
        a.sendall(b"\xff\xff\xff\xff")
        with pytest.raises(ProtocolError):
            recv_frame(b)
        a.close()
        with pytest.raises(ProtocolError):
            recv_frame(b)
    finally:
        b.close()


def test_result_wire_round_trip_is_byte_identical(serial):
    for result in serial:
        clone = result_from_wire(result_to_wire(result))
        assert result_bytes(clone) == result_bytes(result)
    chains = [[serial[0]], [serial[1], serial[2]]]
    back = chains_from_wire(chains_to_wire(chains))
    assert [[result_bytes(r) for r in c] for c in back] == [
        [result_bytes(r) for r in c] for c in chains
    ]


def test_parse_endpoints():
    assert parse_endpoints("a:1, b:65535") == [("a", 1), ("b", 65535)]
    for bad in ("", "hostonly", "h:0", "h:x", "h:70000", ","):
        with pytest.raises(ConfigurationError):
            parse_endpoints(bad)


def test_runner_validates_worker_string_at_construction():
    with pytest.raises(ConfigurationError):
        ParallelRunner(workers="nonsense")


# ---------------------------------------------------------------------------
# loopback execution
# ---------------------------------------------------------------------------
def test_two_worker_run_matches_serial_key_for_key(
    tmp_path, specs, serial
):
    w1, w2 = WorkerServer().start(), WorkerServer().start()
    try:
        serial_runner, serial_cached = _populate(
            str(tmp_path / "serial"), specs, workers=1
        )
        dist_runner, dist = _populate(
            str(tmp_path / "dist"),
            specs,
            workers="%s,%s" % (w1.endpoint, w2.endpoint),
        )
    finally:
        w1.stop()
        w2.stop()
    assert [result_bytes(r) for r in dist] == [
        result_bytes(r) for r in serial
    ]
    assert [result_bytes(r) for r in serial_cached] == [
        result_bytes(r) for r in serial
    ]
    # key-for-key: same content keys, byte-identical summary files
    serial_files = _summary_files(str(tmp_path / "serial"))
    dist_files = _summary_files(str(tmp_path / "dist"))
    assert set(dist_files) == set(serial_files)
    for key, blob in serial_files.items():
        assert dist_files[key] == blob
    assert dist_runner.last_stats.executed == len(specs)


def test_worker_crash_mid_batch_reassigns_and_completes(
    tmp_path, specs, serial
):
    flaky = WorkerServer(fail_runs=1).start()
    steady = WorkerServer().start()
    try:
        cache = ResultCache(root=str(tmp_path))
        runner = ParallelRunner(
            workers="%s,%s" % (flaky.endpoint, steady.endpoint),
            cache=cache,
            batch=2,
        )
        results = runner.run(list(specs))
    finally:
        flaky.stop()
        steady.stop()
    assert [result_bytes(r) for r in results] == [
        result_bytes(r) for r in serial
    ]
    # the reassigned batch produced no duplicate cache writes: one store
    # per distinct content key, nothing else
    assert cache.stats_snapshot().stores == len(set(cache.keys()))
    assert len(cache.keys()) == len(specs)


def test_deterministic_worker_failure_fails_fast(specs):
    """An ``error`` frame (execution raised on the worker) is fatal --
    deterministic failures would fail on every host, so no retry."""

    def _erroring(server_sock):
        conn, _ = server_sock.accept()
        with conn:
            recv_frame(conn)  # hello
            send_frame(conn, {"op": "ready"})
            msg = recv_frame(conn)  # the run frame
            send_frame(conn, {
                "op": "error", "id": msg["id"], "message": "boom",
            })

    lis = socket.socket()
    lis.bind(("127.0.0.1", 0))
    lis.listen(1)
    thread = threading.Thread(target=_erroring, args=(lis,), daemon=True)
    thread.start()
    try:
        with pytest.raises(SimulationError, match="boom"):
            run_batches(
                [[specs[0]]],
                workers="127.0.0.1:%d" % lis.getsockname()[1],
            )
    finally:
        lis.close()
        thread.join(timeout=10.0)


def test_all_workers_dead_raises(specs):
    # grab a port nothing listens on
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    jobs = [[s] for s in specs[:2]]
    with pytest.raises(SimulationError, match="worker"):
        run_batches(jobs, workers="127.0.0.1:%d" % port)


def test_lease_timeout_reassigns_silent_worker(specs, serial):
    """A connected worker that accepts a batch then goes silent (no
    heartbeat, no result) times out its lease; survivors finish the run."""

    def _silent(server_sock):
        conn, _ = server_sock.accept()
        with conn:
            recv_frame(conn)  # hello
            send_frame(conn, {"op": "ready"})
            recv_frame(conn)  # the run frame it will never answer
            stop.wait(30.0)

    stop = threading.Event()
    lis = socket.socket()
    lis.bind(("127.0.0.1", 0))
    lis.listen(1)
    thread = threading.Thread(target=_silent, args=(lis,), daemon=True)
    thread.start()
    steady = WorkerServer().start()
    try:
        silent_ep = "127.0.0.1:%d" % lis.getsockname()[1]
        jobs = plan_batches(list(specs), 2)
        chains = run_batches(
            [[specs[i] for i in job] for job in jobs],
            workers="%s,%s" % (silent_ep, steady.endpoint),
            lease_timeout_s=2.0,
        )
        flat = {}
        for job, job_chains in zip(jobs, chains):
            for i, chain in zip(job, job_chains):
                flat[i] = chain[-1]
        assert [result_bytes(flat[i]) for i in range(len(specs))] == [
            result_bytes(r) for r in serial
        ]
    finally:
        stop.set()
        steady.stop()
        lis.close()
        thread.join(timeout=10.0)
