"""Fan model: the Odroid threshold controller of Section 6.2."""

import pytest

from repro.errors import ConfigurationError
from repro.platform.fan import Fan, FanSpeed, FanThresholds
from repro.platform.specs import FAN_CONDUCTANCE_GAIN, FAN_POWER_W
from repro.units import celsius_to_kelvin as c2k


@pytest.fixture()
def fan():
    return Fan(FAN_POWER_W, FAN_CONDUCTANCE_GAIN)


def test_paper_thresholds_default():
    th = FanThresholds()
    assert th.on_c == 57.0
    assert th.mid_c == 63.0
    assert th.high_c == 68.0


def test_fan_off_below_first_threshold(fan):
    assert fan.update(c2k(50.0)) is FanSpeed.OFF
    assert fan.power_w == 0.0
    assert fan.conductance_gain == 1.0


def test_fan_engages_at_57(fan):
    assert fan.update(c2k(57.5)) is FanSpeed.LOW
    assert fan.power_w == FAN_POWER_W[1]


def test_fan_speed_escalation(fan):
    fan.update(c2k(58.0))
    assert fan.speed is FanSpeed.LOW
    fan.update(c2k(63.5))
    assert fan.speed is FanSpeed.MID
    fan.update(c2k(68.5))
    assert fan.speed is FanSpeed.HIGH
    assert fan.conductance_gain == FAN_CONDUCTANCE_GAIN[3]


def test_fan_jumps_straight_to_high(fan):
    assert fan.update(c2k(70.0)) is FanSpeed.HIGH


def test_fan_steps_down_with_hysteresis(fan):
    fan.update(c2k(64.0))
    assert fan.speed is FanSpeed.MID
    # still above (63 - hysteresis): must hold MID
    fan.update(c2k(59.0))
    assert fan.speed is FanSpeed.MID
    # below the release point: one step down at a time
    release = 63.0 - fan.thresholds.hysteresis_c - 0.1
    fan.update(c2k(release))
    assert fan.speed is FanSpeed.LOW


def test_fan_steps_down_one_speed_per_update(fan):
    fan.update(c2k(70.0))
    assert fan.speed is FanSpeed.HIGH
    fan.update(c2k(30.0))
    assert fan.speed is FanSpeed.MID
    fan.update(c2k(30.0))
    assert fan.speed is FanSpeed.LOW
    fan.update(c2k(30.0))
    assert fan.speed is FanSpeed.OFF


def test_disabled_fan_never_spins(fan):
    fan.force_off()
    assert fan.update(c2k(80.0)) is FanSpeed.OFF
    assert fan.power_w == 0.0


def test_thresholds_must_increase():
    with pytest.raises(ConfigurationError):
        FanThresholds(on_c=63.0, mid_c=57.0)


def test_fan_requires_four_speed_entries():
    with pytest.raises(ConfigurationError):
        Fan((0.0, 0.1), (1.0, 1.5))
