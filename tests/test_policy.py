"""DTPM policy: budget-to-configuration mapping (Section 5.2)."""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.core.budget import PowerBudgetComputer
from repro.core.policy import DtpmPolicy
from repro.governors.base import PlatformConfig
from repro.platform.specs import PlatformSpec, Resource
from repro.power.characterization import default_power_model
from repro.thermal.state_space import DiscreteThermalModel
from repro.units import celsius_to_kelvin as c2k, mhz


@pytest.fixture()
def setup():
    spec = PlatformSpec()
    config = SimulationConfig()
    policy = DtpmPolicy(spec, config)
    a = 0.90 * np.eye(4) + 0.02 * (np.ones((4, 4)) - np.eye(4))
    b = np.tile(np.array([0.30, 0.05, 0.10, 0.08]), (4, 1))
    offset = (np.eye(4) - a) @ np.full(4, c2k(25.0))
    model = DiscreteThermalModel(a=a, b=b, offset=offset, ts_s=0.1)
    computer = PowerBudgetComputer(model, horizon_steps=10)
    power_model = default_power_model(spec)
    # give the alpha*C trackers a realistic busy-cluster operating point
    t = c2k(55.0)
    power_model[Resource.BIG].observe(2.3, t, 1.25, 1.6e9)
    power_model[Resource.LITTLE].observe(0.35, t, 1.10, 1.2e9)
    power_model[Resource.GPU].observe(0.3, t, 0.9, 1.77e8)
    return spec, config, policy, computer, power_model


FULL_BIG = PlatformConfig(
    cluster=Resource.BIG,
    big_freq_hz=mhz(1600),
    little_freq_hz=mhz(1200),
    gpu_freq_hz=mhz(533),
    big_online=4,
    little_online=4,
)
TEMPS = np.full(4, c2k(58.0))
POWERS = np.array([2.3, 0.01, 0.3, 0.25])


def _assign(setup, budget_w, proposal=FULL_BIG, temps=TEMPS, gpu_active=False):
    spec, config, policy, computer, power_model = setup

    class _FakeBudget:
        resource = Resource.BIG
        total_budget_w = budget_w

    return policy.assign(
        _FakeBudget(),
        computer,
        power_model,
        temps,
        POWERS,
        proposal,
        c2k(63.0),
        gpu_active,
    )


def test_generous_budget_keeps_proposal(setup):
    decision = _assign(setup, budget_w=10.0)
    assert decision.config == FULL_BIG
    assert not decision.migrated_to_little


def test_moderate_budget_caps_frequency(setup):
    decision = _assign(setup, budget_w=1.6)
    assert decision.config.cluster is Resource.BIG
    assert decision.config.big_freq_hz < mhz(1600)
    assert decision.config.big_freq_hz >= mhz(800)
    assert decision.config.big_online == 4


def test_budget_frequency_is_maximal(setup):
    """The policy picks the *largest* frequency that fits (performance)."""
    spec, config, policy, computer, power_model = setup
    decision = _assign(setup, budget_w=1.6)
    f = decision.config.big_freq_hz
    up = spec.big_opp.step_up(f)
    if up > f:
        power_up = policy.predicted_cluster_power_w(
            power_model, Resource.BIG, up, 4, 4, float(TEMPS.max())
        )
        assert power_up > 1.6


def test_tight_budget_drops_cores(setup):
    # imbalanced temps so Eq. 5.9 selects the hottest core
    temps = np.array([c2k(64.0), c2k(57.0), c2k(57.0), c2k(57.0)])
    decision = _assign(setup, budget_w=0.60, temps=temps)
    assert decision.config.cluster is Resource.BIG
    assert decision.config.big_online == 3
    assert decision.core_turned_off == 0  # hottest core
    assert decision.config.big_freq_hz == mhz(800)


def test_balanced_temps_drop_core_without_eq_5_9(setup):
    temps = np.full(4, c2k(58.0))
    decision = _assign(setup, budget_w=0.60, temps=temps)
    assert decision.config.big_online == 3
    assert decision.core_turned_off is None  # spread < Delta


def test_impossible_budget_migrates_to_little(setup):
    decision = _assign(setup, budget_w=0.05)
    assert decision.migrated_to_little
    assert decision.config.cluster is Resource.LITTLE
    assert decision.config.little_online == 4


def test_gpu_throttled_only_as_last_resort(setup):
    decision = _assign(setup, budget_w=0.05, gpu_active=True)
    assert decision.config.cluster is Resource.LITTLE
    # GPU stepped down one level from its proposal only in the last resort
    if decision.gpu_throttled:
        assert decision.config.gpu_freq_hz < FULL_BIG.gpu_freq_hz


def test_f_budget_closed_form(setup):
    spec, config, policy, computer, power_model = setup
    alpha_c = power_model[Resource.BIG].dynamic.estimator.alpha_c_f
    vdd = spec.big_opp.voltage(spec.big_opp.f_max_hz)
    budget = 1.0
    f = policy.f_budget_hz(power_model, Resource.BIG, budget)
    assert f == pytest.approx(budget / (alpha_c * vdd ** 2))


def test_best_frequency_none_when_budget_below_fmin_power(setup):
    spec, config, policy, computer, power_model = setup
    f = policy.best_frequency_for_budget(
        power_model, Resource.BIG, 0.01, 4, 4, c2k(58.0)
    )
    assert f is None


def test_return_to_big_requires_sustained_headroom(setup):
    spec, config, policy, computer, power_model = setup
    policy.return_hold_intervals = 3
    little_cfg = FULL_BIG.with_(cluster=Resource.LITTLE)
    cool = np.full(4, c2k(40.0))
    powers = np.array([0.01, 0.3, 0.2, 0.2])
    outcomes = [
        policy.consider_return_to_big(
            computer, power_model, cool, powers, little_cfg, c2k(63.0)
        )
        for _ in range(3)
    ]
    assert outcomes[0] is None and outcomes[1] is None
    assert outcomes[2] is not None
    assert outcomes[2].migrated_to_big
    assert outcomes[2].config.cluster is Resource.BIG
    assert outcomes[2].config.big_online == config.min_big_cores


def test_return_counter_resets_when_hot(setup):
    spec, config, policy, computer, power_model = setup
    policy.return_hold_intervals = 2
    little_cfg = FULL_BIG.with_(cluster=Resource.LITTLE)
    cool = np.full(4, c2k(40.0))
    hot = np.full(4, c2k(62.5))
    powers = np.array([0.01, 0.3, 0.2, 0.2])
    assert policy.consider_return_to_big(
        computer, power_model, cool, powers, little_cfg, c2k(63.0)
    ) is None
    # hot interval resets the counter
    policy.consider_return_to_big(
        computer, power_model, hot, powers, little_cfg, c2k(63.0)
    )
    assert policy.consider_return_to_big(
        computer, power_model, cool, powers, little_cfg, c2k(63.0)
    ) is None


def test_no_return_logic_when_on_big(setup):
    spec, config, policy, computer, power_model = setup
    assert policy.consider_return_to_big(
        computer, power_model, TEMPS, POWERS, FULL_BIG, c2k(63.0)
    ) is None


def test_decision_describe(setup):
    decision = _assign(setup, budget_w=1.6)
    assert "MHz" in decision.describe()
