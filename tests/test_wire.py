"""The versioned wire schema: lossless round trips, key identity, strictness."""

import json

import pytest

from repro.config import SimulationConfig
from repro.errors import ConfigurationError, WireError
from repro.platform.specs import PlatformSpec
from repro.runner import (
    ExperimentMatrix,
    RunSpec,
    WIRE_SCHEMA,
    matrix_from_wire,
    matrix_to_wire,
    spec_from_wire,
    spec_key,
    spec_to_wire,
    workload_to_wire,
)
from repro.sim.engine import ThermalMode
from repro.workloads import get_benchmark, synthesize


def _specs_under_test():
    custom = synthesize("high", duration_s=4.0, threads=2, seed=11,
                        name="wire-custom")
    return [
        RunSpec(workload=get_benchmark("dijkstra"),
                mode=ThermalMode.DEFAULT_WITH_FAN),
        RunSpec(
            workload=get_benchmark("templerun"),
            mode=ThermalMode.DTPM,
            config=SimulationConfig(t_constraint_c=61.0),
            guard_band_k=1.5,
            seed=7,
        ),
        RunSpec(
            workload=custom,
            mode=ThermalMode.NO_FAN,
            platform=PlatformSpec(),
            warm_start_c=None,
            max_duration_s=30.0,
        ),
        RunSpec(
            workload=get_benchmark("patricia"),
            mode=ThermalMode.REACTIVE,
            history=(get_benchmark("dijkstra"), custom),
            history_modes=(ThermalMode.NO_FAN, ThermalMode.REACTIVE),
            idle_gap_s=5.0,
        ),
    ]


@pytest.mark.parametrize("index", range(4))
def test_spec_round_trip_is_lossless(index):
    spec = _specs_under_test()[index]
    decoded = spec_from_wire(spec_to_wire(spec))
    assert decoded == spec


@pytest.mark.parametrize("index", range(4))
def test_spec_round_trip_preserves_content_key(index):
    """from_dict(to_dict(s)) files under the *identical* cache key."""
    spec = _specs_under_test()[index]
    assert spec_key(spec_from_wire(spec_to_wire(spec))) == spec_key(spec)


def test_wire_payload_is_plain_json():
    for spec in _specs_under_test():
        payload = spec_to_wire(spec)
        assert payload["schema"] == WIRE_SCHEMA
        rehydrated = json.loads(json.dumps(payload))
        assert spec_from_wire(rehydrated) == spec


def test_registered_benchmark_compresses_to_name():
    assert workload_to_wire(get_benchmark("dijkstra")) == "dijkstra"
    inline = workload_to_wire(
        synthesize("low", duration_s=3.0, seed=3, name="not-registered")
    )
    assert isinstance(inline, dict) and inline["name"] == "not-registered"


def test_dataclass_methods_delegate_to_wire():
    spec = RunSpec(workload=get_benchmark("dijkstra"),
                   mode=ThermalMode.DTPM)
    assert RunSpec.from_dict(spec.to_dict()) == spec
    assert spec.to_dict() == spec_to_wire(spec)


def test_minimal_payload_takes_defaults():
    spec = spec_from_wire(
        {"schema": 1, "workload": "dijkstra", "mode": "dtpm"}
    )
    assert spec == RunSpec(workload=get_benchmark("dijkstra"),
                           mode=ThermalMode.DTPM)


def test_matrix_round_trip_preserves_every_spec_key():
    custom = synthesize("medium", duration_s=4.0, seed=5, name="wire-m")
    matrix = ExperimentMatrix(
        workloads=(get_benchmark("dijkstra"), custom),
        modes=(ThermalMode.DTPM,),
        guard_bands_k=(None, 1.0),
        base_seed=100,
        schedules=(
            (get_benchmark("dijkstra"),
             (get_benchmark("patricia"), ThermalMode.NO_FAN)),
        ),
        idle_gap_s=2.0,
    )
    decoded = matrix_from_wire(matrix_to_wire(matrix))
    assert decoded == matrix
    assert decoded.to_dict() == matrix.to_dict()
    ours, theirs = matrix.specs(), decoded.specs()
    assert len(ours) == len(theirs)
    for a, b in zip(ours, theirs):
        assert spec_key(a) == spec_key(b)
    assert ExperimentMatrix.from_dict(matrix.to_dict()) == matrix


def test_missing_schema_is_rejected():
    with pytest.raises(WireError, match="schema"):
        spec_from_wire({"workload": "dijkstra", "mode": "dtpm"})


def test_wrong_schema_version_is_rejected():
    with pytest.raises(WireError, match="unsupported schema"):
        spec_from_wire({"schema": 99, "workload": "dijkstra", "mode": "dtpm"})


def test_unknown_field_is_rejected_with_its_name():
    with pytest.raises(WireError, match="bogus"):
        spec_from_wire(
            {"schema": 1, "workload": "dijkstra", "mode": "dtpm",
             "bogus": True}
        )


def test_unknown_mode_names_the_choices():
    with pytest.raises(WireError, match="with_fan"):
        spec_from_wire(
            {"schema": 1, "workload": "dijkstra", "mode": "warp-drive"}
        )


def test_unknown_benchmark_name_is_rejected():
    with pytest.raises(WireError, match="workload"):
        spec_from_wire(
            {"schema": 1, "workload": "no-such-bench", "mode": "dtpm"}
        )


def test_inline_workload_missing_fields_names_the_path():
    with pytest.raises(WireError, match="workload"):
        spec_from_wire(
            {"schema": 1, "workload": {"name": "partial"}, "mode": "dtpm"}
        )


def test_domain_validation_still_applies_after_decode():
    # an explicitly empty axis is a domain error, not silently defaulted
    with pytest.raises(ConfigurationError):
        matrix_from_wire({"schema": 1, "workloads": ["dijkstra"], "modes": []})
