"""Experiment harness integration (the Section 6.2 configurations).

These use the session-scoped model bundle; each run is a short synthetic
workload so the whole module stays fast.
"""

import numpy as np
import pytest

from repro.sim.engine import ThermalMode
from repro.sim.experiment import (
    compare_modes,
    dtpm_vs_default,
    make_dtpm_governor,
    run_benchmark,
)
from repro.workloads.generator import synthesize


@pytest.fixture(scope="module")
def hot_workload():
    return synthesize("high", 45.0, threads=4, seed=11)


def test_compare_modes_runs_all(models, hot_workload):
    results = compare_modes(
        hot_workload,
        modes=(ThermalMode.DEFAULT_WITH_FAN, ThermalMode.NO_FAN, ThermalMode.DTPM),
        models=models,
        warm_start_c=55.0,
    )
    assert set(r.mode for r in results.values()) == {
        "with_fan",
        "without_fan",
        "dtpm",
    }
    for result in results.values():
        assert result.completed


def test_dtpm_cooler_than_no_fan(models, hot_workload):
    results = compare_modes(
        hot_workload,
        modes=(ThermalMode.NO_FAN, ThermalMode.DTPM),
        models=models,
        warm_start_c=58.0,
    )
    no_fan = results[ThermalMode.NO_FAN]
    dtpm = results[ThermalMode.DTPM]
    assert dtpm.peak_temp_c() < no_fan.peak_temp_c()
    assert dtpm.interventions > 0


def test_dtpm_saves_platform_power(models, hot_workload):
    results = compare_modes(
        hot_workload,
        modes=(ThermalMode.DEFAULT_WITH_FAN, ThermalMode.DTPM),
        models=models,
        warm_start_c=58.0,
    )
    base = results[ThermalMode.DEFAULT_WITH_FAN]
    dtpm = results[ThermalMode.DTPM]
    assert dtpm.average_platform_power_w < base.average_platform_power_w


def test_dtpm_vs_default_rows(models):
    workloads = [
        synthesize("low", 25.0, threads=1, seed=1),
        synthesize("high", 30.0, threads=4, seed=2),
    ]
    rows = dtpm_vs_default(workloads, models=models, warm_start_c=55.0)
    assert len(rows) == 2
    assert rows[0].category == "low"
    assert rows[1].category == "high"
    # high-activity workload saves more platform power than the light one
    assert rows[1].power_savings_pct >= rows[0].power_savings_pct - 0.5
    for row in rows:
        assert row.dtpm_time_s >= row.baseline_time_s - 0.5


def test_make_dtpm_governor_fresh_estimators(models):
    gov1 = make_dtpm_governor(models)
    gov2 = make_dtpm_governor(models)
    assert gov1.power_model is not gov2.power_model
    from repro.platform.specs import Resource

    assert (
        gov1.power_model[Resource.BIG].dynamic.estimator.sample_count == 0
    )
    # leakage fits are the shared characterization product
    assert (
        gov1.power_model[Resource.BIG].leakage
        is models.power[Resource.BIG].leakage
    )


def test_run_benchmark_seed_override(models):
    wl = synthesize("medium", 15.0, threads=1, seed=4)
    a = run_benchmark(wl, ThermalMode.NO_FAN, models=models, seed=1)
    b = run_benchmark(wl, ThermalMode.NO_FAN, models=models, seed=1)
    assert np.allclose(a.max_temps_c(), b.max_temps_c())
