"""Discrete thermal state-space model (Eqs. 4.4 / 4.5)."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.thermal.state_space import DiscreteThermalModel


@pytest.fixture()
def model():
    a = 0.9 * np.eye(2)
    b = np.array([[0.5, 0.1], [0.1, 0.5]])
    return DiscreteThermalModel(a=a, b=b, offset=[30.0, 30.0], ts_s=0.1)


def test_one_step_prediction(model):
    t = np.array([300.0, 310.0])
    p = np.array([1.0, 0.0])
    pred = model.predict_next(t, p)
    expected = model.a @ t + model.b @ p + model.offset
    assert np.allclose(pred, expected)


def test_n_step_constant_equals_iterated(model):
    t = np.array([300.0, 310.0])
    p = np.array([1.0, 0.5])
    iterated = t.copy()
    for _ in range(7):
        iterated = model.predict_next(iterated, p)
    direct = model.predict_n_constant(t, p, 7)
    assert np.allclose(direct, iterated)


def test_horizon_matrices_identities(model):
    a_n, m_n, s_n = model.horizon_matrices(5)
    assert np.allclose(a_n, np.linalg.matrix_power(model.a, 5))
    s_expected = sum(np.linalg.matrix_power(model.a, i) for i in range(5))
    assert np.allclose(s_n, s_expected)
    assert np.allclose(m_n, s_expected @ model.b)


def test_trajectory_prediction_shape(model):
    traj = np.ones((10, 2))
    preds = model.predict_horizon([300.0, 300.0], traj)
    assert preds.shape == (10, 2)
    # last row equals the constant-power prediction
    assert np.allclose(
        preds[-1], model.predict_n_constant([300.0, 300.0], [1.0, 1.0], 10)
    )


def test_stability_and_spectral_radius(model):
    assert model.is_stable()
    assert model.spectral_radius() == pytest.approx(0.9)
    unstable = DiscreteThermalModel(a=1.1 * np.eye(2), b=np.eye(2), ts_s=0.1)
    assert not unstable.is_stable()


def test_dc_gain(model):
    gain = model.dc_gain()
    assert np.allclose(gain, np.linalg.solve(np.eye(2) - model.a, model.b))


def test_equilibrium_consistency(model):
    """At the DC fixed point, one more step changes nothing."""
    p = np.array([1.0, 0.5])
    t_eq = np.linalg.solve(np.eye(2) - model.a, model.b @ p + model.offset)
    assert np.allclose(model.predict_next(t_eq, p), t_eq)


def test_default_offset_is_zero():
    m = DiscreteThermalModel(a=0.5 * np.eye(2), b=np.eye(2), ts_s=0.1)
    assert np.allclose(m.offset, 0.0)


def test_input_validation(model):
    with pytest.raises(ModelError):
        model.predict_next([300.0], [1.0, 0.0])
    with pytest.raises(ModelError):
        model.predict_next([300.0, 300.0], [1.0])
    with pytest.raises(ModelError):
        model.predict_horizon([300.0, 300.0], np.ones((5, 3)))
    with pytest.raises(ModelError):
        model.horizon_matrices(0)


def test_constructor_validation():
    with pytest.raises(ModelError):
        DiscreteThermalModel(a=np.ones((2, 3)), b=np.eye(2), ts_s=0.1)
    with pytest.raises(ModelError):
        DiscreteThermalModel(a=np.eye(2), b=np.ones((3, 2)), ts_s=0.1)
    with pytest.raises(ModelError):
        DiscreteThermalModel(a=np.eye(2), b=np.eye(2), offset=[1.0], ts_s=0.1)
    with pytest.raises(ModelError):
        DiscreteThermalModel(a=np.eye(2), b=np.eye(2), ts_s=0.0)
