"""The Exynos-like ground-truth floorplan network."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.thermal import floorplan
from repro.units import celsius_to_kelvin as c2k


@pytest.fixture()
def network():
    return floorplan.build_exynos_network(c2k(25.0))


def test_network_has_expected_nodes(network):
    for name in floorplan.BIG_CORE_NODES + (
        floorplan.LITTLE_NODE,
        floorplan.GPU_NODE,
        floorplan.MEM_NODE,
        floorplan.CASE_NODE,
        floorplan.BOARD_NODE,
    ):
        assert network.index(name) >= 0
    assert network.num_nodes == 9


def test_constants_override(network):
    net2 = floorplan.build_exynos_network(
        c2k(25.0), {"g_case_ambient": 0.10}
    )
    ss1 = net2.steady_state_k(
        floorplan.node_powers(net2, [0.5] * 4, 0.1, 0.1, 0.1)
    )
    ss0 = network.steady_state_k(
        floorplan.node_powers(network, [0.5] * 4, 0.1, 0.1, 0.1)
    )
    assert ss1.max() < ss0.max()  # better cooling -> cooler


def test_unknown_constant_rejected():
    with pytest.raises(ConfigurationError):
        floorplan.build_exynos_network(c2k(25.0), {"bogus": 1.0})


def test_node_powers_layout(network):
    vec = floorplan.node_powers(network, [0.1, 0.2, 0.3, 0.4], 0.5, 0.6, 0.7)
    assert vec[network.index("big2")] == pytest.approx(0.3)
    assert vec[network.index(floorplan.GPU_NODE)] == pytest.approx(0.6)
    assert vec[network.index(floorplan.CASE_NODE)] == 0.0
    assert vec[network.index(floorplan.BOARD_NODE)] == 0.0


def test_node_powers_validates_core_count(network):
    with pytest.raises(ConfigurationError):
        floorplan.node_powers(network, [0.1, 0.2], 0.0, 0.0, 0.0)


def test_loaded_core_is_the_hotspot(network):
    vec = floorplan.node_powers(network, [1.0, 0.2, 0.2, 0.2], 0.05, 0.1, 0.2)
    ss = network.steady_state_k(vec)
    hots = [ss[network.index(n)] for n in floorplan.BIG_CORE_NODES]
    assert np.argmax(hots) == 0
    assert hots[0] - min(hots) > 1.0  # visible inter-core spread


def test_full_load_exceeds_constraint_without_fan(network):
    """Fig. 1.1's premise: passive cooling cannot hold a loaded big cluster."""
    vec = floorplan.node_powers(network, [0.8] * 4, 0.05, 0.2, 0.3)
    ss = network.steady_state_k(vec)
    hotspots = floorplan.hotspot_temperatures_k(network)  # current (ambient)
    assert ss.max() - 273.15 > 68.0


def test_resource_temperatures_keys(network):
    temps = floorplan.resource_temperatures_k(network)
    assert set(temps) == {"big", "little", "gpu", "mem", "case", "board"}


def test_core_time_constant_seconds(network):
    taus = network.dominant_time_constants_s()
    # slow board pole (hundreds of s) and fast core poles (seconds)
    assert taus[0] > 100.0
    assert taus[-1] < 10.0
