"""System identification: estimators and the PRBS experiment protocol."""

import numpy as np
import pytest

from repro.errors import IdentificationError
from repro.platform.specs import POWER_RESOURCES, Resource
from repro.thermal.state_space import DiscreteThermalModel
from repro.thermal.sysid import (
    IdentificationSession,
    PrbsExperiment,
    SystemIdentifier,
)


def _synthetic_sessions(rng, steps=800):
    """Sessions generated from a known LTI system (no plant, no noise)."""
    a_true = np.array(
        [
            [0.80, 0.05, 0.05, 0.02],
            [0.05, 0.80, 0.02, 0.05],
            [0.05, 0.02, 0.80, 0.05],
            [0.02, 0.05, 0.05, 0.80],
        ]
    )
    # like the real platform, every input heats every sensed core
    b_true = np.array(
        [
            [0.60, 0.10, 0.20, 0.15],
            [0.50, 0.12, 0.18, 0.16],
            [0.55, 0.11, 0.22, 0.14],
            [0.45, 0.13, 0.19, 0.17],
        ]
    )
    d_true = np.full(4, 24.0)
    sessions = []
    for j, resource in enumerate(POWER_RESOURCES):
        t = np.full(4, 300.0)
        temps, powers = [], []
        p = np.full(4, 0.2)
        for k in range(steps):
            if k % 30 == 0:
                p = np.full(4, 0.2)
                p[j] = rng.choice([0.2, 2.0])
            temps.append(t.copy())
            powers.append(p.copy())
            # small independent per-core disturbance decorrelates the
            # states so A is identifiable (persistent excitation)
            t = a_true @ t + b_true @ p + d_true + rng.normal(0, 0.05, 4)
        sessions.append(
            IdentificationSession(
                resource=resource,
                temps_k=np.stack(temps),
                powers_w=np.stack(powers),
                ts_s=0.1,
            )
        )
    return a_true, b_true, d_true, sessions


def test_joint_identification_recovers_synthetic_system(rng):
    a, b, d, sessions = _synthetic_sessions(rng, steps=3000)
    model = SystemIdentifier(ridge=1e-10).identify(sessions)
    assert np.allclose(model.a, a, atol=0.03)
    assert np.allclose(model.b, b, atol=0.06)
    assert np.allclose(model.offset, d, atol=6.0)  # absorbed constants


def test_staged_identification_recovers_synthetic_system(rng):
    a, b, d, sessions = _synthetic_sessions(rng, steps=3000)
    model = SystemIdentifier(ridge=1e-10).identify_staged(sessions)
    assert np.allclose(model.a, a, atol=0.03)
    # each excited column must be recovered
    for j in range(4):
        assert np.allclose(model.b[:, j], b[:, j], atol=0.10)


def test_identifier_rejects_empty_and_mixed_ts():
    ident = SystemIdentifier()
    with pytest.raises(IdentificationError):
        ident.identify([])
    rng = np.random.default_rng(0)
    _, _, _, sessions = _synthetic_sessions(rng, steps=100)
    object.__setattr__
    sessions[1].ts_s = 0.2
    with pytest.raises(IdentificationError):
        ident.identify(sessions)


def test_staged_requires_big_session(rng):
    _, _, _, sessions = _synthetic_sessions(rng, steps=100)
    without_big = [s for s in sessions if s.resource is not Resource.BIG]
    with pytest.raises(IdentificationError):
        SystemIdentifier().identify_staged(without_big)


def test_session_validation():
    with pytest.raises(IdentificationError):
        IdentificationSession(
            Resource.BIG, np.zeros((10, 4)), np.zeros((10, 4)), 0.1
        )  # too short
    with pytest.raises(IdentificationError):
        IdentificationSession(
            Resource.BIG, np.zeros((100, 4)), np.zeros((90, 4)), 0.1
        )  # misaligned


# ---- the full simulated campaign (slower, module-scoped) -------------------
@pytest.fixture(scope="module")
def campaign():
    exp = PrbsExperiment(duration_s=300.0)
    return exp.run_all()


def test_campaign_covers_all_resources(campaign):
    assert [s.resource for s in campaign] == list(POWER_RESOURCES)


def test_campaign_excites_target_resource(campaign):
    idx = {r: i for i, r in enumerate(POWER_RESOURCES)}
    for session in campaign:
        j = idx[session.resource]
        own_std = session.powers_w[:, j].std()
        others = [
            session.powers_w[:, k].std()
            for k in range(4)
            if k != j
        ]
        assert own_std > 2.0 * max(others), (
            "%s session does not dominate the excitation" % session.resource
        )


def test_identified_models_are_stable(campaign):
    ident = SystemIdentifier()
    for estimate in (ident.identify, ident.identify_staged, ident.identify_structured):
        model = estimate(campaign)
        assert isinstance(model, DiscreteThermalModel)
        assert model.is_stable()
        assert model.num_states == 4 and model.num_inputs == 4


def test_structured_model_preserves_spread(campaign):
    """The hottest-core persistence the budget equation relies on."""
    model = SystemIdentifier().identify_structured(campaign)
    t = np.array([340.0, 330.0, 330.0, 330.0])
    p = np.full(4, 0.5)
    pred = model.predict_n_constant(t, p, 10)
    # after 1 s the formerly-hot core must still be clearly the hottest
    assert pred[0] - pred[1:].max() > 4.0


def test_structured_requires_big_session(campaign):
    without_big = [s for s in campaign if s.resource is not Resource.BIG]
    with pytest.raises(IdentificationError):
        SystemIdentifier().identify_structured(without_big)
