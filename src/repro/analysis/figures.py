"""ASCII renderers for the paper's figures.

The benchmark harness regenerates every figure as a text artefact: a
time-series line plot (temperature/frequency traces) or a labelled bar
chart (savings / loss / stability summaries).  Pure text keeps the harness
dependency-free and diff-able.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError


def ascii_timeseries(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    width: int = 78,
    height: int = 18,
    title: str = "",
    y_label: str = "",
) -> str:
    """Render one or more (t, y) series as an ASCII line plot.

    Each series gets a distinct marker; the plot is auto-scaled to the
    union of the data ranges.
    """
    if not series:
        raise SimulationError("no series to plot")
    markers = "*o+x#@%&"
    all_t = np.concatenate([np.asarray(t, dtype=float) for t, _ in series.values()])
    all_y = np.concatenate([np.asarray(y, dtype=float) for _, y in series.values()])
    if all_t.size == 0:
        raise SimulationError("empty series")
    t_lo, t_hi = float(all_t.min()), float(all_t.max())
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    if t_hi <= t_lo:
        t_hi = t_lo + 1.0
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0
    pad = 0.05 * (y_hi - y_lo)
    y_lo -= pad
    y_hi += pad

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, (t, y)) in enumerate(series.items()):
        marker = markers[idx % len(markers)]
        t = np.asarray(t, dtype=float)
        y = np.asarray(y, dtype=float)
        cols = ((t - t_lo) / (t_hi - t_lo) * (width - 1)).astype(int)
        rows = ((y_hi - y) / (y_hi - y_lo) * (height - 1)).astype(int)
        for c, r in zip(cols, rows):
            grid[min(max(r, 0), height - 1)][min(max(c, 0), width - 1)] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    legend = "  ".join(
        "%s=%s" % (markers[i % len(markers)], name)
        for i, name in enumerate(series)
    )
    lines.append(legend)
    lines.append("%8.2f +%s" % (y_hi, "-" * width))
    for r, row in enumerate(grid):
        label = ""
        if r == height // 2 and y_label:
            label = y_label[: 8]
        lines.append("%8s |%s" % (label, "".join(row)))
    lines.append("%8.2f +%s" % (y_lo, "-" * width))
    lines.append("%8s  %-10.1f%s%10.1f s" % ("", t_lo, " " * (width - 22), t_hi))
    return "\n".join(lines)


def sparkline(values: Sequence[float], levels: str = " .:-=+*#%@") -> str:
    """Render a sequence as a one-character-per-value inline bar strip.

    Used by the report's scenario section to show a whole diurnal chain's
    per-position profile on a single line; auto-scaled to the data range
    (a constant sequence renders at the middle level).
    """
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise SimulationError("no values to plot")
    lo, hi = float(data.min()), float(data.max())
    if hi <= lo:
        return levels[len(levels) // 2] * data.size
    scaled = (data - lo) / (hi - lo) * (len(levels) - 1)
    return "".join(levels[int(round(s))] for s in scaled)


def ascii_bars(
    values: Dict[str, float],
    width: int = 50,
    title: str = "",
    unit: str = "",
) -> str:
    """Render a labelled horizontal bar chart."""
    if not values:
        raise SimulationError("no bars to plot")
    lines: List[str] = []
    if title:
        lines.append(title)
    largest = max(abs(v) for v in values.values()) or 1.0
    name_w = max(len(k) for k in values)
    for name, value in values.items():
        bar = "#" * max(0, int(round(abs(value) / largest * width)))
        lines.append(
            "%-*s | %-*s %8.2f %s" % (name_w, name, width, bar, value, unit)
        )
    return "\n".join(lines)


def ascii_grouped_bars(
    groups: Dict[str, Dict[str, float]],
    width: int = 40,
    title: str = "",
    unit: str = "",
) -> str:
    """Grouped bars: outer key = bar group (benchmark), inner = series."""
    if not groups:
        raise SimulationError("no groups to plot")
    lines: List[str] = []
    if title:
        lines.append(title)
    largest = max(
        (abs(v) for inner in groups.values() for v in inner.values()),
        default=1.0,
    ) or 1.0
    name_w = max(len(k) for k in groups)
    series_w = max(len(s) for inner in groups.values() for s in inner)
    for name, inner in groups.items():
        for i, (series, value) in enumerate(inner.items()):
            label = name if i == 0 else ""
            bar = "#" * max(0, int(round(abs(value) / largest * width)))
            lines.append(
                "%-*s  %-*s | %-*s %8.2f %s"
                % (name_w, label, series_w, series, width, bar, value, unit)
            )
    return "\n".join(lines)
