"""Result analysis: statistics, table and figure renderers."""

from repro.analysis.report import generate_report
from repro.analysis.figures import ascii_bars, ascii_grouped_bars, ascii_timeseries
from repro.analysis.stats import (
    StabilityStats,
    average_fan_power_w,
    fan_duty,
    frequency_residency,
    regulation_quality,
    stability_stats,
    stability_stats_streaming,
    streaming_stability,
)
from repro.analysis.tables import benchmark_table, frequency_table, render_table

__all__ = [
    "generate_report",
    "ascii_bars",
    "ascii_grouped_bars",
    "ascii_timeseries",
    "StabilityStats",
    "average_fan_power_w",
    "fan_duty",
    "frequency_residency",
    "regulation_quality",
    "stability_stats",
    "stability_stats_streaming",
    "streaming_stability",
    "benchmark_table",
    "frequency_table",
    "render_table",
]
