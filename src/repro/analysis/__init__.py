"""Result analysis: suite analytics, statistics, table and figure renderers."""

from repro.analysis.report import generate_report
from repro.analysis.figures import (
    ascii_bars,
    ascii_grouped_bars,
    ascii_timeseries,
    sparkline,
)
from repro.analysis.stats import (
    StabilityStats,
    average_fan_power_w,
    fan_duty,
    frequency_residency,
    frequency_residency_batch,
    regulation_quality,
    regulation_quality_batch,
    stability_stats,
    stability_stats_batch,
    stability_stats_streaming,
    streaming_stability,
)
from repro.analysis.suite import SuiteFrame, summarize_dir
from repro.analysis.tables import (
    benchmark_table,
    frequency_table,
    markdown_table,
    render_table,
)

__all__ = [
    "generate_report",
    "ascii_bars",
    "ascii_grouped_bars",
    "ascii_timeseries",
    "sparkline",
    "StabilityStats",
    "SuiteFrame",
    "average_fan_power_w",
    "fan_duty",
    "frequency_residency",
    "frequency_residency_batch",
    "regulation_quality",
    "regulation_quality_batch",
    "stability_stats",
    "stability_stats_batch",
    "stability_stats_streaming",
    "streaming_stability",
    "summarize_dir",
    "benchmark_table",
    "frequency_table",
    "markdown_table",
    "render_table",
]
