"""Suite analytics core: many runs as one columnar frame.

A :class:`SuiteFrame` gathers the *summaries* of many runs into
struct-of-arrays columns (one NumPy array per scalar field, one list per
string field) and keeps every *trace* as a lazy handle: in-memory results
contribute zero-copy views of their recorders, cached entries contribute
the ``.npz`` blob opened **as a memory map** on first touch -- a frame
over a whole :class:`~repro.runner.ResultCache` directory therefore never
pulls a trace eagerly into RAM, and a reduction that reads two columns of
each run faults in only those pages.

Reductions (:meth:`stability`, :meth:`regulation`, :meth:`savings`,
:meth:`residency`, :meth:`groupby`) are array-in/array-out: they funnel
the per-run column batches through the ``*_batch`` kernels of
:mod:`repro.analysis.stats` / :mod:`repro.sim.metrics` and never
materialise per-row dicts.  The report generator renders every section
from these reductions; ``repro-dtpm suite summarize`` points them at an
existing cache directory.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.stats import (
    frequency_residency_batch,
    regulation_quality_batch,
    stability_stats_batch,
)
from repro.errors import SimulationError
from repro.runner.cache import (
    ARTIFACT_FORMAT,
    SUMMARY_COUNT_FIELDS,
    SUMMARY_FLOAT_FIELDS,
    ResultCache,
    summary_row,
)
from repro.runner.spec import RunSpec
from repro.sim.metrics import (
    performance_loss_pct_batch,
    power_savings_pct_batch,
)
from repro.sim.run_result import RunResult, rows_to_matrix

#: Scalar summary fields gathered into float64 columns.
FLOAT_FIELDS = SUMMARY_FLOAT_FIELDS

#: Counter summary fields gathered into int64 columns.
COUNT_FIELDS = SUMMARY_COUNT_FIELDS

#: A zero-argument callable producing one run's (rows, columns) matrix.
TraceLoader = Callable[[], np.ndarray]


class SuiteFrame:
    """Columnar view over many runs: summaries eager, traces lazy.

    Construct with :meth:`from_results` (in-memory results, e.g. straight
    out of a :class:`~repro.runner.ParallelRunner`), :meth:`from_cache`
    (selected keys of a result cache) or :meth:`open_dir` (every entry of
    a cache directory).  Rows keep the order they were given in; when
    ``specs`` accompany the rows, per-spec metadata (chain position,
    workload category, seed) becomes available to :meth:`groupby`.
    """

    def __init__(
        self,
        benchmarks: Sequence[str],
        modes: Sequence[str],
        scalars: Dict[str, np.ndarray],
        trace_columns: Sequence[Sequence[str]],
        trace_loaders: Sequence[TraceLoader],
        keys: Optional[Sequence[str]] = None,
        specs: Optional[Sequence[RunSpec]] = None,
    ) -> None:
        n = len(benchmarks)
        for name, label in (
            (modes, "modes"),
            (trace_columns, "trace_columns"),
            (trace_loaders, "trace_loaders"),
        ):
            if len(name) != n:
                raise SimulationError(
                    "frame %s holds %d entries for %d rows"
                    % (label, len(name), n)
                )
        if keys is not None and len(keys) != n:
            raise SimulationError(
                "frame keys hold %d entries for %d rows" % (len(keys), n)
            )
        if specs is not None and len(specs) != n:
            raise SimulationError(
                "frame specs hold %d entries for %d rows" % (len(specs), n)
            )
        self.benchmark = list(benchmarks)
        self.mode = list(modes)
        self._scalars = {k: np.asarray(v) for k, v in scalars.items()}
        for field, values in self._scalars.items():
            if values.shape != (n,):
                raise SimulationError(
                    "summary column %r has shape %s for %d rows"
                    % (field, values.shape, n)
                )
        self._trace_columns = [list(c) for c in trace_columns]
        self._trace_loaders = list(trace_loaders)
        self._traces: List[Optional[np.ndarray]] = [None] * n
        self.keys = list(keys) if keys is not None else None
        self.specs = list(specs) if specs is not None else None

    # ------------------------------------------------------------------
    # constructors
    @classmethod
    def from_results(
        cls,
        results: Sequence[RunResult],
        specs: Optional[Sequence[RunSpec]] = None,
        keys: Optional[Sequence[str]] = None,
    ) -> "SuiteFrame":
        """Frame over in-memory results (recorder views, zero copies)."""
        results = list(results)
        scalars = {
            field: np.array(
                [getattr(r, field) for r in results], dtype=float
            )
            for field in FLOAT_FIELDS
        }
        scalars.update(
            {
                field: np.array(
                    [getattr(r, field) for r in results], dtype=np.int64
                )
                for field in COUNT_FIELDS
            }
        )
        scalars["completed"] = np.array(
            [r.completed for r in results], dtype=bool
        )
        return cls(
            benchmarks=[r.benchmark for r in results],
            modes=[r.mode for r in results],
            scalars=scalars,
            trace_columns=[r.trace.columns for r in results],
            trace_loaders=[r.trace.array for r in results],
            keys=keys,
            specs=specs,
        )

    @classmethod
    def from_cache(
        cls,
        cache: ResultCache,
        keys: Optional[Sequence[str]] = None,
        mmap: bool = True,
        specs: Optional[Sequence[RunSpec]] = None,
        use_index: bool = True,
    ) -> "SuiteFrame":
        """Frame over cached entries; traces stay on disk until touched.

        ``keys=None`` opens every readable entry of the cache directory
        (deterministic key order) -- by default through the per-shard
        index (:meth:`~repro.runner.ResultCache.frame_chunks`): fully-v2
        shards come back as pre-extracted *columnar* frame files, so a
        warm 100k-entry store opens with a few hundred reads and no
        per-entry work at all; ``use_index=False`` forces the per-entry
        walk (same rows, same order).  v2 entries contribute their
        summary JSON now and a lazily *memory-mapped* trace blob later;
        legacy v1 entries (trace rows inline in the JSON) decode their
        matrix on first touch -- nothing smaller exists on disk for
        them.  With explicit ``keys``, a missing or corrupt entry
        raises; the directory walk skips unreadable debris instead.
        """
        explicit = keys is not None
        if not explicit and use_index and specs is None:
            return cls._from_chunks(cache, mmap)
        pairs: List[Tuple[str, Optional[dict]]]
        if explicit:
            keys = list(keys)
            pairs = [(key, cache.load_summary(key)) for key in keys]
        elif use_index:
            pairs = list(cache.indexed_summaries())
            keys = [key for key, _ in pairs]
        else:
            keys = cache.keys()
            pairs = [(key, cache.load_summary(key)) for key in keys]
        if specs is not None and len(specs) != len(keys):
            raise SimulationError(
                "%d specs for %d cache keys" % (len(specs), len(keys))
            )
        benchmarks: List[str] = []
        modes: List[str] = []
        rows: Dict[str, List] = {
            field: [] for field in FLOAT_FIELDS + COUNT_FIELDS
        }
        completed: List[bool] = []
        trace_columns: List[List[str]] = []
        loaders: List[TraceLoader] = []
        kept: List[str] = []
        kept_specs: List[RunSpec] = []
        for i, (key, payload) in enumerate(pairs):
            if payload is None:
                if explicit:
                    raise SimulationError(
                        "cache entry %s is missing or unreadable" % key
                    )
                continue
            row = summary_row(payload)
            if row is None:
                if explicit:
                    raise SimulationError(
                        "cache entry %s has a malformed summary" % key
                    )
                continue
            floats, counts, benchmark, mode, done, columns = row
            for field, value in zip(FLOAT_FIELDS, floats):
                rows[field].append(value)
            for field, value in zip(COUNT_FIELDS, counts):
                rows[field].append(value)
            benchmarks.append(benchmark)
            modes.append(mode)
            completed.append(done)
            trace_columns.append(columns)
            loaders.append(_cache_loader(cache, key, payload, mmap))
            kept.append(key)
            if specs is not None:
                kept_specs.append(specs[i])
        return cls(
            benchmarks=benchmarks,
            modes=modes,
            scalars=_scalar_columns(rows, completed),
            trace_columns=trace_columns,
            trace_loaders=loaders,
            keys=kept,
            specs=kept_specs if specs is not None else None,
        )

    @classmethod
    def _from_chunks(cls, cache: ResultCache, mmap: bool) -> "SuiteFrame":
        """Whole-directory open through the per-shard columnar chunks.

        ``("cols", ...)`` chunks splice straight into the column lists
        (C-speed extends, one cheap loader closure per row); ``("rows",
        ...)`` chunks -- shards still holding v1 or malformed entries --
        extract row by row under the exact :func:`summary_row` rule the
        walk path applies, so both paths keep identical rows.
        """
        benchmarks: List[str] = []
        modes: List[str] = []
        rows: Dict[str, List] = {
            field: [] for field in FLOAT_FIELDS + COUNT_FIELDS
        }
        completed: List[bool] = []
        trace_columns: List[List[str]] = []
        loaders: List[TraceLoader] = []
        kept: List[str] = []
        for kind, chunk in cache.frame_chunks():
            if kind == "cols":
                chunk_keys = chunk["keys"]
                kept.extend(chunk_keys)
                benchmarks.extend(chunk["benchmark"])
                modes.extend(chunk["mode"])
                completed.extend(chunk["completed"])
                for field in FLOAT_FIELDS + COUNT_FIELDS:
                    rows[field].extend(chunk[field])
                tables = chunk["trace_columns"]
                trace_columns.extend(
                    tables[i] for i in chunk["trace_col_idx"]
                )
                loaders.extend(
                    _v2_loader(cache, key, mmap) for key in chunk_keys
                )
                continue
            for key, payload in chunk:
                row = summary_row(payload)
                if row is None:
                    continue
                floats, counts, benchmark, mode, done, columns = row
                for field, value in zip(FLOAT_FIELDS, floats):
                    rows[field].append(value)
                for field, value in zip(COUNT_FIELDS, counts):
                    rows[field].append(value)
                benchmarks.append(benchmark)
                modes.append(mode)
                completed.append(done)
                trace_columns.append(columns)
                loaders.append(_cache_loader(cache, key, payload, mmap))
                kept.append(key)
        return cls(
            benchmarks=benchmarks,
            modes=modes,
            scalars=_scalar_columns(rows, completed),
            trace_columns=trace_columns,
            trace_loaders=loaders,
            keys=kept,
        )

    @classmethod
    def open_dir(
        cls, root: str, mmap: bool = True, use_index: bool = True
    ) -> "SuiteFrame":
        """Frame over every entry of an on-disk cache directory."""
        return cls.from_cache(
            ResultCache(root=root, memory=False),
            mmap=mmap,
            use_index=use_index,
        )

    # ------------------------------------------------------------------
    # columnar access
    def __len__(self) -> int:
        return len(self.benchmark)

    def column(self, field: str) -> np.ndarray:
        """One summary field as a struct-of-arrays column."""
        try:
            return self._scalars[field]
        except KeyError:
            raise SimulationError(
                "unknown summary column %r (have %s)"
                % (field, sorted(self._scalars))
            ) from None

    @property
    def positions(self) -> np.ndarray:
        """Chain position of every row (requires spec metadata)."""
        if self.specs is None:
            raise SimulationError(
                "frame carries no specs; chain positions unknown"
            )
        return np.array([s.position for s in self.specs], dtype=np.int64)

    @property
    def categories(self) -> List[str]:
        """Workload power category of every row (requires spec metadata)."""
        if self.specs is None:
            raise SimulationError(
                "frame carries no specs; workload categories unknown"
            )
        return [s.workload.category for s in self.specs]

    def trace(self, i: int) -> np.ndarray:
        """Row ``i``'s full trace matrix (memoised lazy load)."""
        cached = self._traces[i]
        if cached is None:
            cached = self._trace_loaders[i]()
            self._traces[i] = cached
        return cached

    def trace_column(self, i: int, name: str) -> np.ndarray:
        """One column of row ``i``'s trace (a view; pages load on demand)."""
        try:
            idx = self._trace_columns[i].index(name)
        except ValueError:
            raise SimulationError(
                "run %d has no trace column %r" % (i, name)
            ) from None
        return self.trace(i)[:, idx]

    def trace_matrix(self, i: int, names: Sequence[str]) -> np.ndarray:
        """Named columns of row ``i``'s trace, stacked ``(rows, len(names))``."""
        return np.stack([self.trace_column(i, n) for n in names], axis=1)

    def column_batch(self, name: str) -> List[np.ndarray]:
        """One trace column across every row (the ``*_batch`` kernel feed)."""
        return [self.trace_column(i, name) for i in range(len(self))]

    def select(self, indices: Sequence[int]) -> "SuiteFrame":
        """A sub-frame of the given rows (shares loaded trace memos)."""
        indices = [int(i) for i in indices]
        frame = SuiteFrame(
            benchmarks=[self.benchmark[i] for i in indices],
            modes=[self.mode[i] for i in indices],
            scalars={k: v[indices] for k, v in self._scalars.items()},
            trace_columns=[self._trace_columns[i] for i in indices],
            trace_loaders=[self._trace_loaders[i] for i in indices],
            keys=(
                [self.keys[i] for i in indices]
                if self.keys is not None
                else None
            ),
            specs=(
                [self.specs[i] for i in indices]
                if self.specs is not None
                else None
            ),
        )
        frame._traces = [self._traces[i] for i in indices]
        return frame

    # ------------------------------------------------------------------
    # reductions
    def stability(self, skip_s=None) -> Dict[str, np.ndarray]:
        """Per-run regulation-quality arrays (see ``stability_stats_batch``)."""
        return stability_stats_batch(
            self.column_batch("time_s"),
            self.column_batch("max_temp_c"),
            skip_s=skip_s,
            execution_times_s=self.column("execution_time_s"),
        )

    def regulation(self, constraint_c: float, skip_s=None) -> Dict[str, np.ndarray]:
        """Per-run constraint-exceedance arrays over the settled regions."""
        return regulation_quality_batch(
            self.column_batch("time_s"),
            self.column_batch("max_temp_c"),
            constraint_c,
            skip_s=skip_s,
            execution_times_s=self.column("execution_time_s"),
        )

    def residency(self, aggregate: bool = False):
        """Big-cluster frequency residency across the frame.

        Per-run arrays keyed by frequency (GHz) by default; with
        ``aggregate=True`` one interval-weighted mapping for the whole
        frame (every run's intervals pooled).
        """
        freqs = [
            self.trace_column(i, "big_freq_hz") / 1e9
            for i in range(len(self))
        ]
        per_run = frequency_residency_batch(freqs)
        if not aggregate:
            return per_run
        lengths = np.array([f.size for f in freqs], dtype=float)
        total = float(lengths.sum())
        return {
            f: float(np.dot(fractions, lengths) / total)
            for f, fractions in per_run.items()
        }

    def groupby(self, field: str) -> Dict[object, np.ndarray]:
        """Row indices grouped by a metadata column, first-seen order.

        ``field`` is ``"benchmark"``, ``"mode"``, ``"position"`` or
        ``"category"`` (the latter two need spec metadata).  Values map to
        index arrays usable with :meth:`select` or any reduction output.
        """
        if field == "benchmark":
            labels: Sequence = self.benchmark
        elif field == "mode":
            labels = self.mode
        elif field == "position":
            labels = self.positions.tolist()
        elif field == "category":
            labels = self.categories
        else:
            raise SimulationError("cannot group by %r" % field)
        groups: Dict[object, List[int]] = {}
        for i, label in enumerate(labels):
            groups.setdefault(label, []).append(i)
        return {
            label: np.array(indices, dtype=np.intp)
            for label, indices in groups.items()
        }

    def savings(
        self,
        baseline_mode: str = "with_fan",
        candidate_mode: str = "dtpm",
    ) -> Dict[str, np.ndarray]:
        """Vectorised baseline-vs-candidate comparison per benchmark.

        Pairs each benchmark's ``baseline_mode`` row with its
        ``candidate_mode`` row (scheduled rows additionally match on
        chain position; repeated same-named rows pair positionally --
        the k-th baseline with the k-th candidate, matching the
        workload-major grid order of ``comparison_specs``) and reduces
        the gathered power/time columns through the metrics batch
        kernels.  Returns index arrays (``baseline``/``candidate``) plus
        ``power_savings_pct`` / ``performance_loss_pct`` columns, rows
        ordered by each pair's first appearance.
        """
        pos = (
            self.positions
            if self.specs is not None
            else np.zeros(len(self), dtype=np.int64)
        )
        pairs: Dict[Tuple[str, int, int], List[Optional[int]]] = {}
        order: List[Tuple[str, int, int]] = []
        seen: Dict[Tuple[str, int, int], int] = {}
        for i in range(len(self)):
            slot = (
                0
                if self.mode[i] == baseline_mode
                else 1
                if self.mode[i] == candidate_mode
                else None
            )
            if slot is None:
                continue  # rows in neither mode (e.g. no_fan) drop out
            # occurrence counter per (benchmark, position, slot): the
            # k-th repeat opens (or joins) the k-th pair of that name
            name_pos = (self.benchmark[i], int(pos[i]), slot)
            k = seen.get(name_pos, 0)
            seen[name_pos] = k + 1
            ident = (self.benchmark[i], int(pos[i]), k)
            if ident not in pairs:
                pairs[ident] = [None, None]
                order.append(ident)
            pairs[ident][slot] = i
        base_idx: List[int] = []
        cand_idx: List[int] = []
        for ident in order:
            base, cand = pairs[ident]
            if base is None or cand is None:
                raise SimulationError(
                    "benchmark %r lacks its %r/%r pair"
                    % (ident[0], baseline_mode, candidate_mode)
                )
            base_idx.append(base)
            cand_idx.append(cand)
        baseline = np.array(base_idx, dtype=np.intp)
        candidate = np.array(cand_idx, dtype=np.intp)
        power = self.column("average_platform_power_w")
        times = self.column("execution_time_s")
        return {
            "baseline": baseline,
            "candidate": candidate,
            "power_savings_pct": power_savings_pct_batch(
                power[baseline], power[candidate]
            ),
            "performance_loss_pct": performance_loss_pct_batch(
                times[baseline], times[candidate]
            ),
        }


def _scalar_columns(
    rows: Dict[str, List], completed: Sequence[bool]
) -> Dict[str, np.ndarray]:
    """Materialise accumulated per-field lists as frame column arrays."""
    scalars = {
        field: np.array(rows[field], dtype=float)
        for field in FLOAT_FIELDS
    }
    scalars.update(
        {
            field: np.array(rows[field], dtype=np.int64)
            for field in COUNT_FIELDS
        }
    )
    scalars["completed"] = np.array(completed, dtype=bool)
    return scalars


def _v2_loader(cache: ResultCache, key: str, mmap: bool) -> TraceLoader:
    """Lazy memmap handle over one v2 entry's on-disk trace blob."""
    return partial(cache.open_trace, key, mmap)


def _cache_loader(
    cache: ResultCache, key: str, payload: dict, mmap: bool
) -> TraceLoader:
    """Lazy trace handle for one cached entry (memmap for v2, decode for v1)."""
    if payload.get("artifact") == ARTIFACT_FORMAT:
        return _v2_loader(cache, key, mmap)
    columns = payload["trace"]["columns"]
    rows = payload["trace"]["rows"]

    def load_v1() -> np.ndarray:
        if not rows:
            return np.empty((0, len(columns)), dtype=np.float64)
        return rows_to_matrix(columns, rows)

    return load_v1


def summarize_dir(root: str, mmap: bool = True) -> str:
    """Human-readable digest of a cache directory's suite of runs.

    The ``repro-dtpm suite summarize`` body: opens the directory as a
    :class:`SuiteFrame` (traces memory-mapped) and renders per-mode
    aggregate rows from its reductions.
    """
    frame = SuiteFrame.open_dir(root, mmap=mmap)
    if len(frame) == 0:
        return "cache at %s holds no readable run entries" % root
    from repro.analysis.tables import render_table

    stab = frame.stability()
    power = frame.column("average_platform_power_w")
    times = frame.column("execution_time_s")
    rows = []
    for mode, idx in sorted(frame.groupby("mode").items()):
        rows.append(
            [
                mode,
                "%d" % idx.size,
                "%d" % len({frame.benchmark[i] for i in idx.tolist()}),
                "%.1f" % float(np.mean(times[idx])),
                "%.2f" % float(np.mean(power[idx])),
                "%.1f" % float(np.mean(stab["average_temp_c"][idx])),
                "%.1f" % float(np.max(stab["peak_c"][idx])),
            ]
        )
    table = render_table(
        ["mode", "runs", "benchmarks", "avg time (s)", "avg power (W)",
         "avg settled (C)", "peak (C)"],
        rows,
        title="Suite summary: %d cached runs at %s" % (len(frame), root),
    )
    residency = frame.residency(aggregate=True)
    top = sorted(residency.items(), key=lambda kv: -kv[1])[:4]
    lines = [
        table,
        "",
        "big-cluster residency (suite-wide): "
        + ", ".join("%.1f GHz %.0f%%" % (f, 100.0 * frac) for f, frac in top),
    ]
    return "\n".join(lines)


__all__ = [
    "COUNT_FIELDS",
    "FLOAT_FIELDS",
    "SuiteFrame",
    "summarize_dir",
]
