"""One-shot evaluation report generator -- the suite analytics read path.

Runs a configurable slice of the paper's evaluation and renders a single
markdown report: prediction accuracy (Fig. 6.2), the four-configuration
comparison for representative benchmarks (Figs. 6.3-6.5), the
DTPM-vs-default sweep (Fig. 6.9) with category summaries, and (opted in)
a scenario section reporting per-position stability/power deltas along a
diurnal chain.  Used by the ``repro-dtpm report`` CLI subcommand and
handy for regression-tracking a fork of the library.

The whole evaluation is *declared* as :class:`~repro.runner.RunSpec`
grids and executed through one
:meth:`~repro.runner.ParallelRunner.run` call: a runner with a warm
:class:`~repro.runner.ResultCache` renders the full report without
executing a single simulation, and a cold one rides the batched plant
(``execute_batch``) instead of stepping runs one at a time.  Every
section is rendered from :class:`~repro.analysis.suite.SuiteFrame`
reductions over the gathered results -- section values are byte-identical
to the historical direct-simulation implementation.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.analysis.figures import sparkline
from repro.analysis.suite import SuiteFrame
from repro.analysis.tables import markdown_table
from repro.runner.runner import ParallelRunner, ensure_runner
from repro.runner.spec import ExperimentMatrix, RunSpec
from repro.sim.engine import ThermalMode
from repro.sim.experiment import comparison_specs
from repro.sim.metrics import (
    ComparisonRow,
    overall_summary,
    summarize_categories,
)
from repro.sim.models import ModelBundle, default_models
from repro.sim.scenario import diurnal
from repro.thermal.validation import prediction_error_report
from repro.workloads.benchmarks import ALL_BENCHMARKS
from repro.workloads.trace import WorkloadTrace

#: Trace columns stacked for the prediction-accuracy section.
_TEMP_COLUMNS = ["temp%d_c" % i for i in range(4)]
_POWER_COLUMNS = ["p_big_w", "p_little_w", "p_gpu_w", "p_mem_w"]


def _prediction_specs(workloads: Sequence[WorkloadTrace]) -> List[RunSpec]:
    """Short open-loop runs feeding the Fig. 6.2 error table."""
    return [
        RunSpec(workload=w, mode=ThermalMode.NO_FAN, max_duration_s=150.0)
        for w in workloads
    ]


def _prediction_section(frame: SuiteFrame, models: ModelBundle) -> List[str]:
    lines = ["## Temperature prediction accuracy (1 s horizon)", ""]
    rows = []
    errors_c, errors_pct = [], []
    for i in range(len(frame)):
        temps = frame.trace_matrix(i, _TEMP_COLUMNS) + 273.15
        powers = frame.trace_matrix(i, _POWER_COLUMNS)
        report = prediction_error_report(models.thermal, temps, powers, 10)
        errors_c.append(report.mean_abs_c)
        errors_pct.append(report.mean_pct)
        rows.append(
            [frame.benchmark[i], "%.2f" % report.mean_abs_c,
             "%.2f" % report.mean_pct]
        )
    rows.append(
        ["**average**", "**%.2f**" % float(np.mean(errors_c)),
         "**%.2f**" % float(np.mean(errors_pct))]
    )
    lines += markdown_table(
        ["benchmark", "mean error (degC)", "mean error (%)"], rows
    )
    lines.append("")
    return lines


def _regulation_specs(workloads: Sequence[WorkloadTrace]) -> List[RunSpec]:
    """The three-configuration comparison grid (Figs. 6.3-6.5)."""
    return [
        RunSpec(workload=w, mode=mode)
        for w in workloads
        for mode in (
            ThermalMode.NO_FAN,
            ThermalMode.DEFAULT_WITH_FAN,
            ThermalMode.DTPM,
        )
    ]


def _regulation_section(frame: SuiteFrame) -> List[str]:
    lines = ["## Regulation quality (63 degC constraint)", ""]
    stab = frame.stability()
    lines += markdown_table(
        ["benchmark", "config", "peak (degC)", "avg (degC)", "band (degC)"],
        [
            [
                frame.benchmark[i],
                frame.mode[i],
                "%.1f" % stab["peak_c"][i],
                "%.1f" % stab["average_temp_c"][i],
                "%.1f" % stab["max_min_c"][i],
            ]
            for i in range(len(frame))
        ],
    )
    lines.append("")
    return lines


def _comparison_rows(frame: SuiteFrame) -> List[ComparisonRow]:
    """Fig.-6.9 rows from a frame holding the comparison grid."""
    sav = frame.savings(
        baseline_mode=ThermalMode.DEFAULT_WITH_FAN.value,
        candidate_mode=ThermalMode.DTPM.value,
    )
    power = frame.column("average_platform_power_w")
    times = frame.column("execution_time_s")
    categories = frame.categories
    rows: List[ComparisonRow] = []
    for j in range(sav["baseline"].size):
        base = int(sav["baseline"][j])
        cand = int(sav["candidate"][j])
        rows.append(
            ComparisonRow(
                benchmark=frame.benchmark[base],
                category=categories[base],
                power_savings_pct=float(sav["power_savings_pct"][j]),
                performance_loss_pct=float(sav["performance_loss_pct"][j]),
                baseline_power_w=float(power[base]),
                dtpm_power_w=float(power[cand]),
                baseline_time_s=float(times[base]),
                dtpm_time_s=float(times[cand]),
            )
        )
    return rows


def _savings_section(frame: SuiteFrame) -> List[str]:
    rows = _comparison_rows(frame)
    lines = ["## DTPM vs fan-cooled default (Fig. 6.9)", ""]
    lines += markdown_table(
        ["benchmark", "category", "savings (%)", "perf loss (%)"],
        [
            [
                row.benchmark,
                row.category,
                "%.1f" % row.power_savings_pct,
                "%.1f" % row.performance_loss_pct,
            ]
            for row in rows
        ],
    )
    lines.append("")
    lines.append("### Per category")
    lines.append("")
    for category, stats in sorted(summarize_categories(rows).items()):
        lines.append(
            "- **%s** (%d benchmarks): %.1f %% savings, %.1f %% loss"
            % (
                category,
                int(stats["count"]),
                stats["power_savings_pct"],
                stats["performance_loss_pct"],
            )
        )
    summary = overall_summary(rows)
    lines.append("")
    lines.append(
        "**Overall**: %.1f %% average savings (max %.1f %%), "
        "%.1f %% average performance loss (max %.1f %%)."
        % (
            summary["power_savings_pct"],
            summary["max_power_savings_pct"],
            summary["performance_loss_pct"],
            summary["max_performance_loss_pct"],
        )
    )
    lines.append("")
    return lines


def _chain_days(benchmarks: Sequence[str]) -> List[int]:
    """Day number of every chain position (overnight rows close their day)."""
    days = []
    day = 1
    for name in benchmarks:
        days.append(day)
        if name == "overnight":
            day += 1
    return days


def _scenario_section(
    frame: SuiteFrame, days: int, idle_gap_s: float
) -> List[str]:
    stab = frame.stability()
    power = frame.column("average_platform_power_w")
    day_of = _chain_days(frame.benchmark)
    # each position's baseline is the first chain position running the
    # same (benchmark, mode) -- day-over-day carry-over shows up as the
    # delta against that first occurrence
    first_seen = {}
    base_idx = []
    for i in range(len(frame)):
        ident = (frame.benchmark[i], frame.mode[i])
        first_seen.setdefault(ident, i)
        base_idx.append(first_seen[ident])
    base = np.array(base_idx, dtype=np.intp)
    d_temp = stab["average_temp_c"] - stab["average_temp_c"][base]
    d_power = power - power[base]

    lines = [
        "## Scenario: diurnal chain (%d day%s)"
        % (days, "" if days == 1 else "s"),
        "",
        "Thermal state carries across the whole schedule (idle gap %g s "
        "before each carried run); later days start from whatever the "
        "overnight standby left behind.  Deltas compare each position "
        "against the first run of the same app and mode along the chain."
        % idle_gap_s,
        "",
    ]
    rows = []
    for i in range(len(frame)):
        is_first = base[i] == i
        rows.append(
            [
                "%d" % i,
                "%d" % day_of[i],
                frame.benchmark[i],
                frame.mode[i],
                "%.1f" % stab["peak_c"][i],
                "%.1f" % stab["average_temp_c"][i],
                "%.2f" % power[i],
                "--" if is_first else "%+.2f" % d_temp[i],
                "--" if is_first else "%+.3f" % d_power[i],
            ]
        )
    lines += markdown_table(
        ["pos", "day", "benchmark", "mode", "peak (degC)",
         "avg settled (degC)", "avg power (W)", "d avg (degC)",
         "d power (W)"],
        rows,
    )
    lines.append("")
    lines.append(
        "Settled temperature along the chain: `%s`"
        % sparkline(stab["average_temp_c"])
    )
    lines.append(
        "Average power along the chain:       `%s`" % sparkline(power)
    )
    lines.append("")
    return lines


def generate_report(
    models: Optional[ModelBundle] = None,
    workloads: Optional[Iterable[WorkloadTrace]] = None,
    include_prediction: bool = True,
    include_regulation: bool = True,
    include_savings: bool = True,
    runner: Optional[ParallelRunner] = None,
    scenario: Optional[Sequence] = None,
    scenario_days: int = 2,
    scenario_mode: ThermalMode = ThermalMode.DTPM,
    scenario_idle_gap_s: float = 30.0,
) -> str:
    """Run the selected evaluation slices and return a markdown report.

    The evaluation is declared as spec grids and executed through
    ``runner`` (a serial, uncached :class:`ParallelRunner` when none is
    given): pass a cache-backed runner and a warm report executes zero
    simulations.  ``scenario`` opts into the diurnal-chain section: a
    day's schedule (workloads, benchmark names or ``(workload, mode)``
    pairs) repeated ``scenario_days`` times with overnight standby
    between days (:func:`repro.sim.scenario.diurnal`).
    """
    models = models or default_models()
    workloads = list(workloads) if workloads is not None else list(ALL_BENCHMARKS)
    runner = ensure_runner(runner, models)

    # -- declare every section's runs as one spec list -----------------
    specs: List[RunSpec] = []
    sections = []  # (renderer, slice) in report order

    if include_prediction:
        pred = _prediction_specs(workloads)
        sections.append(
            ("prediction", slice(len(specs), len(specs) + len(pred)))
        )
        specs += pred
    if include_regulation:
        representative = [w for w in workloads if w.category == "high"][:2]
        if representative:
            reg = _regulation_specs(representative)
            sections.append(
                ("regulation", slice(len(specs), len(specs) + len(reg)))
            )
            specs += reg
    if include_savings:
        sav = comparison_specs(workloads)
        sections.append(
            ("savings", slice(len(specs), len(specs) + len(sav)))
        )
        specs += sav
    if scenario is not None:
        schedule = diurnal(scenario, days=scenario_days)
        scen = ExperimentMatrix(
            schedules=(schedule,),
            modes=(scenario_mode,),
            idle_gap_s=scenario_idle_gap_s,
        ).specs()
        sections.append(
            ("scenario", slice(len(specs), len(specs) + len(scen)))
        )
        specs += scen

    # -- one batched, cache-aware execution for the whole report -------
    results = runner.run(specs) if specs else []
    frame = SuiteFrame.from_results(results, specs=specs)

    lines = [
        "# DTPM evaluation report",
        "",
        "Reproduction of Singla et al., DATE 2015 -- generated by "
        "`repro.analysis.report`.",
        "",
        "Thermal model spectral radius: %.4f; %d benchmarks evaluated."
        % (models.thermal.spectral_radius(), len(workloads)),
        "",
    ]
    for name, section_slice in sections:
        sub = frame.select(range(*section_slice.indices(len(frame))))
        if name == "prediction":
            lines += _prediction_section(sub, models)
        elif name == "regulation":
            lines += _regulation_section(sub)
        elif name == "savings":
            lines += _savings_section(sub)
        elif name == "scenario":
            lines += _scenario_section(
                sub, scenario_days, scenario_idle_gap_s
            )
    return "\n".join(lines)
