"""One-shot evaluation report generator.

Runs a configurable slice of the paper's evaluation and renders a single
markdown report: prediction accuracy (Fig. 6.2), the four-configuration
comparison for representative benchmarks (Figs. 6.3-6.5), and the
DTPM-vs-default sweep (Fig. 6.9) with category summaries.  Used by the
``repro-dtpm report`` CLI subcommand and handy for regression-tracking a
fork of the library.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.analysis.stats import stability_stats_streaming
from repro.sim.engine import Simulator, ThermalMode
from repro.sim.experiment import dtpm_vs_default, run_benchmark
from repro.sim.metrics import overall_summary, summarize_categories
from repro.sim.models import ModelBundle, default_models
from repro.thermal.validation import prediction_error_report
from repro.workloads.benchmarks import ALL_BENCHMARKS
from repro.workloads.trace import WorkloadTrace


def _prediction_section(
    workloads: Sequence[WorkloadTrace], models: ModelBundle
) -> List[str]:
    lines = ["## Temperature prediction accuracy (1 s horizon)", ""]
    lines.append("| benchmark | mean error (degC) | mean error (%) |")
    lines.append("|---|---|---|")
    errors_c, errors_pct = [], []
    for workload in workloads:
        sim = Simulator(workload, ThermalMode.NO_FAN, max_duration_s=150.0)
        result = sim.run()
        temps = np.stack(
            [result.trace.column("temp%d_c" % i) for i in range(4)], axis=1
        ) + 273.15
        powers = np.stack(
            [
                result.trace.column("p_big_w"),
                result.trace.column("p_little_w"),
                result.trace.column("p_gpu_w"),
                result.trace.column("p_mem_w"),
            ],
            axis=1,
        )
        report = prediction_error_report(models.thermal, temps, powers, 10)
        errors_c.append(report.mean_abs_c)
        errors_pct.append(report.mean_pct)
        lines.append(
            "| %s | %.2f | %.2f |"
            % (workload.name, report.mean_abs_c, report.mean_pct)
        )
    lines.append(
        "| **average** | **%.2f** | **%.2f** |"
        % (float(np.mean(errors_c)), float(np.mean(errors_pct)))
    )
    lines.append("")
    return lines


def _regulation_section(
    workloads: Sequence[WorkloadTrace], models: ModelBundle
) -> List[str]:
    lines = ["## Regulation quality (63 degC constraint)", ""]
    lines.append(
        "| benchmark | config | peak (degC) | avg (degC) | band (degC) |"
    )
    lines.append("|---|---|---|---|---|")
    for workload in workloads:
        for mode in (
            ThermalMode.NO_FAN,
            ThermalMode.DEFAULT_WITH_FAN,
            ThermalMode.DTPM,
        ):
            result = run_benchmark(workload, mode, models=models)
            # incremental consumer pass -- no trace rows materialised
            stats = stability_stats_streaming(result)
            lines.append(
                "| %s | %s | %.1f | %.1f | %.1f |"
                % (
                    workload.name,
                    mode.value,
                    stats.peak_c,
                    stats.average_temp_c,
                    stats.max_min_c,
                )
            )
    lines.append("")
    return lines


def _savings_section(
    workloads: Sequence[WorkloadTrace], models: ModelBundle
) -> List[str]:
    rows = dtpm_vs_default(workloads, models=models)
    lines = ["## DTPM vs fan-cooled default (Fig. 6.9)", ""]
    lines.append("| benchmark | category | savings (%) | perf loss (%) |")
    lines.append("|---|---|---|---|")
    for row in rows:
        lines.append(
            "| %s | %s | %.1f | %.1f |"
            % (
                row.benchmark,
                row.category,
                row.power_savings_pct,
                row.performance_loss_pct,
            )
        )
    lines.append("")
    lines.append("### Per category")
    lines.append("")
    for category, stats in sorted(summarize_categories(rows).items()):
        lines.append(
            "- **%s** (%d benchmarks): %.1f %% savings, %.1f %% loss"
            % (
                category,
                int(stats["count"]),
                stats["power_savings_pct"],
                stats["performance_loss_pct"],
            )
        )
    summary = overall_summary(rows)
    lines.append("")
    lines.append(
        "**Overall**: %.1f %% average savings (max %.1f %%), "
        "%.1f %% average performance loss (max %.1f %%)."
        % (
            summary["power_savings_pct"],
            summary["max_power_savings_pct"],
            summary["performance_loss_pct"],
            summary["max_performance_loss_pct"],
        )
    )
    lines.append("")
    return lines


def generate_report(
    models: Optional[ModelBundle] = None,
    workloads: Optional[Iterable[WorkloadTrace]] = None,
    include_prediction: bool = True,
    include_regulation: bool = True,
    include_savings: bool = True,
) -> str:
    """Run the selected evaluation slices and return a markdown report."""
    models = models or default_models()
    workloads = list(workloads) if workloads is not None else list(ALL_BENCHMARKS)
    lines = [
        "# DTPM evaluation report",
        "",
        "Reproduction of Singla et al., DATE 2015 -- generated by "
        "`repro.analysis.report`.",
        "",
        "Thermal model spectral radius: %.4f; %d benchmarks evaluated."
        % (models.thermal.spectral_radius(), len(workloads)),
        "",
    ]
    if include_prediction:
        lines += _prediction_section(workloads, models)
    if include_regulation:
        representative = [w for w in workloads if w.category == "high"][:2]
        if representative:
            lines += _regulation_section(representative, models)
    if include_savings:
        lines += _savings_section(workloads, models)
    return "\n".join(lines)
