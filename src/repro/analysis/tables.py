"""Text renderers for the paper's tables."""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.errors import SimulationError


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render a simple aligned text table."""
    rows = [list(map(str, row)) for row in rows]
    if not rows:
        raise SimulationError("no rows to render")
    if any(len(row) != len(headers) for row in rows):
        raise SimulationError("row width does not match headers")
    widths = [
        max(len(str(headers[i])), max(len(row[i]) for row in rows))
        for i in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def markdown_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> List[str]:
    """Render a GitHub-flavoured markdown table as a list of lines.

    The one copy of the pipe-table assembly every report section shares
    (``| a | b |`` header, ``|---|---|`` separator, one line per row) --
    cells are stringified as given, so callers keep full control of
    number formatting.
    """
    if not headers:
        raise SimulationError("a markdown table needs headers")
    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "|" + "---|" * len(headers),
    ]
    for row in rows:
        row = list(row)
        if len(row) != len(headers):
            raise SimulationError("row width does not match headers")
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return lines


def frequency_table(frequencies_hz: Sequence[float], title: str) -> str:
    """Render an OPP table the way Tables 6.1-6.3 print it."""
    rows = [["%.0f" % (f / 1e6,)] for f in frequencies_hz]
    return render_table(["Frequency (MHz)"], rows, title=title)


def benchmark_table(rows: Iterable[Sequence[str]]) -> str:
    """Render Table 6.4 (type / benchmark / category)."""
    return render_table(
        ["Types", "Benchmark", "Category"],
        rows,
        title="Table 6.4: Benchmarks used in the experiments",
    )
