"""Summary statistics over run results (feeding the paper's tables/figures).

Every statistic exists at two altitudes, the same refactor discipline as
the batched plant (``step_batch``/``BatchSimulator``):

* **batch variants** (``*_batch``) take *sequences of column arrays* --
  one (possibly memory-mapped) 1-D array per run, ragged lengths allowed
  -- and return struct-of-arrays dictionaries, one value per run.  They
  never materialise per-row Python dicts; the per-interval dimension
  stays inside NumPy reductions.  :class:`repro.analysis.suite.SuiteFrame`
  funnels whole cached suite directories through them.
* the original **scalar functions** are pinned as the B=1 views of their
  batch variants, so the two altitudes can never drift numerically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Union

import numpy as np

from repro.errors import SimulationError
from repro.sim.consumers import StreamingStability, replay
from repro.sim.run_result import RunResult, settle_start

#: One column per run: ragged sequences of 1-D arrays (views or memmaps).
ColumnBatch = Sequence[np.ndarray]
#: A per-run skip window: one scalar for all runs or one value per run.
SkipLike = Union[float, Sequence[float], np.ndarray, None]


@dataclass(frozen=True)
class StabilityStats:
    """Fig. 6.5's two panels for one run: average temp and max-min band."""

    mode: str
    average_temp_c: float
    max_min_c: float
    variance_c2: float
    peak_c: float


def _resolve_skip(
    skip_s: SkipLike,
    batch: int,
    execution_times_s: Optional[Sequence[float]],
) -> np.ndarray:
    """Per-run skip windows; ``None`` means 40 % of each run's duration."""
    if skip_s is None:
        if execution_times_s is None:
            raise SimulationError(
                "skip_s=None needs execution_times_s for the 40 % default"
            )
        return 0.4 * np.asarray(execution_times_s, dtype=float)
    skips = np.asarray(skip_s, dtype=float)
    if skips.ndim == 0:
        skips = np.full(batch, float(skips))
    if skips.shape != (batch,):
        raise SimulationError(
            "skip_s names %s windows for %d runs" % (skips.shape, batch)
        )
    return skips


def _settled(times: np.ndarray, temps: np.ndarray, skip: float) -> np.ndarray:
    """One run's settled-region temperatures (empty trace -> empty)."""
    if times.size == 0:
        return temps[:0]
    return temps[settle_start(times, skip) :]


def stability_stats_batch(
    times: ColumnBatch,
    temps: ColumnBatch,
    skip_s: SkipLike = None,
    execution_times_s: Optional[Sequence[float]] = None,
) -> Dict[str, np.ndarray]:
    """Regulation-quality statistics of B runs, array-in/array-out.

    ``times``/``temps`` hold one column array per run (ragged lengths
    fine; memory-mapped cache views welcome -- only the settled slice of
    each is ever touched).  Returns ``average_temp_c`` / ``max_min_c`` /
    ``variance_c2`` / ``peak_c`` arrays of shape ``(B,)``, each lane
    bit-equal to :func:`stability_stats` on the same run.
    """
    if len(times) != len(temps):
        raise SimulationError(
            "%d time axes for %d temperature columns" % (len(times), len(temps))
        )
    batch = len(times)
    skips = _resolve_skip(skip_s, batch, execution_times_s)
    out = {
        name: np.empty(batch, dtype=float)
        for name in ("average_temp_c", "max_min_c", "variance_c2", "peak_c")
    }
    for i in range(batch):
        settled = _settled(times[i], temps[i], skips[i])
        if settled.size == 0:
            raise SimulationError("run trace too short for stability metrics")
        out["average_temp_c"][i] = np.mean(settled)
        out["max_min_c"][i] = np.max(settled) - np.min(settled)
        out["variance_c2"][i] = np.var(settled)
        out["peak_c"][i] = np.max(temps[i])
    return out


def stability_stats(
    result: RunResult, skip_s: Optional[float] = None
) -> StabilityStats:
    """Regulation-quality statistics of one run.

    The B=1 view of :func:`stability_stats_batch`.  ``skip_s`` defaults
    to 40 % of the run (excludes the warm-up climb the paper's stability
    figures also ignore).
    """
    stats = stability_stats_batch(
        [result.times_s()],
        [result.max_temps_c()],
        skip_s=skip_s,
        execution_times_s=[result.execution_time_s],
    )
    return StabilityStats(
        mode=result.mode,
        average_temp_c=float(stats["average_temp_c"][0]),
        max_min_c=float(stats["max_min_c"][0]),
        variance_c2=float(stats["variance_c2"][0]),
        peak_c=float(stats["peak_c"][0]),
    )


def streaming_stability(
    result: RunResult,
    skip_s: Optional[float] = None,
    constraint_c: Optional[float] = None,
) -> StreamingStability:
    """Replay a recorded run through the online stability consumer.

    One pass over the columnar trace, no row materialisation: the same
    aggregation code path a live :class:`~repro.sim.engine.Simulator`
    feeds interval-by-interval, so streaming and post-hoc numbers agree
    by construction.
    """
    if skip_s is None:
        skip_s = 0.4 * result.execution_time_s
    consumer = StreamingStability(skip_s=skip_s, constraint_c=constraint_c)
    replay(result, [consumer])
    return consumer


def stability_stats_streaming(
    result: RunResult, skip_s: Optional[float] = None
) -> StabilityStats:
    """:func:`stability_stats` computed incrementally (one trace pass)."""
    consumer = streaming_stability(result, skip_s)
    if consumer.settled_samples == 0:
        raise SimulationError("run trace too short for stability metrics")
    return StabilityStats(
        mode=result.mode,
        average_temp_c=consumer.average_temp_c,
        max_min_c=consumer.max_min_c,
        variance_c2=consumer.variance_c2,
        peak_c=consumer.peak_c,
    )


def regulation_quality_batch(
    times: ColumnBatch,
    temps: ColumnBatch,
    constraint_c: float,
    skip_s: SkipLike = None,
    execution_times_s: Optional[Sequence[float]] = None,
) -> Dict[str, np.ndarray]:
    """Constraint-respect statistics of B runs, array-in/array-out.

    Per-lane bit-equal to :func:`regulation_quality`; see
    :func:`stability_stats_batch` for the input conventions.
    """
    if len(times) != len(temps):
        raise SimulationError(
            "%d time axes for %d temperature columns" % (len(times), len(temps))
        )
    batch = len(times)
    skips = _resolve_skip(skip_s, batch, execution_times_s)
    out = {
        name: np.empty(batch, dtype=float)
        for name in (
            "peak_exceedance_c",
            "mean_exceedance_c",
            "fraction_over",
            "fraction_over_1c",
        )
    }
    for i in range(batch):
        settled = _settled(times[i], temps[i], skips[i])
        if settled.size == 0:
            raise SimulationError("trace too short")
        over = np.maximum(0.0, settled - constraint_c)
        out["peak_exceedance_c"][i] = np.max(over)
        out["mean_exceedance_c"][i] = np.mean(over)
        out["fraction_over"][i] = np.mean(over > 0)
        out["fraction_over_1c"][i] = np.mean(over > 1.0)
    return out


def regulation_quality(
    result: RunResult, constraint_c: float, skip_s: Optional[float] = None
) -> Dict[str, float]:
    """How well a run respected the thermal constraint (B=1 view)."""
    stats = regulation_quality_batch(
        [result.times_s()],
        [result.max_temps_c()],
        constraint_c,
        skip_s=skip_s,
        execution_times_s=[result.execution_time_s],
    )
    return {name: float(values[0]) for name, values in stats.items()}


def frequency_residency_batch(
    freqs_ghz: ColumnBatch,
) -> Dict[float, np.ndarray]:
    """Per-run residency at each distinct frequency, array-in/array-out.

    One ``np.unique`` pass over the concatenated (rounded) frequency
    columns; the returned mapping unions every frequency seen anywhere in
    the batch, each with a ``(B,)`` array of per-run interval fractions
    (0.0 where a run never visited it).  Lane ``i`` restricted to its
    non-zero keys equals :func:`frequency_residency` on run ``i``.
    """
    if any(f.size == 0 for f in freqs_ghz):
        raise SimulationError("empty trace")
    batch = len(freqs_ghz)
    lengths = np.array([f.size for f in freqs_ghz], dtype=np.intp)
    flat = np.round(np.concatenate(list(freqs_ghz)), 3)
    values, inverse = np.unique(flat, return_inverse=True)
    run_ids = np.repeat(np.arange(batch, dtype=np.intp), lengths)
    counts = np.zeros((batch, values.size), dtype=np.intp)
    np.add.at(counts, (run_ids, inverse), 1)
    fractions = counts / lengths[:, None]
    return {
        float(v): fractions[:, j] for j, v in enumerate(values.tolist())
    }


def frequency_residency(result: RunResult) -> Dict[float, float]:
    """Fraction of intervals spent at each big-cluster frequency (GHz).

    The B=1 view of :func:`frequency_residency_batch`, restricted to the
    frequencies this run actually visited -- one vectorised
    ``np.unique(..., return_counts=True)`` pass instead of re-scanning
    the trace per distinct frequency.
    """
    resid = frequency_residency_batch([result.big_freqs_ghz()])
    return {
        f: float(fractions[0])
        for f, fractions in resid.items()
        if fractions[0] > 0.0
    }


def fan_duty(result: RunResult) -> Dict[int, float]:
    """Fraction of intervals at each fan speed (0=off..3=high)."""
    speeds = result.trace.column("fan_speed").astype(int)
    if speeds.size == 0:
        raise SimulationError("empty trace")
    return {s: float(np.mean(speeds == s)) for s in range(4)}


def average_fan_power_w(result: RunResult, fan_power_w: Sequence[float]) -> float:
    """Mean fan motor power over a run given the per-speed power table."""
    duty = fan_duty(result)
    return float(sum(duty[s] * fan_power_w[s] for s in duty))
