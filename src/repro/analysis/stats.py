"""Summary statistics over run results (feeding the paper's tables/figures)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.sim.consumers import StreamingStability, replay
from repro.sim.run_result import RunResult


@dataclass(frozen=True)
class StabilityStats:
    """Fig. 6.5's two panels for one run: average temp and max-min band."""

    mode: str
    average_temp_c: float
    max_min_c: float
    variance_c2: float
    peak_c: float


def stability_stats(result: RunResult, skip_s: float = None) -> StabilityStats:
    """Regulation-quality statistics of one run.

    ``skip_s`` defaults to 40 % of the run (excludes the warm-up climb the
    paper's stability figures also ignore).
    """
    if skip_s is None:
        skip_s = 0.4 * result.execution_time_s
    return StabilityStats(
        mode=result.mode,
        average_temp_c=result.average_temp_c(skip_s),
        max_min_c=result.temp_max_min_c(skip_s),
        variance_c2=result.temp_variance(skip_s),
        peak_c=result.peak_temp_c(),
    )


def streaming_stability(
    result: RunResult, skip_s: float = None, constraint_c: float = None
) -> StreamingStability:
    """Replay a recorded run through the online stability consumer.

    One pass over the columnar trace, no row materialisation: the same
    aggregation code path a live :class:`~repro.sim.engine.Simulator`
    feeds interval-by-interval, so streaming and post-hoc numbers agree
    by construction.
    """
    if skip_s is None:
        skip_s = 0.4 * result.execution_time_s
    consumer = StreamingStability(skip_s=skip_s, constraint_c=constraint_c)
    replay(result, [consumer])
    return consumer


def stability_stats_streaming(
    result: RunResult, skip_s: float = None
) -> StabilityStats:
    """:func:`stability_stats` computed incrementally (one trace pass)."""
    consumer = streaming_stability(result, skip_s)
    if consumer.settled_samples == 0:
        raise SimulationError("run trace too short for stability metrics")
    return StabilityStats(
        mode=result.mode,
        average_temp_c=consumer.average_temp_c,
        max_min_c=consumer.max_min_c,
        variance_c2=consumer.variance_c2,
        peak_c=consumer.peak_c,
    )


def regulation_quality(
    result: RunResult, constraint_c: float, skip_s: float = None
) -> Dict[str, float]:
    """How well a run respected the thermal constraint."""
    if skip_s is None:
        skip_s = 0.4 * result.execution_time_s
    temps = result.max_temps_c()[result.settle_slice(skip_s)]
    if temps.size == 0:
        raise SimulationError("trace too short")
    over = np.maximum(0.0, temps - constraint_c)
    return {
        "peak_exceedance_c": float(np.max(over)),
        "mean_exceedance_c": float(np.mean(over)),
        "fraction_over": float(np.mean(over > 0)),
        "fraction_over_1c": float(np.mean(over > 1.0)),
    }


def frequency_residency(result: RunResult) -> Dict[float, float]:
    """Fraction of intervals spent at each big-cluster frequency (GHz)."""
    freqs = result.big_freqs_ghz()
    if freqs.size == 0:
        raise SimulationError("empty trace")
    out: Dict[float, float] = {}
    for f in sorted(set(np.round(freqs, 3))):
        out[float(f)] = float(np.mean(np.isclose(np.round(freqs, 3), f)))
    return out


def fan_duty(result: RunResult) -> Dict[int, float]:
    """Fraction of intervals at each fan speed (0=off..3=high)."""
    speeds = result.trace.column("fan_speed").astype(int)
    if speeds.size == 0:
        raise SimulationError("empty trace")
    return {s: float(np.mean(speeds == s)) for s in range(4)}


def average_fan_power_w(result: RunResult, fan_power_w: Sequence[float]) -> float:
    """Mean fan motor power over a run given the per-speed power table."""
    duty = fan_duty(result)
    return float(sum(duty[s] * fan_power_w[s] for s in duty))
