"""The dispatch side: batches pulled by workers, leased, reassigned.

:func:`run_batches` is the distributed twin of the process-pool branch
in :meth:`repro.runner.ParallelRunner._execute`: it takes the jobs a
:func:`~repro.runner.execute.plan_batches` plan produced and returns one
chain list per job, in job order.  Everything that makes results *mean*
something -- content keys, cache writes, spec ordering -- stays in the
runner on the coordinating host; this module only moves batches and
bytes.  Because every worker executes through the same
:func:`~repro.runner.execute.execute_batch` path and results are
reassembled by job index, an N-worker run is key-for-key and
byte-identical to a 1-host run no matter how the pulls interleave.

Scheduling is *pull*-based work stealing: one connection thread per
worker pops the next unassigned job from a shared deque, so fast workers
naturally take more batches and a straggler never blocks the queue.
Each in-flight batch is leased: the worker streams heartbeat frames
while executing, and a worker silent past ``lease_timeout_s`` (or one
whose connection drops, e.g. a crash mid-batch) is declared dead -- its
batch goes back on the queue for the surviving workers and the dead
worker is never handed work again.  Idle threads wait on a condition
rather than exiting, so a batch requeued late still finds takers.  Only
when *every* worker is dead with work outstanding does the run fail.
"""

from __future__ import annotations

import socket
import threading
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

from repro.distributed.protocol import (
    ProtocolError,
    chains_from_wire,
    hello_payload,
    parse_endpoints,
    recv_frame,
    run_payload,
    send_frame,
)
from repro.errors import SimulationError
from repro.runner.spec import RunSpec
from repro.sim.models import ModelBundle
from repro.sim.run_result import RunResult

#: Seconds a worker may stay silent (no heartbeat, no result) before its
#: in-flight batch is reassigned.  Workers heartbeat every second, so
#: the default tolerates long GC pauses and swaps, not dead processes.
DEFAULT_LEASE_TIMEOUT_S = 60.0

#: Seconds allowed for the TCP connect + hello/ready handshake.
DEFAULT_CONNECT_TIMEOUT_S = 10.0

Chains = List[List[RunResult]]


class _RunState:
    """Shared queue/results state of one :func:`run_batches` call.

    Every mutable field is protected by ``cond``; the connection threads
    acquire it around each queue pop, result store and death notice, and
    :meth:`finished` is only ever called with it held.
    """

    def __init__(self, jobs: int, workers: int) -> None:
        self.cond = threading.Condition()
        self.queue: Deque[int] = deque(range(jobs))
        self.results: Dict[int, Chains] = {}
        self.jobs = jobs
        self.dead = 0
        self.workers = workers
        self.fatal: Optional[BaseException] = None

    def finished(self) -> bool:
        return (
            self.fatal is not None
            or len(self.results) == self.jobs
            or self.dead >= self.workers
        )


def _connect(
    endpoint: Tuple[str, int],
    models_hello: dict,
    connect_timeout_s: float,
) -> socket.socket:
    """Open one worker session: connect, hello, await ready."""
    sock = socket.create_connection(endpoint, timeout=connect_timeout_s)
    try:
        send_frame(sock, models_hello)
        reply = recv_frame(sock)
        if reply.get("op") != "ready":
            raise ProtocolError(
                "worker %s:%d answered hello with %r"
                % (endpoint[0], endpoint[1], reply.get("op"))
            )
    except BaseException:
        sock.close()
        raise
    return sock


def _serve_worker(
    endpoint: Tuple[str, int],
    state: _RunState,
    job_specs: Sequence[List[RunSpec]],
    models_hello: dict,
    lease_timeout_s: float,
    connect_timeout_s: float,
) -> None:
    """One worker's connection thread: pull, lease, collect, repeat."""
    try:
        sock = _connect(endpoint, models_hello, connect_timeout_s)
    except (OSError, ProtocolError):
        with state.cond:
            state.dead += 1
            state.cond.notify_all()
        return
    job: Optional[int] = None
    try:
        while True:
            with state.cond:
                while not state.queue and not state.finished():
                    state.cond.wait()
                if state.finished():
                    break
                job = state.queue.popleft()
            sock.settimeout(lease_timeout_s)
            send_frame(sock, run_payload(job, job_specs[job]))
            while True:
                msg = recv_frame(sock)  # heartbeats refresh the lease
                op = msg.get("op")
                if op == "heartbeat":
                    continue
                if op == "done":
                    chains = chains_from_wire(msg.get("chains"))
                    if len(chains) != len(job_specs[job]):
                        raise ProtocolError(
                            "worker returned %d chains for %d specs"
                            % (len(chains), len(job_specs[job]))
                        )
                    with state.cond:
                        state.results[job] = chains
                        state.cond.notify_all()
                    job = None
                    break
                if op == "error":
                    # execution is deterministic: a spec that raised here
                    # raises on every host, so failing fast beats retrying
                    raise SimulationError(
                        "worker %s:%d failed batch %d: %s"
                        % (endpoint[0], endpoint[1], job, msg.get("message"))
                    )
                raise ProtocolError("unexpected %r frame mid-batch" % op)
        try:
            send_frame(sock, {"op": "bye"})
        except OSError:
            pass
    except (OSError, ProtocolError):
        # dead or unintelligible worker: requeue its in-flight batch for
        # the survivors and never hand this endpoint work again
        with state.cond:
            if job is not None:
                state.queue.appendleft(job)
            state.dead += 1
            state.cond.notify_all()
    except SimulationError as exc:
        with state.cond:
            state.fatal = exc
            state.cond.notify_all()
    finally:
        sock.close()


def run_batches(
    job_specs: Sequence[List[RunSpec]],
    models: Optional[ModelBundle] = None,
    workers: Union[str, Sequence[Tuple[str, int]]] = "",
    lease_timeout_s: float = DEFAULT_LEASE_TIMEOUT_S,
    connect_timeout_s: float = DEFAULT_CONNECT_TIMEOUT_S,
) -> List[Chains]:
    """Execute batches on remote workers; element ``i`` is job ``i``'s chains.

    ``workers`` is a ``"host:port,host:port"`` string (the
    ``ParallelRunner(workers=...)`` form) or an explicit endpoint list.
    The model bundle is pickled once and shipped in each connection's
    hello frame.  Raises :class:`~repro.errors.SimulationError` when a
    batch's execution fails on a worker (deterministic -- it would fail
    anywhere) or when every worker died with batches outstanding.
    """
    endpoints = (
        parse_endpoints(workers) if isinstance(workers, str) else list(workers)
    )
    jobs = [list(specs) for specs in job_specs]
    if not jobs:
        return []
    state = _RunState(jobs=len(jobs), workers=len(endpoints))
    models_hello = hello_payload(models)
    threads = [
        threading.Thread(
            target=_serve_worker,
            args=(
                endpoint, state, jobs, models_hello,
                lease_timeout_s, connect_timeout_s,
            ),
            name="repro-dispatch-%s-%d" % endpoint,
        )
        for endpoint in endpoints
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    with state.cond:
        if state.fatal is not None:
            raise state.fatal
        missing = [i for i in range(len(jobs)) if i not in state.results]
        if missing:
            raise SimulationError(
                "all %d worker(s) died with %d of %d batch(es) incomplete"
                % (len(endpoints), len(missing), len(jobs))
            )
        return [state.results[i] for i in range(len(jobs))]
