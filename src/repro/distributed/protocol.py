"""Framing and codecs of the coordinator <-> worker TCP protocol.

Every message is one *frame*: a 4-byte big-endian unsigned length
followed by that many bytes of UTF-8 JSON.  Framing is the only binary
layer; everything inside a frame reuses the versioned wire schema of
:mod:`repro.runner.wire` (``"schema": 1``) for specs and the v2 cache
artifact codecs (:func:`~repro.runner.cache.result_to_summary` +
npz trace blob, base64-wrapped) for results -- so a spec shipped to a
worker keys identically on both hosts and a result shipped back is
byte-identical to one produced locally.

The conversation, coordinator-first::

    -> {"op": "hello", "schema": 1, "models": <base64 pickle> | null}
    <- {"op": "ready"}
    -> {"op": "run", "id": 0, "specs": [<wire spec>, ...]}
    <- {"op": "heartbeat", "id": 0}           # repeated while executing
    <- {"op": "done", "id": 0, "chains": [[<wire result>, ...], ...]}
       | {"op": "error", "id": 0, "message": "..."}
    -> {"op": "bye"}

The model bundle travels as a pickle (exactly what the in-process
``ProcessPoolExecutor`` workers receive), so the protocol is for
*trusted* clusters only -- same trust boundary as the pool.
"""

from __future__ import annotations

import base64
import io
import json
import pickle
import socket
import struct
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, WireError
from repro.runner.cache import (
    TRACE_MEMBER,
    result_to_summary,
    summary_to_result,
    trace_blob_bytes,
)
from repro.runner.wire import WIRE_SCHEMA, spec_from_wire, spec_to_wire
from repro.sim.models import ModelBundle
from repro.sim.run_result import RunResult
from repro.runner.spec import RunSpec

#: Frames larger than this are rejected before allocation: a batch of
#: trace blobs is tens of MiB, so the bound is pure protocol hygiene
#: against a corrupt or hostile length prefix.
MAX_FRAME_BYTES = 512 * 2**20

_LEN = struct.Struct(">I")


class ProtocolError(WireError):
    """A malformed, oversized or truncated protocol frame."""


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------
def send_frame(sock: socket.socket, payload: dict) -> None:
    """Write one length-prefixed JSON frame."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            "frame of %d bytes exceeds the %d-byte protocol bound"
            % (len(body), MAX_FRAME_BYTES)
        )
    sock.sendall(_LEN.pack(len(body)) + body)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ProtocolError(
                "connection closed mid-frame (%d of %d bytes short)"
                % (remaining, count)
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict:
    """Read one frame; raises :class:`ProtocolError` on EOF or garbage."""
    header = _recv_exact(sock, _LEN.size)
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            "peer announced a %d-byte frame (bound: %d)"
            % (length, MAX_FRAME_BYTES)
        )
    body = _recv_exact(sock, length)
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError("frame is not valid JSON: %s" % exc) from None
    if not isinstance(payload, dict) or "op" not in payload:
        raise ProtocolError('frame must be a JSON object with an "op" field')
    return payload


# ---------------------------------------------------------------------------
# message payloads
# ---------------------------------------------------------------------------
def hello_payload(models: Optional[ModelBundle]) -> dict:
    """The session-opening frame carrying the (optional) model bundle."""
    blob = (
        base64.b64encode(pickle.dumps(models)).decode("ascii")
        if models is not None
        else None
    )
    return {"op": "hello", "schema": WIRE_SCHEMA, "models": blob}


def models_from_hello(payload: dict) -> Optional[ModelBundle]:
    """Decode the hello frame's model bundle (None when it ships none)."""
    if payload.get("schema") != WIRE_SCHEMA:
        raise ProtocolError(
            "hello has unsupported schema %r (this build speaks %d)"
            % (payload.get("schema"), WIRE_SCHEMA)
        )
    blob = payload.get("models")
    if blob is None:
        return None
    models = pickle.loads(base64.b64decode(blob))
    if not isinstance(models, ModelBundle):
        raise ProtocolError(
            "hello models decoded to %s, not a ModelBundle"
            % type(models).__name__
        )
    return models


def run_payload(job_id: int, specs: List[RunSpec]) -> dict:
    """One batch of specs as a ``run`` frame (wire-schema spec rendering)."""
    return {
        "op": "run",
        "id": job_id,
        "specs": [spec_to_wire(spec) for spec in specs],
    }


def specs_from_run(payload: dict) -> Tuple[int, List[RunSpec]]:
    """Decode a ``run`` frame back to (job id, specs)."""
    try:
        job_id = int(payload["id"])
        raw = payload["specs"]
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError("malformed run frame: %s" % exc) from None
    if not isinstance(raw, list) or not raw:
        raise ProtocolError("run frame needs a non-empty spec list")
    return job_id, [
        spec_from_wire(obj, "specs[%d]" % i) for i, obj in enumerate(raw)
    ]


def result_to_wire(result: RunResult) -> dict:
    """One result as wire JSON: v2 summary + base64 npz trace blob.

    The round trip through :func:`result_from_wire` is byte-identical
    (:func:`~repro.runner.cache.result_bytes`): the summary's floats
    repr-round-trip through JSON and the trace travels as the exact
    float64 npz bytes the cache would write.
    """
    return {
        "summary": result_to_summary(result),
        "blob": base64.b64encode(trace_blob_bytes(result)).decode("ascii"),
    }


def result_from_wire(obj: Any) -> RunResult:
    """Rebuild a result shipped by :func:`result_to_wire`."""
    if not isinstance(obj, dict) or "summary" not in obj or "blob" not in obj:
        raise ProtocolError(
            "wire result must be an object with summary and blob fields"
        )
    raw = base64.b64decode(obj["blob"])
    with np.load(io.BytesIO(raw)) as npz:
        data = npz[TRACE_MEMBER]
    return summary_to_result(obj["summary"], data)


def chains_to_wire(chains: List[List[RunResult]]) -> List[List[dict]]:
    """A batch's per-spec result chains as wire JSON."""
    return [[result_to_wire(r) for r in chain] for chain in chains]


def chains_from_wire(obj: Any) -> List[List[RunResult]]:
    """Decode :func:`chains_to_wire` output."""
    if not isinstance(obj, list):
        raise ProtocolError("chains must be a JSON array")
    return [
        [result_from_wire(r) for r in chain]
        for chain in (
            c if isinstance(c, list) else [c] for c in obj
        )
    ]


# ---------------------------------------------------------------------------
# endpoint parsing ("host:port,host:port,...")
# ---------------------------------------------------------------------------
def parse_endpoints(text: str) -> List[Tuple[str, int]]:
    """Parse a ``"host:port,host:port"`` worker list.

    The accepted grammar of ``ParallelRunner(workers=...)`` strings and
    ``repro-dtpm serve --dispatch``.  Raises
    :class:`~repro.errors.ConfigurationError` on anything malformed so a
    typo'd worker list fails at construction, not mid-run.
    """
    endpoints: List[Tuple[str, int]] = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        host, sep, port_text = token.rpartition(":")
        if not sep or not host:
            raise ConfigurationError(
                "worker endpoint %r is not host:port" % token
            )
        try:
            port = int(port_text)
        except ValueError:
            raise ConfigurationError(
                "worker endpoint %r has a non-numeric port" % token
            ) from None
        if not 0 < port < 65536:
            raise ConfigurationError(
                "worker endpoint %r has an out-of-range port" % token
            )
        endpoints.append((host, port))
    if not endpoints:
        raise ConfigurationError(
            "worker list %r names no host:port endpoints" % text
        )
    return endpoints
