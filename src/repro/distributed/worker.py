"""The remote batch worker (the ``repro-dtpm worker`` body).

A :class:`WorkerServer` accepts coordinator connections, receives
batches of wire-schema specs and executes them through
:func:`~repro.runner.execute.execute_batch` -- the exact function the
in-process pool workers run (``batch_size=len(specs)``), which is what
keeps a distributed run lane-for-lane byte-identical to a local one.

While a batch executes, a per-connection heartbeat thread streams
``{"op": "heartbeat"}`` frames so the coordinator can tell a slow batch
from a dead worker; socket writes are serialised by a per-connection
lock.  Workers never touch the result cache: results travel back over
the wire and the coordinator's runner is the only cache writer, so a
crashed or duplicated worker can never leave partial store state.

``fail_runs=N`` makes the server drop the connection on its next ``N``
``run`` frames *instead of* answering -- the crash-mid-batch hook the
reassignment tests (and chaos drills) use.
"""

from __future__ import annotations

import socket
import socketserver
import threading
from typing import Optional, Tuple

from repro.distributed.protocol import (
    ProtocolError,
    chains_to_wire,
    models_from_hello,
    recv_frame,
    send_frame,
    specs_from_run,
)
from repro.runner.execute import execute_batch

#: Seconds between heartbeat frames while a batch is executing.  The
#: coordinator's lease timeout must comfortably exceed this.
HEARTBEAT_INTERVAL_S = 1.0


class _Handler(socketserver.BaseRequestHandler):
    """One coordinator connection: hello, then run frames until bye/EOF."""

    server: "WorkerServer"

    def handle(self) -> None:
        sock: socket.socket = self.request
        send_lock = threading.Lock()
        try:
            hello = recv_frame(sock)
            if hello.get("op") != "hello":
                raise ProtocolError(
                    "expected hello, got %r" % hello.get("op")
                )
            models = models_from_hello(hello)
            with send_lock:
                send_frame(sock, {"op": "ready"})
            while True:
                msg = recv_frame(sock)
                op = msg.get("op")
                if op == "bye":
                    return
                if op != "run":
                    raise ProtocolError("expected run/bye, got %r" % op)
                job_id, specs = specs_from_run(msg)
                if self.server.take_failure():
                    # simulated crash mid-batch: the batch was accepted
                    # but no reply (and no heartbeat) will ever come
                    sock.shutdown(socket.SHUT_RDWR)
                    return
                stop = threading.Event()
                beat = threading.Thread(
                    target=self._heartbeat,
                    args=(sock, send_lock, job_id, stop),
                    name="repro-worker-heartbeat",
                    daemon=True,
                )
                beat.start()
                try:
                    chains = execute_batch(
                        specs, models=models, batch_size=max(1, len(specs))
                    )
                except Exception as exc:  # noqa: BLE001 - report, stay alive
                    stop.set()
                    beat.join()
                    with send_lock:
                        send_frame(sock, {
                            "op": "error",
                            "id": job_id,
                            "message": "%s: %s" % (type(exc).__name__, exc),
                        })
                    continue
                stop.set()
                beat.join()
                with send_lock:
                    send_frame(sock, {
                        "op": "done",
                        "id": job_id,
                        "chains": chains_to_wire(chains),
                    })
        except (ProtocolError, OSError):
            return  # peer vanished or spoke garbage: drop the connection

    @staticmethod
    def _heartbeat(
        sock: socket.socket,
        send_lock: threading.Lock,
        job_id: int,
        stop: threading.Event,
    ) -> None:
        while not stop.wait(HEARTBEAT_INTERVAL_S):
            try:
                with send_lock:
                    send_frame(sock, {"op": "heartbeat", "id": job_id})
            except OSError:
                return  # coordinator gone; the main loop will notice too


class WorkerServer(socketserver.ThreadingTCPServer):
    """A threaded TCP worker executing coordinator batches.

    ``port=0`` binds a free port (see :attr:`address`).  One server
    handles any number of sequential coordinator sessions; concurrent
    connections each get their own handler thread (and their own model
    bundle, shipped in the hello frame).
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        fail_runs: int = 0,
    ) -> None:
        super().__init__((host, port), _Handler)
        self._fail_lock = threading.Lock()
        self._fail_runs = int(fail_runs)  # guarded-by: _fail_lock
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) -- port resolved when 0 was requested."""
        host, port = self.server_address[:2]
        return str(host), int(port)

    @property
    def endpoint(self) -> str:
        """This worker as a ``host:port`` token for a coordinator list."""
        return "%s:%d" % self.address

    def take_failure(self) -> bool:
        """Consume one scheduled crash (the ``fail_runs`` test hook)."""
        with self._fail_lock:
            if self._fail_runs > 0:
                self._fail_runs -= 1
                return True
            return False

    # ------------------------------------------------------------------
    def start(self) -> "WorkerServer":
        """Serve on a background thread; returns self (tests/embedding)."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-worker", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and join the background thread (if one runs)."""
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None


def run_worker(host: str = "127.0.0.1", port: int = 8970) -> int:
    """Run a worker in the foreground (the ``repro-dtpm worker`` body)."""
    server = WorkerServer(host=host, port=port)
    print("repro-dtpm worker on %s:%d" % server.address)
    print("  executes coordinator batches via execute_batch; Ctrl-C stops")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nbye")
    finally:
        server.server_close()
    return 0
