"""Distributed batch execution over a length-prefixed JSON/TCP protocol.

The package splits the :class:`~repro.runner.ParallelRunner`'s unit of
work -- one :func:`~repro.runner.execute.plan_batches` job -- across
remote worker processes:

* :mod:`repro.distributed.protocol` -- the framing (4-byte big-endian
  length prefix + UTF-8 JSON) and the batch/result codecs, reusing the
  versioned :mod:`repro.runner.wire` spec rendering so a shipped spec's
  content key is identical on every host;
* :mod:`repro.distributed.worker` -- the ``repro-dtpm worker`` body: a
  :class:`~socketserver.ThreadingTCPServer` that executes shipped
  batches through :func:`~repro.runner.execute.execute_batch` (the very
  code path the in-process pool workers run) and heartbeats while a
  batch is in flight;
* :mod:`repro.distributed.coordinator` -- the dispatch side: per-worker
  connection threads *pull* batches from one shared deterministic queue
  (work stealing), lease each batch against a heartbeat-refreshed
  timeout, and requeue batches whose worker died, so an N-worker run is
  key-for-key and byte-identical to a 1-host run.

Submodules are imported lazily by their consumers (``ParallelRunner``
only touches the coordinator when ``workers`` is an endpoint string), so
importing :mod:`repro.runner` never drags the socket layer in.
"""

__all__ = ["coordinator", "protocol", "worker"]
