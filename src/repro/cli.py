"""Command-line interface to the reproduction.

Subcommands::

    python -m repro.cli tables             # print Tables 6.1-6.4
    python -m repro.cli identify           # run the Chapter-4 pipeline
    python -m repro.cli run BENCH MODE     # one benchmark, one configuration
    python -m repro.cli compare BENCH      # all four configurations
    python -m repro.cli suite              # the Fig. 6.9 sweep
    python -m repro.cli suite summarize    # columnar analytics over a cache
    python -m repro.cli sweep KNOB         # one ablation knob sweep
    python -m repro.cli matrix             # benchmarks x modes grid
    python -m repro.cli cache stats        # inspect the result cache
    python -m repro.cli cache prune        # bound / empty the result cache
    python -m repro.cli cache migrate      # reshard/recompress the store
    python -m repro.cli report             # cache-aware markdown report
    python -m repro.cli serve              # always-on evaluation service
    python -m repro.cli worker             # remote batch-execution worker

``suite``, ``sweep``, ``matrix`` and ``report`` accept ``--workers N`` (process
fan-out; a ``host:port,host:port`` list instead dispatches batches to
remote ``repro-dtpm worker`` processes with byte-identical results),
``--batch B`` (how many compatible runs one worker advances per
control step; defaults to ``$REPRO_BATCH`` or 8) and ``--cache-dir DIR``
(content-addressed result cache; defaults to ``$REPRO_CACHE_DIR`` when
set), so repeated invocations are near-free.
``matrix`` additionally takes ``--schedule A,B,...`` (repeatable) to run
back-to-back app sequences with thermal-state carryover on the grid;
positions may pin their own thermal mode (``A:dtpm,B``), and ``--days N``
repeats each schedule as a diurnal pattern (consecutive days separated by
an overnight standby position, see :func:`repro.sim.scenario.diurnal`).
``report`` takes the same ``--schedule``/``--days`` pair to append a
scenario section (per-position stability/power deltas along the chain);
against a warm cache the whole report renders without executing a single
simulation.  Exposed as the ``repro-dtpm`` console script as well.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.analysis.tables import benchmark_table, frequency_table, render_table
from repro.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.runner import (
    ExperimentMatrix,
    ParallelRunner,
    ResultCache,
    cached_build_models,
    default_cache_dir,
    disk_usage,
    migrate,
    prune,
)
from repro.sim.engine import ThermalMode
from repro.sim.experiment import (
    compare_modes,
    dtpm_vs_default,
    run_benchmark,
)
from repro.sim.metrics import (
    overall_summary,
    performance_loss_pct,
    power_savings_pct,
    summarize_categories,
)
from repro.sim.models import build_models, default_models
from repro.sim.sweep import (
    sweep_constraint,
    sweep_guard_band,
    sweep_horizon,
    sweep_sensor_noise,
)
from repro.workloads.benchmarks import (
    ALL_BENCHMARKS,
    benchmark_names,
    get_benchmark,
    table_6_4_rows,
)

_MODES = {m.value: m for m in ThermalMode}

#: Knob name -> (sweep function, value parser, default axis, unit label,
#: domain probe run *before* the expensive model build).
_SWEEPS = {
    "constraint": (
        sweep_constraint, float, (58.0, 61.0, 63.0, 66.0), "degC",
        lambda v: SimulationConfig(t_constraint_c=v),
    ),
    "horizon": (
        sweep_horizon, int, (1, 5, 10, 30), "steps",
        lambda v: SimulationConfig(prediction_horizon_steps=v),
    ),
    "guard_band": (
        sweep_guard_band, float, (0.0, 0.75, 1.5, 2.5), "K",
        lambda v: None,
    ),
    "sensor_noise": (
        sweep_sensor_noise, float, (0.0, 0.15, 0.3, 0.6), "degC",
        lambda v: SimulationConfig(temp_sensor_noise_c=v),
    ),
}


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError("%r is not an integer" % text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _workers_arg(text: str):
    """``--workers``: a process count or a remote worker endpoint list."""
    if ":" in text:
        from repro.distributed.protocol import parse_endpoints

        try:
            parse_endpoints(text)
        except ConfigurationError as exc:
            raise argparse.ArgumentTypeError(str(exc)) from None
        return text
    return _positive_int(text)


def _add_runner_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=_workers_arg, default=1,
        help="process count for parallel fan-out (default: serial), or a "
             "host:port,host:port list of repro-dtpm worker processes to "
             "dispatch batches to (byte-identical results either way)")
    parser.add_argument(
        "--batch", type=_positive_int, default=None,
        help="runs one worker advances per control step (default: "
             "$REPRO_BATCH or 8; 1 disables batching; results are "
             "byte-identical either way)")
    parser.add_argument(
        "--cache-dir", default=default_cache_dir(),
        help="result-cache directory (default: $REPRO_CACHE_DIR if set)")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the result cache even if a directory is configured")


def _make_runner(args, models=None) -> ParallelRunner:
    cache = None
    if not args.no_cache and args.cache_dir:
        cache = ResultCache(root=args.cache_dir)
    return ParallelRunner(
        workers=args.workers, cache=cache, models=models, batch=args.batch
    )


def _load_models(args):
    """The identified models, via the on-disk store when one is configured."""
    if args.no_cache or not args.cache_dir:
        return default_models()
    return cached_build_models(root=args.cache_dir)


def _cmd_tables(_args) -> int:
    from repro.platform.specs import (
        BIG_FREQUENCIES_HZ,
        GPU_FREQUENCIES_HZ,
        LITTLE_FREQUENCIES_HZ,
    )

    print(frequency_table(BIG_FREQUENCIES_HZ, "Table 6.1: big CPU cluster"))
    print()
    print(frequency_table(LITTLE_FREQUENCIES_HZ, "Table 6.2: little CPU cluster"))
    print()
    print(frequency_table(GPU_FREQUENCIES_HZ, "Table 6.3: GPU"))
    print()
    print(benchmark_table(table_6_4_rows()))
    return 0


def _cmd_identify(args) -> int:
    print("Running furnace characterization + PRBS identification...")
    bundle = build_models(
        prbs_duration_s=args.duration,
        run_furnace=args.furnace,
        method=args.method,
    )
    model = bundle.thermal
    print("identified A:")
    for row in model.a:
        print("  " + "  ".join("%7.4f" % v for v in row))
    print("identified B:")
    for row in model.b:
        print("  " + "  ".join("%7.4f" % v for v in row))
    print("offset d:", "  ".join("%6.2f" % v for v in model.offset))
    print("spectral radius: %.4f" % model.spectral_radius())
    return 0


def _cmd_run(args) -> int:
    workload = get_benchmark(args.benchmark)
    mode = _MODES[args.mode]
    models = default_models() if mode is ThermalMode.DTPM else None
    result = run_benchmark(workload, mode, models=models)
    print(result.summary())
    print(
        "  peak %.1f degC | interventions %d | migrations %d"
        % (result.peak_temp_c(), result.interventions, result.cluster_migrations)
    )
    return 0


def _cmd_compare(args) -> int:
    workload = get_benchmark(args.benchmark)
    results = compare_modes(workload, models=default_models())
    base = results[ThermalMode.DEFAULT_WITH_FAN]
    rows = []
    for mode, result in results.items():
        rows.append(
            [
                mode.value,
                "%.1f" % result.execution_time_s,
                "%.2f" % result.average_platform_power_w,
                "%.1f" % result.peak_temp_c(),
                "%.1f" % power_savings_pct(base, result),
                "%.1f" % performance_loss_pct(base, result),
            ]
        )
    print(
        render_table(
            ["config", "time (s)", "power (W)", "peak (C)", "savings %", "loss %"],
            rows,
            title="%s under the four Section-6.2 configurations" % workload.name,
        )
    )
    return 0


def _cmd_report(args) -> int:
    from repro.analysis.report import generate_report
    from repro.errors import WorkloadError

    workloads = None
    if args.quick:
        workloads = [
            get_benchmark(n) for n in ("dijkstra", "patricia", "matrix_mult")
        ]
    scenario = None
    if args.schedule:
        from repro.sim.scenario import resolve_schedule_entry

        try:
            scenario = tuple(
                resolve_schedule_entry(entry)
                for entry in _parse_schedule_arg(args.schedule)
            )
        except (WorkloadError, ConfigurationError) as exc:
            print("error: %s" % exc, file=sys.stderr)
            return 2
    elif args.days is not None:
        print(
            "error: --days only applies with --schedule", file=sys.stderr
        )
        return 2
    models = _load_models(args)
    runner = _make_runner(args, models=models)
    text = generate_report(
        models=models,
        workloads=workloads,
        runner=runner,
        scenario=scenario,
        scenario_days=args.days if args.days is not None else 2,
    )
    with open(args.output, "w") as fh:
        fh.write(text + "\n")
    print("report written to %s (%d lines)" % (args.output, text.count("\n") + 1))
    print(runner.last_stats.summary())
    return 0


def _cmd_sweep(args) -> int:
    sweep_fn, parse, default_values, unit, probe = _SWEEPS[args.knob]
    try:
        values = (
            [parse(v) for v in args.values.split(",")]
            if args.values
            else list(default_values)
        )
    except ValueError:
        print(
            "error: --values must be comma-separated %s numbers, got %r"
            % (args.knob, args.values),
            file=sys.stderr,
        )
        return 2
    try:
        for value in values:
            probe(value)
    except ConfigurationError as exc:
        print("error: invalid %s value: %s" % (args.knob, exc), file=sys.stderr)
        return 2
    workload = get_benchmark(args.benchmark)
    models = _load_models(args)
    runner = _make_runner(args, models=models)
    print(
        "Sweeping %s over %s (%s) on %s..."
        % (args.knob, values, unit, workload.name)
    )
    points = sweep_fn(workload, values, models, runner=runner)
    print(
        render_table(
            ["%s (%s)" % (args.knob, unit), "peak (C)", "overshoot (C)",
             "time (s)", "avg power (W)", "interventions"],
            [
                [
                    "%g" % p.value,
                    "%.1f" % p.peak_c,
                    "%.1f" % p.overshoot_c,
                    "%.1f" % p.execution_time_s,
                    "%.2f" % p.average_power_w,
                    "%d" % p.interventions,
                ]
                for p in points
            ],
            title="Ablation: %s sweep on %s" % (args.knob, workload.name),
        )
    )
    print(runner.last_stats.summary())
    return 0


def _parse_schedule_arg(text: str):
    """One ``--schedule`` value: comma-separated ``name[:mode]`` entries."""
    entries = []
    for token in text.split(","):
        name, sep, mode = token.partition(":")
        if not sep:
            entries.append(name)
            continue
        if mode not in _MODES:
            raise ConfigurationError(
                "unknown mode %r in schedule entry %r (choose from %s)"
                % (mode, token, ", ".join(sorted(_MODES)))
            )
        entries.append((name, _MODES[mode]))
    return tuple(entries)


def _cmd_matrix(args) -> int:
    from repro.errors import WorkloadError
    from repro.sim.scenario import diurnal

    try:
        schedules = tuple(
            _parse_schedule_arg(s) for s in (args.schedule or ())
        )
        if args.days > 1:
            schedules = tuple(
                diurnal(schedule, days=args.days) for schedule in schedules
            )
    except (WorkloadError, ConfigurationError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    if args.idle_gap and not schedules:
        print(
            "error: --idle-gap only applies to --schedule sequences",
            file=sys.stderr,
        )
        return 2
    if args.days > 1 and not schedules:
        print(
            "error: --days only applies to --schedule sequences",
            file=sys.stderr,
        )
        return 2
    benchmarks = (
        args.benchmarks.split(",")
        if args.benchmarks
        else ([] if schedules else benchmark_names())
    )
    mode_names = args.modes.split(",") if args.modes else list(_MODES)
    unknown = [m for m in mode_names if m not in _MODES]
    if unknown:
        print(
            "error: unknown mode(s) %s (choose from %s)"
            % (", ".join(unknown), ", ".join(sorted(_MODES))),
            file=sys.stderr,
        )
        return 2
    modes = tuple(_MODES[m] for m in mode_names)
    try:
        matrix = ExperimentMatrix(
            workloads=tuple(benchmarks),
            modes=modes,
            schedules=schedules,
            idle_gap_s=args.idle_gap,
        )
        # round-trip through the versioned wire codec so the CLI runs the
        # exact grid a service client POSTing this payload would get
        matrix = ExperimentMatrix.from_dict(matrix.to_dict())
    except (WorkloadError, ConfigurationError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    # pinned schedule positions can pull DTPM into a grid whose mode axis
    # has none, so ask the expanded specs rather than the axis
    needs_models = any(s.needs_models for s in matrix.specs())
    runner = _make_runner(
        args, models=_load_models(args) if needs_models else None
    )
    print(
        "Running a %dx%d experiment matrix (%d runs, %s workers)..."
        % (len(benchmarks) + len(schedules), len(modes), len(matrix),
           args.workers)
    )
    results = runner.run(matrix)
    specs = matrix.specs()
    print(
        render_table(
            ["benchmark", "mode", "time (s)", "power (W)", "peak (C)",
             "interventions"],
            [
                [
                    s.workload.name
                    + ("" if not s.history else " (pos %d)" % len(s.history)),
                    s.mode.value,
                    "%.1f" % r.execution_time_s,
                    "%.2f" % r.average_platform_power_w,
                    "%.1f" % r.peak_temp_c(),
                    "%d" % r.interventions,
                ]
                for s, r in zip(specs, results)
            ],
            title="Experiment matrix",
        )
    )
    print(runner.last_stats.summary())
    return 0


def _cache_root(args) -> Optional[str]:
    root = args.cache_dir
    if not root:
        print(
            "error: no cache directory (pass --cache-dir or set "
            "$REPRO_CACHE_DIR)",
            file=sys.stderr,
        )
        return None
    return root


def _cmd_cache_stats(args) -> int:
    root = _cache_root(args)
    if root is None:
        return 2
    # a pruned store keeps its shard directories, so listdir() only comes
    # up empty for directories no cache writer has ever touched
    if not os.path.isdir(root) or not os.listdir(root):
        print(
            "error: no result cache at %s (nothing has been cached "
            "there yet)" % root,
            file=sys.stderr,
        )
        return 2
    usage = disk_usage(root)
    print("cache at %s" % usage.root)
    print("  " + usage.summary())
    if usage.orphan_blobs:
        print(
            "  %d orphaned trace blob(s) (interrupted writers); "
            "run `repro-dtpm cache prune --max-mb ...` to collect"
            % usage.orphan_blobs
        )
    for note in usage.notes:
        print("  note: %s" % note)
    return 0


def _cmd_cache_prune(args) -> int:
    root = _cache_root(args)
    if root is None:
        return 2
    max_bytes = None if args.all else int(args.max_mb * 2**20)
    removed, freed = prune(root, max_bytes=max_bytes)
    print(
        "pruned %d entr%s, freed %.1f MiB"
        % (removed, "y" if removed == 1 else "ies", freed / 2**20)
    )
    print("  now: " + disk_usage(root).summary())
    return 0


def _cmd_cache_migrate(args) -> int:
    root = _cache_root(args)
    if root is None:
        return 2
    if not os.path.isdir(root):
        print(
            "error: no cache directory at %s (nothing to migrate)" % root,
            file=sys.stderr,
        )
        return 2
    try:
        stats = migrate(root, fanout=args.fanout, compress=args.compress)
    except ConfigurationError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    print("migrated cache at %s to fanout=%d" % (root, args.fanout))
    print("  " + stats.summary())
    print("  now: " + disk_usage(root).summary())
    return 0


def _cmd_suite_summarize(args) -> int:
    from repro.analysis.suite import summarize_dir

    root = _cache_root(args)
    if root is None:
        return 2
    if not os.path.isdir(root):
        print(
            "error: no cache directory at %s (run a suite with "
            "--cache-dir first)" % root,
            file=sys.stderr,
        )
        return 2
    text = summarize_dir(root, mmap=not args.no_mmap)
    if "no readable run entries" in text:
        print("error: %s" % text, file=sys.stderr)
        return 2
    print(text)
    return 0


def _cmd_suite(args) -> int:
    if getattr(args, "suite_command", None) == "summarize":
        return _cmd_suite_summarize(args)
    print("Running the full Fig. 6.9 sweep (15 benchmarks x 2 configs)...")
    models = _load_models(args)
    runner = _make_runner(args, models=models)
    rows = dtpm_vs_default(ALL_BENCHMARKS, models=models, runner=runner)
    table_rows = [
        [
            r.benchmark,
            r.category,
            "%.1f" % r.power_savings_pct,
            "%.1f" % r.performance_loss_pct,
        ]
        for r in rows
    ]
    print(
        render_table(
            ["benchmark", "category", "savings %", "perf loss %"],
            table_rows,
            title="Fig 6.9: DTPM vs fan-cooled default",
        )
    )
    print("\nper category:", summarize_categories(rows))
    print("overall:", overall_summary(rows))
    print(runner.last_stats.summary())
    return 0


def _cmd_serve(args) -> int:
    from repro.service import serve

    return serve(
        cache_dir=args.cache_dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        batch=args.batch,
        dispatch=args.dispatch,
    )


def _cmd_worker(args) -> int:
    from repro.distributed.worker import run_worker

    return run_worker(host=args.host, port=args.port)


def _cmd_lint(args) -> int:
    from repro.devtools.cli import run_lint_cli

    return run_lint_cli(args)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-dtpm",
        description="Predictive DTPM reproduction (Singla et al., DATE 2015)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tables", help="print Tables 6.1-6.4").set_defaults(
        func=_cmd_tables
    )

    p_ident = sub.add_parser("identify", help="run the Chapter-4 pipeline")
    p_ident.add_argument("--duration", type=float, default=1050.0,
                         help="PRBS session length in seconds")
    p_ident.add_argument("--furnace", action="store_true",
                         help="run the furnace characterization too")
    p_ident.add_argument("--method", default="structured",
                         choices=("structured", "staged", "joint"))
    p_ident.set_defaults(func=_cmd_identify)

    p_run = sub.add_parser("run", help="run one benchmark")
    p_run.add_argument("benchmark", choices=benchmark_names())
    p_run.add_argument("mode", choices=sorted(_MODES))
    p_run.set_defaults(func=_cmd_run)

    p_cmp = sub.add_parser("compare", help="all four configurations")
    p_cmp.add_argument("benchmark", choices=benchmark_names())
    p_cmp.set_defaults(func=_cmd_compare)

    p_suite = sub.add_parser(
        "suite",
        help="the full Fig. 6.9 sweep (or `suite summarize` for columnar "
             "analytics over an existing cache directory)",
    )
    _add_runner_args(p_suite)
    suite_sub = p_suite.add_subparsers(dest="suite_command")
    p_summ = suite_sub.add_parser(
        "summarize",
        help="open a cache directory as one columnar SuiteFrame (traces "
             "memory-mapped) and print per-mode aggregate reductions",
    )
    # SUPPRESS: the parent `suite` parser already owns --cache-dir (via
    # _add_runner_args); a subparser default would clobber a value given
    # before the subcommand token (`suite --cache-dir X summarize`)
    p_summ.add_argument("--cache-dir", default=argparse.SUPPRESS,
                        help="cache directory (default: $REPRO_CACHE_DIR)")
    p_summ.add_argument("--no-mmap", action="store_true",
                        help="load trace blobs eagerly instead of "
                             "memory-mapping them")
    p_suite.set_defaults(func=_cmd_suite)

    p_sweep = sub.add_parser(
        "sweep", help="sweep one ablation knob through the parallel runner"
    )
    p_sweep.add_argument("knob", choices=sorted(_SWEEPS))
    p_sweep.add_argument("--benchmark", default="basicmath",
                         choices=benchmark_names())
    p_sweep.add_argument("--values",
                         help="comma-separated knob values (default: a "
                              "paper-centred axis)")
    _add_runner_args(p_sweep)
    p_sweep.set_defaults(func=_cmd_sweep)

    p_mat = sub.add_parser(
        "matrix", help="run a benchmarks x modes experiment matrix"
    )
    p_mat.add_argument("--benchmarks",
                       help="comma-separated benchmark names (default: all, "
                            "or none when --schedule is given)")
    p_mat.add_argument("--modes",
                       help="comma-separated modes (default: all four)")
    p_mat.add_argument("--schedule", action="append", metavar="B1[:MODE],B2,...",
                       help="back-to-back benchmark sequence run with "
                            "thermal-state carryover (repeatable); a "
                            "position may pin its own thermal mode, the "
                            "rest follow the --modes axis")
    p_mat.add_argument("--idle-gap", type=float, default=0.0,
                       help="idle seconds between schedule runs (default: 0)")
    p_mat.add_argument("--days", type=_positive_int, default=1,
                       help="repeat each schedule as a diurnal pattern of "
                            "this many days, separated by overnight standby "
                            "positions (default: 1)")
    _add_runner_args(p_mat)
    p_mat.set_defaults(func=_cmd_matrix)

    p_cache = sub.add_parser(
        "cache", help="inspect or bound the content-addressed result cache"
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    p_cstats = cache_sub.add_parser(
        "stats", help="entry counts and byte footprint of the store"
    )
    p_cstats.add_argument("--cache-dir", default=default_cache_dir(),
                          help="cache directory (default: $REPRO_CACHE_DIR)")
    p_cstats.set_defaults(func=_cmd_cache_stats)
    p_cprune = cache_sub.add_parser(
        "prune",
        help="evict result entries (least-recently-read first) to bound "
             "the store",
    )
    p_cprune.add_argument("--cache-dir", default=default_cache_dir(),
                          help="cache directory (default: $REPRO_CACHE_DIR)")
    bound = p_cprune.add_mutually_exclusive_group(required=True)
    bound.add_argument("--max-mb", type=float,
                       help="evict least-recently-read entries until under "
                            "this many MiB")
    bound.add_argument("--all", action="store_true",
                       help="remove every result entry (models are kept)")
    p_cprune.set_defaults(func=_cmd_cache_prune)
    p_cmig = cache_sub.add_parser(
        "migrate",
        help="reshard the store in place (copy-then-unlink per entry: "
             "idempotent, interrupt-safe, readable throughout) and "
             "optionally transcode trace blobs",
    )
    p_cmig.add_argument("--cache-dir", default=default_cache_dir(),
                        help="cache directory (default: $REPRO_CACHE_DIR)")
    p_cmig.add_argument("--fanout", type=int, choices=(1, 2), default=2,
                        help="target shard depth: 2 = <root>/ab/cd/ "
                             "(default, scales to ~100k+ entries), "
                             "1 = the flat <root>/ab/ layout")
    p_cmig.add_argument("--compress", default=None,
                        choices=("deflate", "zstd", "none"),
                        help="transcode trace blobs: deflate (stdlib), "
                             "zstd (needs the zstandard package) or none "
                             "(plain npz); default keeps each blob as-is")
    p_cmig.set_defaults(func=_cmd_cache_migrate)

    p_rep = sub.add_parser(
        "report",
        help="write a markdown evaluation report (cache-aware: a warm "
             "result cache renders it without executing simulations)",
    )
    p_rep.add_argument("--output", default="dtpm_report.md")
    p_rep.add_argument("--quick", action="store_true",
                       help="restrict to a few representative benchmarks")
    p_rep.add_argument("--schedule", metavar="B1[:MODE],B2,...",
                       help="add a scenario section: one day's app "
                            "sequence run as a diurnal chain with "
                            "thermal-state carryover")
    p_rep.add_argument("--days", type=_positive_int, default=None,
                       help="days the --schedule pattern repeats, "
                            "separated by overnight standby (default: 2)")
    _add_runner_args(p_rep)
    p_rep.set_defaults(func=_cmd_report)

    p_srv = sub.add_parser(
        "serve",
        help="start the always-on evaluation service: POST RunSpec/matrix "
             "wire JSON to /v1/runs and /v1/matrix; warm requests answer "
             "from the cache with zero simulations, cold ones run on a "
             "background job queue with request coalescing",
    )
    p_srv.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    p_srv.add_argument("--port", type=int, default=8765,
                       help="bind port (default: 8765; 0 picks a free one)")
    p_srv.add_argument("--workers", type=_positive_int, default=2,
                       help="background job worker threads (default: 2)")
    p_srv.add_argument("--batch", type=_positive_int, default=None,
                       help="runs one job advances per control step "
                            "(default: $REPRO_BATCH or 8)")
    p_srv.add_argument("--cache-dir", default=default_cache_dir(),
                       help="result-cache directory the service persists "
                            "to (default: $REPRO_CACHE_DIR; without one "
                            "results live in memory only)")
    p_srv.add_argument("--dispatch", default=None, metavar="HOST:PORT,...",
                       help="remote repro-dtpm worker endpoints cold jobs "
                            "dispatch their batches to (results and cache "
                            "writes are byte-identical to local execution)")
    p_srv.set_defaults(func=_cmd_serve)

    p_wrk = sub.add_parser(
        "worker",
        help="start a remote batch-execution worker: a coordinator "
             "(ParallelRunner(workers=\"host:port,...\") or serve "
             "--dispatch) ships it spec batches over TCP and it answers "
             "with byte-identical results; it never touches the cache",
    )
    p_wrk.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    p_wrk.add_argument("--port", type=int, default=8970,
                       help="bind port (default: 8970; 0 picks a free one)")
    p_wrk.set_defaults(func=_cmd_worker)

    from repro.devtools.cli import add_lint_arguments

    p_lint = sub.add_parser(
        "lint",
        help="run the repo's invariant linter: determinism (RPR01x), "
             "cache-key coherence (RPR02x), batch parity (RPR03x) and "
             "lock discipline (RPR04x) as a single-walk AST pass",
    )
    add_lint_arguments(p_lint)
    p_lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
