"""Command-line interface to the reproduction.

Subcommands::

    python -m repro.cli tables             # print Tables 6.1-6.4
    python -m repro.cli identify           # run the Chapter-4 pipeline
    python -m repro.cli run BENCH MODE     # one benchmark, one configuration
    python -m repro.cli compare BENCH      # all four configurations
    python -m repro.cli suite              # the Fig. 6.9 sweep (slow)

Exposed as the ``repro-dtpm`` console script as well.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.analysis.tables import benchmark_table, frequency_table, render_table
from repro.sim.engine import ThermalMode
from repro.sim.experiment import compare_modes, dtpm_vs_default, run_benchmark
from repro.sim.metrics import (
    overall_summary,
    performance_loss_pct,
    power_savings_pct,
    summarize_categories,
)
from repro.sim.models import build_models, default_models
from repro.workloads.benchmarks import (
    ALL_BENCHMARKS,
    benchmark_names,
    get_benchmark,
    table_6_4_rows,
)

_MODES = {m.value: m for m in ThermalMode}


def _cmd_tables(_args) -> int:
    from repro.platform.specs import (
        BIG_FREQUENCIES_HZ,
        GPU_FREQUENCIES_HZ,
        LITTLE_FREQUENCIES_HZ,
    )

    print(frequency_table(BIG_FREQUENCIES_HZ, "Table 6.1: big CPU cluster"))
    print()
    print(frequency_table(LITTLE_FREQUENCIES_HZ, "Table 6.2: little CPU cluster"))
    print()
    print(frequency_table(GPU_FREQUENCIES_HZ, "Table 6.3: GPU"))
    print()
    print(benchmark_table(table_6_4_rows()))
    return 0


def _cmd_identify(args) -> int:
    print("Running furnace characterization + PRBS identification...")
    bundle = build_models(
        prbs_duration_s=args.duration,
        run_furnace=args.furnace,
        method=args.method,
    )
    model = bundle.thermal
    print("identified A:")
    for row in model.a:
        print("  " + "  ".join("%7.4f" % v for v in row))
    print("identified B:")
    for row in model.b:
        print("  " + "  ".join("%7.4f" % v for v in row))
    print("offset d:", "  ".join("%6.2f" % v for v in model.offset))
    print("spectral radius: %.4f" % model.spectral_radius())
    return 0


def _cmd_run(args) -> int:
    workload = get_benchmark(args.benchmark)
    mode = _MODES[args.mode]
    models = default_models() if mode is ThermalMode.DTPM else None
    result = run_benchmark(workload, mode, models=models)
    print(result.summary())
    print(
        "  peak %.1f degC | interventions %d | migrations %d"
        % (result.peak_temp_c(), result.interventions, result.cluster_migrations)
    )
    return 0


def _cmd_compare(args) -> int:
    workload = get_benchmark(args.benchmark)
    results = compare_modes(workload, models=default_models())
    base = results[ThermalMode.DEFAULT_WITH_FAN]
    rows = []
    for mode, result in results.items():
        rows.append(
            [
                mode.value,
                "%.1f" % result.execution_time_s,
                "%.2f" % result.average_platform_power_w,
                "%.1f" % result.peak_temp_c(),
                "%.1f" % power_savings_pct(base, result),
                "%.1f" % performance_loss_pct(base, result),
            ]
        )
    print(
        render_table(
            ["config", "time (s)", "power (W)", "peak (C)", "savings %", "loss %"],
            rows,
            title="%s under the four Section-6.2 configurations" % workload.name,
        )
    )
    return 0


def _cmd_report(args) -> int:
    from repro.analysis.report import generate_report

    workloads = None
    if args.quick:
        workloads = [
            get_benchmark(n) for n in ("dijkstra", "patricia", "matrix_mult")
        ]
    text = generate_report(models=default_models(), workloads=workloads)
    with open(args.output, "w") as fh:
        fh.write(text + "\n")
    print("report written to %s (%d lines)" % (args.output, text.count("\n") + 1))
    return 0


def _cmd_suite(_args) -> int:
    print("Running the full Fig. 6.9 sweep (15 benchmarks x 2 configs)...")
    rows = dtpm_vs_default(ALL_BENCHMARKS, models=default_models())
    table_rows = [
        [
            r.benchmark,
            r.category,
            "%.1f" % r.power_savings_pct,
            "%.1f" % r.performance_loss_pct,
        ]
        for r in rows
    ]
    print(
        render_table(
            ["benchmark", "category", "savings %", "perf loss %"],
            table_rows,
            title="Fig 6.9: DTPM vs fan-cooled default",
        )
    )
    print("\nper category:", summarize_categories(rows))
    print("overall:", overall_summary(rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-dtpm",
        description="Predictive DTPM reproduction (Singla et al., DATE 2015)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tables", help="print Tables 6.1-6.4").set_defaults(
        func=_cmd_tables
    )

    p_ident = sub.add_parser("identify", help="run the Chapter-4 pipeline")
    p_ident.add_argument("--duration", type=float, default=1050.0,
                         help="PRBS session length in seconds")
    p_ident.add_argument("--furnace", action="store_true",
                         help="run the furnace characterization too")
    p_ident.add_argument("--method", default="structured",
                         choices=("structured", "staged", "joint"))
    p_ident.set_defaults(func=_cmd_identify)

    p_run = sub.add_parser("run", help="run one benchmark")
    p_run.add_argument("benchmark", choices=benchmark_names())
    p_run.add_argument("mode", choices=sorted(_MODES))
    p_run.set_defaults(func=_cmd_run)

    p_cmp = sub.add_parser("compare", help="all four configurations")
    p_cmp.add_argument("benchmark", choices=benchmark_names())
    p_cmp.set_defaults(func=_cmd_compare)

    sub.add_parser("suite", help="the full Fig. 6.9 sweep").set_defaults(
        func=_cmd_suite
    )

    p_rep = sub.add_parser("report", help="write a markdown evaluation report")
    p_rep.add_argument("--output", default="dtpm_report.md")
    p_rep.add_argument("--quick", action="store_true",
                       help="restrict to a few representative benchmarks")
    p_rep.set_defaults(func=_cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
