"""Composition of the heterogeneous MPSoC (Exynos 5410).

The SoC owns the two CPU clusters, the GPU and the memory device, enforces
the big-XOR-little activation rule of the Odroid platform, and evaluates the
ground-truth power breakdown used both by the thermal plant and (through
noisy sensors) by the DTPM controller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.errors import ClusterStateError
from repro.platform.cluster import ClusterPower, CpuCluster
from repro.platform.gpu import GpuDevice
from repro.platform.memory import MemoryDevice
from repro.platform.specs import (
    CLUSTER_MIGRATION_PENALTY_S,
    PlatformSpec,
    Resource,
)


@dataclass
class SocPowerState:
    """Ground-truth instantaneous power of the whole SoC.

    ``per_resource`` follows the paper's power-vector layout; the per-core
    big powers (dynamic + leakage share) feed the thermal network's four
    hotspot nodes.
    """

    per_resource: Dict[Resource, ClusterPower]
    big_core_powers_w: np.ndarray

    @property
    def total_w(self) -> float:
        """Total SoC power (W)."""
        return sum(p.total_w for p in self.per_resource.values())

    def resource_vector_w(self) -> np.ndarray:
        """``[P_big, P_little, P_gpu, P_mem]`` totals (Eq. 5.3 layout)."""
        from repro.platform.specs import POWER_RESOURCES

        return np.array(
            [self.per_resource[r].total_w for r in POWER_RESOURCES]
        )

    def dynamic_vector_w(self) -> np.ndarray:
        """Dynamic components in the power-vector layout."""
        from repro.platform.specs import POWER_RESOURCES

        return np.array(
            [self.per_resource[r].dynamic_w for r in POWER_RESOURCES]
        )

    def leakage_vector_w(self) -> np.ndarray:
        """Leakage components in the power-vector layout."""
        from repro.platform.specs import POWER_RESOURCES

        return np.array(
            [self.per_resource[r].leakage_w for r in POWER_RESOURCES]
        )


class ExynosSoc:
    """The simulated Exynos 5410: big + little clusters, GPU, memory."""

    def __init__(self, spec: Optional[PlatformSpec] = None) -> None:
        self.spec = spec or PlatformSpec()
        self.big = CpuCluster(
            Resource.BIG,
            self.spec.big_opp,
            self.spec.big_core,
            self.spec.leakage[Resource.BIG],
            num_cores=self.spec.cores_per_cluster,
        )
        self.little = CpuCluster(
            Resource.LITTLE,
            self.spec.little_opp,
            self.spec.little_core,
            self.spec.leakage[Resource.LITTLE],
            num_cores=self.spec.cores_per_cluster,
        )
        self.gpu = GpuDevice(
            self.spec.gpu_opp,
            self.spec.gpu_capacitance_f,
            self.spec.leakage[Resource.GPU],
        )
        self.mem = MemoryDevice(
            self.spec.mem_full_traffic_w,
            self.spec.mem_vdd,
            self.spec.leakage[Resource.MEM],
        )
        # Odroid boots on the big cluster.
        self.big.activate()
        self.little.deactivate()

    # ------------------------------------------------------------------
    # cluster management
    # ------------------------------------------------------------------
    @property
    def active_cluster(self) -> Resource:
        """Which CPU cluster is currently powered (BIG xor LITTLE)."""
        if self.big.active == self.little.active:
            raise ClusterStateError(
                "exactly one CPU cluster must be active (big=%s little=%s)"
                % (self.big.active, self.little.active)
            )
        return Resource.BIG if self.big.active else Resource.LITTLE

    def active_cpu(self) -> CpuCluster:
        """The currently active CPU cluster object."""
        return self.big if self.active_cluster is Resource.BIG else self.little

    def switch_cluster(self, target: Resource) -> float:
        """Migrate all tasks to ``target`` cluster.

        Returns the migration penalty in seconds of lost work (zero when the
        target is already active).  Mirrors the in-kernel switcher: the
        target cluster comes up with all its cores online at its minimum
        frequency, the source cluster is power-gated.
        """
        if target not in (Resource.BIG, Resource.LITTLE):
            raise ClusterStateError("cannot switch CPU cluster to %s" % target)
        if target is self.active_cluster:
            return 0.0
        incoming = self.big if target is Resource.BIG else self.little
        outgoing = self.little if target is Resource.BIG else self.big
        incoming.activate()
        incoming.set_num_online(incoming.num_cores)
        incoming.set_frequency(incoming.opp_table.f_min_hz)
        outgoing.deactivate()
        return CLUSTER_MIGRATION_PENALTY_S

    # ------------------------------------------------------------------
    # ground-truth power
    # ------------------------------------------------------------------
    def power_state(
        self,
        temps_k: Dict[str, float],
        big_core_utils: Sequence[float],
        little_core_utils: Sequence[float],
        cpu_activity: float = 1.0,
        gpu_activity: float = 1.0,
    ) -> SocPowerState:
        """Evaluate the SoC's instantaneous ground-truth power.

        Parameters
        ----------
        temps_k:
            Block temperatures from the thermal plant, keyed by
            ``"big" / "little" / "gpu" / "mem"`` (see
            :func:`repro.thermal.floorplan.resource_temperatures_k`).
        big_core_utils / little_core_utils:
            Per-core busy fractions produced by the scheduler.
        cpu_activity / gpu_activity:
            Workload activity factors scaling effective alpha*C.
        """
        big_power = self.big.power(big_core_utils, temps_k["big"], cpu_activity)
        little_power = self.little.power(
            little_core_utils, temps_k["little"], cpu_activity
        )
        gpu_power = self.gpu.power(temps_k["gpu"], gpu_activity)
        mem_power = self.mem.power(temps_k["mem"])

        per_core = self._big_core_powers(
            big_core_utils, big_power, cpu_activity
        )
        return SocPowerState(
            per_resource={
                Resource.BIG: big_power,
                Resource.LITTLE: little_power,
                Resource.GPU: gpu_power,
                Resource.MEM: mem_power,
            },
            big_core_powers_w=per_core,
        )

    def _big_core_powers(
        self,
        big_core_utils: Sequence[float],
        big_power: ClusterPower,
        cpu_activity: float,
    ) -> np.ndarray:
        """Split big-cluster power into per-core heat sources."""
        n = self.big.num_cores
        powers = np.zeros(n)
        if not self.big.active:
            # gated cluster: spread the residual leakage evenly
            powers[:] = big_power.leakage_w / n
            return powers
        vdd = self.big.voltage
        for core in range(n):
            if self.big.is_online(core):
                powers[core] = self.big.core_spec.dynamic_power(
                    self.big.frequency_hz, vdd, big_core_utils[core], cpu_activity
                )
        online = self.big.num_online
        leak_each = big_power.leakage_w / online if online else 0.0
        for core in range(n):
            if self.big.is_online(core):
                powers[core] += leak_each
        return powers

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "ExynosSoc(active=%s, big=%r, little=%r, gpu=%r)" % (
            self.active_cluster,
            self.big,
            self.little,
            self.gpu,
        )
