"""Three-speed fan model with the Odroid-XU+E threshold controller.

Section 6.2 of the paper: "The fan is activated when maximum core
temperature exceeds 57 degC.  Then, the fan speed is increased to 50 % and
100 % when the temperature passes 63 degC and 68 degC, respectively."

The fan influences the ground-truth thermal network by multiplying the
case-to-ambient conductance, and it draws electrical power counted by the
platform power meter (this is where the DTPM configuration's platform-power
savings partly come from).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.units import celsius_to_kelvin


class FanSpeed(enum.IntEnum):
    """Discrete fan speeds of the Odroid-XU+E fan header."""

    OFF = 0
    LOW = 1  # fan on, minimum duty
    MID = 2  # 50 % duty
    HIGH = 3  # 100 % duty


@dataclass(frozen=True)
class FanThresholds:
    """Turn-on temperatures (Celsius) of the three fan speeds."""

    on_c: float = 57.0
    mid_c: float = 63.0
    high_c: float = 68.0
    #: Hysteresis applied when stepping back down, to avoid chattering.
    hysteresis_c: float = 5.0

    def __post_init__(self) -> None:
        if not self.on_c < self.mid_c < self.high_c:
            raise ConfigurationError("fan thresholds must strictly increase")
        if self.hysteresis_c < 0:
            raise ConfigurationError("hysteresis must be non-negative")


class Fan:
    """Hysteretic three-speed fan driven by the maximum core temperature."""

    def __init__(
        self,
        power_w: Sequence[float],
        conductance_gain: Sequence[float],
        thresholds: FanThresholds = FanThresholds(),
        enabled: bool = True,
    ) -> None:
        if len(power_w) != 4 or len(conductance_gain) != 4:
            raise ConfigurationError(
                "fan needs power and conductance gain for all four speeds"
            )
        self._power_w: Tuple[float, ...] = tuple(power_w)
        self._gain: Tuple[float, ...] = tuple(conductance_gain)
        self.thresholds = thresholds
        self.enabled = enabled
        self._speed = FanSpeed.OFF

    @property
    def speed(self) -> FanSpeed:
        """Current fan speed."""
        return self._speed

    @property
    def power_w(self) -> float:
        """Electrical power drawn by the fan motor right now."""
        return self._power_w[int(self._speed)]

    @property
    def conductance_gain(self) -> float:
        """Multiplier on the case-to-ambient thermal conductance."""
        return self._gain[int(self._speed)]

    # -- batched-kernel views -------------------------------------------
    # The fused substep kernels (repro.thermal.kernels) run this
    # controller for many fans at once; these accessors are the single
    # source of truth for its gain-transition points and lookup tables,
    # so the vectorised automaton can never drift from Fan.update.
    def threshold_points_k(self) -> np.ndarray:
        """The three engage thresholds in Kelvin, lowest first.

        Crossing ``threshold_points_k()[i]`` upward engages speed
        ``i + 1``; falling ``hysteresis_k`` below the threshold that
        engaged the current speed steps one speed back down.
        """
        th = self.thresholds
        return np.array(
            [
                celsius_to_kelvin(th.on_c),
                celsius_to_kelvin(th.mid_c),
                celsius_to_kelvin(th.high_c),
            ]
        )

    @property
    def hysteresis_k(self) -> float:
        """Step-down hysteresis in Kelvin (a delta, so == Celsius)."""
        return self.thresholds.hysteresis_c

    def conductance_gain_table(self) -> np.ndarray:
        """Per-speed conductance multipliers, indexed by ``FanSpeed``."""
        return np.asarray(self._gain, dtype=float)

    def power_table_w(self) -> np.ndarray:
        """Per-speed electrical draw (W), indexed by ``FanSpeed``."""
        return np.asarray(self._power_w, dtype=float)

    def update(self, max_core_temp_k: float) -> FanSpeed:
        """Run one step of the threshold controller.

        Speed increases immediately when a threshold is crossed; it only
        steps back down once the temperature drops ``hysteresis_c`` below
        the threshold that engaged the current speed.
        """
        if not self.enabled:
            self._speed = FanSpeed.OFF
            return self._speed

        th = self.thresholds
        up_points_k = [
            celsius_to_kelvin(th.on_c),
            celsius_to_kelvin(th.mid_c),
            celsius_to_kelvin(th.high_c),
        ]

        target = FanSpeed.OFF
        for i, point in enumerate(up_points_k):
            if max_core_temp_k > point:
                target = FanSpeed(i + 1)

        if target > self._speed:
            self._speed = target
        elif target < self._speed:
            # step down one speed at a time, with hysteresis
            engage_point = up_points_k[int(self._speed) - 1]
            if max_core_temp_k < engage_point - th.hysteresis_c:
                self._speed = FanSpeed(int(self._speed) - 1)
        return self._speed

    def force_off(self) -> None:
        """Disable and stop the fan (the paper's "without fan" config)."""
        self.enabled = False
        self._speed = FanSpeed.OFF

    def restore_speed(self, speed: int) -> None:
        """Adopt a controller state computed elsewhere.

        The batched plant (:mod:`repro.platform.state`) runs the threshold
        controller for many fans at once and hands each lane's final speed
        back through this hook.
        """
        self._speed = FanSpeed(int(speed))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "Fan(speed=%s, enabled=%s)" % (self._speed.name, self.enabled)
