"""Static specifications of the simulated Odroid-XU+E / Exynos 5410 platform.

This module is the single source of truth for:

* the discrete OPP (operating performance point) tables of the big CPU
  cluster, the little CPU cluster and the GPU -- Tables 6.1, 6.2 and 6.3 of
  the paper, reproduced verbatim;
* the voltage/frequency curves used by the dynamic power model;
* the calibration constants of the *ground-truth* platform (leakage
  coefficients, switching capacitances, performance scaling).  The DTPM
  controller never reads these constants directly: it has to recover them
  through the characterization and system-identification workflows of
  Chapter 4, exactly like the paper does on real silicon.
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import ConfigurationError, InvalidFrequencyError
from repro.units import mhz


class Resource(enum.Enum):
    """A separately power-measurable resource of the heterogeneous MPSoC.

    The order of :data:`POWER_RESOURCES` fixes the layout of the power
    vector ``P = [P_big, P_little, P_gpu, P_mem]`` used throughout the
    thermal model (Eq. 5.3 of the paper).
    """

    BIG = "big"
    LITTLE = "little"
    GPU = "gpu"
    MEM = "mem"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Layout of the power vector ``P[k]`` (Eq. 5.3).
POWER_RESOURCES: Tuple[Resource, ...] = (
    Resource.BIG,
    Resource.LITTLE,
    Resource.GPU,
    Resource.MEM,
)

#: Number of cores per CPU cluster on the Exynos 5410.
CORES_PER_CLUSTER = 4

#: Number of thermal hotspots (one sensor per big core).
NUM_THERMAL_SENSORS = 4

# ---------------------------------------------------------------------------
# Tables 6.1 - 6.3: discrete frequency levels
# ---------------------------------------------------------------------------

#: Table 6.1 -- frequency table for the big CPU cluster (Hz).
BIG_FREQUENCIES_HZ: Tuple[float, ...] = tuple(
    mhz(f) for f in (800, 900, 1000, 1100, 1200, 1300, 1400, 1500, 1600)
)

#: Table 6.2 -- frequency table for the little CPU cluster (Hz).
LITTLE_FREQUENCIES_HZ: Tuple[float, ...] = tuple(
    mhz(f) for f in (500, 600, 700, 800, 900, 1000, 1100, 1200)
)

#: Table 6.3 -- frequency table for the GPU (Hz).
GPU_FREQUENCIES_HZ: Tuple[float, ...] = tuple(
    mhz(f) for f in (177, 266, 350, 480, 533)
)


@dataclass(frozen=True)
class VoltageCurve:
    """Linear supply-voltage curve V(f) between two anchor OPPs.

    Real OPP tables store one voltage per frequency step; a two-point linear
    interpolation matches the published Exynos 5410 tables to within a few
    millivolts and keeps the model analytic (Eq. 5.7 solves for f given V).
    """

    f_low_hz: float
    v_low: float
    f_high_hz: float
    v_high: float

    def __post_init__(self) -> None:
        if self.f_high_hz <= self.f_low_hz:
            raise ConfigurationError("voltage curve requires f_high > f_low")
        if self.v_high < self.v_low:
            raise ConfigurationError("voltage must be non-decreasing in f")

    def voltage(self, frequency_hz: float) -> float:
        """Supply voltage (V) at ``frequency_hz`` (linearly extrapolated)."""
        slope = (self.v_high - self.v_low) / (self.f_high_hz - self.f_low_hz)
        return self.v_low + slope * (frequency_hz - self.f_low_hz)


@dataclass(frozen=True)
class OppTable:
    """Ordered table of discrete operating points with a voltage curve."""

    name: str
    frequencies_hz: Tuple[float, ...]
    voltage_curve: VoltageCurve

    def __post_init__(self) -> None:
        freqs = tuple(self.frequencies_hz)
        if len(freqs) < 2:
            raise ConfigurationError("an OPP table needs at least two points")
        if any(b <= a for a, b in zip(freqs, freqs[1:])):
            raise ConfigurationError("OPP frequencies must strictly increase")
        object.__setattr__(self, "frequencies_hz", freqs)

    # -- basic accessors ----------------------------------------------------
    @property
    def f_min_hz(self) -> float:
        """Lowest supported frequency."""
        return self.frequencies_hz[0]

    @property
    def f_max_hz(self) -> float:
        """Highest supported frequency."""
        return self.frequencies_hz[-1]

    def __len__(self) -> int:
        return len(self.frequencies_hz)

    def __contains__(self, frequency_hz: float) -> bool:
        return any(abs(f - frequency_hz) < 0.5 for f in self.frequencies_hz)

    def index_of(self, frequency_hz: float) -> int:
        """Index of an exact table frequency; raises if not present."""
        for i, f in enumerate(self.frequencies_hz):
            if abs(f - frequency_hz) < 0.5:
                return i
        raise InvalidFrequencyError(frequency_hz, self.frequencies_hz)

    def validate(self, frequency_hz: float) -> float:
        """Return ``frequency_hz`` if it is a table entry, else raise."""
        return self.frequencies_hz[self.index_of(frequency_hz)]

    # -- quantisation helpers used by governors and the DTPM policy ---------
    def floor(self, frequency_hz: float) -> float:
        """Largest table frequency that does not exceed ``frequency_hz``.

        Falls back to ``f_min`` when the request is below the whole table,
        which is the behaviour of the kernel's cpufreq frequency resolution.
        """
        idx = bisect.bisect_right(
            [f - 0.5 for f in self.frequencies_hz], frequency_hz
        )
        if idx == 0:
            return self.f_min_hz
        return self.frequencies_hz[idx - 1]

    def ceil(self, frequency_hz: float) -> float:
        """Smallest table frequency that is >= ``frequency_hz`` (or f_max)."""
        for f in self.frequencies_hz:
            if f + 0.5 >= frequency_hz:
                return f
        return self.f_max_hz

    def step_down(self, frequency_hz: float, steps: int = 1) -> float:
        """Frequency ``steps`` table entries below the given one (clamped)."""
        idx = max(0, self.index_of(frequency_hz) - steps)
        return self.frequencies_hz[idx]

    def step_up(self, frequency_hz: float, steps: int = 1) -> float:
        """Frequency ``steps`` table entries above the given one (clamped)."""
        idx = min(len(self) - 1, self.index_of(frequency_hz) + steps)
        return self.frequencies_hz[idx]

    def voltage(self, frequency_hz: float) -> float:
        """Supply voltage at ``frequency_hz`` from the cluster V/f curve."""
        return self.voltage_curve.voltage(frequency_hz)


#: Voltage/frequency curves calibrated to published Exynos 5410 OPPs.
BIG_VOLTAGE_CURVE = VoltageCurve(mhz(800), 0.92, mhz(1600), 1.25)
LITTLE_VOLTAGE_CURVE = VoltageCurve(mhz(500), 0.90, mhz(1200), 1.10)
GPU_VOLTAGE_CURVE = VoltageCurve(mhz(177), 0.90, mhz(533), 1.10)

BIG_OPP_TABLE = OppTable("big", BIG_FREQUENCIES_HZ, BIG_VOLTAGE_CURVE)
LITTLE_OPP_TABLE = OppTable("little", LITTLE_FREQUENCIES_HZ, LITTLE_VOLTAGE_CURVE)
GPU_OPP_TABLE = OppTable("gpu", GPU_FREQUENCIES_HZ, GPU_VOLTAGE_CURVE)


# ---------------------------------------------------------------------------
# Ground-truth calibration of the simulated silicon
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class LeakageSpec:
    """Ground-truth leakage parameters of one resource (Eq. 4.2).

    ``I_leak(T) = c1 * T^2 * exp(c2 / T) + i_gate`` with T in Kelvin, and
    ``P_leak = Vdd * I_leak(T)``.  ``c2`` is negative (the condensed form of
    ``-q*Vth / (n*k*T)``), which makes leakage grow super-linearly with
    temperature, ~3.6x from 40 C to 80 C for the big cluster -- the range
    shown in Fig. 4.3.
    """

    c1: float
    c2: float
    i_gate: float

    def current(self, temperature_k):
        """Leakage current (A) at the given junction temperature(s) (K).

        Accepts a scalar or an array of temperatures (one per batch lane);
        the evaluation is elementwise, so batched and scalar calls agree
        bit-for-bit per lane.
        """
        import numpy as np

        t = np.asarray(temperature_k, dtype=float)
        if np.any(t <= 0):
            raise ConfigurationError("temperature must be positive Kelvin")
        out = self.c1 * t ** 2 * np.exp(self.c2 / t) + self.i_gate
        return out if t.ndim else float(out)

    def power(self, temperature_k, vdd):
        """Leakage power (W) at temperature(s) (K) and supply voltage(s) (V)."""
        return vdd * self.current(temperature_k)


#: Big-cluster leakage: ~0.075 W @ 40 C -> ~0.27 W @ 80 C at Vdd = 0.92 V.
BIG_LEAKAGE = LeakageSpec(c1=7.7e-3, c2=-2900.0, i_gate=0.010)
#: Little cluster: small in-order cores, roughly a quarter of big's leakage.
LITTLE_LEAKAGE = LeakageSpec(c1=1.9e-3, c2=-2900.0, i_gate=0.004)
#: GPU: large but lower-leakage process corner.
GPU_LEAKAGE = LeakageSpec(c1=4.4e-3, c2=-2900.0, i_gate=0.006)
#: Memory controller + LPDDR interface.
MEM_LEAKAGE = LeakageSpec(c1=2.2e-3, c2=-2900.0, i_gate=0.004)

LEAKAGE_SPECS: Dict[Resource, LeakageSpec] = {
    Resource.BIG: BIG_LEAKAGE,
    Resource.LITTLE: LITTLE_LEAKAGE,
    Resource.GPU: GPU_LEAKAGE,
    Resource.MEM: MEM_LEAKAGE,
}


@dataclass(frozen=True)
class CoreSpec:
    """Ground-truth per-core dynamic power / performance parameters."""

    #: Effective switching capacitance (F) at 100 % utilisation for a
    #: *typical* workload; the workload's activity factor scales this.
    switching_capacitance_f: float
    #: Instructions-per-cycle scaling relative to a big core.
    ipc_factor: float

    def dynamic_power(
        self, frequency_hz: float, vdd: float, utilisation: float, activity: float = 1.0
    ) -> float:
        """Dynamic power (W) of one core: ``alpha*C * V^2 * f * u``."""
        u = max(0.0, min(1.0, utilisation))
        return activity * self.switching_capacitance_f * vdd ** 2 * frequency_hz * u


#: A15 out-of-order core: 0.25 nF effective capacitance at alpha = 1.
BIG_CORE = CoreSpec(switching_capacitance_f=0.28e-9, ipc_factor=1.0)
#: A7 in-order core: much smaller, about half the per-clock performance.
LITTLE_CORE = CoreSpec(switching_capacitance_f=0.08e-9, ipc_factor=0.55)
#: GPU treated as a single device with one large capacitance.
GPU_DEVICE_CAPACITANCE_F = 2.0e-9
#: Memory dynamic energy proxy: W per unit of normalised traffic.
MEM_DYNAMIC_FULL_TRAFFIC_W = 0.45
#: Memory supply voltage (fixed; LPDDR rail is not DVFS-controlled here).
MEM_VDD = 1.2

#: Board + display + rails power floor (W), outside the SoC but inside the
#: platform power meter reading.  Sized so that a 0.2 W fan is ~3 % of the
#: platform power of a low-activity workload (the paper's Dijkstra datum).
PLATFORM_STATIC_POWER_W = 2.60

#: Fan electrical power (W) at the OFF/LOW/MID/HIGH speeds.
FAN_POWER_W: Tuple[float, float, float, float] = (0.0, 0.35, 0.60, 1.00)

#: Multiplier on the case->ambient thermal conductance at each fan speed.
FAN_CONDUCTANCE_GAIN: Tuple[float, float, float, float] = (1.0, 1.15, 2.6, 3.6)

#: Cost (seconds of lost work) of migrating all tasks across clusters.
CLUSTER_MIGRATION_PENALTY_S = 0.060

#: Cost (seconds of lost work) of a core hotplug on/off event.
HOTPLUG_PENALTY_S = 0.012


def opp_table_for(resource: Resource) -> OppTable:
    """OPP table of a DVFS-capable resource (BIG / LITTLE / GPU)."""
    tables = {
        Resource.BIG: BIG_OPP_TABLE,
        Resource.LITTLE: LITTLE_OPP_TABLE,
        Resource.GPU: GPU_OPP_TABLE,
    }
    try:
        return tables[resource]
    except KeyError:
        raise ConfigurationError("%s has no OPP table" % resource) from None


@dataclass(frozen=True)
class PlatformSpec:
    """Bundle of all ground-truth constants describing one platform.

    A default-constructed :class:`PlatformSpec` is the Odroid-XU+E.  Tests
    construct modified instances (e.g. hotter leakage corners) to verify the
    characterization pipeline recovers whatever the silicon actually does.
    """

    big_opp: OppTable = BIG_OPP_TABLE
    little_opp: OppTable = LITTLE_OPP_TABLE
    gpu_opp: OppTable = GPU_OPP_TABLE
    big_core: CoreSpec = BIG_CORE
    little_core: CoreSpec = LITTLE_CORE
    gpu_capacitance_f: float = GPU_DEVICE_CAPACITANCE_F
    mem_full_traffic_w: float = MEM_DYNAMIC_FULL_TRAFFIC_W
    mem_vdd: float = MEM_VDD
    leakage: Dict[Resource, LeakageSpec] = field(
        default_factory=lambda: dict(LEAKAGE_SPECS)
    )
    platform_static_power_w: float = PLATFORM_STATIC_POWER_W
    fan_power_w: Tuple[float, ...] = FAN_POWER_W
    fan_conductance_gain: Tuple[float, ...] = FAN_CONDUCTANCE_GAIN
    cores_per_cluster: int = CORES_PER_CLUSTER

    def opp_table(self, resource: Resource) -> OppTable:
        """OPP table for a DVFS resource of *this* platform instance."""
        tables = {
            Resource.BIG: self.big_opp,
            Resource.LITTLE: self.little_opp,
            Resource.GPU: self.gpu_opp,
        }
        try:
            return tables[resource]
        except KeyError:
            raise ConfigurationError("%s has no OPP table" % resource) from None


#: The default, paper-calibrated platform.
DEFAULT_PLATFORM_SPEC = PlatformSpec()
