"""Sensor models: on-die thermal sensors and INA231-style power sensors.

The DTPM stack only ever observes the platform through these sensors
(Section 6.1.2).  Both add realistic imperfections -- quantisation for the
TMU (which reports coarse steps) and relative Gaussian noise for the power
monitors -- so that the identified thermal model and the run-time alpha*C
estimate carry the same error structure as on real hardware.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError


class TemperatureSensor:
    """One on-die thermal sensor with Gaussian noise and quantisation."""

    def __init__(
        self,
        rng: np.random.Generator,
        noise_sigma_k: float = 0.15,
        quantum_k: float = 0.25,
    ) -> None:
        if noise_sigma_k < 0 or quantum_k < 0:
            raise ConfigurationError("sensor noise/quantum must be >= 0")
        self._rng = rng
        self.noise_sigma_k = noise_sigma_k
        self.quantum_k = quantum_k

    def read(self, true_temperature_k: float) -> float:
        """One noisy, quantised reading of the true temperature (K)."""
        value = true_temperature_k
        if self.noise_sigma_k > 0:
            value += self._rng.normal(0.0, self.noise_sigma_k)
        if self.quantum_k > 0:
            value = round(value / self.quantum_k) * self.quantum_k
        return value


class PowerSensor:
    """One current/voltage monitor reporting power with relative noise."""

    def __init__(
        self,
        rng: np.random.Generator,
        relative_noise: float = 0.01,
        floor_w: float = 0.001,
    ) -> None:
        if relative_noise < 0:
            raise ConfigurationError("relative noise must be >= 0")
        self._rng = rng
        self.relative_noise = relative_noise
        self.floor_w = floor_w

    def read(self, true_power_w: float) -> float:
        """One noisy reading of the true power (W); never negative."""
        value = true_power_w
        if self.relative_noise > 0:
            value *= 1.0 + self._rng.normal(0.0, self.relative_noise)
        return max(self.floor_w, value)


class SensorBank:
    """The platform's full sensor complement.

    Four thermal sensors (one per big core -- the hotspots) and four power
    sensors (big cluster, little cluster, GPU, memory), mirroring the
    Odroid-XU+E instrumentation.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        num_thermal: int = 4,
        num_power: int = 4,
        temp_noise_k: float = 0.15,
        temp_quantum_k: float = 0.25,
        power_noise_rel: float = 0.01,
    ) -> None:
        self._rng = rng
        self.thermal: List[TemperatureSensor] = [
            TemperatureSensor(rng, temp_noise_k, temp_quantum_k)
            for _ in range(num_thermal)
        ]
        self.power: List[PowerSensor] = [
            PowerSensor(rng, power_noise_rel) for _ in range(num_power)
        ]

    def read_temperatures(self, true_temps_k: Sequence[float]) -> np.ndarray:
        """Read all thermal sensors against the true hotspot temperatures."""
        if len(true_temps_k) != len(self.thermal):
            raise ConfigurationError(
                "expected %d temperatures, got %d"
                % (len(self.thermal), len(true_temps_k))
            )
        return np.array(
            [s.read(t) for s, t in zip(self.thermal, true_temps_k)]
        )

    def read_powers(self, true_powers_w: Sequence[float]) -> np.ndarray:
        """Read all power sensors against the true per-resource powers."""
        if len(true_powers_w) != len(self.power):
            raise ConfigurationError(
                "expected %d powers, got %d"
                % (len(self.power), len(true_powers_w))
            )
        return np.array([s.read(p) for s, p in zip(self.power, true_powers_w)])

    def read_all(
        self, true_temps_k: Sequence[float], true_powers_w: Sequence[float]
    ) -> tuple:
        """Vectorised read of every sensor in one call.

        Returns ``(temperatures_k, powers_w)``.  Consumes the shared RNG
        stream exactly like :meth:`read_temperatures` followed by
        :meth:`read_powers` -- one Gaussian per noisy sensor, in sensor
        order -- and applies the same quantisation/floor arithmetic, so
        the values are bit-identical to the scalar reads.  (``normal(0,
        sigma)`` is ``sigma * standard_normal()`` in the generator's C
        implementation, which is what lets one array draw replace the
        per-sensor scalar draws.)
        """
        temps = np.asarray(true_temps_k, dtype=float)
        powers = np.asarray(true_powers_w, dtype=float)
        if temps.shape[0] != len(self.thermal):
            raise ConfigurationError(
                "expected %d temperatures, got %d"
                % (len(self.thermal), temps.shape[0])
            )
        if powers.shape[0] != len(self.power):
            raise ConfigurationError(
                "expected %d powers, got %d" % (len(self.power), powers.shape[0])
            )

        sigma = np.array([s.noise_sigma_k for s in self.thermal])
        quantum = np.array([s.quantum_k for s in self.thermal])
        noisy = sigma > 0
        out_t = temps.copy()
        if np.any(noisy):
            out_t[noisy] += sigma[noisy] * self._rng.standard_normal(
                int(np.sum(noisy))
            )
        quantised = quantum > 0
        q_safe = np.where(quantised, quantum, 1.0)
        out_t = np.where(quantised, np.round(out_t / q_safe) * q_safe, out_t)

        rel = np.array([s.relative_noise for s in self.power])
        floor = np.array([s.floor_w for s in self.power])
        noisy_p = rel > 0
        out_p = powers.copy()
        if np.any(noisy_p):
            out_p[noisy_p] *= 1.0 + rel[noisy_p] * self._rng.standard_normal(
                int(np.sum(noisy_p))
            )
        out_p = np.maximum(floor, out_p)
        return out_t, out_p
