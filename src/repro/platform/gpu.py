"""GPU device model with five-level DVFS (Table 6.3)."""

from __future__ import annotations

from repro.platform.cluster import ClusterPower
from repro.platform.specs import LeakageSpec, OppTable
from repro.units import clamp


class GpuDevice:
    """The Exynos 5410's Mali-style GPU as a single DVFS domain.

    Games and video benchmarks drive the GPU; CPU-only benchmarks leave it
    near idle.  The GPU exposes the same two knobs as on the real part:
    its frequency (five OPPs) and an implicit idle state when utilisation
    is zero.
    """

    def __init__(
        self,
        opp_table: OppTable,
        capacitance_f: float,
        leakage_spec: LeakageSpec,
    ) -> None:
        self.opp_table = opp_table
        self.capacitance_f = capacitance_f
        self.leakage_spec = leakage_spec
        self._frequency_hz = opp_table.f_min_hz
        self._utilisation = 0.0

    @property
    def frequency_hz(self) -> float:
        """Current GPU frequency."""
        return self._frequency_hz

    @property
    def voltage(self) -> float:
        """Current GPU rail voltage."""
        return self.opp_table.voltage(self._frequency_hz)

    @property
    def utilisation(self) -> float:
        """Busy fraction of the GPU in the last interval."""
        return self._utilisation

    def set_frequency(self, frequency_hz: float) -> None:
        """Set the GPU to an exact OPP-table frequency."""
        self._frequency_hz = self.opp_table.validate(frequency_hz)

    def request_frequency(self, frequency_hz: float) -> float:
        """Quantise an arbitrary request down to the table and apply it."""
        resolved = self.opp_table.floor(frequency_hz)
        self._frequency_hz = resolved
        return resolved

    def set_utilisation(self, utilisation: float) -> None:
        """Record the GPU busy fraction demanded by the workload."""
        self._utilisation = clamp(utilisation, 0.0, 1.0)

    def power(self, temperature_k: float, activity: float = 1.0) -> ClusterPower:
        """Instantaneous GPU power at the given junction temperature."""
        vdd = self.voltage
        dynamic = (
            activity
            * self.capacitance_f
            * vdd ** 2
            * self._frequency_hz
            * self._utilisation
        )
        # The GPU is clock- but not power-gated when idle: leakage stays.
        leakage = self.leakage_spec.power(temperature_k, vdd)
        return ClusterPower(dynamic_w=dynamic, leakage_w=leakage)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "GpuDevice(f=%.0fMHz, util=%.2f)" % (
            self._frequency_hz / 1e6,
            self._utilisation,
        )
