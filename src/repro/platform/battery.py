"""Battery lifetime model.

Section 6.3.3 translates platform-power savings into battery life: "14 %
savings corresponds to 0.7 W savings, which would increase the lifetime of
a typical smartphone battery by around 25 % from 2h to 2h30m under
continuous use."  This module provides that conversion: a simple
energy-reservoir battery with an optional Peukert-style efficiency derating
at high discharge rates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: A typical 2013-era smartphone pack: 3.8 V x 2600 mAh ~= 9.9 Wh.
DEFAULT_CAPACITY_WH = 9.9


@dataclass(frozen=True)
class Battery:
    """Energy-reservoir battery with rate-dependent efficiency.

    Parameters
    ----------
    capacity_wh:
        Nameplate energy capacity.
    reference_power_w:
        Discharge power at which the full nameplate capacity is available.
    rate_derating:
        Fractional capacity lost per watt above the reference power
        (a linearised Peukert effect; 0 disables it).
    """

    capacity_wh: float = DEFAULT_CAPACITY_WH
    reference_power_w: float = 3.0
    rate_derating: float = 0.01

    def __post_init__(self) -> None:
        if self.capacity_wh <= 0:
            raise ConfigurationError("capacity must be positive")
        if self.reference_power_w <= 0:
            raise ConfigurationError("reference power must be positive")
        if self.rate_derating < 0:
            raise ConfigurationError("rate derating must be >= 0")

    def effective_capacity_wh(self, draw_w: float) -> float:
        """Usable energy at a constant discharge power."""
        if draw_w <= 0:
            raise ConfigurationError("draw must be positive")
        over = max(0.0, draw_w - self.reference_power_w)
        factor = max(0.5, 1.0 - self.rate_derating * over)
        return self.capacity_wh * factor

    def lifetime_h(self, draw_w: float) -> float:
        """Continuous-use run time (hours) at a constant platform power."""
        return self.effective_capacity_wh(draw_w) / draw_w

    def lifetime_extension_pct(
        self, baseline_draw_w: float, improved_draw_w: float
    ) -> float:
        """Battery-life gain (%) of a lower platform power.

        This is the paper's "2h -> 2h30m" arithmetic: at high drain the
        saving compounds (less draw *and* better effective capacity).
        """
        base = self.lifetime_h(baseline_draw_w)
        improved = self.lifetime_h(improved_draw_w)
        return 100.0 * (improved - base) / base
