"""Struct-of-arrays plant state: many boards advanced per NumPy call.

The serial plant is a graph of stateful objects -- one
:class:`~repro.platform.board.OdroidBoard` owning an SoC, fan, sensors and
meter.  Sweeps and schedule grids run many such boards with identical
physics, so the 100 ms closed loop used to pay the Python interpreter per
run per substep.  This module gives the plant a batch axis:

* :class:`PlantState` holds every lane's mutable plant state as arrays
  (``temps_k[B, N]``, ``fan_speed[B]``, ``energy_j[B]``, ...), gathered
  from the per-lane board objects at the start of a control interval and
  scattered back afterwards -- the boards stay the authoritative owners
  between intervals, so scenario carry-over, warm starts and direct
  object access keep working unchanged.
* :class:`BatchPlant` advances a :class:`PlantState` through the thermal
  substeps of one control interval: batched power evaluation
  (:class:`~repro.power.batch.BatchPowerModel`), fused RC integration
  (:mod:`repro.thermal.kernels`), a vectorised fan threshold controller
  and vectorised meter accounting.

Control intervals hold the ground-truth node power for their whole
duration (zero-order hold, evaluated once at the interval-entry
temperatures).  That makes the K-substep RC chain linear in the state,
so the fused kernels integrate a whole interval in one propagator pass
and only lanes whose fan speed or quantised cooling factor actually
changes mid-interval fall back to per-substep stepping.  The idle-gap
cooldown path (``power_every=1``) keeps the historical per-substep power
re-evaluation, bit-identical to looped :meth:`OdroidBoard.step` calls.

Every kernel is elementwise over the batch axis (reductions only run over
fixed-size axes such as the four cores), and per-lane RNG streams are
consumed in exactly the serial order, so lane ``b`` of a batch is
bit-identical to the same run advanced alone -- the contract
``tests/test_batch_sim.py`` enforces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.platform.board import OdroidBoard
from repro.platform.cluster import ClusterPower
from repro.platform.soc import SocPowerState
from repro.platform.specs import POWER_RESOURCES
from repro.power.batch import BatchPowerModel
from repro.thermal import floorplan, kernels


@dataclass
class PlantState:
    """Mutable plant state of ``B`` lanes in struct-of-arrays form.

    Gathered from (and scattered back to) per-lane boards; see
    :meth:`gather` / :meth:`scatter`.  The ``powers_w`` /
    ``big_core_powers_w`` / ``soc_total_w`` fields hold the *last*
    evaluated substep's ground-truth power breakdown -- what the serial
    board keeps as ``_last_power_state`` and the sensors read.
    """

    temps_k: np.ndarray  # (B, N) thermal node temperatures
    cooling_gain: np.ndarray  # (B,) fan multiplier on case conductance
    fan_speed: np.ndarray  # (B,) int in 0..3
    fan_enabled: np.ndarray  # (B,) bool
    time_s: np.ndarray  # (B,) simulated wall clock
    energy_j: np.ndarray  # (B,) platform meter accumulator
    meter_elapsed_s: np.ndarray  # (B,)
    last_reading_w: np.ndarray  # (B,) last noisy meter reading
    active_is_big: np.ndarray  # (B,) bool
    big_freq_hz: np.ndarray  # (B,)
    little_freq_hz: np.ndarray  # (B,)
    gpu_freq_hz: np.ndarray  # (B,)
    big_online: np.ndarray  # (B, 4) bool
    little_online: np.ndarray  # (B, 4) bool
    gpu_util: np.ndarray  # (B,)
    mem_traffic: np.ndarray  # (B,)
    powers_w: np.ndarray = None  # (B, 4) last substep's resource totals
    big_core_powers_w: np.ndarray = None  # (B, 4)
    soc_total_w: np.ndarray = None  # (B,)
    dynamic_w: np.ndarray = None  # (B, 4) dynamic/leakage splits of the
    leakage_w: np.ndarray = None  # last substep, resource-vector layout

    @property
    def batch(self) -> int:
        """Number of lanes."""
        return self.temps_k.shape[0]

    # ------------------------------------------------------------------
    @classmethod
    def gather(cls, boards: Sequence[OdroidBoard]) -> "PlantState":
        """Snapshot the per-lane board objects into one SoA state."""
        cores = boards[0].spec.cores_per_cluster
        return cls(
            temps_k=np.stack([b.network.temperatures_k for b in boards]),
            cooling_gain=np.array([b.network.cooling_gain for b in boards]),
            fan_speed=np.array([int(b.fan.speed) for b in boards]),
            fan_enabled=np.array([b.fan.enabled for b in boards]),
            time_s=np.array([b.time_s for b in boards]),
            energy_j=np.array([b.meter.energy_j for b in boards]),
            meter_elapsed_s=np.array([b.meter.elapsed_s for b in boards]),
            last_reading_w=np.array(
                [b.meter.last_reading_w for b in boards]
            ),
            active_is_big=np.array([b.soc.big.active for b in boards]),
            big_freq_hz=np.array([b.soc.big.frequency_hz for b in boards]),
            little_freq_hz=np.array(
                [b.soc.little.frequency_hz for b in boards]
            ),
            gpu_freq_hz=np.array([b.soc.gpu.frequency_hz for b in boards]),
            big_online=np.array(
                [
                    [b.soc.big.is_online(c) for c in range(cores)]
                    for b in boards
                ]
            ),
            little_online=np.array(
                [
                    [b.soc.little.is_online(c) for c in range(cores)]
                    for b in boards
                ]
            ),
            gpu_util=np.array([b.soc.gpu.utilisation for b in boards]),
            mem_traffic=np.array([b.soc.mem.traffic for b in boards]),
        )

    def scatter(self, boards: Sequence[OdroidBoard]) -> None:
        """Write every lane's advanced plant state back to its board."""
        for i, board in enumerate(boards):  # repro-lint: disable=RPR032 -- O(B) attribute writeback into scalar boards, not a numeric kernel
            board.sync_lane(
                self.temps_k[i],
                float(self.cooling_gain[i]),
                int(self.fan_speed[i]),
                float(self.time_s[i]),
                float(self.energy_j[i]),
                float(self.meter_elapsed_s[i]),
                float(self.last_reading_w[i]),
                self._power_state(i),
            )

    def _power_state(self, lane: int) -> Optional[SocPowerState]:
        """Rebuild one lane's scalar power state from the SoA outputs.

        Keeps ``OdroidBoard.read_sensors`` / ``true_platform_power_w``
        honest after a batched advance -- the decompositions carry the
        exact dynamic/leakage floats the batched kernel computed.
        """
        if self.dynamic_w is None:
            return None
        per_resource = {
            resource: ClusterPower(
                dynamic_w=float(self.dynamic_w[lane, i]),
                leakage_w=float(self.leakage_w[lane, i]),
            )
            for i, resource in enumerate(POWER_RESOURCES)
        }
        return SocPowerState(
            per_resource=per_resource,
            big_core_powers_w=self.big_core_powers_w[lane].copy(),
        )


class BatchPlant:
    """Advances many identical-physics boards one control interval at a time.

    All lanes must share the platform spec, the thermal network physics
    and the fan controller parameters (per-lane *state* -- temperatures,
    fan speed, hotplug, frequencies, sensor/meter noise levels and RNG
    streams -- is free to differ).  The first board's discretisation
    cache serves the whole batch, which is safe because the quantised
    effective cooling gains form a bijection with the cache keys.
    """

    def __init__(self, boards: Sequence[OdroidBoard]) -> None:
        if not boards:
            raise ConfigurationError("a batch plant needs at least one board")
        self.boards: List[OdroidBoard] = list(boards)
        first = self.boards[0]
        for board in self.boards[1:]:  # repro-lint: disable=RPR032 -- constructor-time compatibility validation, runs once per batch
            if board.spec != first.spec:
                raise ConfigurationError(
                    "batched boards must share one platform spec"
                )
            if not board.network.physics_equal(first.network):
                raise ConfigurationError(
                    "batched boards must share thermal network physics"
                )
            if board.fan.thresholds != first.fan.thresholds:
                raise ConfigurationError(
                    "batched boards must share fan thresholds"
                )
        self.network = first.network
        self.spec = first.spec
        self.power = BatchPowerModel(self.spec)

        self._hot_idx = floorplan.hot_indices(self.network)
        self._little_idx = self.network.index(floorplan.LITTLE_NODE)
        self._gpu_idx = self.network.index(floorplan.GPU_NODE)
        self._mem_idx = self.network.index(floorplan.MEM_NODE)

        self._fan_up_k = first.fan.threshold_points_k()
        self._fan_hyst_k = first.fan.hysteresis_k
        self._fan_power_w = first.fan.power_table_w()
        self._fan_gain = first.fan.conductance_gain_table()
        self._static_w = self.spec.platform_static_power_w

    # ------------------------------------------------------------------
    def gather(self, lanes: Sequence[int]) -> PlantState:
        """SoA snapshot of the given board lanes (by index)."""
        return PlantState.gather([self.boards[i] for i in lanes])

    def scatter(self, state: PlantState, lanes: Sequence[int]) -> None:
        """Write an advanced state back to the given board lanes."""
        state.scatter([self.boards[i] for i in lanes])

    # ------------------------------------------------------------------
    def advance_interval(
        self,
        state: PlantState,
        lanes: Sequence[int],
        big_utils: np.ndarray,
        little_utils: np.ndarray,
        cpu_activity: np.ndarray,
        gpu_activity: np.ndarray,
        dt_s: float,
        substeps: int,
        power_every: Optional[int] = None,
    ) -> None:
        """Advance every lane of ``state`` by one control interval.

        ``power_every`` controls how often the ground-truth power is
        re-evaluated along the ``substeps`` thermal substeps:

        ``None`` (default)
            Zero-order hold: power is evaluated once at the
            interval-entry temperatures and held, which lets the whole
            interval integrate through the fused propagator kernels of
            :mod:`repro.thermal.kernels`.  This is the engine's control
            interval semantics.
        ``1``
            Re-evaluate at every substep -- ``substeps`` consecutive
            :meth:`OdroidBoard.step` calls, bit-for-bit (the scenario
            idle-gap cooldown contract).

        Either way the fan controller reacts to every substep's new
        hotspots and the platform meter samples every substep with the
        *new* fan's draw.  Meter noise is pre-drawn per lane (one array
        draw consumes the stream exactly like the serial per-substep
        scalar draws).
        """
        if power_every is None:
            power_every = substeps
        if power_every not in (1, substeps):
            raise ConfigurationError(
                "power_every must be 1 or the substep count"
            )
        batch = state.batch
        noise = np.zeros((batch, substeps))
        for i, lane in enumerate(lanes):  # repro-lint: disable=RPR032 -- per-lane RNG streams must be consumed in serial lane order for bit-parity with scalar runs
            meter = self.boards[lane].meter
            if meter.relative_noise > 0:
                noise[i] = self.boards[lane].rng.normal(
                    0.0, meter.relative_noise, size=substeps
                )

        inputs = self.power.interval_inputs(
            state.active_is_big,
            state.big_freq_hz,
            state.little_freq_hz,
            state.gpu_freq_hz,
            state.big_online,
            state.little_online,
            big_utils,
            little_utils,
            state.gpu_util,
            state.mem_traffic,
            cpu_activity,
            gpu_activity,
        )

        if power_every == substeps:
            self._advance_fused(state, inputs, noise, dt_s, substeps)
        else:
            self._advance_substep_power(state, inputs, noise, dt_s, substeps)

    # ------------------------------------------------------------------
    def _evaluate_power(self, inputs, temps: np.ndarray):
        """Ground-truth power breakdown + node heat vector at ``temps``."""
        batch = temps.shape[0]
        t_big = np.mean(temps[:, self._hot_idx], axis=1)
        ps = self.power.evaluate(
            inputs,
            t_big,
            temps[:, self._little_idx],
            temps[:, self._gpu_idx],
            temps[:, self._mem_idx],
        )
        node_p = np.zeros((batch, self.network.num_nodes))
        node_p[:, self._hot_idx] = ps.big_core_powers_w
        node_p[:, self._little_idx] = ps.powers_w[:, 1]
        node_p[:, self._gpu_idx] = ps.powers_w[:, 2]
        node_p[:, self._mem_idx] = ps.powers_w[:, 3]
        return ps, node_p

    def _store_power(self, state: PlantState, ps) -> None:
        """Publish the interval's power breakdown to the SoA state."""
        state.powers_w = ps.powers_w
        state.big_core_powers_w = ps.big_core_powers_w
        state.soc_total_w = ps.soc_total_w
        state.dynamic_w = ps.dynamic_w
        state.leakage_w = ps.leakage_w

    def _advance_fused(
        self,
        state: PlantState,
        inputs,
        noise: np.ndarray,
        dt_s: float,
        substeps: int,
    ) -> None:
        """One control interval under zero-order-hold power.

        Power is evaluated once at the entry temperatures; the K-substep
        RC chain then runs through the fused propagator kernel (with
        per-substep fallback for lanes whose fan or quantised cooling
        factor transitions mid-interval -- see
        :func:`repro.thermal.kernels.advance_held_interval`).  Meter
        accounting prices every substep at that substep's post-update
        fan speed, vectorised over the whole ``(B, K)`` reading matrix.
        """
        batch = state.batch
        ps, node_p = self._evaluate_power(inputs, state.temps_k)
        u = np.concatenate(
            [node_p, np.full((batch, 1), self.network.ambient_k)], axis=1
        )
        temps, speeds = kernels.advance_held_interval(
            self.network,
            state.temps_k,
            state.cooling_gain,
            state.fan_speed,
            state.fan_enabled,
            u,
            dt_s,
            substeps,
            self._fan_up_k,
            self._fan_hyst_k,
            self._fan_gain,
            self._hot_idx,
        )
        state.temps_k = temps
        state.fan_speed = speeds[:, -1]
        state.cooling_gain = self._fan_gain[state.fan_speed]

        true_platform = (
            ps.soc_total_w[:, np.newaxis]
            + self._fan_power_w[speeds]
            + self._static_w
        )
        readings = np.maximum(0.0, true_platform * (1.0 + noise))
        # einsum's reduction over the substep axis is sequential per
        # lane, so the accumulated energy is lane-independent
        state.energy_j = state.energy_j + np.einsum("bk->b", readings) * dt_s
        state.meter_elapsed_s = state.meter_elapsed_s + dt_s * substeps
        state.last_reading_w = readings[:, -1]
        state.time_s = state.time_s + dt_s * substeps
        self._store_power(state, ps)

    def _advance_substep_power(
        self,
        state: PlantState,
        inputs,
        noise: np.ndarray,
        dt_s: float,
        substeps: int,
    ) -> None:
        """Per-substep power re-evaluation (``power_every=1``).

        The historical interval semantics, kept bit-identical to looped
        :meth:`OdroidBoard.step` calls -- the scenario idle-gap cooldown
        and its serial per-board transcription test rest on this path.
        """
        temps = state.temps_k
        for k in range(substeps):
            ps, node_p = self._evaluate_power(inputs, temps)
            temps = self.network.step_batch(
                temps, node_p, dt_s, state.cooling_gain
            )

            max_hot = np.max(temps[:, self._hot_idx], axis=1)
            state.fan_speed = kernels.fan_step(
                state.fan_speed,
                state.fan_enabled,
                max_hot,
                self._fan_up_k,
                self._fan_hyst_k,
            )
            state.cooling_gain = self._fan_gain[state.fan_speed]

            true_platform = (
                ps.soc_total_w
                + self._fan_power_w[state.fan_speed]
                + self._static_w
            )
            reading = np.maximum(0.0, true_platform * (1.0 + noise[:, k]))
            state.energy_j = state.energy_j + reading * dt_s
            state.meter_elapsed_s = state.meter_elapsed_s + dt_s
            state.last_reading_w = reading
            state.time_s = state.time_s + dt_s

        state.temps_k = temps
        self._store_power(state, ps)

    def hotspots_k(self, state: PlantState) -> np.ndarray:
        """True hotspot (big core) temperatures of every lane, ``(B, 4)``."""
        return state.temps_k[:, self._hot_idx]
