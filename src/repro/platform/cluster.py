"""CPU cluster model with symmetric DVFS and per-core hotplug.

The Exynos 5410 constraints modelled here (Section 6.1.1 of the paper):

* only one of the two clusters (big XOR little) can be active at a time;
* all cores of a cluster share one frequency/voltage (symmetric DVFS);
* individual cores can be hotplugged (offline cores are power-gated).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import ClusterStateError, ConfigurationError
from repro.platform.specs import CoreSpec, LeakageSpec, OppTable, Resource

#: Fraction of cluster leakage attributable to shared (uncore) logic that
#: stays powered while at least one core is online.
_UNCORE_LEAKAGE_SHARE = 0.20
#: Residual leakage of a fully power-gated (inactive) cluster.
_GATED_LEAKAGE_SHARE = 0.02


@dataclass
class ClusterPower:
    """Per-cluster instantaneous power decomposition (W)."""

    dynamic_w: float
    leakage_w: float

    @property
    def total_w(self) -> float:
        return self.dynamic_w + self.leakage_w


class CpuCluster:
    """A symmetric-DVFS CPU cluster (big A15 or little A7).

    The cluster tracks its own frequency and hotplug state and evaluates its
    ground-truth power given core utilisations and a junction temperature.
    """

    def __init__(
        self,
        resource: Resource,
        opp_table: OppTable,
        core_spec: CoreSpec,
        leakage_spec: LeakageSpec,
        num_cores: int = 4,
    ) -> None:
        if num_cores < 1:
            raise ConfigurationError("a cluster needs at least one core")
        self.resource = resource
        self.opp_table = opp_table
        self.core_spec = core_spec
        self.leakage_spec = leakage_spec
        self.num_cores = num_cores
        self._active = resource is Resource.BIG
        self._online: List[bool] = [True] * num_cores
        self._frequency_hz = opp_table.f_min_hz

    # ------------------------------------------------------------------
    # state accessors
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """Whether the cluster is the currently powered CPU cluster."""
        return self._active

    @property
    def frequency_hz(self) -> float:
        """Current cluster frequency (all cores share it)."""
        return self._frequency_hz

    @property
    def voltage(self) -> float:
        """Current supply voltage from the V/f curve."""
        return self.opp_table.voltage(self._frequency_hz)

    @property
    def online_cores(self) -> List[int]:
        """Indices of cores currently online."""
        return [i for i, on in enumerate(self._online) if on]

    @property
    def num_online(self) -> int:
        """Number of online cores."""
        return sum(self._online)

    def is_online(self, core: int) -> bool:
        """Whether core ``core`` is online."""
        return self._online[core]

    # ------------------------------------------------------------------
    # state mutation
    # ------------------------------------------------------------------
    def set_frequency(self, frequency_hz: float) -> None:
        """Set the cluster frequency to an exact OPP-table entry."""
        self._frequency_hz = self.opp_table.validate(frequency_hz)

    def request_frequency(self, frequency_hz: float) -> float:
        """Quantise an arbitrary request down to the table and apply it."""
        resolved = self.opp_table.floor(frequency_hz)
        self._frequency_hz = resolved
        return resolved

    def set_core_online(self, core: int, online: bool) -> None:
        """Hotplug one core on or off.

        The last online core of an *active* cluster cannot be unplugged --
        the kernel keeps CPU0 (or its cluster equivalent) alive.
        """
        if not 0 <= core < self.num_cores:
            raise ClusterStateError(
                "core %d out of range for %s" % (core, self.resource)
            )
        if not online and self._active and self.num_online == 1 and self._online[core]:
            raise ClusterStateError(
                "cannot offline the last online core of the active cluster"
            )
        self._online[core] = online

    def set_num_online(self, count: int) -> None:
        """Bring exactly ``count`` cores online (lowest indices first)."""
        if not 1 <= count <= self.num_cores:
            raise ClusterStateError(
                "online core count %d outside 1..%d" % (count, self.num_cores)
            )
        self._online = [i < count for i in range(self.num_cores)]

    def activate(self) -> None:
        """Power the cluster (part of a cluster switch)."""
        self._active = True
        if self.num_online == 0:
            self._online[0] = True

    def deactivate(self) -> None:
        """Power-gate the whole cluster."""
        self._active = False

    # ------------------------------------------------------------------
    # ground-truth power
    # ------------------------------------------------------------------
    def power(
        self,
        core_utilisations: Sequence[float],
        temperature_k: float,
        activity: float = 1.0,
    ) -> ClusterPower:
        """Instantaneous cluster power.

        Parameters
        ----------
        core_utilisations:
            Busy fraction in [0, 1] for each of the cluster's cores;
            utilisation of offline cores is ignored.
        temperature_k:
            Junction temperature of the cluster (drives leakage).
        activity:
            Workload activity factor scaling the effective alpha*C.
        """
        if len(core_utilisations) != self.num_cores:
            raise ConfigurationError(
                "expected %d utilisations, got %d"
                % (self.num_cores, len(core_utilisations))
            )
        if not self._active:
            leak = _GATED_LEAKAGE_SHARE * self.leakage_spec.power(
                temperature_k, self.opp_table.voltage(self.opp_table.f_min_hz)
            )
            return ClusterPower(dynamic_w=0.0, leakage_w=leak)

        vdd = self.voltage
        dynamic = 0.0
        for core, util in enumerate(core_utilisations):
            if self._online[core]:
                dynamic += self.core_spec.dynamic_power(
                    self._frequency_hz, vdd, util, activity
                )
        online_frac = self.num_online / float(self.num_cores)
        leak_share = _UNCORE_LEAKAGE_SHARE + (1.0 - _UNCORE_LEAKAGE_SHARE) * online_frac
        leakage = leak_share * self.leakage_spec.power(temperature_k, vdd)
        return ClusterPower(dynamic_w=dynamic, leakage_w=leakage)

    def max_dynamic_power(self, activity: float = 1.0) -> float:
        """Dynamic power with all cores online and busy at f_max (W)."""
        vdd = self.opp_table.voltage(self.opp_table.f_max_hz)
        return self.num_cores * self.core_spec.dynamic_power(
            self.opp_table.f_max_hz, vdd, 1.0, activity
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "CpuCluster(%s, f=%.0fMHz, online=%d/%d, active=%s)" % (
            self.resource,
            self._frequency_hz / 1e6,
            self.num_online,
            self.num_cores,
            self._active,
        )
