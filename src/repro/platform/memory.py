"""Memory subsystem (LPDDR interface + controller) power model.

Memory is the fourth entry of the power vector ``P`` (Eq. 5.3).  It has no
DVFS knob on this platform; its dynamic power tracks the traffic generated
by the CPU clusters and the GPU.
"""

from __future__ import annotations

from repro.platform.cluster import ClusterPower
from repro.platform.specs import LeakageSpec
from repro.units import clamp


class MemoryDevice:
    """Fixed-voltage memory device whose dynamic power follows traffic."""

    def __init__(
        self,
        full_traffic_power_w: float,
        vdd: float,
        leakage_spec: LeakageSpec,
    ) -> None:
        self.full_traffic_power_w = full_traffic_power_w
        self.vdd = vdd
        self.leakage_spec = leakage_spec
        self._traffic = 0.0

    @property
    def traffic(self) -> float:
        """Normalised memory traffic in [0, 1] for the last interval."""
        return self._traffic

    def set_traffic(self, traffic: float) -> None:
        """Record the normalised memory traffic demanded by the workload."""
        self._traffic = clamp(traffic, 0.0, 1.0)

    def power(self, temperature_k: float) -> ClusterPower:
        """Instantaneous memory power at the given temperature."""
        dynamic = self.full_traffic_power_w * self._traffic
        leakage = self.leakage_spec.power(temperature_k, self.vdd)
        return ClusterPower(dynamic_w=dynamic, leakage_w=leakage)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "MemoryDevice(traffic=%.2f)" % self._traffic
