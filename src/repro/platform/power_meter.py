"""External platform power meter.

The paper logs *total platform power* with an external meter in addition to
the per-resource internal sensors.  Platform power = SoC power + fan motor
power + the static board/display floor.  All platform-level savings numbers
(Figs. 6.9 / 6.10) are computed from this meter.
"""

from __future__ import annotations

import numpy as np


class PlatformPowerMeter:
    """Accumulating power meter with optional measurement noise."""

    def __init__(
        self,
        rng: np.random.Generator,
        relative_noise: float = 0.005,
    ) -> None:
        self._rng = rng
        self.relative_noise = relative_noise
        self._energy_j = 0.0
        self._time_s = 0.0
        self._last_reading_w = 0.0

    def sample(self, true_platform_power_w: float, dt_s: float) -> float:
        """Record one interval of platform power; returns the noisy reading."""
        reading = true_platform_power_w
        if self.relative_noise > 0:
            reading *= 1.0 + self._rng.normal(0.0, self.relative_noise)
        reading = max(0.0, reading)
        self._energy_j += reading * dt_s
        self._time_s += dt_s
        self._last_reading_w = reading
        return reading

    @property
    def last_reading_w(self) -> float:
        """Most recent instantaneous reading (W)."""
        return self._last_reading_w

    @property
    def elapsed_s(self) -> float:
        """Seconds of recording accumulated so far."""
        return self._time_s

    def restore(
        self, energy_j: float, elapsed_s: float, last_reading_w: float
    ) -> None:
        """Adopt accumulator state computed elsewhere.

        The batched plant (:mod:`repro.platform.state`) integrates many
        meters at once and hands each lane's accumulators back through
        this hook.
        """
        self._energy_j = float(energy_j)
        self._time_s = float(elapsed_s)
        self._last_reading_w = float(last_reading_w)

    @property
    def energy_j(self) -> float:
        """Total energy recorded since construction (J)."""
        return self._energy_j

    @property
    def average_power_w(self) -> float:
        """Time-averaged platform power over the whole recording (W)."""
        if self._time_s <= 0:
            return 0.0
        return self._energy_j / self._time_s

    def reset(self) -> None:
        """Clear the accumulated energy and time."""
        self._energy_j = 0.0
        self._time_s = 0.0
        self._last_reading_w = 0.0
