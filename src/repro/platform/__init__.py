"""Simulated Odroid-XU+E / Exynos 5410 platform substrate."""

from repro.platform.board import OdroidBoard, SensorSnapshot
from repro.platform.cluster import ClusterPower, CpuCluster
from repro.platform.fan import Fan, FanSpeed, FanThresholds
from repro.platform.gpu import GpuDevice
from repro.platform.memory import MemoryDevice
from repro.platform.power_meter import PlatformPowerMeter
from repro.platform.sensors import PowerSensor, SensorBank, TemperatureSensor
from repro.platform.soc import ExynosSoc, SocPowerState
from repro.platform.specs import (
    BIG_FREQUENCIES_HZ,
    BIG_OPP_TABLE,
    CORES_PER_CLUSTER,
    GPU_FREQUENCIES_HZ,
    GPU_OPP_TABLE,
    LITTLE_FREQUENCIES_HZ,
    LITTLE_OPP_TABLE,
    POWER_RESOURCES,
    CoreSpec,
    LeakageSpec,
    OppTable,
    PlatformSpec,
    Resource,
    VoltageCurve,
    opp_table_for,
)

__all__ = [
    "OdroidBoard",
    "SensorSnapshot",
    "ClusterPower",
    "CpuCluster",
    "Fan",
    "FanSpeed",
    "FanThresholds",
    "GpuDevice",
    "MemoryDevice",
    "PlatformPowerMeter",
    "PowerSensor",
    "SensorBank",
    "TemperatureSensor",
    "ExynosSoc",
    "SocPowerState",
    "BIG_FREQUENCIES_HZ",
    "BIG_OPP_TABLE",
    "CORES_PER_CLUSTER",
    "GPU_FREQUENCIES_HZ",
    "GPU_OPP_TABLE",
    "LITTLE_FREQUENCIES_HZ",
    "LITTLE_OPP_TABLE",
    "POWER_RESOURCES",
    "CoreSpec",
    "LeakageSpec",
    "OppTable",
    "PlatformSpec",
    "Resource",
    "VoltageCurve",
    "opp_table_for",
]
