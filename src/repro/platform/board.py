"""The Odroid-XU+E development board: SoC + fan + sensors + power meter.

This is the top-level "device under test".  The simulation engine drives
it; the DTPM controller observes it exclusively through
:meth:`OdroidBoard.read_sensors`.
"""

from __future__ import annotations

from typing import Optional

from dataclasses import dataclass

import numpy as np

from repro.config import SimulationConfig
from repro.platform.fan import Fan, FanThresholds
from repro.platform.power_meter import PlatformPowerMeter
from repro.platform.sensors import SensorBank
from repro.platform.soc import ExynosSoc, SocPowerState
from repro.platform.specs import PlatformSpec, Resource
from repro.thermal import floorplan
from repro.thermal.rc_network import ThermalRCNetwork
from repro.units import celsius_to_kelvin


@dataclass
class SensorSnapshot:
    """What the controller sees at one control interval.

    ``temperatures_k`` has one entry per big core (the hotspots);
    ``powers_w`` follows the ``[big, little, gpu, mem]`` layout.
    """

    time_s: float
    temperatures_k: np.ndarray
    powers_w: np.ndarray
    platform_power_w: float

    @property
    def max_temperature_k(self) -> float:
        """Hottest sensed core temperature."""
        return float(np.max(self.temperatures_k))

    @property
    def hottest_core(self) -> int:
        """Index of the hottest sensed core."""
        return int(np.argmax(self.temperatures_k))


class OdroidBoard:
    """Complete simulated platform with ground truth and sensor views."""

    def __init__(
        self,
        spec: Optional[PlatformSpec] = None,
        config: Optional[SimulationConfig] = None,
        rng: Optional[np.random.Generator] = None,
        fan_enabled: bool = True,
        thermal_constants: Optional[dict] = None,
    ) -> None:
        self.spec = spec or PlatformSpec()
        self.config = config or SimulationConfig()
        self.rng = rng or np.random.default_rng(self.config.seed)
        self.soc = ExynosSoc(self.spec)
        self.fan = Fan(
            self.spec.fan_power_w,
            self.spec.fan_conductance_gain,
            FanThresholds(),
            enabled=fan_enabled,
        )
        self.network: ThermalRCNetwork = floorplan.build_exynos_network(
            self.config.ambient_k, thermal_constants
        )
        self.sensors = SensorBank(
            self.rng,
            temp_noise_k=self.config.temp_sensor_noise_c,
            temp_quantum_k=self.config.temp_sensor_quantum_c,
            power_noise_rel=self.config.power_sensor_noise_rel,
        )
        self.meter = PlatformPowerMeter(self.rng)
        self._time_s = 0.0
        self._last_power_state: Optional[SocPowerState] = None

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def time_s(self) -> float:
        """Simulated wall-clock time (s)."""
        return self._time_s

    def warm_start(self, hotspot_c: float, case_c: Optional[float] = None) -> None:
        """Pre-heat the device as after boot + prior use.

        The paper's traces start well above ambient (the board has been
        running the OS and previous benchmarks); experiments reproduce that
        by warm-starting the plant.
        """
        if case_c is None:
            case_c = hotspot_c - 6.0
        temps = np.full(
            self.network.num_nodes, celsius_to_kelvin(hotspot_c) - 2.0
        )
        for name in floorplan.BIG_CORE_NODES:
            temps[self.network.index(name)] = celsius_to_kelvin(hotspot_c)
        temps[self.network.index(floorplan.CASE_NODE)] = celsius_to_kelvin(case_c)
        temps[self.network.index(floorplan.BOARD_NODE)] = celsius_to_kelvin(
            case_c - 4.0
        )
        self.network.set_temperatures_k(temps)

    def true_hotspots_k(self) -> np.ndarray:
        """Ground-truth hotspot (big core) temperatures (K)."""
        return floorplan.hotspot_temperatures_k(self.network)

    def sync_lane(
        self,
        temps_k: np.ndarray,
        cooling_gain: float,
        fan_speed: int,
        time_s: float,
        energy_j: float,
        meter_elapsed_s: float,
        last_reading_w: float,
        power_state: Optional[SocPowerState] = None,
    ) -> None:
        """Adopt one lane of a batched plant advance.

        The batched plant (:mod:`repro.platform.state`) integrates many
        boards' physics in struct-of-arrays form; after each control
        interval it writes every lane's state back here so the board
        object stays the authoritative owner between intervals (scenario
        carry-over, warm starts, :meth:`read_sensors` and tests all read
        it).
        """
        self.network.set_temperatures_k(temps_k)
        self.network.set_cooling_gain(cooling_gain)
        self.fan.restore_speed(fan_speed)
        self.meter.restore(energy_j, meter_elapsed_s, last_reading_w)
        self._time_s = float(time_s)
        if power_state is not None:
            self._last_power_state = power_state

    def true_platform_power_w(self) -> float:
        """Ground-truth platform power of the last evaluated interval."""
        soc_w = self._last_power_state.total_w if self._last_power_state else 0.0
        return soc_w + self.fan.power_w + self.spec.platform_static_power_w

    # ------------------------------------------------------------------
    # one simulation substep
    # ------------------------------------------------------------------
    def step(
        self,
        big_core_utils,
        little_core_utils,
        gpu_utilisation: float,
        mem_traffic: float,
        dt_s: float,
        cpu_activity: float = 1.0,
        gpu_activity: float = 1.0,
    ) -> SocPowerState:
        """Advance the physical platform by ``dt_s``.

        Evaluates ground-truth power at the current temperatures, injects it
        into the thermal network, integrates the network, updates the fan
        controller, and accounts platform energy.
        """
        self.soc.gpu.set_utilisation(gpu_utilisation)
        self.soc.mem.set_traffic(mem_traffic)
        temps = floorplan.resource_temperatures_k(self.network)
        state = self.soc.power_state(
            temps,
            big_core_utils,
            little_core_utils,
            cpu_activity,
            gpu_activity,
        )
        self._last_power_state = state

        node_p = floorplan.node_powers(
            self.network,
            state.big_core_powers_w,
            state.per_resource[Resource.LITTLE].total_w,
            state.per_resource[Resource.GPU].total_w,
            state.per_resource[Resource.MEM].total_w,
        )
        self.network.step(node_p, dt_s)

        max_hot = float(np.max(self.true_hotspots_k()))
        self.fan.update(max_hot)
        self.network.set_cooling_gain(self.fan.conductance_gain)

        self.meter.sample(self.true_platform_power_w(), dt_s)
        self._time_s += dt_s
        return state

    def read_sensors(self) -> SensorSnapshot:
        """Noisy sensor view of the platform (what the controller sees)."""
        state = self._last_power_state
        powers = (
            state.resource_vector_w()
            if state is not None
            else np.zeros(len(self.sensors.power))
        )
        return SensorSnapshot(
            time_s=self._time_s,
            temperatures_k=self.sensors.read_temperatures(self.true_hotspots_k()),
            powers_w=self.sensors.read_powers(powers),
            platform_power_w=self.meter.last_reading_w,
        )
