"""Repo-specific static analysis: the ``repro-dtpm lint`` invariant pass.

Four rule families guard the invariants the test suite can only sample
after the fact (see :mod:`repro.devtools.framework` for the machinery):

* RPR01x :mod:`~repro.devtools.determinism` -- no unsanctioned entropy
  in the numeric layers,
* RPR02x :mod:`~repro.devtools.cachekey` -- spec fields and pinned
  numeric semantics stay coherent with the content keys,
* RPR03x :mod:`~repro.devtools.parity` -- scalar/batch pairs registered
  and pinned, no batch-axis Python loops,
* RPR04x :mod:`~repro.devtools.concurrency` -- ``guarded-by`` lock
  discipline and joinable daemon threads.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Type

from repro.devtools import cachekey, concurrency, determinism, parity
from repro.devtools.framework import (
    Finding,
    LintConfig,
    Rule,
    run_lint,
)

__all__ = [
    "Finding",
    "LintConfig",
    "Rule",
    "all_rule_classes",
    "default_rules",
    "lint_paths",
    "run_lint",
]


def all_rule_classes() -> Tuple[Type[Rule], ...]:
    """Every registered rule class, in rule-id order."""
    classes = (
        determinism.RULES + cachekey.RULES + parity.RULES + concurrency.RULES
    )
    return tuple(sorted(classes, key=lambda cls: cls.id))


def default_rules(config: Optional[LintConfig] = None) -> List[Rule]:
    """Instantiate the full rule set (config-aware rules get the config)."""
    rules: List[Rule] = []
    for cls in all_rule_classes():
        try:
            rules.append(cls(config))  # type: ignore[call-arg]
        except TypeError:
            rules.append(cls())
    return rules


def lint_paths(
    paths, config: Optional[LintConfig] = None
) -> List[Finding]:
    """Lint files/directories with the default rule set."""
    config = config or LintConfig()
    return run_lint(paths, default_rules(config), config)
