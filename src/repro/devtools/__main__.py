"""``python -m repro.devtools`` -- run the invariant linter."""

import sys

from repro.devtools.cli import main

if __name__ == "__main__":
    sys.exit(main())
