"""RPR04x -- concurrency-discipline rules.

The service layer (HTTP threads, the job-queue worker pool, the async
consumer pump) shares mutable state across threads.  The convention is
declarative: the line that *creates* a shared attribute carries a
``# guarded-by: <lockname>`` comment, and from then on every touch of
``self.<attr>`` outside ``__init__`` must sit lexically inside
``with self.<lockname>:``.

* RPR041 -- a guarded attribute accessed outside its lock's ``with``
  block (the PR 6/7 class of bug: a stats read racing a writer).
* RPR042 -- a ``threading.Thread(daemon=True)`` created by a class with
  no ``join()`` call anywhere in it: daemon threads die mid-write at
  interpreter exit, so every pool needs a drain/close path.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.devtools.framework import FileContext, Rule, dotted_name, is_self_attr

GUARDED_BY_RE = re.compile(r"guarded-by:\s*([A-Za-z_]\w*)")

#: Methods that may touch guarded attributes lock-free (construction).
_EXEMPT_METHODS = frozenset({"__init__"})


def _direct_methods(node: ast.ClassDef) -> List[ast.AST]:
    return [
        item
        for item in node.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


def _iter_non_class_children(node: ast.AST) -> Iterable[ast.AST]:
    for child in ast.iter_child_nodes(node):
        if not isinstance(child, ast.ClassDef):
            yield child


class GuardedByRule(Rule):
    """RPR041: ``guarded-by`` attributes only move under their lock."""

    id = "RPR041"
    name = "guarded-by-discipline"
    description = (
        "an attribute annotated '# guarded-by: <lock>' was accessed "
        "outside 'with self.<lock>:', racing the threads that honour it"
    )
    node_types = (ast.ClassDef,)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        assert isinstance(node, ast.ClassDef)
        guarded = self._collect_guarded(node, ctx)
        if not guarded:
            return
        for method in _direct_methods(node):
            if method.name in _EXEMPT_METHODS:  # type: ignore[union-attr]
                continue
            for stmt in method.body:  # type: ignore[union-attr]
                self._walk(stmt, frozenset(), guarded, ctx)

    # ------------------------------------------------------------------
    def _collect_guarded(
        self, node: ast.ClassDef, ctx: FileContext
    ) -> Dict[str, str]:
        """``self.<attr>`` assignments annotated ``# guarded-by: <lock>``."""
        guarded: Dict[str, str] = {}
        stack: List[ast.AST] = [node]
        while stack:
            current = stack.pop()
            stack.extend(_iter_non_class_children(current))
            if not isinstance(current, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                continue
            comment = ctx.comments.get(current.lineno, "")
            match = GUARDED_BY_RE.search(comment)
            if match is None:
                continue
            lock = match.group(1)
            targets = (
                current.targets
                if isinstance(current, ast.Assign)
                else [current.target]
            )
            for target in targets:
                if is_self_attr(target):
                    guarded[target.attr] = lock  # type: ignore[attr-defined]
        return guarded

    def _acquired(self, node: "ast.With | ast.AsyncWith") -> FrozenSet[str]:
        names = set()
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call):
                expr = expr.func
            if is_self_attr(expr):
                names.add(expr.attr)  # type: ignore[attr-defined]
        return frozenset(names)

    def _walk(
        self,
        node: ast.AST,
        held: FrozenSet[str],
        guarded: Dict[str, str],
        ctx: FileContext,
    ) -> None:
        if is_self_attr(node):
            attr = node.attr  # type: ignore[attr-defined]
            lock = guarded.get(attr)
            if lock is not None and lock not in held:
                ctx.report(
                    node, self,
                    "'self.%s' is guarded-by %r but accessed outside "
                    "'with self.%s:'" % (attr, lock, lock),
                )
            return  # self.<attr>.<sub> chains anchor at the inner access
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                self._walk(item.context_expr, held, guarded, ctx)
                if item.optional_vars is not None:
                    self._walk(item.optional_vars, held, guarded, ctx)
            inner = held | self._acquired(node)
            for stmt in node.body:
                self._walk(stmt, inner, guarded, ctx)
            return
        for child in _iter_non_class_children(node):
            self._walk(child, held, guarded, ctx)


class DaemonThreadRule(Rule):
    """RPR042: daemon threads need a join/flush path."""

    id = "RPR042"
    name = "daemon-thread-join"
    description = (
        "a daemon thread with no join() anywhere in its owning class "
        "dies mid-write at interpreter exit"
    )
    node_types = (ast.Call,)

    def _is_thread_ctor(self, func: ast.AST) -> bool:
        if isinstance(func, ast.Name):
            return func.id == "Thread"
        dotted = dotted_name(func)
        return dotted is not None and dotted.endswith("threading.Thread")

    def _has_join(self, scope: ast.AST) -> bool:
        for node in ast.walk(scope):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"
            ):
                return True
        return False

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        assert isinstance(node, ast.Call)
        if not self._is_thread_ctor(node.func):
            return
        daemon = next(
            (
                kw.value
                for kw in node.keywords
                if kw.arg == "daemon"
            ),
            None,
        )
        if not (
            isinstance(daemon, ast.Constant) and daemon.value is True
        ):
            return
        scope: ast.AST = ctx.tree
        for ancestor in reversed(ctx.ancestors):
            if isinstance(ancestor, ast.ClassDef):
                scope = ancestor
                break
        if not self._has_join(scope):
            ctx.report(
                node, self,
                "daemon Thread with no join() in its owning scope; give "
                "the pool a close/drain path so exits cannot strand "
                "half-written state",
            )


RULES = (GuardedByRule, DaemonThreadRule)
