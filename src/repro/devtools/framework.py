"""Single-walk AST linting framework behind ``repro-dtpm lint``.

The reproduction's correctness rests on invariants the test suite can
only sample after the fact: bit-exact scalar/batch parity, content keys
that never silently alias when :class:`~repro.runner.spec.RunSpec` grows
a field, determinism across processes, and lock-guarded shared state in
the threaded service layer.  This module is the enforcement machinery:
each ``.py`` file is parsed **once**, tokenised **once** (for waiver and
``guarded-by`` comments) and walked **once**, with every node dispatched
to the rules registered for its type.  Project-scoped rules (cross-file
checks like the wire-codec coherence pass) observe files during the same
walk and reconcile at the end.

Findings carry a rule id (``RPR011`` ... ``RPR042``), a severity and a
location.  A finding is suppressed by an inline waiver on its line::

    risky_line()  # repro-lint: disable=RPR032 -- justification here

Waivers are themselves linted: an unknown rule id in a waiver is RPR001
(error) and a waiver that suppresses nothing is RPR002 (warning), so
waiver debt cannot accumulate silently.
"""

from __future__ import annotations

import ast
import io
import json
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
_SEVERITIES = (SEVERITY_ERROR, SEVERITY_WARNING)

#: Inline waiver syntax.  The optional `` -- text`` tail is the
#: justification; rules are comma-separated ids or the word ``all``.
WAIVER_RE = re.compile(
    r"repro-lint:\s*disable=([A-Za-z0-9_,\s]+?)(?:\s*--\s*(?P<why>.*))?\s*$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = SEVERITY_ERROR

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
        }

    def render(self) -> str:
        return "%s:%d:%d: %s [%s] %s" % (
            self.path, self.line, self.col, self.rule, self.severity,
            self.message,
        )


@dataclass
class Waiver:
    """One parsed ``repro-lint: disable=...`` comment."""

    line: int
    rules: Set[str]           # rule ids, or {"all"}
    justification: str
    used: bool = False

    def covers(self, rule_id: str) -> bool:
        return "all" in self.rules or rule_id in self.rules


class Rule:
    """Base class of one lint check.

    File rules declare the AST node types they want in ``node_types`` and
    receive every matching node of every file through :meth:`visit`
    during the shared single walk.  Findings are emitted with
    :meth:`FileContext.report`.
    """

    id: str = ""
    name: str = ""
    severity: str = SEVERITY_ERROR
    description: str = ""
    node_types: Tuple[Type[ast.AST], ...] = ()

    def visit(self, node: ast.AST, ctx: "FileContext") -> None:
        """Handle one AST node of the file being walked."""

    def observe(self, ctx: "FileContext") -> None:
        """Called once per file after its walk (project rules)."""

    def finalize(self, run: "LintRun") -> None:
        """Called once after every file was observed (project rules)."""


class FileContext:
    """Everything a rule may want to know about the file being walked."""

    def __init__(
        self, path: str, rel_path: str, source: str, tree: ast.Module,
        run: "LintRun",
    ) -> None:
        self.path = path
        #: POSIX-style path relative to the lint invocation (display path).
        self.rel_path = rel_path
        self.source = source
        self.tree = tree
        self.run = run
        self.lines = source.splitlines()
        #: Comment text by line number (from one tokenize pass).
        self.comments: Dict[int, str] = {}
        #: Parsed waivers by line number.
        self.waivers: Dict[int, Waiver] = {}
        #: Ancestor chain of the node currently being visited (outermost
        #: first, excluding the node itself), maintained by the walker.
        self.ancestors: List[ast.AST] = []
        self._scan_comments()

    # ------------------------------------------------------------------
    def _scan_comments(self) -> None:
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
            for tok in tokens:
                if tok.type == tokenize.COMMENT:
                    self.comments[tok.start[0]] = tok.string
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            return
        for line, text in self.comments.items():
            match = WAIVER_RE.search(text)
            if match is None:
                continue
            rules = {r.strip() for r in match.group(1).split(",") if r.strip()}
            self.waivers[line] = Waiver(
                line=line, rules=rules,
                justification=(match.group("why") or "").strip(),
            )

    # ------------------------------------------------------------------
    def part_names(self) -> Set[str]:
        """The path components of this file (directory names + basename)."""
        norm = self.rel_path.replace(os.sep, "/")
        return set(norm.split("/"))

    def path_endswith(self, suffix: str) -> bool:
        """Whether this file's path ends with ``suffix`` (POSIX form)."""
        norm = os.path.abspath(self.path).replace(os.sep, "/")
        return norm.endswith(suffix)

    def report(
        self, node: "ast.AST | int", rule: Rule, message: str,
        col: Optional[int] = None,
    ) -> None:
        """Emit a finding anchored at ``node`` (or an explicit line)."""
        if isinstance(node, int):
            line, column = node, (col or 0)
        else:
            line = getattr(node, "lineno", 1)
            column = getattr(node, "col_offset", 0) if col is None else col
        self.run.add_finding(self, rule, line, column, message)


class LintRun:
    """State of one lint invocation: contexts, findings, waiver ledger."""

    def __init__(self, rules: Sequence[Rule], config: "LintConfig") -> None:
        self.rules = list(rules)
        self.config = config
        self.contexts: Dict[str, FileContext] = {}
        self._raw: List[Tuple[FileContext, Finding]] = []
        self.parse_failures: List[Finding] = []
        self._known_ids = {r.id for r in self.rules} | {"RPR001", "RPR002"}

    # ------------------------------------------------------------------
    def severity_of(self, rule: Rule) -> str:
        return self.config.severity_overrides.get(rule.id, rule.severity)

    def add_finding(
        self, ctx: FileContext, rule: Rule, line: int, col: int, message: str
    ) -> None:
        self._raw.append((ctx, Finding(
            rule=rule.id, path=ctx.rel_path, line=line, col=col,
            message=message, severity=self.severity_of(rule),
        )))

    def context_for(self, suffix: str) -> Optional[FileContext]:
        """The linted file whose path ends with ``suffix``, if any."""
        for ctx in self.contexts.values():
            if ctx.path_endswith(suffix):
                return ctx
        return None

    # ------------------------------------------------------------------
    def resolve(self) -> List[Finding]:
        """Apply waivers, add waiver-hygiene findings, sort."""
        findings: List[Finding] = list(self.parse_failures)
        for ctx, finding in self._raw:
            waiver = ctx.waivers.get(finding.line)
            if waiver is not None and waiver.covers(finding.rule):
                waiver.used = True
                continue
            findings.append(finding)
        for ctx in self.contexts.values():
            for waiver in ctx.waivers.values():
                unknown = sorted(
                    r for r in waiver.rules
                    if r != "all" and r not in self._known_ids
                )
                if unknown:
                    findings.append(Finding(
                        rule="RPR001", path=ctx.rel_path, line=waiver.line,
                        col=0, severity=SEVERITY_ERROR,
                        message="waiver names unknown rule id(s) %s"
                                % ", ".join(unknown),
                    ))
                elif not waiver.used:
                    findings.append(Finding(
                        rule="RPR002", path=ctx.rel_path, line=waiver.line,
                        col=0, severity=SEVERITY_WARNING,
                        message="waiver suppresses nothing on this line "
                                "(disable=%s); remove it"
                                % ",".join(sorted(waiver.rules)),
                    ))
        findings.sort(key=Finding.sort_key)
        return findings


@dataclass
class LintConfig:
    """Knobs of one lint invocation (tests override the manifests)."""

    #: Path of the pinned numeric-semantics manifest (RPR022); ``None``
    #: uses the packaged default next to this module.
    cache_manifest: Optional[str] = None
    #: Path of the scalar/batch parity manifest (RPR031).
    parity_manifest: Optional[str] = None
    #: Directory parity-manifest test paths are resolved against
    #: (defaults to the current working directory).
    repo_root: Optional[str] = None
    #: Per-rule severity overrides, e.g. ``{"RPR032": "warning"}``.
    severity_overrides: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for rule_id, level in self.severity_overrides.items():
            if level not in _SEVERITIES:
                raise ValueError(
                    "severity for %s must be one of %s, got %r"
                    % (rule_id, "/".join(_SEVERITIES), level)
                )


class _Walker(ast.NodeVisitor):
    """One pass over a file's AST dispatching nodes to interested rules."""

    def __init__(
        self, ctx: FileContext, dispatch: Dict[Type[ast.AST], List[Rule]]
    ) -> None:
        self.ctx = ctx
        self.dispatch = dispatch

    def generic_visit(self, node: ast.AST) -> None:
        for rule in self.dispatch.get(type(node), ()):
            rule.visit(node, self.ctx)
        self.ctx.ancestors.append(node)
        try:
            super().generic_visit(node)
        finally:
            self.ctx.ancestors.pop()


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Every ``.py`` file under the given files/directories, sorted."""
    out: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
            continue
        for root, dirs, names in os.walk(path):
            dirs[:] = sorted(
                d for d in dirs
                if not d.startswith(".") and d != "__pycache__"
            )
            for name in sorted(names):
                if name.endswith(".py"):
                    out.append(os.path.join(root, name))
    return sorted(dict.fromkeys(out))


def run_lint(
    paths: Sequence[str],
    rules: Sequence[Rule],
    config: Optional[LintConfig] = None,
) -> List[Finding]:
    """Lint files/directories with the given rules; returns findings."""
    config = config or LintConfig()
    run = LintRun(rules, config)
    dispatch: Dict[Type[ast.AST], List[Rule]] = {}
    for rule in rules:
        for node_type in rule.node_types:
            dispatch.setdefault(node_type, []).append(rule)

    for path in iter_python_files(paths):
        rel = os.path.relpath(path)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
            tree = ast.parse(source, filename=path)
        except (OSError, SyntaxError, ValueError) as exc:
            line = getattr(exc, "lineno", 1) or 1
            run.parse_failures.append(Finding(
                rule="RPR001", path=rel, line=line, col=0,
                severity=SEVERITY_ERROR,
                message="could not parse file: %s" % exc,
            ))
            continue
        ctx = FileContext(path, rel, source, tree, run)
        run.contexts[path] = ctx
        _Walker(ctx, dispatch).visit(tree)
        for rule in rules:
            rule.observe(ctx)

    for rule in rules:
        rule.finalize(run)
    return run.resolve()


# ---------------------------------------------------------------------------
# shared AST helpers used by several rule modules
# ---------------------------------------------------------------------------
def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain rooted at a Name, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def is_self_attr(node: ast.AST, attr: Optional[str] = None) -> bool:
    """Whether ``node`` is ``self.<attr>`` (any attr when not given)."""
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (attr is None or node.attr == attr)
    )


def semantic_hash(source: str) -> str:
    """Hash of a module's semantics: AST with docstrings stripped.

    Comments, blank lines, formatting and docstrings do not participate,
    so the pinned-manifest rule (RPR022) only trips on changes that can
    move numbers.
    """
    import hashlib

    tree = ast.parse(source)
    for node in ast.walk(tree):
        if isinstance(
            node,
            (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef),
        ):
            body = node.body
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                node.body = body[1:] or [ast.Pass()]
    return hashlib.sha256(ast.dump(tree).encode("utf-8")).hexdigest()


def load_json(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict):
        raise ValueError("%s: manifest must be a JSON object" % path)
    return data


def data_path(name: str) -> str:
    """Path of a packaged manifest under ``repro/devtools/data``."""
    return os.path.join(os.path.dirname(__file__), "data", name)
