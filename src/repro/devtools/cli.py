"""Command-line front end of the invariant linter.

Reachable two ways with identical behaviour::

    repro-dtpm lint [paths...] [--format=json] [--severity RPR032=warning]
    python -m repro.devtools [paths...]

Exit status: 0 clean (warnings allowed), 1 at least one error-severity
finding, 2 usage problems.  ``--update-manifests`` refreshes the RPR022
cache manifest first (refusing semantic drift without a ``CACHE_FORMAT``
bump) and then lints.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from repro.devtools import all_rule_classes, default_rules
from repro.devtools.cachekey import update_cache_manifest
from repro.devtools.framework import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Finding,
    LintConfig,
    run_lint,
)


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the shared ``lint`` arguments on a parser/subparser."""
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        dest="output_format", help="output format (default: human)",
    )
    parser.add_argument(
        "--severity", action="append", default=[], metavar="RULE=LEVEL",
        help="override one rule's severity, e.g. RPR032=warning "
             "(repeatable)",
    )
    parser.add_argument(
        "--update-manifests", action="store_true",
        help="refresh the pinned cache manifest before linting "
             "(refuses numeric drift without a CACHE_FORMAT bump)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule registry and exit",
    )


def _parse_severities(pairs: Sequence[str]) -> dict:
    out = {}
    for pair in pairs:
        rule, sep, level = pair.partition("=")
        if not sep or not rule or level not in (
            SEVERITY_ERROR, SEVERITY_WARNING
        ):
            raise ValueError(
                "--severity wants RULE=error|warning, got %r" % pair
            )
        out[rule.strip()] = level
    return out


def _src_root(paths: Sequence[str]) -> Optional[str]:
    for path in paths:
        if os.path.isdir(path) and os.path.exists(
            os.path.join(path, "repro", "runner", "spec.py")
        ):
            return path
    return None


def _render_human(findings: List[Finding]) -> None:
    for finding in findings:
        print(finding.render())
    errors = sum(1 for f in findings if f.severity == SEVERITY_ERROR)
    warnings = len(findings) - errors
    if findings:
        print(
            "repro-dtpm lint: %d error(s), %d warning(s)"
            % (errors, warnings)
        )
    else:
        print("repro-dtpm lint: clean")


def _render_json(findings: List[Finding]) -> None:
    errors = sum(1 for f in findings if f.severity == SEVERITY_ERROR)
    payload = {
        "version": 1,
        "errors": errors,
        "warnings": len(findings) - errors,
        "findings": [f.to_dict() for f in findings],
    }
    print(json.dumps(payload, indent=2, sort_keys=True))


def run_lint_cli(args: argparse.Namespace) -> int:
    """Execute a parsed ``lint`` invocation; returns the exit status."""
    if args.list_rules:
        for cls in all_rule_classes():
            print(
                "%s  %-28s [%s] %s"
                % (cls.id, cls.name, cls.severity, cls.description)
            )
        return 0
    try:
        config = LintConfig(
            severity_overrides=_parse_severities(args.severity)
        )
    except ValueError as exc:
        print("repro-dtpm lint: %s" % exc, file=sys.stderr)
        return 2

    if args.update_manifests:
        src_root = _src_root(args.paths)
        if src_root is None:
            print(
                "repro-dtpm lint: --update-manifests needs a lint path "
                "containing repro/runner/spec.py (e.g. src)",
                file=sys.stderr,
            )
            return 2
        try:
            print(update_cache_manifest(src_root))
        except (OSError, ValueError) as exc:
            print("repro-dtpm lint: %s" % exc, file=sys.stderr)
            return 2

    missing = [p for p in args.paths if not os.path.exists(p)]
    if missing:
        print(
            "repro-dtpm lint: no such path(s): %s" % ", ".join(missing),
            file=sys.stderr,
        )
        return 2

    findings = run_lint(args.paths, default_rules(config), config)
    if args.output_format == "json":
        _render_json(findings)
    else:
        _render_human(findings)
    return 1 if any(f.severity == SEVERITY_ERROR for f in findings) else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (``python -m repro.devtools``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools",
        description="repo-specific invariant linter (determinism, "
                    "cache-key coherence, batch parity, lock discipline)",
    )
    add_lint_arguments(parser)
    return run_lint_cli(parser.parse_args(argv))
