"""RPR02x -- cache-key coherence rules.

Results are cached under a content key derived from the canonical
rendering of a :class:`~repro.runner.spec.RunSpec` plus ``CACHE_FORMAT``.
Two classes of silent aliasing can corrupt that scheme:

* RPR021 -- a new dataclass field that the wire codec does not carry:
  the field changes execution but round-trips to its default, so two
  different experiments share one key.  The rule cross-checks the
  ``RunSpec``/``ExperimentMatrix`` field lists against ``wire.py``'s
  ``_SPEC_FIELDS``/``_MATRIX_FIELDS`` whitelists, the ``*_to_wire`` dict
  literals and the ``*_from_wire`` constructor calls, plus the
  ``CANONICAL_OMIT_DEFAULTS`` compatibility map.
* RPR022 -- a numeric-semantics module changed without a format bump:
  the pinned manifest stores a *semantic* hash (AST with comments and
  docstrings stripped) of the modules whose maths defines what a cached
  number means (``thermal/kernels.py``, ``platform/state.py``,
  ``power/leakage.py``).  If a hash moved, ``CACHE_FORMAT`` must move in
  the same diff -- refresh with ``repro-dtpm lint --update-manifests``.
"""

from __future__ import annotations

import ast
import json
import os
from typing import Dict, List, Optional, Tuple

from repro.devtools.framework import (
    FileContext,
    LintConfig,
    LintRun,
    Rule,
    data_path,
    load_json,
    semantic_hash,
)

#: Wire-only keys that are not dataclass fields.
_WIRE_EXTRA = frozenset({"schema"})

#: Modules whose semantic hash participates in the RPR022 manifest.
DEFAULT_PINNED_MODULES = (
    "repro/thermal/kernels.py",
    "repro/platform/state.py",
    "repro/power/leakage.py",
)


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = target.attr if isinstance(target, ast.Attribute) else getattr(
            target, "id", None
        )
        if name == "dataclass":
            return True
    return False


def _dataclass_fields(node: ast.ClassDef) -> Dict[str, int]:
    """Annotated instance fields of a dataclass body, name -> line."""
    out: Dict[str, int] = {}
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        target = stmt.target
        if not isinstance(target, ast.Name) or target.id.isupper():
            continue
        annotation = ast.dump(stmt.annotation)
        if "ClassVar" in annotation:
            continue
        out[target.id] = stmt.lineno
    return out


def _str_tuple(node: ast.AST) -> Optional[List[str]]:
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    out = []
    for element in node.elts:
        if not (
            isinstance(element, ast.Constant)
            and isinstance(element.value, str)
        ):
            return None
        out.append(element.value)
    return out


class _CodecSide:
    """What one linted file contributes to a spec/matrix coherence check."""

    def __init__(self) -> None:
        self.fields: Optional[Dict[str, int]] = None
        self.class_line = 0
        self.omit_defaults: Dict[str, int] = {}
        self.ctx_class: Optional[FileContext] = None
        self.wire_fields: Optional[List[str]] = None
        self.wire_fields_line = 0
        self.to_wire_keys: Optional[List[str]] = None
        self.to_wire_line = 0
        self.from_wire_kwargs: Optional[List[str]] = None
        self.from_wire_line = 0
        self.ctx_wire: Optional[FileContext] = None


class WireCoherenceRule(Rule):
    """RPR021: every spec field must exist in all three codec surfaces."""

    id = "RPR021"
    name = "wire-codec-coherence"
    description = (
        "a RunSpec/ExperimentMatrix field missing from the wire codec "
        "round-trips to its default, silently aliasing cache keys"
    )

    #: (class name, fields-tuple name, to_wire fn, from_wire fn)
    _TARGETS = (
        ("RunSpec", "_SPEC_FIELDS", "spec_to_wire", "spec_from_wire"),
        (
            "ExperimentMatrix", "_MATRIX_FIELDS", "matrix_to_wire",
            "matrix_from_wire",
        ),
    )

    def __init__(self, config: Optional[LintConfig] = None) -> None:
        self.config = config
        self._sides: Dict[str, _CodecSide] = {
            name: _CodecSide() for name, _, _, _ in self._TARGETS
        }

    # -- collection ----------------------------------------------------
    def observe(self, ctx: FileContext) -> None:
        for stmt in ast.walk(ctx.tree):
            if isinstance(stmt, ast.ClassDef):
                self._observe_class(stmt, ctx)
            elif isinstance(stmt, ast.Assign):
                self._observe_assign(stmt, ctx)
            elif isinstance(stmt, ast.FunctionDef):
                self._observe_function(stmt, ctx)

    def _observe_class(self, node: ast.ClassDef, ctx: FileContext) -> None:
        side = self._sides.get(node.name)
        if side is None or not _is_dataclass_decorated(node):
            return
        side.fields = _dataclass_fields(node)
        side.class_line = node.lineno
        side.ctx_class = ctx
        for stmt in node.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == "CANONICAL_OMIT_DEFAULTS"
                and isinstance(stmt.value, ast.Dict)
            ):
                for key in stmt.value.keys:
                    if isinstance(key, ast.Constant) and isinstance(
                        key.value, str
                    ):
                        side.omit_defaults[key.value] = stmt.lineno

    def _observe_assign(self, node: ast.Assign, ctx: FileContext) -> None:
        if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
            return
        target = node.targets[0].id
        for name, fields_name, _, _ in self._TARGETS:
            if target == fields_name:
                values = _str_tuple(node.value)
                if values is not None:
                    side = self._sides[name]
                    side.wire_fields = values
                    side.wire_fields_line = node.lineno
                    side.ctx_wire = ctx

    def _observe_function(self, node: ast.FunctionDef, ctx: FileContext) -> None:
        for name, _, to_wire, from_wire in self._TARGETS:
            side = self._sides[name]
            if node.name == to_wire:
                for stmt in ast.walk(node):
                    if isinstance(stmt, ast.Return) and isinstance(
                        stmt.value, ast.Dict
                    ):
                        keys = [
                            k.value
                            for k in stmt.value.keys
                            if isinstance(k, ast.Constant)
                            and isinstance(k.value, str)
                        ]
                        side.to_wire_keys = keys
                        side.to_wire_line = node.lineno
                        side.ctx_wire = side.ctx_wire or ctx
            elif node.name == from_wire:
                for stmt in ast.walk(node):
                    if (
                        isinstance(stmt, ast.Call)
                        and isinstance(stmt.func, ast.Name)
                        and stmt.func.id == name
                    ):
                        side.from_wire_kwargs = [
                            kw.arg
                            for kw in stmt.keywords
                            if kw.arg is not None
                        ]
                        side.from_wire_line = node.lineno
                        side.ctx_wire = side.ctx_wire or ctx

    # -- reconciliation ------------------------------------------------
    def finalize(self, run: LintRun) -> None:
        for name, fields_name, to_wire, from_wire in self._TARGETS:
            side = self._sides[name]
            if side.fields is None or side.ctx_wire is None:
                continue  # one half of the contract was not in the lint set
            field_names = list(side.fields)
            surfaces = (
                (side.wire_fields, side.wire_fields_line, fields_name),
                (side.to_wire_keys, side.to_wire_line,
                 "%s()'s wire dict" % to_wire),
                (side.from_wire_kwargs, side.from_wire_line,
                 "%s()'s %s(...) call" % (from_wire, name)),
            )
            for values, line, label in surfaces:
                if values is None:
                    continue
                for field in field_names:
                    if field not in values:
                        side.ctx_wire.report(
                            line, self,
                            "%s field %r is missing from %s; the field "
                            "would round-trip to its default and alias "
                            "cache keys" % (name, field, label),
                        )
                for value in values:
                    if value not in field_names and value not in _WIRE_EXTRA:
                        side.ctx_wire.report(
                            line, self,
                            "%s names %r which is not a %s field (stale "
                            "codec entry)" % (label, value, name),
                        )
            if side.ctx_class is not None:
                for key, line in side.omit_defaults.items():
                    if key not in field_names:
                        side.ctx_class.report(
                            line, self,
                            "CANONICAL_OMIT_DEFAULTS names %r which is not "
                            "a %s field" % (key, name),
                        )


class CacheManifestRule(Rule):
    """RPR022: pinned numeric-semantics modules vs ``CACHE_FORMAT``."""

    id = "RPR022"
    name = "cache-format-manifest"
    description = (
        "a pinned numeric-semantics module changed without a CACHE_FORMAT "
        "bump, so stale cached numbers would be served as current"
    )

    def __init__(self, config: Optional[LintConfig] = None) -> None:
        self.config = config
        self._format_value: Optional[int] = None
        self._format_line = 0
        self._format_ctx: Optional[FileContext] = None
        self._hashes: List[Tuple[FileContext, str]] = []

    def _manifest_path(self) -> str:
        if self.config is not None and self.config.cache_manifest:
            return self.config.cache_manifest
        return data_path("cache_manifest.json")

    def observe(self, ctx: FileContext) -> None:
        if ctx.path_endswith("runner/spec.py"):
            for stmt in ctx.tree.body:
                if (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and stmt.targets[0].id == "CACHE_FORMAT"
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, int)
                ):
                    self._format_value = stmt.value.value
                    self._format_line = stmt.lineno
                    self._format_ctx = ctx
        self._hashes.append((ctx, ctx.source))

    def finalize(self, run: LintRun) -> None:
        try:
            manifest = load_json(self._manifest_path())
        except (OSError, ValueError) as exc:
            if self._format_ctx is not None:
                self._format_ctx.report(
                    self._format_line, self,
                    "cache manifest %s is unreadable (%s); regenerate with "
                    "repro-dtpm lint --update-manifests"
                    % (self._manifest_path(), exc),
                )
            return
        modules = manifest.get("modules", {})
        pinned_format = manifest.get("cache_format")
        if (
            self._format_value is not None
            and pinned_format != self._format_value
        ):
            assert self._format_ctx is not None
            self._format_ctx.report(
                self._format_line, self,
                "CACHE_FORMAT is %d but the cache manifest pins %r; "
                "refresh the manifest in the same diff "
                "(repro-dtpm lint --update-manifests)"
                % (self._format_value, pinned_format),
            )
        for ctx, source in self._hashes:
            for module, pinned in modules.items():
                if not ctx.path_endswith(module):
                    continue
                actual = semantic_hash(source)
                if actual != pinned:
                    ctx.report(
                        1, self,
                        "numeric semantics of %s changed (hash %s..., "
                        "manifest pins %s...); bump CACHE_FORMAT in "
                        "repro/runner/spec.py and refresh the manifest "
                        "(repro-dtpm lint --update-manifests)"
                        % (module, actual[:12], str(pinned)[:12]),
                    )


def update_cache_manifest(
    src_root: str, manifest_path: Optional[str] = None
) -> str:
    """Refresh the RPR022 manifest; refuses hash drift without a bump.

    Returns a human-readable summary line.  Raises ``ValueError`` when a
    pinned module's semantic hash changed but ``CACHE_FORMAT`` did not --
    the exact situation the rule exists to prevent.
    """
    manifest_path = manifest_path or data_path("cache_manifest.json")
    spec_path = os.path.join(src_root, "repro", "runner", "spec.py")
    with open(spec_path, "r", encoding="utf-8") as fh:
        spec_tree = ast.parse(fh.read())
    current_format: Optional[int] = None
    for stmt in spec_tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == "CACHE_FORMAT"
            and isinstance(stmt.value, ast.Constant)
        ):
            current_format = int(stmt.value.value)
    if current_format is None:
        raise ValueError("could not find CACHE_FORMAT in %s" % spec_path)

    old: dict = {}
    if os.path.exists(manifest_path):
        old = load_json(manifest_path)
    module_names = tuple(old.get("modules", {})) or DEFAULT_PINNED_MODULES

    fresh: Dict[str, str] = {}
    for module in module_names:
        path = os.path.join(src_root, *module.split("/"))
        with open(path, "r", encoding="utf-8") as fh:
            fresh[module] = semantic_hash(fh.read())

    drifted = sorted(
        m for m, h in fresh.items()
        if old.get("modules", {}).get(m, h) != h
    )
    if drifted and old.get("cache_format") == current_format:
        raise ValueError(
            "refusing to refresh hashes of %s: their numeric semantics "
            "changed but CACHE_FORMAT is still %d -- bump it in "
            "repro/runner/spec.py first" % (", ".join(drifted), current_format)
        )

    payload = {"cache_format": current_format, "modules": fresh}
    with open(manifest_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return "cache manifest: format %d, %d module(s) pinned" % (
        current_format, len(fresh)
    )


RULES = (WireCoherenceRule, CacheManifestRule)
