"""RPR01x -- determinism rules.

The paper's experiments are content-addressed: a :class:`RunSpec` plus a
model fingerprint *is* the result.  That only holds when nothing inside
the numeric layers (``sim/``, ``thermal/``, ``power/``, ``platform/``)
consumes entropy outside the seeded ``np.random.Generator`` threaded in
from the spec.  These rules keep the unsanctioned sources out:

* RPR011 -- builtin ``hash()``: salted per process (PYTHONHASHSEED), so
  hash-derived seeds differ across runs and across pool workers.
* RPR012 -- wall-clock reads (``time.time``, ``datetime.now``, ...):
  results must not depend on when they were computed.
* RPR013 -- global/legacy RNG APIs (``random.*``, ``np.random.*`` except
  ``default_rng``): process-global streams are order-dependent under
  batching and invisible to the content key.
* RPR014 -- ``==``/``!=`` against float literals: representation-fragile
  across vectorised/scalar paths; use a tolerance.
* RPR015 -- mutable default arguments: state leaks across calls, so two
  identical specs can diverge.

RPR011-013 apply only inside the numeric-layer directories; RPR014-015
apply everywhere.
"""

from __future__ import annotations

import ast

from repro.devtools.framework import FileContext, Rule, dotted_name

#: Path components marking the deterministic numeric layers.
DETERMINISM_DIRS = frozenset({"sim", "thermal", "power", "platform"})

#: Wall-clock call targets (dotted form) flagged by RPR012.
_WALL_CLOCK = frozenset({
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

#: ``np.random`` attributes that are sanctioned (seeded-Generator API).
_SANCTIONED_NP_RANDOM = frozenset({"default_rng", "Generator", "SeedSequence"})


def _in_scope(ctx: FileContext) -> bool:
    return bool(DETERMINISM_DIRS & ctx.part_names())


class BuiltinHashRule(Rule):
    """RPR011: ``hash()`` is process-salted; never derive seeds from it."""

    id = "RPR011"
    name = "no-builtin-hash"
    description = (
        "builtin hash() is salted per process (PYTHONHASHSEED); deriving "
        "seeds or keys from it breaks cross-process determinism"
    )
    node_types = (ast.Call,)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        assert isinstance(node, ast.Call)
        if not _in_scope(ctx):
            return
        if isinstance(node.func, ast.Name) and node.func.id == "hash":
            ctx.report(
                node, self,
                "builtin hash() is salted per process; derive seeds with "
                "zlib.crc32/hashlib over canonical bytes instead",
            )


class WallClockRule(Rule):
    """RPR012: numeric layers must not read the wall clock."""

    id = "RPR012"
    name = "no-wall-clock"
    description = (
        "wall-clock reads inside the numeric layers make results depend "
        "on when they were computed"
    )
    node_types = (ast.Call,)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        assert isinstance(node, ast.Call)
        if not _in_scope(ctx):
            return
        dotted = dotted_name(node.func)
        if dotted in _WALL_CLOCK:
            ctx.report(
                node, self,
                "%s() inside a numeric-layer module; simulated time must "
                "come from the spec/clock state, not the host" % dotted,
            )


class GlobalRngRule(Rule):
    """RPR013: only the seeded ``np.random.Generator`` API is sanctioned."""

    id = "RPR013"
    name = "no-global-rng"
    description = (
        "process-global RNG streams (random.*, legacy np.random.*) are "
        "order-dependent under batching and invisible to the content key"
    )
    node_types = (ast.Call,)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        assert isinstance(node, ast.Call)
        if not _in_scope(ctx):
            return
        dotted = dotted_name(node.func)
        if dotted is None:
            return
        parts = dotted.split(".")
        if parts[0] == "random" and len(parts) == 2:
            ctx.report(
                node, self,
                "stdlib random.%s() uses the process-global stream; thread "
                "a seeded np.random.Generator from the spec" % parts[1],
            )
        elif (
            len(parts) == 3
            and parts[0] in ("np", "numpy")
            and parts[1] == "random"
            and parts[2] not in _SANCTIONED_NP_RANDOM
        ):
            ctx.report(
                node, self,
                "legacy %s() draws from the global NumPy stream; use a "
                "seeded np.random.default_rng(...) Generator" % dotted,
            )


class FloatEqualityRule(Rule):
    """RPR014: ``==``/``!=`` against a float literal."""

    id = "RPR014"
    name = "no-float-literal-equality"
    description = (
        "equality against a float literal is representation-fragile "
        "across scalar/batch paths; compare with a tolerance"
    )
    node_types = (ast.Compare,)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        assert isinstance(node, ast.Compare)
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            return
        operands = [node.left, *node.comparators]
        for operand in operands:
            if isinstance(operand, ast.Constant) and isinstance(
                operand.value, float
            ):
                ctx.report(
                    node, self,
                    "comparison against float literal %r; use math.isclose/"
                    "np.isclose or an explicit tolerance" % operand.value,
                )
                return


class MutableDefaultRule(Rule):
    """RPR015: mutable default argument values."""

    id = "RPR015"
    name = "no-mutable-default-arg"
    description = (
        "mutable default arguments persist across calls, so identical "
        "specs can observe different state"
    )
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef)

    _MUTABLE_CTORS = frozenset({"list", "dict", "set", "bytearray"})

    def _is_mutable(self, default: ast.AST) -> bool:
        if isinstance(default, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                                ast.DictComp, ast.SetComp)):
            return True
        if isinstance(default, ast.Call) and isinstance(default.func, ast.Name):
            return default.func.id in self._MUTABLE_CTORS
        return False

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        args = node.args
        defaults = list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]
        for default in defaults:
            if self._is_mutable(default):
                ctx.report(
                    default, self,
                    "mutable default argument in %s(); default to None and "
                    "construct inside the body" % node.name,
                )


RULES = (
    BuiltinHashRule,
    WallClockRule,
    GlobalRngRule,
    FloatEqualityRule,
    MutableDefaultRule,
)
