"""RPR03x -- scalar/batch parity rules.

The batched engines (PRs 3-4, 7) only earn their speed if every batch
kernel stays bit-exact against its scalar twin.  That contract lives in
tests, but tests cannot notice a *new* batch function that never got a
pinning test.  These rules close the loop:

* RPR031 -- every scalar/batch pair (a ``<name>_batch`` definition whose
  scalar twin exists in the same module, or any pair listed in the
  manifest) must appear in ``data/parity_manifest.json`` together with
  the test file that pins their equivalence; the named test must exist
  and actually mention the batch function.  Stale manifest entries are
  flagged too.
* RPR032 -- a Python-level ``for`` statement over the batch axis inside
  a hot batched module defeats the vectorisation the pair exists for;
  each intentional one (numba-compiled bodies, O(B) scatter/validation,
  RNG stream ordering) carries a waiver with its justification.
  Comprehensions are deliberately exempt: the gather/scatter idiom
  builds arrays from per-board attributes and is not a hot loop.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, List, Optional, Tuple

from repro.devtools.framework import (
    FileContext,
    LintConfig,
    LintRun,
    Rule,
    data_path,
    load_json,
)

#: Modules whose batch kernels must never loop over the batch axis.
HOT_BATCH_MODULES = (
    "thermal/kernels.py",
    "platform/state.py",
    "power/batch.py",
)

#: Identifier names that (heuristically) denote the batch axis.
BATCH_AXIS_NAMES = frozenset({"boards", "lanes", "batch"})


def _qualified_defs(tree: ast.Module) -> Dict[str, int]:
    """Function/method definitions of a module, qualname -> line."""
    out: Dict[str, int] = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out[node.name] = node.lineno
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    out["%s.%s" % (node.name, item.name)] = item.lineno
    return out


class ParityManifestRule(Rule):
    """RPR031: scalar/batch pairs must be registered with a pinning test."""

    id = "RPR031"
    name = "batch-parity-manifest"
    description = (
        "a scalar/batch kernel pair without a registered pinning test "
        "can silently drift out of bit-parity"
    )

    def __init__(self, config: Optional[LintConfig] = None) -> None:
        self.config = config
        self._defs: List[Tuple[FileContext, Dict[str, int]]] = []

    def _manifest_path(self) -> str:
        if self.config is not None and self.config.parity_manifest:
            return self.config.parity_manifest
        return data_path("parity_manifest.json")

    def _repo_root(self) -> str:
        if self.config is not None and self.config.repo_root:
            return self.config.repo_root
        return os.getcwd()

    def observe(self, ctx: FileContext) -> None:
        defs = _qualified_defs(ctx.tree)
        if defs:
            self._defs.append((ctx, defs))

    def finalize(self, run: LintRun) -> None:
        try:
            manifest = load_json(self._manifest_path())
        except (OSError, ValueError):
            manifest = {"pairs": []}
        pairs = manifest.get("pairs", [])

        for ctx, defs in self._defs:
            for qualname, line in defs.items():
                if not qualname.endswith("_batch"):
                    continue
                entry = next(
                    (
                        p for p in pairs
                        if p.get("batch") == qualname
                        and ctx.path_endswith(p.get("module", ""))
                    ),
                    None,
                )
                if entry is not None:
                    self._check_entry(ctx, defs, entry, line)
                    continue
                scalar = qualname[: -len("_batch")]
                if scalar in defs:
                    ctx.report(
                        line, self,
                        "scalar/batch pair %s/%s has no parity-manifest "
                        "entry; register it with its pinning test in %s"
                        % (scalar, qualname, self._manifest_path()),
                    )

        # stale entries: the module is in the lint set but the pair is gone
        for entry in pairs:
            module = entry.get("module", "")
            for ctx, defs in self._defs:
                if not ctx.path_endswith(module):
                    continue
                for role in ("scalar", "batch"):
                    name = entry.get(role, "")
                    if name and name not in defs:
                        ctx.report(
                            1, self,
                            "stale parity-manifest entry: %s %r is not "
                            "defined in %s" % (role, name, module),
                        )

    def _check_entry(
        self, ctx: FileContext, defs: Dict[str, int], entry: dict, line: int
    ) -> None:
        scalar = entry.get("scalar", "")
        if scalar and scalar not in defs:
            ctx.report(
                line, self,
                "parity-manifest entry for %r names scalar twin %r which "
                "is not defined in the module" % (entry.get("batch"), scalar),
            )
        test = entry.get("test", "")
        if not test:
            ctx.report(
                line, self,
                "parity-manifest entry for %r names no pinning test"
                % entry.get("batch"),
            )
            return
        test_path = os.path.join(self._repo_root(), test)
        if not os.path.exists(test_path):
            ctx.report(
                line, self,
                "pinning test %s of %r does not exist"
                % (test, entry.get("batch")),
            )
            return
        with open(test_path, "r", encoding="utf-8") as fh:
            text = fh.read()
        bare = str(entry.get("batch", "")).rsplit(".", 1)[-1]
        if bare and bare not in text:
            ctx.report(
                line, self,
                "pinning test %s never mentions %r; the parity contract "
                "is unenforced" % (test, bare),
            )


class BatchLoopRule(Rule):
    """RPR032: no Python ``for`` statements over the batch axis."""

    id = "RPR032"
    name = "no-batch-axis-loop"
    description = (
        "a Python-level loop over the batch axis in a hot batched module "
        "defeats the vectorisation the batch path exists for"
    )
    node_types = (ast.For,)

    def _mentions_batch_axis(self, expr: ast.AST) -> Optional[str]:
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and node.id in BATCH_AXIS_NAMES:
                return node.id
            if isinstance(node, ast.Attribute) and node.attr in BATCH_AXIS_NAMES:
                return node.attr
        return None

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        assert isinstance(node, ast.For)
        if not any(ctx.path_endswith(m) for m in HOT_BATCH_MODULES):
            return
        name = self._mentions_batch_axis(node.iter)
        if name is not None:
            ctx.report(
                node, self,
                "Python for-loop over the batch axis (%r) in a hot batched "
                "module; vectorise over the axis or waive with a "
                "justification" % name,
            )


RULES = (ParityManifestRule, BatchLoopRule)
