"""Back-to-back benchmark scenarios on one (warm) device.

The paper's measurements come from a board that had been running Android
and previous benchmarks -- its traces start well above ambient.  This
module makes that explicit: a :class:`ScenarioRunner` executes a sequence
of workloads on a *single* platform instance, so each run inherits the
thermal state the previous one left behind, with an optional idle gap in
between (the phone sitting in a pocket between apps).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.config import SimulationConfig
from repro.core.dtpm import DtpmGovernor
from repro.errors import ConfigurationError
from repro.platform.specs import PlatformSpec
from repro.sim.consumers import TraceConsumer
from repro.sim.engine import Simulator, ThermalMode
from repro.sim.run_result import RunResult
from repro.workloads.trace import WorkloadTrace


class ScenarioRunner:
    """Runs workloads consecutively, carrying thermal state across runs.

    ``base_seed`` pins run ``i`` of the sequence to seed ``base_seed + i``
    (defaults to the config's seed), which is what makes scenario
    schedules content-addressable through :mod:`repro.runner`.
    ``annotate=False`` suppresses the ``"scenario position i"`` result
    notes so a position's result is byte-identical however it was reached
    (the cache relies on this).  Streaming ``consumers`` are forwarded to
    every :class:`Simulator` in the sequence.
    """

    def __init__(
        self,
        mode: ThermalMode,
        dtpm: Optional[DtpmGovernor] = None,
        spec: Optional[PlatformSpec] = None,
        config: Optional[SimulationConfig] = None,
        initial_temp_c: Optional[float] = 35.0,
        idle_gap_s: float = 0.0,
        max_duration_s: float = 900.0,
        base_seed: Optional[int] = None,
        annotate: bool = True,
        consumers: Optional[Sequence[TraceConsumer]] = None,
    ) -> None:
        if mode is ThermalMode.DTPM and dtpm is None:
            raise ConfigurationError("DTPM scenarios need a DtpmGovernor")
        if idle_gap_s < 0:
            raise ConfigurationError("idle gap must be >= 0")
        self.mode = mode
        self.dtpm = dtpm
        self.spec = spec or PlatformSpec()
        self.config = config or SimulationConfig()
        self.initial_temp_c = initial_temp_c
        self.idle_gap_s = idle_gap_s
        self.max_duration_s = max_duration_s
        self.base_seed = base_seed
        self.annotate = annotate
        self.consumers = list(consumers or ())
        self._carry_temps_k = None

    # ------------------------------------------------------------------
    def run(self, workloads: Sequence[WorkloadTrace]) -> List[RunResult]:
        """Execute the sequence; each run starts where the last ended."""
        if not workloads:
            raise ConfigurationError("scenario needs at least one workload")
        results: List[RunResult] = []
        seed0 = self.base_seed if self.base_seed is not None else self.config.seed
        for i, workload in enumerate(workloads):
            carrying = self._carry_temps_k is not None
            sim = Simulator(
                workload,
                self.mode,
                dtpm=self.dtpm,
                spec=self.spec,
                config=self.config,
                # the first run starts from the configured device state;
                # later runs inherit the carried thermal state verbatim
                warm_start_c=None if carrying else self.initial_temp_c,
                max_duration_s=self.max_duration_s,
                seed=seed0 + i,
                consumers=self.consumers,
            )
            if carrying:
                sim.board.network.set_temperatures_k(self._carry_temps_k)
                if self.idle_gap_s > 0:
                    self._idle(sim)
            result = sim.run()
            if self.annotate:
                result.notes.append("scenario position %d" % i)
            results.append(result)
            self._carry_temps_k = sim.board.network.temperatures_k
        return results

    def _idle(self, sim: Simulator) -> None:
        """Let the device cool at near-idle for the configured gap."""
        steps = int(round(self.idle_gap_s / 0.1))
        sim.board.soc.big.set_frequency(self.spec.big_opp.f_min_hz)
        for _ in range(steps):
            sim.board.step(
                (0.03, 0.02, 0.02, 0.02), (0.0,) * 4, 0.0, 0.03, 0.1
            )
        # the idle gap is not part of any benchmark's accounting
        sim.board.meter.reset()
        self._carry_temps_k = sim.board.network.temperatures_k

    @property
    def device_temps_k(self):
        """Thermal state carried into the next run (None before any run)."""
        return (
            None if self._carry_temps_k is None else self._carry_temps_k.copy()
        )
