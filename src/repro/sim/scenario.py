"""Back-to-back benchmark scenarios on one (warm) device.

The paper's measurements come from a board that had been running Android
and previous benchmarks -- its traces start well above ambient.  This
module makes that explicit: a :class:`ScenarioRunner` executes a sequence
of workloads on a *single* platform instance, so each run inherits the
thermal state the previous one left behind, with an optional idle gap in
between (the phone sitting in a pocket between apps).

Scenario chains ride the vectorised plant: a :class:`BatchScenarioRunner`
lock-steps ``B`` schedules position by position -- every lane's run at
position ``i`` advances through one :class:`~repro.sim.engine.BatchSimulator`,
and the between-run idle cooldowns advance as one batched RC integration
(:class:`~repro.platform.state.BatchPlant`).  :class:`ScenarioRunner` is
the ``B = 1`` view of that same code path, and every batched kernel is
elementwise over the batch axis, so a batch of ``N`` schedules produces
chains byte-identical to ``N`` schedules executed one at a time.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.config import SimulationConfig
from repro.core.dtpm import DtpmGovernor
from repro.errors import ConfigurationError
from repro.platform.specs import PlatformSpec
from repro.platform.state import BatchPlant
from repro.sim.consumers import TraceConsumer
from repro.sim.engine import BatchSimulator, Simulator, ThermalMode
from repro.sim.run_result import RunResult
from repro.workloads.benchmarks import get_benchmark
from repro.workloads.trace import WorkloadTrace

#: The near-idle load profile of a device sitting between apps: a trickle
#: of background work on the big cluster, idle little cores and GPU, and
#: residual memory traffic.  One entry per big core.
IDLE_BIG_UTILS = (0.03, 0.02, 0.02, 0.02)
IDLE_MEM_TRAFFIC = 0.03
#: Integration step of the idle-gap cooldown (s).
IDLE_STEP_S = 0.1


class ScenarioRunner:
    """Runs workloads consecutively, carrying thermal state across runs.

    ``base_seed`` pins run ``i`` of the sequence to seed ``base_seed + i``
    (defaults to the config's seed), which is what makes scenario
    schedules content-addressable through :mod:`repro.runner`.
    ``annotate=False`` suppresses the ``"scenario position i"`` result
    notes so a position's result is byte-identical however it was reached
    (the cache relies on this).  Streaming ``consumers`` are forwarded to
    every :class:`Simulator` in the sequence.

    ``mode`` is the default thermal configuration of every position;
    :meth:`run` accepts per-position ``modes`` for mixed schedules (e.g.
    a day under the stock governor followed by a DTPM-managed app).
    """

    def __init__(
        self,
        mode: ThermalMode,
        dtpm: Optional[DtpmGovernor] = None,
        spec: Optional[PlatformSpec] = None,
        config: Optional[SimulationConfig] = None,
        initial_temp_c: Optional[float] = 35.0,
        idle_gap_s: float = 0.0,
        max_duration_s: float = 900.0,
        base_seed: Optional[int] = None,
        annotate: bool = True,
        consumers: Optional[Sequence[TraceConsumer]] = None,
    ) -> None:
        if mode is ThermalMode.DTPM and dtpm is None:
            raise ConfigurationError("DTPM scenarios need a DtpmGovernor")
        if idle_gap_s < 0:
            raise ConfigurationError("idle gap must be >= 0")
        self.mode = mode
        self.dtpm = dtpm
        self.spec = spec or PlatformSpec()
        self.config = config or SimulationConfig()
        self.initial_temp_c = initial_temp_c
        self.idle_gap_s = idle_gap_s
        self.max_duration_s = max_duration_s
        self.base_seed = base_seed
        self.annotate = annotate
        self.consumers = list(consumers or ())
        self._carry_temps_k = None

    # ------------------------------------------------------------------
    def run(
        self,
        workloads: Sequence[WorkloadTrace],
        modes: Optional[Sequence[ThermalMode]] = None,
    ) -> List[RunResult]:
        """Execute the sequence; each run starts where the last ended.

        The B=1 view of :class:`BatchScenarioRunner`: one schedule goes
        through exactly the code path a batch of many does, which is what
        makes batched and serial scenario execution byte-identical.
        """
        return BatchScenarioRunner([self]).run(
            [workloads], None if modes is None else [modes]
        )[0]

    @property
    def device_temps_k(self):
        """Thermal state carried into the next run (None before any run)."""
        return (
            None if self._carry_temps_k is None else self._carry_temps_k.copy()
        )


class BatchScenarioRunner:
    """Lock-steps ``B`` scenario schedules through one batched plant.

    Chain positions stay aligned across lanes: every lane's position-``i``
    run advances through one :class:`~repro.sim.engine.BatchSimulator`
    (lanes that finish early drop out of the step loop, lanes with shorter
    schedules drop out of later positions), and the idle-gap cooldowns
    before carried runs advance as one batched RC integration.  Thermal
    state and the per-lane DTPM governor (with its identified models)
    carry across positions per lane, exactly as each lane's serial
    :class:`ScenarioRunner` would carry them.

    All lanes must share the plant "shape" (platform spec, thermal
    physics, control/substep timing -- the :class:`BatchSimulator`
    contract); modes, workloads, seeds, idle gaps and chain lengths are
    free to vary per lane.  Within that contract a batch of ``N``
    schedules is byte-identical to ``N`` serial schedules.

    Note that a :class:`~repro.sim.consumers.TraceConsumer` shared by
    several lanes observes their intervals interleaved (serial execution
    would play whole chains back to back); per-lane consumers see exactly
    the serial stream.
    """

    def __init__(self, runners: Sequence[ScenarioRunner]) -> None:
        if not runners:
            raise ConfigurationError(
                "a scenario batch needs at least one runner"
            )
        if len({id(r) for r in runners}) != len(runners):
            raise ConfigurationError(
                "a scenario runner cannot ride in one batch twice"
            )
        self.runners: List[ScenarioRunner] = list(runners)

    # ------------------------------------------------------------------
    def run(
        self,
        schedules: Sequence[Sequence[WorkloadTrace]],
        modes: Optional[Sequence[Optional[Sequence[ThermalMode]]]] = None,
    ) -> List[List[RunResult]]:
        """Execute one schedule per lane; chains come back in lane order.

        ``modes`` optionally gives per-position thermal modes per lane
        (``None`` entries fall back to that lane's default mode).
        """
        runners = self.runners
        schedules = [list(s) for s in schedules]
        if len(schedules) != len(runners):
            raise ConfigurationError(
                "got %d schedules for %d scenario lanes"
                % (len(schedules), len(runners))
            )
        if modes is not None and len(modes) != len(runners):
            raise ConfigurationError(
                "got %d mode sequences for %d scenario lanes"
                % (len(modes), len(runners))
            )
        lane_modes: List[List[ThermalMode]] = []
        for i, runner in enumerate(runners):
            if not schedules[i]:
                raise ConfigurationError(
                    "scenario needs at least one workload"
                )
            given = None if modes is None else modes[i]
            if given is None:
                lane_modes.append([runner.mode] * len(schedules[i]))
                continue
            given = list(given)
            if len(given) != len(schedules[i]):
                raise ConfigurationError(
                    "lane %d: %d modes for %d workloads"
                    % (i, len(given), len(schedules[i]))
                )
            for mode in given:
                if not isinstance(mode, ThermalMode):
                    raise ConfigurationError(
                        "modes must be ThermalModes (got %r)" % (mode,)
                    )
            if ThermalMode.DTPM in given and runner.dtpm is None:
                raise ConfigurationError("DTPM scenarios need a DtpmGovernor")
            lane_modes.append(given)

        results: List[List[RunResult]] = [[] for _ in runners]
        for pos in range(max(len(s) for s in schedules)):
            lane_ids = [
                i for i in range(len(runners)) if pos < len(schedules[i])
            ]
            sims: List[Simulator] = []
            idle_steps: List[int] = []
            for i in lane_ids:
                runner = runners[i]
                seed0 = (
                    runner.base_seed
                    if runner.base_seed is not None
                    else runner.config.seed
                )
                carrying = runner._carry_temps_k is not None
                sim = Simulator(
                    schedules[i][pos],
                    lane_modes[i][pos],
                    dtpm=runner.dtpm,
                    spec=runner.spec,
                    config=runner.config,
                    # the first run starts from the configured device state;
                    # later runs inherit the carried thermal state verbatim
                    warm_start_c=None if carrying else runner.initial_temp_c,
                    max_duration_s=runner.max_duration_s,
                    seed=seed0 + pos,
                    consumers=runner.consumers,
                )
                if carrying:
                    sim.board.network.set_temperatures_k(
                        runner._carry_temps_k
                    )
                sims.append(sim)
                idle_steps.append(
                    int(round(runner.idle_gap_s / IDLE_STEP_S))
                    if carrying and runner.idle_gap_s > 0
                    else 0
                )
            self._idle(sims, idle_steps)
            for k, result in enumerate(BatchSimulator(sims).run()):
                i = lane_ids[k]
                if runners[i].annotate:
                    result.notes.append("scenario position %d" % pos)
                results[i].append(result)
                runners[i]._carry_temps_k = (
                    sims[k].board.network.temperatures_k
                )
        return results

    # ------------------------------------------------------------------
    @staticmethod
    def _idle(sims: Sequence[Simulator], idle_steps: Sequence[int]) -> None:
        """Cool the carrying lanes at near-idle for their configured gaps.

        One batched RC integration advances every idling lane together:
        lanes with shorter gaps drop out after their remaining substeps,
        so per-lane gap lengths are free to differ without masking any
        kernel (every advance is elementwise over the lanes it covers,
        which keeps the cooldown bit-identical to the serial per-board
        ``step`` loop).  The idle gap is not part of any benchmark's
        accounting, so each lane's meter is reset afterwards.
        """
        lanes = [k for k, steps in enumerate(idle_steps) if steps > 0]
        if not lanes:
            return
        for k in lanes:
            board = sims[k].board
            board.soc.big.set_frequency(sims[k].spec.big_opp.f_min_hz)
            board.soc.gpu.set_utilisation(0.0)
            board.soc.mem.set_traffic(IDLE_MEM_TRAFFIC)
        plant = BatchPlant([sims[k].board for k in lanes])
        remaining = {k: idle_steps[k] for k in lanes}
        active = list(lanes)
        while active:
            chunk = min(remaining[k] for k in active)
            idx = [lanes.index(k) for k in active]
            state = plant.gather(idx)
            big = np.tile(np.asarray(IDLE_BIG_UTILS), (len(idx), 1))
            little = np.zeros((len(idx), len(IDLE_BIG_UTILS)))
            ones = np.ones(len(idx))
            # power_every=1 keeps the historical per-substep power
            # re-evaluation: the cooldown is pinned bit-identical to a
            # serial per-board ``step`` loop, not to the engine's
            # zero-order-hold control intervals.
            plant.advance_interval(
                state, idx, big, little, ones, ones, IDLE_STEP_S, chunk,
                power_every=1,
            )
            plant.scatter(state, idx)
            for k in active:
                remaining[k] -= chunk
            active = [k for k in active if remaining[k] > 0]
        for k in lanes:
            sims[k].board.meter.reset()


# ---------------------------------------------------------------------------
# schedule generators
# ---------------------------------------------------------------------------
ScheduleEntry = Union[WorkloadTrace, Tuple[WorkloadTrace, ThermalMode]]


def diurnal(
    day: Sequence[Union[WorkloadTrace, str, Tuple]],
    days: int = 2,
    night: Optional[WorkloadTrace] = None,
    night_s: float = 90.0,
    night_mode: Optional[ThermalMode] = None,
    night_seed: int = 2015,
) -> Tuple[ScheduleEntry, ...]:
    """A multi-day usage schedule: the day's apps repeated ``days`` times.

    Consecutive days are separated by an *overnight* position -- a
    low-intensity synthetic workload (``night_s`` nominal seconds of
    background/standby activity), so every later day starts from the
    realistic morning thermal state the night left behind rather than
    from the previous evening's peak.  Combine with the schedule's
    ``idle_gap_s`` (the pocket time between apps, applied before every
    carried position including the overnight ones) for full diurnal
    grids.

    ``day`` entries may be workloads, benchmark names, or
    ``(workload-or-name, mode)`` pairs (per-position thermal modes, as
    accepted by :class:`~repro.runner.ExperimentMatrix` schedules);
    ``night_mode`` attaches a mode to the overnight positions.  The
    flattened schedule is returned as a tuple suitable for the matrix's
    ``schedules`` axis or (workloads only) a spec's ``history``.
    """
    from repro.workloads.generator import synthesize

    entries = [resolve_schedule_entry(e) for e in day]
    if not entries:
        raise ConfigurationError("diurnal needs at least one workload per day")
    if days < 1:
        raise ConfigurationError("days must be >= 1")
    if night is None:
        night = synthesize(
            "low", night_s, threads=1, seed=night_seed, name="overnight"
        )
    night_entry: ScheduleEntry = (
        night if night_mode is None else (night, night_mode)
    )
    out: List[ScheduleEntry] = []
    for d in range(days):
        if d:
            out.append(night_entry)
        out.extend(entries)
    return tuple(out)


def resolve_schedule_entry(entry) -> ScheduleEntry:
    """Normalise one schedule entry to a workload or (workload, mode) pair."""
    if isinstance(entry, tuple):
        if len(entry) != 2:
            raise ConfigurationError(
                "schedule entries must be workloads or (workload, mode) "
                "pairs (got a %d-tuple)" % len(entry)
            )
        workload, mode = entry
        if isinstance(mode, str):
            try:
                mode = ThermalMode(mode)
            except ValueError:
                raise ConfigurationError(
                    "unknown thermal mode %r" % (mode,)
                ) from None
        if not isinstance(mode, ThermalMode):
            raise ConfigurationError(
                "schedule entry modes must be ThermalModes (got %r)" % (mode,)
            )
        return (_resolve_workload(workload), mode)
    return _resolve_workload(entry)


def _resolve_workload(workload) -> WorkloadTrace:
    if isinstance(workload, str):
        return get_benchmark(workload)
    if not isinstance(workload, WorkloadTrace):
        raise ConfigurationError(
            "schedule entries must be WorkloadTraces or benchmark names "
            "(got %r)" % type(workload).__name__
        )
    return workload
