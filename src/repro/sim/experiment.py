"""Experiment harness: the four configurations of Section 6.2.

``run_benchmark`` executes one (benchmark, configuration) cell;
``compare_modes`` produces a full row of the evaluation (default-with-fan
vs. without-fan vs. reactive heuristic vs. proposed DTPM); and
``dtpm_vs_default`` yields the Fig. 6.9 comparison rows.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.config import SimulationConfig
from repro.core.dtpm import DtpmGovernor
from repro.platform.specs import PlatformSpec
from repro.power.characterization import default_power_model
from repro.sim.engine import Simulator, ThermalMode
from repro.sim.metrics import (
    ComparisonRow,
    performance_loss_pct,
    power_savings_pct,
)
from repro.sim.models import ModelBundle, default_models
from repro.sim.run_result import RunResult
from repro.workloads.trace import WorkloadTrace


def make_dtpm_governor(
    models: ModelBundle = None,
    spec: PlatformSpec = None,
    config: SimulationConfig = None,
) -> DtpmGovernor:
    """Assemble a DTPM governor from a model bundle.

    The power model is re-instantiated so each run starts with fresh
    alpha*C estimators (the leakage fits are shared -- they are static
    characterization products).
    """
    models = models or default_models()
    spec = spec or PlatformSpec()
    power = default_power_model(spec)
    # carry over the characterized leakage fits
    for resource, fitted in models.power.models.items():
        power.models[resource].leakage = fitted.leakage
    return DtpmGovernor(models.thermal, power, spec=spec, config=config)


def run_benchmark(
    workload: WorkloadTrace,
    mode: ThermalMode,
    models: ModelBundle = None,
    spec: PlatformSpec = None,
    config: SimulationConfig = None,
    warm_start_c: float = 52.0,
    max_duration_s: float = 900.0,
    seed: Optional[int] = None,
) -> RunResult:
    """Run one benchmark under one thermal-management configuration."""
    dtpm = None
    if mode is ThermalMode.DTPM:
        dtpm = make_dtpm_governor(models, spec, config)
    sim = Simulator(
        workload,
        mode,
        dtpm=dtpm,
        spec=spec,
        config=config,
        warm_start_c=warm_start_c,
        max_duration_s=max_duration_s,
        seed=seed,
    )
    return sim.run()


def compare_modes(
    workload: WorkloadTrace,
    modes: Sequence[ThermalMode] = tuple(ThermalMode),
    models: ModelBundle = None,
    spec: PlatformSpec = None,
    config: SimulationConfig = None,
    warm_start_c: float = 52.0,
    max_duration_s: float = 900.0,
) -> Dict[ThermalMode, RunResult]:
    """Run one benchmark under several configurations."""
    if any(m is ThermalMode.DTPM for m in modes) and models is None:
        models = default_models()
    return {
        mode: run_benchmark(
            workload,
            mode,
            models=models,
            spec=spec,
            config=config,
            warm_start_c=warm_start_c,
            max_duration_s=max_duration_s,
        )
        for mode in modes
    }


def dtpm_vs_default(
    workloads: Iterable[WorkloadTrace],
    models: ModelBundle = None,
    spec: PlatformSpec = None,
    config: SimulationConfig = None,
    warm_start_c: float = 52.0,
    max_duration_s: float = 900.0,
) -> List[ComparisonRow]:
    """The Fig. 6.9 sweep: DTPM against the fan-cooled default."""
    models = models or default_models()
    rows: List[ComparisonRow] = []
    for workload in workloads:
        base = run_benchmark(
            workload,
            ThermalMode.DEFAULT_WITH_FAN,
            models=models,
            spec=spec,
            config=config,
            warm_start_c=warm_start_c,
            max_duration_s=max_duration_s,
        )
        dtpm = run_benchmark(
            workload,
            ThermalMode.DTPM,
            models=models,
            spec=spec,
            config=config,
            warm_start_c=warm_start_c,
            max_duration_s=max_duration_s,
        )
        rows.append(
            ComparisonRow(
                benchmark=workload.name,
                category=workload.category,
                power_savings_pct=power_savings_pct(base, dtpm),
                performance_loss_pct=performance_loss_pct(base, dtpm),
                baseline_power_w=base.average_platform_power_w,
                dtpm_power_w=dtpm.average_platform_power_w,
                baseline_time_s=base.execution_time_s,
                dtpm_time_s=dtpm.execution_time_s,
            )
        )
    return rows
