"""Experiment harness: the four configurations of Section 6.2.

``run_benchmark`` executes one (benchmark, configuration) cell;
``compare_modes`` produces a full row of the evaluation (default-with-fan
vs. without-fan vs. reactive heuristic vs. proposed DTPM); and
``dtpm_vs_default`` yields the Fig. 6.9 comparison rows.

All three are thin wrappers over :mod:`repro.runner`: they build
:class:`~repro.runner.RunSpec` grids and execute them through a
:class:`~repro.runner.ParallelRunner`, so callers can opt into process
fan-out and content-addressed result caching by passing their own runner.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.config import SimulationConfig
from repro.errors import SimulationError
from repro.platform.specs import PlatformSpec
from repro.runner.execute import execute_spec, make_dtpm_governor
from repro.runner.runner import ParallelRunner, ensure_runner
from repro.runner.spec import RunSpec
from repro.sim.engine import ThermalMode
from repro.sim.metrics import (
    ComparisonRow,
    performance_loss_pct,
    power_savings_pct,
)
from repro.sim.models import ModelBundle, default_models
from repro.sim.run_result import RunResult
from repro.workloads.trace import WorkloadTrace

__all__ = [
    "make_dtpm_governor",
    "run_benchmark",
    "compare_modes",
    "comparison_specs",
    "comparison_rows",
    "dtpm_vs_default",
    "comparison_row",
]


def run_benchmark(
    workload: WorkloadTrace,
    mode: ThermalMode,
    models: Optional[ModelBundle] = None,
    spec: Optional[PlatformSpec] = None,
    config: Optional[SimulationConfig] = None,
    warm_start_c: float = 52.0,
    max_duration_s: float = 900.0,
    seed: Optional[int] = None,
) -> RunResult:
    """Run one benchmark under one thermal-management configuration."""
    run_spec = RunSpec(
        workload=workload,
        mode=mode,
        config=config,
        platform=spec,
        warm_start_c=warm_start_c,
        max_duration_s=max_duration_s,
        seed=seed,
    )
    return execute_spec(run_spec, models=models)


def compare_modes(
    workload: WorkloadTrace,
    modes: Sequence[ThermalMode] = tuple(ThermalMode),
    models: Optional[ModelBundle] = None,
    spec: Optional[PlatformSpec] = None,
    config: Optional[SimulationConfig] = None,
    warm_start_c: float = 52.0,
    max_duration_s: float = 900.0,
    runner: Optional[ParallelRunner] = None,
) -> Dict[ThermalMode, RunResult]:
    """Run one benchmark under several configurations."""
    if any(m is ThermalMode.DTPM for m in modes) and models is None:
        models = default_models()
    specs = [
        RunSpec(
            workload=workload,
            mode=mode,
            config=config,
            platform=spec,
            warm_start_c=warm_start_c,
            max_duration_s=max_duration_s,
        )
        for mode in modes
    ]
    results = ensure_runner(runner, models).run(specs)
    return dict(zip(modes, results))


def comparison_row(
    workload: WorkloadTrace, base: RunResult, dtpm: RunResult
) -> ComparisonRow:
    """One Fig.-6.9 row from a (baseline, DTPM) result pair."""
    return ComparisonRow(
        benchmark=workload.name,
        category=workload.category,
        power_savings_pct=power_savings_pct(base, dtpm),
        performance_loss_pct=performance_loss_pct(base, dtpm),
        baseline_power_w=base.average_platform_power_w,
        dtpm_power_w=dtpm.average_platform_power_w,
        baseline_time_s=base.execution_time_s,
        dtpm_time_s=dtpm.execution_time_s,
    )


def comparison_specs(
    workloads: Sequence[WorkloadTrace],
    spec: Optional[PlatformSpec] = None,
    config: Optional[SimulationConfig] = None,
    warm_start_c: float = 52.0,
    max_duration_s: float = 900.0,
) -> List[RunSpec]:
    """The Fig. 6.9 grid as declarative specs: (baseline, DTPM) per workload.

    Workload-major, baseline first -- the one expansion shared by
    :func:`dtpm_vs_default` and the report generator's savings section,
    so both read (and warm) identical cache entries.
    """
    return [
        RunSpec(
            workload=workload,
            mode=mode,
            config=config,
            platform=spec,
            warm_start_c=warm_start_c,
            max_duration_s=max_duration_s,
        )
        for workload in workloads
        for mode in (ThermalMode.DEFAULT_WITH_FAN, ThermalMode.DTPM)
    ]


def comparison_rows(
    workloads: Sequence[WorkloadTrace], results: Sequence[RunResult]
) -> List[ComparisonRow]:
    """Fig.-6.9 rows from :func:`comparison_specs`-ordered results."""
    if len(results) != 2 * len(workloads):
        raise SimulationError(
            "%d workloads need paired results, got %d"
            % (len(workloads), len(results))
        )
    return [
        comparison_row(workload, results[2 * i], results[2 * i + 1])
        for i, workload in enumerate(workloads)
    ]


def dtpm_vs_default(
    workloads: Iterable[WorkloadTrace],
    models: Optional[ModelBundle] = None,
    spec: Optional[PlatformSpec] = None,
    config: Optional[SimulationConfig] = None,
    warm_start_c: float = 52.0,
    max_duration_s: float = 900.0,
    runner: Optional[ParallelRunner] = None,
) -> List[ComparisonRow]:
    """The Fig. 6.9 sweep: DTPM against the fan-cooled default."""
    models = models or default_models()
    workloads = list(workloads)
    specs = comparison_specs(
        workloads,
        spec=spec,
        config=config,
        warm_start_c=warm_start_c,
        max_duration_s=max_duration_s,
    )
    results = ensure_runner(runner, models).run(specs)
    return comparison_rows(workloads, results)
