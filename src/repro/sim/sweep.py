"""Parameter sweeps over the closed-loop experiment space.

Utilities behind the ablation benchmarks: sweep a single knob (thermal
constraint, prediction horizon, guard band, identification method, sensor
noise) while holding everything else at the paper's defaults, and collect
the regulation/power/performance outcome per point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.config import SimulationConfig
from repro.core.dtpm import DtpmGovernor
from repro.errors import ConfigurationError
from repro.platform.specs import PlatformSpec
from repro.sim.engine import Simulator, ThermalMode
from repro.sim.experiment import make_dtpm_governor
from repro.sim.models import ModelBundle
from repro.sim.run_result import RunResult
from repro.workloads.trace import WorkloadTrace


@dataclass(frozen=True)
class SweepPoint:
    """Outcome of one sweep point."""

    value: float
    result: RunResult
    peak_c: float
    overshoot_c: float
    execution_time_s: float
    average_power_w: float
    interventions: int


def _evaluate(
    result: RunResult, constraint_c: float, value: float
) -> SweepPoint:
    return SweepPoint(
        value=value,
        result=result,
        peak_c=result.peak_temp_c(),
        overshoot_c=result.constraint_exceedance_c(constraint_c),
        execution_time_s=result.execution_time_s,
        average_power_w=result.average_platform_power_w,
        interventions=result.interventions,
    )


def sweep_constraint(
    workload: WorkloadTrace,
    constraints_c: Sequence[float],
    models: ModelBundle,
    spec: PlatformSpec = None,
    warm_start_c: float = 52.0,
    max_duration_s: float = 900.0,
) -> List[SweepPoint]:
    """Run the DTPM at several temperature constraints."""
    points = []
    for constraint in constraints_c:
        config = SimulationConfig(t_constraint_c=constraint)
        governor = make_dtpm_governor(models, spec=spec, config=config)
        sim = Simulator(
            workload,
            ThermalMode.DTPM,
            dtpm=governor,
            spec=spec,
            config=config,
            warm_start_c=warm_start_c,
            max_duration_s=max_duration_s,
        )
        points.append(_evaluate(sim.run(), constraint, constraint))
    return points


def sweep_horizon(
    workload: WorkloadTrace,
    horizons_steps: Sequence[int],
    models: ModelBundle,
    spec: PlatformSpec = None,
    warm_start_c: float = 52.0,
    max_duration_s: float = 900.0,
) -> List[SweepPoint]:
    """Run the DTPM with several prediction horizons (paper default: 10)."""
    points = []
    for horizon in horizons_steps:
        if horizon < 1:
            raise ConfigurationError("horizon must be >= 1")
        config = SimulationConfig(prediction_horizon_steps=horizon)
        governor = make_dtpm_governor(models, spec=spec, config=config)
        sim = Simulator(
            workload,
            ThermalMode.DTPM,
            dtpm=governor,
            spec=spec,
            config=config,
            warm_start_c=warm_start_c,
            max_duration_s=max_duration_s,
        )
        points.append(
            _evaluate(sim.run(), config.t_constraint_c, float(horizon))
        )
    return points


def sweep_guard_band(
    workload: WorkloadTrace,
    guard_bands_k: Sequence[float],
    models: ModelBundle,
    spec: PlatformSpec = None,
    warm_start_c: float = 52.0,
    max_duration_s: float = 900.0,
) -> List[SweepPoint]:
    """Run the DTPM with several predictor guard bands."""
    from repro.power.characterization import default_power_model

    points = []
    config = SimulationConfig()
    spec = spec or PlatformSpec()
    for guard in guard_bands_k:
        power = default_power_model(spec)
        for resource, fitted in models.power.models.items():
            power.models[resource].leakage = fitted.leakage
        governor = DtpmGovernor(
            models.thermal, power, spec=spec, config=config, guard_band_k=guard
        )
        sim = Simulator(
            workload,
            ThermalMode.DTPM,
            dtpm=governor,
            spec=spec,
            config=config,
            warm_start_c=warm_start_c,
            max_duration_s=max_duration_s,
        )
        points.append(_evaluate(sim.run(), config.t_constraint_c, guard))
    return points


def sweep_sensor_noise(
    workload: WorkloadTrace,
    noise_levels_c: Sequence[float],
    models: ModelBundle,
    spec: PlatformSpec = None,
    warm_start_c: float = 52.0,
    max_duration_s: float = 900.0,
) -> List[SweepPoint]:
    """Run the DTPM under increasing thermal-sensor noise."""
    points = []
    for noise in noise_levels_c:
        config = SimulationConfig(temp_sensor_noise_c=noise)
        governor = make_dtpm_governor(models, spec=spec, config=config)
        sim = Simulator(
            workload,
            ThermalMode.DTPM,
            dtpm=governor,
            spec=spec,
            config=config,
            warm_start_c=warm_start_c,
            max_duration_s=max_duration_s,
        )
        points.append(_evaluate(sim.run(), config.t_constraint_c, noise))
    return points
