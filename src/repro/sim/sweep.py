"""Parameter sweeps over the closed-loop experiment space.

Utilities behind the ablation benchmarks: sweep a single knob (thermal
constraint, prediction horizon, guard band, identification method, sensor
noise) while holding everything else at the paper's defaults, and collect
the regulation/power/performance outcome per point.

Each sweep is a thin wrapper over :mod:`repro.runner`: it declares the
knob's axis as an :class:`~repro.runner.ExperimentMatrix` and hands it to
a :class:`~repro.runner.ParallelRunner`.  Pass a runner with workers > 1
and/or a result cache to fan the points out over processes and make
repeated sweeps near-free; the default is serial, uncached in-process
execution (identical results either way).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.config import SimulationConfig
from repro.platform.specs import PlatformSpec
from repro.runner.runner import ParallelRunner, ensure_runner
from repro.runner.spec import ExperimentMatrix, RunSpec
from repro.sim.engine import ThermalMode
from repro.sim.models import ModelBundle
from repro.sim.run_result import RunResult
from repro.sim.scenario import diurnal
from repro.workloads.trace import WorkloadTrace


@dataclass(frozen=True)
class SweepPoint:
    """Outcome of one sweep point."""

    value: float
    result: RunResult
    peak_c: float
    overshoot_c: float
    execution_time_s: float
    average_power_w: float
    interventions: int


def _evaluate(
    result: RunResult, constraint_c: float, value: float
) -> SweepPoint:
    return SweepPoint(
        value=value,
        result=result,
        peak_c=result.peak_temp_c(),
        overshoot_c=result.constraint_exceedance_c(constraint_c),
        execution_time_s=result.execution_time_s,
        average_power_w=result.average_platform_power_w,
        interventions=result.interventions,
    )


def _run_matrix(
    matrix: ExperimentMatrix,
    models: ModelBundle,
    runner: Optional[ParallelRunner],
) -> List[RunResult]:
    return ensure_runner(runner, models).run(matrix)


def sweep_constraint(
    workload: WorkloadTrace,
    constraints_c: Sequence[float],
    models: ModelBundle,
    spec: Optional[PlatformSpec] = None,
    warm_start_c: float = 52.0,
    max_duration_s: float = 900.0,
    runner: Optional[ParallelRunner] = None,
) -> List[SweepPoint]:
    """Run the DTPM at several temperature constraints."""
    matrix = ExperimentMatrix(
        workloads=(workload,),
        modes=(ThermalMode.DTPM,),
        configs=tuple(
            SimulationConfig(t_constraint_c=c) for c in constraints_c
        ),
        platform=spec,
        warm_start_c=warm_start_c,
        max_duration_s=max_duration_s,
    )
    results = _run_matrix(matrix, models, runner)
    return [
        _evaluate(result, constraint, constraint)
        for constraint, result in zip(constraints_c, results)
    ]


def sweep_horizon(
    workload: WorkloadTrace,
    horizons_steps: Sequence[int],
    models: ModelBundle,
    spec: Optional[PlatformSpec] = None,
    warm_start_c: float = 52.0,
    max_duration_s: float = 900.0,
    runner: Optional[ParallelRunner] = None,
) -> List[SweepPoint]:
    """Run the DTPM with several prediction horizons (paper default: 10)."""
    # SimulationConfig validates horizon >= 1 (ConfigurationError otherwise)
    configs = tuple(
        SimulationConfig(prediction_horizon_steps=h) for h in horizons_steps
    )
    matrix = ExperimentMatrix(
        workloads=(workload,),
        modes=(ThermalMode.DTPM,),
        configs=configs,
        platform=spec,
        warm_start_c=warm_start_c,
        max_duration_s=max_duration_s,
    )
    results = _run_matrix(matrix, models, runner)
    return [
        _evaluate(result, config.t_constraint_c, float(horizon))
        for horizon, config, result in zip(horizons_steps, configs, results)
    ]


def sweep_guard_band(
    workload: WorkloadTrace,
    guard_bands_k: Sequence[float],
    models: ModelBundle,
    spec: Optional[PlatformSpec] = None,
    warm_start_c: float = 52.0,
    max_duration_s: float = 900.0,
    runner: Optional[ParallelRunner] = None,
) -> List[SweepPoint]:
    """Run the DTPM with several predictor guard bands."""
    config = SimulationConfig()
    matrix = ExperimentMatrix(
        workloads=(workload,),
        modes=(ThermalMode.DTPM,),
        configs=(config,),
        guard_bands_k=tuple(guard_bands_k),
        platform=spec,
        warm_start_c=warm_start_c,
        max_duration_s=max_duration_s,
    )
    results = _run_matrix(matrix, models, runner)
    return [
        _evaluate(result, config.t_constraint_c, guard)
        for guard, result in zip(guard_bands_k, results)
    ]


def sweep_idle_gap(
    schedule: Sequence[WorkloadTrace],
    gaps_s: Sequence[float],
    models: Optional[ModelBundle] = None,
    mode: ThermalMode = ThermalMode.DTPM,
    spec: Optional[PlatformSpec] = None,
    initial_temp_c: float = 35.0,
    max_duration_s: float = 900.0,
    runner: Optional[ParallelRunner] = None,
) -> List[SweepPoint]:
    """Sweep the between-apps idle gap of a back-to-back scenario.

    Each point runs ``schedule`` (two or more workloads, thermal state
    carried across runs) with a different cooling gap and reports the
    outcome of the **final** workload -- the one that starts hottest.
    Points are scenario :class:`~repro.runner.RunSpec`\\ s, so they fan
    out and cache through the runner like any other grid.
    """
    schedule = tuple(schedule)
    if len(schedule) < 2:
        from repro.errors import ConfigurationError

        raise ConfigurationError("idle-gap sweep needs a schedule of >= 2 runs")
    config = SimulationConfig()
    specs = [
        RunSpec(
            workload=schedule[-1],
            mode=mode,
            config=config,
            platform=spec,
            warm_start_c=initial_temp_c,
            max_duration_s=max_duration_s,
            history=schedule[:-1],
            idle_gap_s=gap,
        )
        for gap in gaps_s
    ]
    results = ensure_runner(runner, models).run(specs)
    return [
        _evaluate(result, config.t_constraint_c, gap)
        for gap, result in zip(gaps_s, results)
    ]


def sweep_days(
    day: Sequence[WorkloadTrace],
    days_axis: Sequence[int],
    models: Optional[ModelBundle] = None,
    mode: ThermalMode = ThermalMode.DTPM,
    night_s: float = 90.0,
    idle_gap_s: float = 30.0,
    spec: Optional[PlatformSpec] = None,
    initial_temp_c: float = 35.0,
    max_duration_s: float = 900.0,
    runner: Optional[ParallelRunner] = None,
) -> List[SweepPoint]:
    """Sweep how many consecutive days a diurnal schedule runs.

    Each point executes :func:`~repro.sim.scenario.diurnal`\\ 's repeated
    day (apps separated by ``idle_gap_s`` pocket time, days separated by
    an ``night_s`` overnight standby position) and reports the outcome of
    the **final** app of the last day.  Shorter points are chain prefixes
    of the longest, so the runner executes only the longest schedule and
    harvests every other point from its intermediate positions.
    """
    from repro.errors import ConfigurationError

    if not days_axis or any(d < 1 for d in days_axis):
        raise ConfigurationError("days_axis must name positive day counts")
    config = SimulationConfig()
    specs = []
    for days in days_axis:
        schedule = diurnal(tuple(day), days=days, night_s=night_s)
        specs.append(
            RunSpec(
                workload=schedule[-1],
                mode=mode,
                config=config,
                platform=spec,
                warm_start_c=initial_temp_c,
                max_duration_s=max_duration_s,
                history=schedule[:-1],
                idle_gap_s=idle_gap_s if len(schedule) > 1 else 0.0,
            )
        )
    results = ensure_runner(runner, models).run(specs)
    return [
        _evaluate(result, config.t_constraint_c, float(days))
        for days, result in zip(days_axis, results)
    ]


def sweep_sensor_noise(
    workload: WorkloadTrace,
    noise_levels_c: Sequence[float],
    models: ModelBundle,
    spec: Optional[PlatformSpec] = None,
    warm_start_c: float = 52.0,
    max_duration_s: float = 900.0,
    runner: Optional[ParallelRunner] = None,
) -> List[SweepPoint]:
    """Run the DTPM under increasing thermal-sensor noise."""
    configs = tuple(
        SimulationConfig(temp_sensor_noise_c=n) for n in noise_levels_c
    )
    matrix = ExperimentMatrix(
        workloads=(workload,),
        modes=(ThermalMode.DTPM,),
        configs=configs,
        platform=spec,
        warm_start_c=warm_start_c,
        max_duration_s=max_duration_s,
    )
    results = _run_matrix(matrix, models, runner)
    return [
        _evaluate(result, config.t_constraint_c, noise)
        for noise, config, result in zip(noise_levels_c, configs, results)
    ]
