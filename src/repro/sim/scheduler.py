"""Thread placement and load accounting (the kernel's load balancer).

The paper leans on the stock kernel for scheduling ("the kernel of modern
platforms already considers scheduling and migration techniques such as
load balancer"); this module reproduces its observable effect: worker
threads spread round-robin over the online cores of the active cluster,
displaced threads fold onto the remaining cores after a hotplug, and the
Android background load rides on every online core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import SimulationError
from repro.governors.base import PlatformConfig
from repro.platform.specs import PlatformSpec, Resource
from repro.workloads.trace import WorkloadProgress, WorkloadTrace

#: Reference speed a demand of 1.0 corresponds to (big core at f_max).
_REFERENCE_SPEED_HZ = 1.6e9


@dataclass
class SchedulerOutput:
    """Per-interval load picture handed to the plant and the governors."""

    big_utils: Tuple[float, float, float, float]
    little_utils: Tuple[float, float, float, float]
    gpu_util: float
    mem_traffic: float
    work_gcycles: float  # benchmark work retired this interval
    cpu_activity: float
    gpu_activity: float

    @property
    def active_cluster_utils(self) -> Tuple[float, ...]:
        """Utilisations of whichever cluster carries the threads."""
        return self.big_utils if any(self.big_utils) else self.little_utils


class LoadBalancer:
    """Maps a workload onto a platform configuration each interval."""

    def __init__(self, spec: PlatformSpec, rng: np.random.Generator) -> None:
        self.spec = spec
        self.rng = rng

    def assign(
        self,
        trace: WorkloadTrace,
        progress: WorkloadProgress,
        config: PlatformConfig,
        dt_s: float,
        frozen_s: float = 0.0,
    ) -> SchedulerOutput:
        """Compute per-core utilisation and retired work for one interval.

        Parameters
        ----------
        frozen_s:
            Time lost to migration/hotplug stalls inside this interval; the
            workload retires no work (and generates no load) during it.
        """
        if dt_s <= 0:
            raise SimulationError("interval must be positive")
        frozen_s = min(max(0.0, frozen_s), dt_s)
        run_frac = (dt_s - frozen_s) / dt_s

        phase = trace.phase_at(progress.elapsed_s)
        demand = trace.thread_demand * phase.demand
        if trace.demand_jitter > 0:
            demand *= 1.0 + self.rng.normal(0.0, trace.demand_jitter)
        demand = min(1.0, max(0.0, demand))

        on_big = config.cluster is Resource.BIG
        online = config.big_online if on_big else config.little_online
        freq = config.big_freq_hz if on_big else config.little_freq_hz
        ipc = (
            self.spec.big_core.ipc_factor
            if on_big
            else self.spec.little_core.ipc_factor
        )

        # round-robin thread placement over online cores
        threads_per_core = [0] * online
        for t in range(trace.threads):
            threads_per_core[t % online] += 1

        # Thread demand is expressed in cycles/s at the big core's maximum
        # speed: demand = 1 is CPU-bound (saturates any core), demand < 1 is
        # rate-limited (games targeting a frame rate, codecs pacing a
        # stream).  A throttled core first absorbs the slack before the
        # workload actually slows -- which is why the paper's games lose so
        # little performance under DTPM.
        demand_hz = demand * _REFERENCE_SPEED_HZ
        capacity_hz = freq * ipc
        utils = [0.0, 0.0, 0.0, 0.0]
        work = 0.0
        for core in range(online):
            need_hz = threads_per_core[core] * demand_hz
            thread_util = min(1.0, need_hz / capacity_hz) if need_hz else 0.0
            utils[core] = min(1.0, thread_util + trace.background_util)
            work += min(need_hz, capacity_hz) * dt_s * run_frac / 1e9
        utils = tuple(utils[:4])

        # GPU demand is defined at f_max: a slower GPU clock raises the busy
        # fraction until it saturates (frame production then slows, which is
        # the performance cost of the last-resort GPU throttle).
        gpu_util = 0.0
        if trace.gpu_demand > 0:
            ratio = self.spec.gpu_opp.f_max_hz / config.gpu_freq_hz
            gpu_util = min(1.0, trace.gpu_demand * phase.gpu * ratio)
        mem = min(1.0, trace.mem_traffic * phase.mem * (0.4 + 0.6 * demand))

        big_utils = utils if on_big else (0.0, 0.0, 0.0, 0.0)
        little_utils = (0.0, 0.0, 0.0, 0.0) if on_big else utils
        return SchedulerOutput(
            big_utils=big_utils,
            little_utils=little_utils,
            gpu_util=gpu_util * run_frac,
            mem_traffic=mem * run_frac,
            work_gcycles=work,
            cpu_activity=trace.activity,
            gpu_activity=trace.gpu_activity,
        )
