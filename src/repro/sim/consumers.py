"""Streaming trace consumers: observe runs interval-by-interval.

The :class:`Simulator` loop (and :class:`~repro.sim.scenario.ScenarioRunner`
on its behalf) publishes every recorded interval to a list of
:class:`TraceConsumer` observers, so monitoring, online metrics and report
sections can aggregate incrementally instead of materialising whole traces
after the fact.  The idiom follows mixed-domain co-simulation frameworks
(observer objects registered with the engine, notified per step).

Consumers see exactly what the trace records: a mapping from
``RUN_COLUMNS`` names to the interval's values.  :func:`replay` feeds an
already-recorded :class:`RunResult` through consumers, which is how cached
results and freshly simulated ones share one aggregation code path.
"""

from __future__ import annotations

import math
import queue
import threading
from typing import Dict, Iterable, Mapping, Optional, Sequence

from repro.errors import SimulationError
from repro.sim.run_result import RunResult


class TraceConsumer:
    """Base observer: subclass and override the hooks you need.

    ``on_interval`` receives one mapping per control interval, keyed by the
    recorder's column names (:data:`~repro.sim.run_result.RUN_COLUMNS` for
    engine runs).  The mapping is shared with the recorder's append call --
    treat it as read-only and do not hold a reference across intervals.
    """

    def on_run_start(
        self, benchmark: str, mode: str, columns: Sequence[str]
    ) -> None:
        """Called once before the first interval of a run."""

    def on_interval(self, values: Mapping[str, float]) -> None:
        """Called after every recorded control interval."""

    def on_run_end(self, result: RunResult) -> None:
        """Called once with the finished run's result."""


class ViolationCounter(TraceConsumer):
    """Counts predicted violations and controller interventions."""

    def __init__(self) -> None:
        self.violations = 0
        self.interventions = 0

    def on_run_start(self, benchmark, mode, columns) -> None:
        self.violations = 0
        self.interventions = 0

    def on_interval(self, values: Mapping[str, float]) -> None:
        if values["violation_predicted"] > 0.5:
            self.violations += 1
        if values["intervened"] > 0.5:
            self.interventions += 1


class RunningStats:
    """Incremental count/mean/variance/min/max (Welford's algorithm).

    ``variance`` is the population variance, matching ``np.var`` over the
    same samples.
    """

    __slots__ = ("count", "mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def push(self, x: float) -> None:
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (x - self.mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    @property
    def variance(self) -> float:
        if self.count == 0:
            raise SimulationError("no samples pushed")
        return self._m2 / self.count

    @property
    def band(self) -> float:
        """max - min of the pushed samples."""
        if self.count == 0:
            raise SimulationError("no samples pushed")
        return self.max - self.min


class StreamingStability(TraceConsumer):
    """Online regulation-quality statistics of ``max_temp_c``.

    Tracks the all-run peak plus settled-region statistics: every sample
    with ``time_s >= first_time + skip_s`` feeds a :class:`RunningStats`,
    which reproduces the post-hoc ``RunResult.temp_*`` metrics --
    including ``RunResult.settle_slice``'s short-trace clamp, so traces
    shorter than the skip window aggregate identically live, replayed and
    post hoc -- without ever materialising the trace.  The clamp widens
    the settled region to at least the trace's last two samples; a
    two-sample ring buffer of the most recent temperatures covers that
    case, so nothing beyond O(1) state is kept.

    With ``constraint_c`` set it also accumulates the exceedance numbers
    of :func:`repro.analysis.stats.regulation_quality`.
    """

    def __init__(
        self, skip_s: float = 15.0, constraint_c: Optional[float] = None
    ) -> None:
        if skip_s < 0:
            raise SimulationError("skip_s must be >= 0")
        self.skip_s = skip_s
        self.constraint_c = constraint_c
        self._t0: Optional[float] = None
        self.peak_c = -math.inf
        self.settled = RunningStats()
        self.exceedance = RunningStats()
        self._over_count = 0
        self._over_1c_count = 0
        self._tail: list = []

    def on_run_start(self, benchmark, mode, columns) -> None:
        self._t0 = None
        self.peak_c = -math.inf
        self.settled.reset()
        self.exceedance.reset()
        self._over_count = 0
        self._over_1c_count = 0
        self._tail = []

    def on_interval(self, values: Mapping[str, float]) -> None:
        t = values["time_s"]
        temp = values["max_temp_c"]
        if self._t0 is None:
            self._t0 = t
        if temp > self.peak_c:
            self.peak_c = temp
        self._tail.append(temp)
        if len(self._tail) > 2:
            del self._tail[0]
        if t >= self._t0 + self.skip_s:
            self.settled.push(temp)
            if self.constraint_c is not None:
                over = max(0.0, temp - self.constraint_c)
                self.exceedance.push(over)
                self._over_count += over > 0
                self._over_1c_count += over > 1.0

    # -- post-hoc-equivalent accessors ---------------------------------
    def _clamped(self) -> "RunningStats":
        """Settled-region temperatures with the short-trace clamp applied.

        ``settle_slice`` starts at ``min(first settled index, len - 2)``:
        with two or more settled samples the clamp is inert and the
        accumulated stats are exact; with fewer, the region is the last
        ``min(2, len)`` samples, rebuilt from the ring buffer.
        """
        if self.settled.count >= 2:
            return self.settled
        stats = RunningStats()
        for temp in self._tail:
            stats.push(temp)
        return stats

    @property
    def settled_samples(self) -> int:
        """Size of the clamped settled region (what the accessors cover)."""
        return self._clamped().count

    @property
    def average_temp_c(self) -> float:
        return self._clamped().mean

    @property
    def max_min_c(self) -> float:
        return self._clamped().band

    @property
    def variance_c2(self) -> float:
        return self._clamped().variance

    def regulation_quality(self) -> Dict[str, float]:
        """Constraint-exceedance summary over the (clamped) settled region."""
        if self.constraint_c is None:
            raise SimulationError("constructed without a constraint_c")
        if self.settled.count >= 2:
            stats = self.exceedance
            over_count, over_1c = self._over_count, self._over_1c_count
        else:
            stats = RunningStats()
            over_count = over_1c = 0
            for temp in self._tail:
                over = max(0.0, temp - self.constraint_c)
                stats.push(over)
                over_count += over > 0
                over_1c += over > 1.0
        if stats.count == 0:
            raise SimulationError("no settled samples observed")
        return {
            "peak_exceedance_c": stats.max,
            "mean_exceedance_c": stats.mean,
            "fraction_over": over_count / stats.count,
            "fraction_over_1c": over_1c / stats.count,
        }


class StreamingPower(TraceConsumer):
    """Online mean platform power and per-rail means over the trace."""

    RAILS = ("platform_power_w", "p_big_w", "p_little_w", "p_gpu_w", "p_mem_w")

    def __init__(self) -> None:
        self.rails = {r: RunningStats() for r in self.RAILS}

    def on_run_start(self, benchmark, mode, columns) -> None:
        for stats in self.rails.values():
            stats.reset()

    def on_interval(self, values: Mapping[str, float]) -> None:
        for rail, stats in self.rails.items():
            stats.push(values[rail])

    def mean_w(self, rail: str = "platform_power_w") -> float:
        return self.rails[rail].mean


class AsyncConsumerPump(TraceConsumer):
    """Drain downstream consumers on a worker thread.

    Wrap slow streaming observers (live plots, sockets, disk appenders)
    in a pump so they never stall the fused control loop: the engine's
    hooks enqueue onto a bounded queue and return immediately, a single
    daemon worker drains it in publish order.  Because the engine reuses
    its per-interval mapping, each interval is snapshotted into a fresh
    ``dict`` before crossing threads -- the downstream consumers keep the
    usual contract (read-only view, valid for the duration of the call).

    ``on_run_end`` joins the queue before forwarding, so by the time the
    engine's publish loop returns, the wrapped consumers have observed
    every interval: streaming aggregates equal a post-hoc :func:`replay`
    of the same run (the flush-on-finish contract,
    ``tests/test_consumers.py``).  A crashed downstream consumer parks
    the error and re-raises it on the publishing thread at the next
    hook, so failures surface in the run that caused them instead of
    dying silently on the worker.

    The pump is reusable across sequential runs but not concurrent ones
    (one queue, one ordering), matching how the engine publishes.
    """

    def __init__(
        self, consumers: Iterable[TraceConsumer], maxsize: int = 1024
    ) -> None:
        if maxsize <= 0:
            raise SimulationError("queue bound must be positive")
        self.consumers = list(consumers)
        self._queue: "queue.Queue" = queue.Queue(maxsize=maxsize)
        self._error_lock = threading.Lock()
        self._error: Optional[BaseException] = None  # guarded-by: _error_lock
        self._worker = threading.Thread(
            target=self._drain, name="consumer-pump", daemon=True
        )
        self._worker.start()

    # -- worker side ----------------------------------------------------
    def _drain(self) -> None:
        while True:
            hook, args = self._queue.get()
            try:
                if self._take_error(peek=True) is None:
                    for consumer in self.consumers:
                        getattr(consumer, hook)(*args)
            except BaseException as exc:  # noqa: BLE001 - parked for the caller
                with self._error_lock:
                    self._error = exc
            finally:
                self._queue.task_done()

    def _take_error(self, peek: bool = False) -> Optional[BaseException]:
        """Pop (or just read) the parked downstream error, atomically."""
        with self._error_lock:
            error = self._error
            if not peek:
                self._error = None
            return error

    def _publish(self, hook: str, *args) -> None:
        error = self._take_error()
        if error is not None:
            raise error
        self._queue.put((hook, args))

    # -- engine side ----------------------------------------------------
    def on_run_start(self, benchmark, mode, columns) -> None:
        self._publish("on_run_start", benchmark, mode, tuple(columns))

    def on_interval(self, values: Mapping[str, float]) -> None:
        # snapshot: the engine reuses the mapping it publishes
        self._publish("on_interval", dict(values))

    def on_run_end(self, result: RunResult) -> None:
        self._publish("on_run_end", result)
        self.flush()

    def flush(self) -> None:
        """Block until every queued interval has been consumed."""
        self._queue.join()
        error = self._take_error()
        if error is not None:
            raise error


def replay(result: RunResult, consumers: Iterable[TraceConsumer]) -> None:
    """Feed an already-recorded run through consumers.

    Bridges cached/deserialised results into the streaming code path: the
    consumers observe exactly the sequence of intervals a live simulation
    would have published -- plain Python ``float`` values, like the
    engine's per-interval mappings, never NumPy scalars -- followed by
    ``on_run_end(result)``.  The whole columnar trace converts in one
    C-level call and the per-interval mapping is reused (consumers must
    not hold it across intervals, same contract as a live run), so a
    replay does no per-row dict or scalar-boxing churn.
    """
    consumers = list(consumers)
    trace = result.trace
    columns = trace.columns
    for consumer in consumers:
        consumer.on_run_start(result.benchmark, result.mode, columns)
    if consumers:
        values: Dict[str, float] = {}
        for row in trace.array().tolist():
            values.update(zip(columns, row))
            for consumer in consumers:
                consumer.on_interval(values)
    for consumer in consumers:
        consumer.on_run_end(result)
