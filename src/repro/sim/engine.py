"""The closed-loop simulation engine.

Reproduces the paper's run-time stack at a 100 ms control period: the
kernel's load balancer places threads, ondemand + idle governors propose
the next configuration, the thermal-management layer of the selected
experimental configuration (Section 6.2) may overwrite it, the actuators
apply it (with migration/hotplug stalls), and the physical plant advances.

The physics is batched: a :class:`BatchSimulator` lock-steps ``B``
independent runs -- each with its own workload, mode, governor and
controller state -- and advances all their plants per control step
through one struct-of-arrays kernel
(:class:`~repro.platform.state.BatchPlant`).  :class:`Simulator` is the
``B = 1`` view of that same code path, and every batched kernel is
elementwise over the batch axis, so a batch of ``N`` runs produces traces
byte-identical to ``N`` runs executed one at a time.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence

import numpy as np

from repro.config import SimulationConfig
from repro.core.dtpm import DtpmGovernor
from repro.errors import ConfigurationError
from repro.governors.base import LoadSample, PlatformConfig
from repro.governors.idle import IdleGovernor
from repro.governors.ondemand import OndemandGovernor
from repro.governors.reactive import ReactiveThrottleGovernor
from repro.platform.board import OdroidBoard, SensorSnapshot
from repro.platform.specs import (
    HOTPLUG_PENALTY_S,
    PlatformSpec,
    Resource,
)
from repro.platform.state import BatchPlant
from repro.sim.consumers import TraceConsumer, ViolationCounter
from repro.sim.run_result import RUN_COLUMNS, RunResult, TraceRecorder
from repro.sim.scheduler import LoadBalancer
from repro.thermal import kernels
from repro.units import KELVIN_OFFSET
from repro.workloads.trace import WorkloadProgress, WorkloadTrace


class ThermalMode(enum.Enum):
    """The four experimental configurations of Section 6.2."""

    DEFAULT_WITH_FAN = "with_fan"
    NO_FAN = "without_fan"
    REACTIVE = "reactive"
    DTPM = "dtpm"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Simulator:
    """One benchmark run under one thermal-management configuration."""

    def __init__(
        self,
        workload: WorkloadTrace,
        mode: ThermalMode,
        dtpm: Optional[DtpmGovernor] = None,
        spec: Optional[PlatformSpec] = None,
        config: Optional[SimulationConfig] = None,
        warm_start_c: Optional[float] = 52.0,
        max_duration_s: float = 900.0,
        seed: Optional[int] = None,
        consumers: Optional[Sequence[TraceConsumer]] = None,
    ) -> None:
        self.workload = workload
        self.mode = mode
        self.spec = spec or PlatformSpec()
        self.config = config or SimulationConfig()
        if seed is not None:
            self.config = self.config.with_(seed=seed)
        if mode is ThermalMode.DTPM and dtpm is None:
            raise ConfigurationError("DTPM mode needs a DtpmGovernor")
        self.dtpm = dtpm
        self.warm_start_c = warm_start_c
        self.max_duration_s = max_duration_s
        #: Streaming observers notified per interval (see repro.sim.consumers).
        self.consumers = list(consumers or ())

        self.board = OdroidBoard(
            self.spec,
            self.config,
            fan_enabled=(mode is ThermalMode.DEFAULT_WITH_FAN),
        )
        self.rng = np.random.default_rng(self.config.seed + 77)
        self.scheduler = LoadBalancer(self.spec, self.rng)
        self.cpu_governors = {
            Resource.BIG: OndemandGovernor(self.spec.big_opp),
            Resource.LITTLE: OndemandGovernor(self.spec.little_opp),
        }
        self.gpu_governor = OndemandGovernor(self.spec.gpu_opp, up_threshold=0.90)
        self.idle_governor = IdleGovernor(max_cores=self.spec.cores_per_cluster)
        self.reactive = (
            ReactiveThrottleGovernor(self.spec.big_opp)
            if mode is ThermalMode.REACTIVE
            else None
        )

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Execute the benchmark to completion (or the duration cap).

        The B=1 view of :class:`BatchSimulator`: one run goes through
        exactly the code path a batch of many does, which is what makes
        batched and serial execution byte-identical.
        """
        return BatchSimulator([self]).run()[0]

    # ------------------------------------------------------------------
    def _propose(
        self, sched, current: PlatformConfig, time_s: float
    ) -> PlatformConfig:
        """Run the default governors on the last interval's load."""
        on_big = current.cluster is Resource.BIG
        utils = sched.big_utils if on_big else sched.little_utils
        online = current.active_online
        sample = LoadSample(
            core_utilisations=utils[:online],
            current_freq_hz=current.active_freq_hz,
            time_s=time_s,
        )
        governor = self.cpu_governors[current.cluster]
        freq = governor.propose(sample)
        online_next = self.idle_governor.propose(utils, online)

        gpu_sample = LoadSample(
            core_utilisations=(sched.gpu_util,),
            current_freq_hz=current.gpu_freq_hz,
            time_s=time_s,
        )
        gpu_freq = self.gpu_governor.propose(gpu_sample)

        if on_big:
            return current.with_(
                big_freq_hz=freq, big_online=online_next, gpu_freq_hz=gpu_freq
            )
        return current.with_(
            little_freq_hz=freq, little_online=online_next, gpu_freq_hz=gpu_freq
        )

    # ------------------------------------------------------------------
    def _apply(
        self,
        final: PlatformConfig,
        current: PlatformConfig,
        outcome,
    ):
        """Push a configuration into the SoC actuators.

        Returns (stall seconds, migrated?, #cores hotplugged).
        """
        soc = self.board.soc
        penalty = 0.0
        migrated = False
        cores_changed = 0

        if final.cluster is not soc.active_cluster:
            penalty += soc.switch_cluster(final.cluster)
            migrated = True

        soc.big.set_frequency(final.big_freq_hz)
        soc.little.set_frequency(final.little_freq_hz)
        soc.gpu.set_frequency(final.gpu_freq_hz)

        cluster = soc.big if final.cluster is Resource.BIG else soc.little
        target = final.active_online
        prefer_off = None
        if outcome is not None and outcome.decision is not None:
            prefer_off = outcome.decision.core_turned_off
        cores_changed = self._set_online(cluster, target, prefer_off)
        penalty += cores_changed * HOTPLUG_PENALTY_S
        return penalty, migrated, cores_changed

    @staticmethod
    def _set_online(cluster, target: int, prefer_off: Optional[int]) -> int:
        """Hotplug to ``target`` online cores, offlining ``prefer_off`` first."""
        changes = 0
        # offline preferred core first when reducing
        while cluster.num_online > target:
            candidates = cluster.online_cores
            victim = (
                prefer_off
                if prefer_off in candidates
                else candidates[-1]
            )
            cluster.set_core_online(victim, False)
            prefer_off = None
            changes += 1
        while cluster.num_online < target:
            for core in range(cluster.num_cores):
                if not cluster.is_online(core):
                    cluster.set_core_online(core, True)
                    changes += 1
                    break
        return changes


class _Lane:
    """Per-run control state of one :class:`BatchSimulator` lane."""

    __slots__ = (
        "sim",
        "progress",
        "recorder",
        "counters",
        "observers",
        "current",
        "pending_freeze_s",
        "migrations",
        "offlined",
    )

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.progress = WorkloadProgress(sim.workload)
        self.recorder = TraceRecorder(RUN_COLUMNS)
        # violation/intervention counting is a streaming consumer like any
        # other observer of the recorded trace
        self.counters = ViolationCounter()
        self.observers = [self.counters] + sim.consumers
        self.current = PlatformConfig(
            cluster=Resource.BIG,
            big_freq_hz=sim.spec.big_opp.f_min_hz,
            little_freq_hz=sim.spec.little_opp.f_min_hz,
            gpu_freq_hz=sim.spec.gpu_opp.f_min_hz,
            big_online=sim.spec.cores_per_cluster,
            little_online=sim.spec.cores_per_cluster,
        )
        self.pending_freeze_s = 0.0
        self.migrations = 0
        self.offlined = 0

    @property
    def active(self) -> bool:
        """Whether this lane still has work and time budget left."""
        return (
            not self.progress.done
            and self.sim.board.time_s < self.sim.max_duration_s
        )

    def finish(self) -> RunResult:
        """Build the lane's result and notify its consumers."""
        sim = self.sim
        result = RunResult(
            benchmark=sim.workload.name,
            mode=sim.mode.value,
            completed=self.progress.done,
            execution_time_s=sim.board.time_s,
            average_platform_power_w=sim.board.meter.average_power_w,
            energy_j=sim.board.meter.energy_j,
            trace=self.recorder,
            interventions=self.counters.interventions,
            violations_predicted=self.counters.violations,
            cluster_migrations=self.migrations,
            cores_offlined=self.offlined,
        )
        for consumer in sim.consumers:
            consumer.on_run_end(result)
        return result


class BatchSimulator:
    """Lock-steps ``B`` independent runs through one batched plant.

    Every lane keeps its own workload, thermal mode, governor, controller
    and RNG state -- the control layer runs per lane, exactly as in a
    standalone :class:`Simulator` -- while the physics of all lanes
    advances through one struct-of-arrays NumPy kernel per control step.
    Lanes that finish (or hit their duration cap) drop out of the batch;
    the rest keep stepping.

    All lanes must share the plant "shape": the platform spec, the
    thermal network physics and the control/substep timing
    (:class:`~repro.config.SimulationConfig` noise knobs, seeds, modes,
    workloads and durations are free to vary per lane).  Within that
    contract a batch of ``N`` runs is byte-identical to ``N`` serial
    runs, because every batched kernel is elementwise over the batch axis
    and per-lane RNG streams are consumed in the serial order.
    """

    def __init__(self, sims: Sequence[Simulator]) -> None:
        if not sims:
            raise ConfigurationError("a batch needs at least one simulator")
        if len({id(s) for s in sims}) != len(sims):
            raise ConfigurationError(
                "a simulator cannot ride in one batch twice"
            )
        first = sims[0]
        for sim in sims[1:]:
            if (
                sim.config.control_period_s != first.config.control_period_s
                or sim.config.thermal_substep_s
                != first.config.thermal_substep_s
            ):
                raise ConfigurationError(
                    "batched runs must share the control/substep timing"
                )
        self.sims: List[Simulator] = list(sims)
        # validates spec / thermal-network / fan compatibility
        self.plant = BatchPlant([sim.board for sim in self.sims])
        # resolve the substep-kernel backend up front so a bad
        # REPRO_KERNEL (unknown name, numba requested but not installed)
        # fails here rather than mid-run inside the hot loop
        self.kernel_backend = kernels.active_backend()

    # ------------------------------------------------------------------
    def run(self) -> List[RunResult]:
        """Execute all lanes to completion; results come back in lane order."""
        dt = self.sims[0].config.control_period_s
        substeps = self.sims[0].config.substeps_per_control

        lanes: List[_Lane] = []
        for sim in self.sims:
            if sim.warm_start_c is not None:
                sim.board.warm_start(sim.warm_start_c)
            if sim.dtpm is not None:
                sim.dtpm.reset()
            lane = _Lane(sim)
            sim._apply(lane.current, lane.current, None)
            for consumer in lane.observers:
                consumer.on_run_start(
                    sim.workload.name, sim.mode.value, RUN_COLUMNS
                )
            lanes.append(lane)

        results: List[Optional[RunResult]] = [None] * len(lanes)
        active = [i for i, lane in enumerate(lanes) if lane.active]
        for i, lane in enumerate(lanes):
            if results[i] is None and i not in active:
                results[i] = lane.finish()

        while active:
            # 1. place threads and account work for this interval (per lane)
            scheds = []
            for i in active:
                lane = lanes[i]
                sim = lane.sim
                frozen = min(lane.pending_freeze_s, dt)
                lane.pending_freeze_s -= frozen
                sched = sim.scheduler.assign(
                    sim.workload, lane.progress, lane.current, dt,
                    frozen_s=frozen,
                )
                scheds.append(sched)
                sim.board.soc.gpu.set_utilisation(sched.gpu_util)
                sim.board.soc.mem.set_traffic(sched.mem_traffic)

            # 2. advance every physical plant through one batched kernel
            state = self.plant.gather(active)
            self.plant.advance_interval(
                state,
                active,
                np.array([s.big_utils for s in scheds]),
                np.array([s.little_utils for s in scheds]),
                np.array([s.cpu_activity for s in scheds]),
                np.array([s.gpu_activity for s in scheds]),
                self.sims[0].config.thermal_substep_s,
                substeps,
            )
            self.plant.scatter(state, active)
            hotspots = self.plant.hotspots_k(state)

            # 3-6. per-lane control: governors, thermal layer, actuation,
            # recording -- each lane exactly as a standalone run
            still_active = []
            for pos, i in enumerate(active):
                lane = lanes[i]
                sim = lane.sim
                sched = scheds[pos]
                lane.progress.retire(sched.work_gcycles, dt)
                temps_k, powers_w = sim.board.sensors.read_all(
                    hotspots[pos], state.powers_w[pos]
                )
                snapshot = SensorSnapshot(
                    time_s=sim.board.time_s,
                    temperatures_k=temps_k,
                    powers_w=powers_w,
                    platform_power_w=sim.board.meter.last_reading_w,
                )

                proposal = sim._propose(sched, lane.current, snapshot.time_s)

                outcome = None
                if sim.mode is ThermalMode.REACTIVE:
                    final = sim.reactive.control(
                        snapshot.max_temperature_k, proposal
                    )
                elif sim.mode is ThermalMode.DTPM:
                    outcome = sim.dtpm.control(
                        snapshot,
                        lane.current,
                        proposal,
                        gpu_active=sim.workload.uses_gpu,
                    )
                    final = outcome.config
                else:
                    final = proposal

                penalty, migrated, cores_changed = sim._apply(
                    final, lane.current, outcome
                )
                lane.pending_freeze_s += penalty
                lane.migrations += int(migrated)
                lane.offlined += cores_changed

                # published values are plain Python floats: consumers see
                # the same types live, replayed from a cache artifact, or
                # recorded (the recorder's buffer is float64 regardless)
                temps_c = snapshot.temperatures_k - KELVIN_OFFSET
                interval = dict(
                    time_s=sim.board.time_s,
                    max_temp_c=float(np.max(temps_c)),
                    true_max_temp_c=float(np.max(hotspots[pos]))
                    - KELVIN_OFFSET,
                    temp0_c=float(temps_c[0]),
                    temp1_c=float(temps_c[1]),
                    temp2_c=float(temps_c[2]),
                    temp3_c=float(temps_c[3]),
                    big_freq_hz=final.big_freq_hz,
                    little_freq_hz=final.little_freq_hz,
                    gpu_freq_hz=final.gpu_freq_hz,
                    cluster_is_big=float(final.cluster is Resource.BIG),
                    online_cores=float(final.active_online),
                    fan_speed=float(int(sim.board.fan.speed)),
                    platform_power_w=snapshot.platform_power_w,
                    p_big_w=float(snapshot.powers_w[0]),
                    p_little_w=float(snapshot.powers_w[1]),
                    p_gpu_w=float(snapshot.powers_w[2]),
                    p_mem_w=float(snapshot.powers_w[3]),
                    violation_predicted=float(
                        bool(outcome and outcome.violation_predicted)
                    ),
                    intervened=float(bool(outcome and outcome.intervened)),
                )
                lane.recorder.append(**interval)
                for consumer in lane.observers:
                    consumer.on_interval(interval)
                lane.current = final

                if lane.active:
                    still_active.append(i)
                else:
                    results[i] = lane.finish()
            active = still_active

        return results
