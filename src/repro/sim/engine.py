"""The closed-loop simulation engine.

Reproduces the paper's run-time stack at a 100 ms control period: the
kernel's load balancer places threads, ondemand + idle governors propose
the next configuration, the thermal-management layer of the selected
experimental configuration (Section 6.2) may overwrite it, the actuators
apply it (with migration/hotplug stalls), and the physical plant advances.
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence

import numpy as np

from repro.config import SimulationConfig
from repro.core.dtpm import DtpmGovernor
from repro.errors import ConfigurationError
from repro.governors.base import LoadSample, PlatformConfig
from repro.governors.idle import IdleGovernor
from repro.governors.ondemand import OndemandGovernor
from repro.governors.reactive import ReactiveThrottleGovernor
from repro.platform.board import OdroidBoard
from repro.platform.specs import (
    HOTPLUG_PENALTY_S,
    PlatformSpec,
    Resource,
)
from repro.sim.consumers import TraceConsumer, ViolationCounter
from repro.sim.run_result import RUN_COLUMNS, RunResult, TraceRecorder
from repro.sim.scheduler import LoadBalancer
from repro.units import KELVIN_OFFSET
from repro.workloads.trace import WorkloadProgress, WorkloadTrace


class ThermalMode(enum.Enum):
    """The four experimental configurations of Section 6.2."""

    DEFAULT_WITH_FAN = "with_fan"
    NO_FAN = "without_fan"
    REACTIVE = "reactive"
    DTPM = "dtpm"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Simulator:
    """One benchmark run under one thermal-management configuration."""

    def __init__(
        self,
        workload: WorkloadTrace,
        mode: ThermalMode,
        dtpm: Optional[DtpmGovernor] = None,
        spec: Optional[PlatformSpec] = None,
        config: Optional[SimulationConfig] = None,
        warm_start_c: Optional[float] = 52.0,
        max_duration_s: float = 900.0,
        seed: Optional[int] = None,
        consumers: Optional[Sequence[TraceConsumer]] = None,
    ) -> None:
        self.workload = workload
        self.mode = mode
        self.spec = spec or PlatformSpec()
        self.config = config or SimulationConfig()
        if seed is not None:
            self.config = self.config.with_(seed=seed)
        if mode is ThermalMode.DTPM and dtpm is None:
            raise ConfigurationError("DTPM mode needs a DtpmGovernor")
        self.dtpm = dtpm
        self.warm_start_c = warm_start_c
        self.max_duration_s = max_duration_s
        #: Streaming observers notified per interval (see repro.sim.consumers).
        self.consumers = list(consumers or ())

        self.board = OdroidBoard(
            self.spec,
            self.config,
            fan_enabled=(mode is ThermalMode.DEFAULT_WITH_FAN),
        )
        self.rng = np.random.default_rng(self.config.seed + 77)
        self.scheduler = LoadBalancer(self.spec, self.rng)
        self.cpu_governors = {
            Resource.BIG: OndemandGovernor(self.spec.big_opp),
            Resource.LITTLE: OndemandGovernor(self.spec.little_opp),
        }
        self.gpu_governor = OndemandGovernor(self.spec.gpu_opp, up_threshold=0.90)
        self.idle_governor = IdleGovernor(max_cores=self.spec.cores_per_cluster)
        self.reactive = (
            ReactiveThrottleGovernor(self.spec.big_opp)
            if mode is ThermalMode.REACTIVE
            else None
        )

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Execute the benchmark to completion (or the duration cap)."""
        board = self.board
        config_sim = self.config
        dt = config_sim.control_period_s
        substeps = config_sim.substeps_per_control
        sub_dt = config_sim.thermal_substep_s

        if self.warm_start_c is not None:
            board.warm_start(self.warm_start_c)
        if self.dtpm is not None:
            self.dtpm.reset()

        progress = WorkloadProgress(self.workload)
        recorder = TraceRecorder(RUN_COLUMNS)
        current = PlatformConfig(
            cluster=Resource.BIG,
            big_freq_hz=self.spec.big_opp.f_min_hz,
            little_freq_hz=self.spec.little_opp.f_min_hz,
            gpu_freq_hz=self.spec.gpu_opp.f_min_hz,
            big_online=self.spec.cores_per_cluster,
            little_online=self.spec.cores_per_cluster,
        )
        self._apply(current, current, None)

        pending_freeze_s = 0.0
        migrations = 0
        offlined = 0
        # violation/intervention counting is a streaming consumer like any
        # other observer of the recorded trace
        counters = ViolationCounter()
        observers = [counters] + self.consumers
        for consumer in observers:
            consumer.on_run_start(
                self.workload.name, self.mode.value, RUN_COLUMNS
            )

        while not progress.done and board.time_s < self.max_duration_s:
            # 1. place threads and account work for this interval
            frozen = min(pending_freeze_s, dt)
            pending_freeze_s -= frozen
            sched = self.scheduler.assign(
                self.workload, progress, current, dt, frozen_s=frozen
            )

            # 2. advance the physical plant
            for _ in range(substeps):
                board.step(
                    sched.big_utils,
                    sched.little_utils,
                    sched.gpu_util,
                    sched.mem_traffic,
                    sub_dt,
                    cpu_activity=sched.cpu_activity,
                    gpu_activity=sched.gpu_activity,
                )
            progress.retire(sched.work_gcycles, dt)
            snapshot = board.read_sensors()

            # 3. default governors propose the next configuration
            proposal = self._propose(sched, current, snapshot.time_s)

            # 4. thermal management layer
            outcome = None
            if self.mode is ThermalMode.REACTIVE:
                final = self.reactive.control(
                    snapshot.max_temperature_k, proposal
                )
            elif self.mode is ThermalMode.DTPM:
                outcome = self.dtpm.control(
                    snapshot,
                    current,
                    proposal,
                    gpu_active=self.workload.uses_gpu,
                )
                final = outcome.config
            else:
                final = proposal

            # 5. actuate, paying migration/hotplug penalties
            penalty, migrated, cores_changed = self._apply(
                final, current, outcome
            )
            pending_freeze_s += penalty
            migrations += int(migrated)
            offlined += cores_changed

            # 6. record and publish to the streaming consumers
            temps_c = snapshot.temperatures_k - KELVIN_OFFSET
            interval = dict(
                time_s=board.time_s,
                max_temp_c=float(np.max(temps_c)),
                true_max_temp_c=float(np.max(board.true_hotspots_k()))
                - KELVIN_OFFSET,
                temp0_c=temps_c[0],
                temp1_c=temps_c[1],
                temp2_c=temps_c[2],
                temp3_c=temps_c[3],
                big_freq_hz=final.big_freq_hz,
                little_freq_hz=final.little_freq_hz,
                gpu_freq_hz=final.gpu_freq_hz,
                cluster_is_big=float(final.cluster is Resource.BIG),
                online_cores=float(final.active_online),
                fan_speed=float(int(board.fan.speed)),
                platform_power_w=snapshot.platform_power_w,
                p_big_w=float(snapshot.powers_w[0]),
                p_little_w=float(snapshot.powers_w[1]),
                p_gpu_w=float(snapshot.powers_w[2]),
                p_mem_w=float(snapshot.powers_w[3]),
                violation_predicted=float(
                    bool(outcome and outcome.violation_predicted)
                ),
                intervened=float(bool(outcome and outcome.intervened)),
            )
            recorder.append(**interval)
            for consumer in observers:
                consumer.on_interval(interval)
            current = final

        result = RunResult(
            benchmark=self.workload.name,
            mode=self.mode.value,
            completed=progress.done,
            execution_time_s=board.time_s,
            average_platform_power_w=board.meter.average_power_w,
            energy_j=board.meter.energy_j,
            trace=recorder,
            interventions=counters.interventions,
            violations_predicted=counters.violations,
            cluster_migrations=migrations,
            cores_offlined=offlined,
        )
        for consumer in self.consumers:
            consumer.on_run_end(result)
        return result

    # ------------------------------------------------------------------
    def _propose(
        self, sched, current: PlatformConfig, time_s: float
    ) -> PlatformConfig:
        """Run the default governors on the last interval's load."""
        on_big = current.cluster is Resource.BIG
        utils = sched.big_utils if on_big else sched.little_utils
        online = current.active_online
        sample = LoadSample(
            core_utilisations=utils[:online],
            current_freq_hz=current.active_freq_hz,
            time_s=time_s,
        )
        governor = self.cpu_governors[current.cluster]
        freq = governor.propose(sample)
        online_next = self.idle_governor.propose(utils, online)

        gpu_sample = LoadSample(
            core_utilisations=(sched.gpu_util,),
            current_freq_hz=current.gpu_freq_hz,
            time_s=time_s,
        )
        gpu_freq = self.gpu_governor.propose(gpu_sample)

        if on_big:
            return current.with_(
                big_freq_hz=freq, big_online=online_next, gpu_freq_hz=gpu_freq
            )
        return current.with_(
            little_freq_hz=freq, little_online=online_next, gpu_freq_hz=gpu_freq
        )

    # ------------------------------------------------------------------
    def _apply(
        self,
        final: PlatformConfig,
        current: PlatformConfig,
        outcome,
    ):
        """Push a configuration into the SoC actuators.

        Returns (stall seconds, migrated?, #cores hotplugged).
        """
        soc = self.board.soc
        penalty = 0.0
        migrated = False
        cores_changed = 0

        if final.cluster is not soc.active_cluster:
            penalty += soc.switch_cluster(final.cluster)
            migrated = True

        soc.big.set_frequency(final.big_freq_hz)
        soc.little.set_frequency(final.little_freq_hz)
        soc.gpu.set_frequency(final.gpu_freq_hz)

        cluster = soc.big if final.cluster is Resource.BIG else soc.little
        target = final.active_online
        prefer_off = None
        if outcome is not None and outcome.decision is not None:
            prefer_off = outcome.decision.core_turned_off
        cores_changed = self._set_online(cluster, target, prefer_off)
        penalty += cores_changed * HOTPLUG_PENALTY_S
        return penalty, migrated, cores_changed

    @staticmethod
    def _set_online(cluster, target: int, prefer_off: Optional[int]) -> int:
        """Hotplug to ``target`` online cores, offlining ``prefer_off`` first."""
        changes = 0
        # offline preferred core first when reducing
        while cluster.num_online > target:
            candidates = cluster.online_cores
            victim = (
                prefer_off
                if prefer_off in candidates
                else candidates[-1]
            )
            cluster.set_core_online(victim, False)
            prefer_off = None
            changes += 1
        while cluster.num_online < target:
            for core in range(cluster.num_cores):
                if not cluster.is_online(core):
                    cluster.set_core_online(core, True)
                    changes += 1
                    break
        return changes
