"""Cross-run comparison metrics (Section 6.3's reported quantities)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

import numpy as np

from repro.errors import SimulationError
from repro.sim.consumers import StreamingStability, replay
from repro.sim.run_result import RunResult


def power_savings_pct_batch(
    baseline_w: np.ndarray, candidate_w: np.ndarray
) -> np.ndarray:
    """Per-pair platform power savings (%), array-in/array-out.

    Elementwise over aligned (baseline, candidate) power columns -- the
    suite-scale form of :func:`power_savings_pct`, which is its B=1 view.
    """
    baseline_w = np.asarray(baseline_w, dtype=float)
    candidate_w = np.asarray(candidate_w, dtype=float)
    if np.any(baseline_w <= 0):
        raise SimulationError("baseline has no recorded power")
    return 100.0 * ((baseline_w - candidate_w) / baseline_w)


def power_savings_pct(baseline: RunResult, candidate: RunResult) -> float:
    """Platform power saved by ``candidate`` relative to ``baseline`` (%).

    The paper's savings numbers compare average *platform* power (external
    meter) of the DTPM configuration against the fan-cooled default.
    """
    return float(
        power_savings_pct_batch(
            np.array([baseline.average_platform_power_w]),
            np.array([candidate.average_platform_power_w]),
        )[0]
    )


def performance_loss_pct_batch(
    baseline_s: np.ndarray, candidate_s: np.ndarray
) -> np.ndarray:
    """Per-pair execution-time increase (%), array-in/array-out."""
    baseline_s = np.asarray(baseline_s, dtype=float)
    candidate_s = np.asarray(candidate_s, dtype=float)
    if np.any(baseline_s <= 0):
        raise SimulationError("baseline has no execution time")
    return 100.0 * ((candidate_s - baseline_s) / baseline_s)


def performance_loss_pct(baseline: RunResult, candidate: RunResult) -> float:
    """Execution-time increase of ``candidate`` over ``baseline`` (%)."""
    return float(
        performance_loss_pct_batch(
            np.array([baseline.execution_time_s]),
            np.array([candidate.execution_time_s]),
        )[0]
    )


def variance_reduction_factor(
    baseline: RunResult, candidate: RunResult, skip_s: float = 15.0
) -> float:
    """Ratio of temperature variances (Fig. 6.5's ~6x claim)."""
    cand = candidate.temp_variance(skip_s)
    if cand <= 0:
        return float("inf")
    return baseline.temp_variance(skip_s) / cand


def settled_variance_streaming(result: RunResult, skip_s: float = 15.0) -> float:
    """Settled temperature variance via the online consumer (one trace pass)."""
    consumer = StreamingStability(skip_s=skip_s)
    replay(result, [consumer])
    if consumer.settled_samples == 0:
        raise SimulationError("run trace too short for stability metrics")
    return consumer.variance_c2


def variance_reduction_factor_streaming(
    baseline: RunResult, candidate: RunResult, skip_s: float = 15.0
) -> float:
    """:func:`variance_reduction_factor` computed incrementally."""
    cand = settled_variance_streaming(candidate, skip_s)
    if cand <= 0:
        return float("inf")
    return settled_variance_streaming(baseline, skip_s) / cand


@dataclass(frozen=True)
class ComparisonRow:
    """One benchmark's DTPM-vs-baseline numbers (a bar of Fig. 6.9)."""

    benchmark: str
    category: str
    power_savings_pct: float
    performance_loss_pct: float
    baseline_power_w: float
    dtpm_power_w: float
    baseline_time_s: float
    dtpm_time_s: float


def summarize_categories(
    rows: Iterable[ComparisonRow],
) -> Dict[str, Dict[str, float]]:
    """Average savings/loss per power category (the paper's 3/8/14 % story)."""
    buckets: Dict[str, List[ComparisonRow]] = {}
    for row in rows:
        buckets.setdefault(row.category, []).append(row)
    out: Dict[str, Dict[str, float]] = {}
    for category, members in buckets.items():
        out[category] = {
            "power_savings_pct": float(
                np.mean([m.power_savings_pct for m in members])
            ),
            "performance_loss_pct": float(
                np.mean([m.performance_loss_pct for m in members])
            ),
            "count": float(len(members)),
        }
    return out


def overall_summary(rows: Iterable[ComparisonRow]) -> Dict[str, float]:
    """Whole-suite averages (the conclusion's ~10 % / ~3.3 % numbers)."""
    rows = list(rows)
    if not rows:
        raise SimulationError("no comparison rows")
    return {
        "power_savings_pct": float(np.mean([r.power_savings_pct for r in rows])),
        "performance_loss_pct": float(
            np.mean([r.performance_loss_pct for r in rows])
        ),
        "max_power_savings_pct": float(
            np.max([r.power_savings_pct for r in rows])
        ),
        "max_performance_loss_pct": float(
            np.max([r.performance_loss_pct for r in rows])
        ),
    }
