"""Model construction and process-wide caching.

Building the controller's models means running the whole Chapter-4
methodology: the furnace characterization for the leakage curves and the
PRBS campaign + system identification for the thermal model.  That costs a
couple of wall-clock seconds, so the default bundle is built once per
process and shared by tests, examples and benchmarks.
"""

from __future__ import annotations

from typing import Optional

from dataclasses import dataclass
from functools import lru_cache

from repro.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.platform.specs import PlatformSpec
from repro.power.characterization import FurnaceRig, default_power_model
from repro.power.model import PowerModel
from repro.thermal.state_space import DiscreteThermalModel
from repro.thermal.sysid import PrbsExperiment, SystemIdentifier


@dataclass(frozen=True)
class ModelBundle:
    """The two fitted models the DTPM controller runs on."""

    thermal: DiscreteThermalModel
    power: PowerModel


def build_models(
    spec: Optional[PlatformSpec] = None,
    config: Optional[SimulationConfig] = None,
    prbs_duration_s: float = 1050.0,
    run_furnace: bool = False,
    method: str = "structured",
) -> ModelBundle:
    """Run the Chapter-4 methodology end to end and return the models.

    Parameters
    ----------
    run_furnace:
        When true, the leakage models come from an actual simulated furnace
        characterization; otherwise the cached default fits are used (same
        procedure, run ahead of time -- see
        :func:`repro.power.characterization.default_power_model`).
    method:
        Which estimator turns the PRBS sessions into (A, B): "structured"
        (default -- symmetric-layout estimator, best hottest-core
        predictions), "staged" (the paper's per-resource protocol) or
        "joint" (single pooled least-squares solve).
    """
    spec = spec or PlatformSpec()
    config = config or SimulationConfig()

    if run_furnace:
        rig = FurnaceRig(spec, config)
        power = rig.build_power_model()
    else:
        power = default_power_model(spec)

    experiment = PrbsExperiment(spec, config, duration_s=prbs_duration_s)
    sessions = experiment.run_all()
    identifier = SystemIdentifier()
    estimators = {
        "structured": identifier.identify_structured,
        "staged": identifier.identify_staged,
        "joint": identifier.identify,
    }
    try:
        estimate = estimators[method]
    except KeyError:
        raise ConfigurationError(
            "unknown identification method %r (want one of %s)"
            % (method, sorted(estimators))
        ) from None
    thermal = estimate(sessions)
    return ModelBundle(thermal=thermal, power=power)


@lru_cache(maxsize=1)
def default_models() -> ModelBundle:
    """The default platform's model bundle, built once per process."""
    return build_models()
