"""Run results: the time series and summary of one simulated benchmark run."""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.errors import SimulationError


def settle_start(times: np.ndarray, skip_s: float) -> int:
    """First index of the settled region of a trace's time axis.

    The one copy of the settle-window arithmetic shared by
    :meth:`RunResult.settle_slice`, the streaming consumers' clamp
    documentation and the suite-scale batch reductions
    (:mod:`repro.analysis.stats`), so every metrics path skips an
    identical warm-up region: samples before ``times[0] + skip_s`` are
    excluded, but the region is widened to at least the trace's last two
    samples (the short-trace clamp).  Returns 0 for an empty axis.
    """
    if times.size == 0:
        return 0
    start = int(np.searchsorted(times, times[0] + skip_s))
    return min(start, max(0, times.size - 2))


def rows_to_matrix(columns: List[str], rows: List[List[float]]) -> np.ndarray:
    """Validate and coerce row-oriented trace data to a float64 matrix.

    The one copy of the row-shape validation shared by the deprecated
    :meth:`TraceRecorder.from_rows` shim and the v1 JSON cache read-back
    (:func:`repro.runner.cache.payload_to_result`), so the two paths can
    never drift.  Raises :class:`SimulationError` on ragged, non-numeric
    or wrong-width input.
    """
    width = len(columns)
    try:
        data = np.asarray(rows, dtype=np.float64)
    except (TypeError, ValueError):
        raise SimulationError(
            "rows are ragged or non-numeric (need %d columns each)" % width
        ) from None
    if data.ndim != 2 or data.shape[1] != width:
        raise SimulationError(
            "row width %d does not match %d columns"
            % (data.shape[-1] if data.ndim else 0, width)
        )
    return data


class TraceRecorder:
    """Append-only columnar recorder for per-interval observations.

    Rows land in one preallocated ``float64`` buffer that grows
    geometrically, so recording is amortised O(1) per interval and the
    accessors (:meth:`column`, :meth:`as_dict`, :meth:`array`) return
    **zero-copy views** into the live buffer rather than re-materialising
    Python lists on every call.

    Mutability contract: returned views are read-only snapshots
    (``writeable`` flag cleared) of the first ``len(self)`` rows; copy
    before editing.  A later :meth:`append` that triggers a buffer
    reallocation leaves previously handed-out views pointing at the old
    storage -- call the accessor again after recording more rows.
    """

    #: Rows preallocated up front; ~25 s of simulated time at the 100 ms
    #: control period, so short runs never reallocate.
    INITIAL_CAPACITY = 256

    __slots__ = ("_columns", "_index", "_data", "_size")

    def __init__(self, columns: List[str]) -> None:
        if not columns:
            raise SimulationError("recorder needs at least one column")
        self._columns = list(columns)
        self._index = {c: i for i, c in enumerate(self._columns)}
        if len(self._index) != len(self._columns):
            raise SimulationError("duplicate column names: %s" % self._columns)
        self._data = np.empty(
            (self.INITIAL_CAPACITY, len(self._columns)), dtype=np.float64
        )
        self._size = 0

    @property
    def columns(self) -> List[str]:
        return list(self._columns)

    @property
    def capacity(self) -> int:
        """Currently allocated row slots (>= ``len(self)``)."""
        return self._data.shape[0]

    @classmethod
    def from_rows(
        cls, columns: List[str], rows: List[List[float]]
    ) -> "TraceRecorder":
        """Rebuild a recorder from serialised (columns, rows) data.

        .. deprecated::
            Compatibility shim for row-oriented callers; use
            :meth:`from_array` with a ``(rows, columns)`` matrix instead
            -- it adopts contiguous float64 storage without the
            row-by-row conversion.
        """
        warnings.warn(
            "TraceRecorder.from_rows is deprecated; use"
            " TraceRecorder.from_array",
            DeprecationWarning,
            stacklevel=2,
        )
        recorder = cls(columns)
        if not rows:
            return recorder
        data = rows_to_matrix(recorder._columns, rows)
        recorder._data = data
        recorder._size = data.shape[0]
        return recorder

    @classmethod
    def from_array(cls, columns: List[str], data: np.ndarray) -> "TraceRecorder":
        """Adopt a ``(rows, columns)`` array (binary cache artifacts).

        The array is adopted without copying when it is already a
        contiguous ``float64`` matrix (e.g. straight out of an ``.npz``
        blob or a memory map); the recorder then shares storage with it.
        """
        recorder = cls(columns)
        data = np.ascontiguousarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[1] != len(recorder._columns):
            raise SimulationError(
                "trace array shape %s does not match %d columns"
                % (data.shape, len(recorder._columns))
            )
        if data.shape[0]:
            recorder._data = data
            recorder._size = data.shape[0]
        return recorder

    def rows(self) -> List[List[float]]:
        """All recorded rows as fresh Python lists.

        .. deprecated::
            Compatibility shim for row-oriented callers -- it
            materialises the whole trace; use :meth:`array` (zero-copy
            view, ``.tolist()`` it if lists are really needed) or
            :meth:`column` instead.
        """
        warnings.warn(
            "TraceRecorder.rows is deprecated; use TraceRecorder.array"
            " (call .tolist() on it if row lists are needed)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._data[: self._size].tolist()

    def _grow(self) -> None:
        grown = np.empty(
            (max(2 * self._data.shape[0], self.INITIAL_CAPACITY),
             len(self._columns)),
            dtype=np.float64,
        )
        grown[: self._size] = self._data[: self._size]
        self._data = grown

    def append(self, **values: float) -> None:
        """Record one row; every declared column must be present."""
        if self._size == self._data.shape[0]:
            self._grow()
        row = self._data[self._size]
        try:
            for name, i in self._index.items():
                row[i] = values[name]
        except KeyError:
            missing = set(self._columns) - set(values)
            raise SimulationError(
                "missing columns: %s" % sorted(missing)
            ) from None
        self._size += 1

    def __len__(self) -> int:
        return self._size

    def _view(self, view: np.ndarray) -> np.ndarray:
        # enforce the read-only contract: an in-place edit through a view
        # would corrupt the recorder (and any cache sharing the result)
        view.flags.writeable = False
        return view

    def array(self) -> np.ndarray:
        """The whole trace as a zero-copy ``(rows, columns)`` view."""
        return self._view(self._data[: self._size])

    def column(self, name: str) -> np.ndarray:
        """One column as a zero-copy array view."""
        try:
            idx = self._index[name]
        except KeyError:
            raise SimulationError("unknown column %r" % name) from None
        return self._view(self._data[: self._size, idx])

    def as_dict(self) -> Dict[str, np.ndarray]:
        """All columns as zero-copy array views."""
        data = self._data[: self._size]
        return {
            c: self._view(data[:, i]) for i, c in enumerate(self._columns)
        }


#: Columns every simulation run records.
RUN_COLUMNS = [
    "time_s",
    "max_temp_c",  # sensed (what the paper plots)
    "true_max_temp_c",
    "temp0_c",
    "temp1_c",
    "temp2_c",
    "temp3_c",
    "big_freq_hz",
    "little_freq_hz",
    "gpu_freq_hz",
    "cluster_is_big",
    "online_cores",
    "fan_speed",
    "platform_power_w",
    "p_big_w",
    "p_little_w",
    "p_gpu_w",
    "p_mem_w",
    "violation_predicted",
    "intervened",
]


@dataclass
class RunResult:
    """Everything produced by one benchmark run under one configuration."""

    benchmark: str
    mode: str
    completed: bool
    execution_time_s: float
    average_platform_power_w: float
    energy_j: float
    trace: TraceRecorder
    interventions: int = 0
    violations_predicted: int = 0
    cluster_migrations: int = 0
    cores_offlined: int = 0
    notes: List[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Trace accessors return zero-copy views into the recorder's buffer
    # (see TraceRecorder's mutability contract); treat them as read-only.
    def times_s(self) -> np.ndarray:
        """Time axis of the recorded trace (view)."""
        return self.trace.column("time_s")

    def max_temps_c(self) -> np.ndarray:
        """Sensed maximum core temperature over time (view)."""
        return self.trace.column("max_temp_c")

    def big_freqs_ghz(self) -> np.ndarray:
        """Big-cluster frequency over time (GHz)."""
        return self.trace.column("big_freq_hz") / 1e9

    def settle_slice(self, skip_s: float = 15.0) -> slice:
        """Index slice skipping the initial transient.

        The paper's stability numbers describe regulation quality, so the
        warm-up climb from the start temperature is excluded.
        """
        t = self.times_s()
        if t.size == 0:
            return slice(0, 0)
        return slice(settle_start(t, skip_s), t.size)

    # -- stability metrics (Fig. 6.5) -----------------------------------
    def temp_max_min_c(self, skip_s: float = 15.0) -> float:
        """Max-min band of the sensed max core temperature."""
        temps = self.max_temps_c()[self.settle_slice(skip_s)]
        if temps.size == 0:
            raise SimulationError("run trace too short for stability metrics")
        return float(np.max(temps) - np.min(temps))

    def temp_variance(self, skip_s: float = 15.0) -> float:
        """Variance of the sensed max core temperature (degC^2)."""
        temps = self.max_temps_c()[self.settle_slice(skip_s)]
        if temps.size == 0:
            raise SimulationError("run trace too short for stability metrics")
        return float(np.var(temps))

    def average_temp_c(self, skip_s: float = 15.0) -> float:
        """Mean sensed max core temperature after settling."""
        temps = self.max_temps_c()[self.settle_slice(skip_s)]
        if temps.size == 0:
            raise SimulationError("run trace too short for stability metrics")
        return float(np.mean(temps))

    def peak_temp_c(self) -> float:
        """Highest sensed max core temperature over the whole run."""
        return float(np.max(self.max_temps_c()))

    def constraint_exceedance_c(self, constraint_c: float) -> float:
        """How far above the constraint the run went (0 if never)."""
        return max(0.0, self.peak_temp_c() - constraint_c)

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            "%s/%s: %s in %.1f s, %.2f W avg, peak %.1f degC"
            % (
                self.benchmark,
                self.mode,
                "completed" if self.completed else "DID NOT FINISH",
                self.execution_time_s,
                self.average_platform_power_w,
                self.peak_temp_c(),
            )
        )
