"""Run results: the time series and summary of one simulated benchmark run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.errors import SimulationError


class TraceRecorder:
    """Append-only columnar recorder for per-interval observations."""

    def __init__(self, columns: List[str]) -> None:
        if not columns:
            raise SimulationError("recorder needs at least one column")
        self._columns = list(columns)
        self._rows: List[List[float]] = []

    @property
    def columns(self) -> List[str]:
        return list(self._columns)

    @classmethod
    def from_rows(
        cls, columns: List[str], rows: List[List[float]]
    ) -> "TraceRecorder":
        """Rebuild a recorder from serialised (columns, rows) data."""
        recorder = cls(columns)
        width = len(recorder._columns)
        for row in rows:
            if len(row) != width:
                raise SimulationError(
                    "row width %d does not match %d columns"
                    % (len(row), width)
                )
            recorder._rows.append([float(v) for v in row])
        return recorder

    def rows(self) -> List[List[float]]:
        """All recorded rows (column order matches :attr:`columns`)."""
        return [list(row) for row in self._rows]

    def append(self, **values: float) -> None:
        """Record one row; every declared column must be present."""
        missing = set(self._columns) - set(values)
        if missing:
            raise SimulationError("missing columns: %s" % sorted(missing))
        self._rows.append([float(values[c]) for c in self._columns])

    def __len__(self) -> int:
        return len(self._rows)

    def column(self, name: str) -> np.ndarray:
        """One column as an array."""
        try:
            idx = self._columns.index(name)
        except ValueError:
            raise SimulationError("unknown column %r" % name) from None
        return np.array([row[idx] for row in self._rows])

    def as_dict(self) -> Dict[str, np.ndarray]:
        """All columns as arrays."""
        data = np.array(self._rows) if self._rows else np.empty((0, len(self._columns)))
        return {c: data[:, i] for i, c in enumerate(self._columns)}


#: Columns every simulation run records.
RUN_COLUMNS = [
    "time_s",
    "max_temp_c",  # sensed (what the paper plots)
    "true_max_temp_c",
    "temp0_c",
    "temp1_c",
    "temp2_c",
    "temp3_c",
    "big_freq_hz",
    "little_freq_hz",
    "gpu_freq_hz",
    "cluster_is_big",
    "online_cores",
    "fan_speed",
    "platform_power_w",
    "p_big_w",
    "p_little_w",
    "p_gpu_w",
    "p_mem_w",
    "violation_predicted",
    "intervened",
]


@dataclass
class RunResult:
    """Everything produced by one benchmark run under one configuration."""

    benchmark: str
    mode: str
    completed: bool
    execution_time_s: float
    average_platform_power_w: float
    energy_j: float
    trace: TraceRecorder
    interventions: int = 0
    violations_predicted: int = 0
    cluster_migrations: int = 0
    cores_offlined: int = 0
    notes: List[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    def times_s(self) -> np.ndarray:
        """Time axis of the recorded trace."""
        return self.trace.column("time_s")

    def max_temps_c(self) -> np.ndarray:
        """Sensed maximum core temperature over time."""
        return self.trace.column("max_temp_c")

    def big_freqs_ghz(self) -> np.ndarray:
        """Big-cluster frequency over time (GHz)."""
        return self.trace.column("big_freq_hz") / 1e9

    def settle_slice(self, skip_s: float = 15.0) -> slice:
        """Index slice skipping the initial transient.

        The paper's stability numbers describe regulation quality, so the
        warm-up climb from the start temperature is excluded.
        """
        t = self.times_s()
        if t.size == 0:
            return slice(0, 0)
        start = int(np.searchsorted(t, t[0] + skip_s))
        start = min(start, max(0, t.size - 2))
        return slice(start, t.size)

    # -- stability metrics (Fig. 6.5) -----------------------------------
    def temp_max_min_c(self, skip_s: float = 15.0) -> float:
        """Max-min band of the sensed max core temperature."""
        temps = self.max_temps_c()[self.settle_slice(skip_s)]
        if temps.size == 0:
            raise SimulationError("run trace too short for stability metrics")
        return float(np.max(temps) - np.min(temps))

    def temp_variance(self, skip_s: float = 15.0) -> float:
        """Variance of the sensed max core temperature (degC^2)."""
        temps = self.max_temps_c()[self.settle_slice(skip_s)]
        if temps.size == 0:
            raise SimulationError("run trace too short for stability metrics")
        return float(np.var(temps))

    def average_temp_c(self, skip_s: float = 15.0) -> float:
        """Mean sensed max core temperature after settling."""
        temps = self.max_temps_c()[self.settle_slice(skip_s)]
        if temps.size == 0:
            raise SimulationError("run trace too short for stability metrics")
        return float(np.mean(temps))

    def peak_temp_c(self) -> float:
        """Highest sensed max core temperature over the whole run."""
        return float(np.max(self.max_temps_c()))

    def constraint_exceedance_c(self, constraint_c: float) -> float:
        """How far above the constraint the run went (0 if never)."""
        return max(0.0, self.peak_temp_c() - constraint_c)

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            "%s/%s: %s in %.1f s, %.2f W avg, peak %.1f degC"
            % (
                self.benchmark,
                self.mode,
                "completed" if self.completed else "DID NOT FINISH",
                self.execution_time_s,
                self.average_platform_power_w,
                self.peak_temp_c(),
            )
        )
