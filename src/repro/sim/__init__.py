"""Closed-loop simulation engine and experiment harness."""

from repro.sim.consumers import (
    RunningStats,
    StreamingPower,
    StreamingStability,
    TraceConsumer,
    ViolationCounter,
    replay,
)
from repro.sim.engine import BatchSimulator, Simulator, ThermalMode
from repro.sim.experiment import (
    compare_modes,
    dtpm_vs_default,
    make_dtpm_governor,
    run_benchmark,
)
from repro.sim.metrics import (
    ComparisonRow,
    overall_summary,
    performance_loss_pct,
    power_savings_pct,
    settled_variance_streaming,
    summarize_categories,
    variance_reduction_factor,
    variance_reduction_factor_streaming,
)
from repro.sim.models import ModelBundle, build_models, default_models
from repro.sim.run_result import RunResult, TraceRecorder
from repro.sim.sweep import (
    SweepPoint,
    sweep_constraint,
    sweep_days,
    sweep_guard_band,
    sweep_horizon,
    sweep_idle_gap,
    sweep_sensor_noise,
)
from repro.sim.scenario import BatchScenarioRunner, ScenarioRunner, diurnal
from repro.sim.scheduler import LoadBalancer, SchedulerOutput

__all__ = [
    "RunningStats",
    "StreamingPower",
    "StreamingStability",
    "TraceConsumer",
    "ViolationCounter",
    "replay",
    "BatchSimulator",
    "Simulator",
    "ThermalMode",
    "compare_modes",
    "dtpm_vs_default",
    "make_dtpm_governor",
    "run_benchmark",
    "ComparisonRow",
    "overall_summary",
    "performance_loss_pct",
    "power_savings_pct",
    "settled_variance_streaming",
    "summarize_categories",
    "variance_reduction_factor",
    "variance_reduction_factor_streaming",
    "ModelBundle",
    "build_models",
    "default_models",
    "RunResult",
    "TraceRecorder",
    "SweepPoint",
    "sweep_constraint",
    "sweep_days",
    "sweep_guard_band",
    "sweep_horizon",
    "sweep_idle_gap",
    "sweep_sensor_noise",
    "BatchScenarioRunner",
    "ScenarioRunner",
    "diurnal",
    "LoadBalancer",
    "SchedulerOutput",
]
