"""Multi-threaded benchmarks for the Fig. 6.10 evaluation.

The paper's multi-threaded summary plots parallel FFT and LU decomposition
(plus the self-written matrix multiplication used throughout).  These are
classic fork/join kernels: all worker threads stay busy, so they saturate
however many big cores are online and produce the cluster's highest power
draw -- the regime where the DTPM budget machinery earns the largest
platform-power savings.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.workloads.trace import CATEGORY_HIGH, WorkloadPhase, WorkloadTrace

_REF_GHZ = 1.6


def fft_mt(threads: int = 4, duration_s: float = 90.0) -> WorkloadTrace:
    """Parallel FFT: compute-heavy butterflies with strided memory access."""
    _check(threads, duration_s)
    return WorkloadTrace(
        name="fft_mt",
        category=CATEGORY_HIGH,
        benchmark_type="multithreaded",
        threads=threads,
        total_work_gcycles=duration_s * _REF_GHZ * threads,
        activity=1.20,
        mem_traffic=0.50,
        background_util=0.10,
        phases=(
            WorkloadPhase(6.0, demand=1.0, mem=1.0),  # butterfly stages
            WorkloadPhase(2.0, demand=0.8, mem=1.5),  # bit-reversal shuffles
        ),
    )


def lu_mt(threads: int = 4, duration_s: float = 110.0) -> WorkloadTrace:
    """Parallel LU decomposition: trailing-submatrix updates dominate."""
    _check(threads, duration_s)
    return WorkloadTrace(
        name="lu_mt",
        category=CATEGORY_HIGH,
        benchmark_type="multithreaded",
        threads=threads,
        total_work_gcycles=duration_s * _REF_GHZ * threads,
        activity=1.15,
        mem_traffic=0.45,
        background_util=0.10,
        phases=(
            WorkloadPhase(8.0, demand=1.0),  # panel factorisation + update
            WorkloadPhase(1.5, demand=0.6, mem=1.3),  # pivot search barriers
        ),
    )


def matrix_mult_mt(threads: int = 4, duration_s: float = 60.0) -> WorkloadTrace:
    """The self-written matrix multiplication, thread count configurable."""
    _check(threads, duration_s)
    return WorkloadTrace(
        name="matrix_mult_mt%d" % threads,
        category=CATEGORY_HIGH,
        benchmark_type="multithreaded",
        threads=threads,
        total_work_gcycles=duration_s * _REF_GHZ * threads,
        activity=1.10,
        mem_traffic=0.45,
        background_util=0.10,
    )


def _check(threads: int, duration_s: float) -> None:
    if not 1 <= threads <= 4:
        raise WorkloadError("threads must be in 1..4 (one cluster)")
    if duration_s <= 0:
        raise WorkloadError("duration must be positive")
