"""Synthetic workload-trace synthesis.

Produces parameterised benchmark variants for stress tests, ablations and
property-based testing: a seeded generator maps (category, duration,
threads, gpu share) to a :class:`WorkloadTrace` with a plausible phase
structure, so test suites can sweep the workload space far beyond the 15
named benchmarks.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.trace import (
    CATEGORIES,
    CATEGORY_HIGH,
    CATEGORY_LOW,
    CATEGORY_MEDIUM,
    WorkloadPhase,
    WorkloadTrace,
)

#: Category -> (activity range, background range, mem range)
_CATEGORY_PROFILE = {
    CATEGORY_LOW: ((0.70, 0.92), (0.14, 0.20), (0.10, 0.30)),
    CATEGORY_MEDIUM: ((0.95, 1.10), (0.20, 0.26), (0.15, 0.40)),
    CATEGORY_HIGH: ((1.10, 1.30), (0.22, 0.30), (0.20, 0.50)),
}

_REF_GHZ = 1.6


def synthesize(
    category: str,
    duration_s: float,
    threads: int = None,
    gpu_demand: float = 0.0,
    seed: int = 0,
    name: Optional[str] = None,
    num_phases: int = 3,
) -> WorkloadTrace:
    """Generate a synthetic benchmark of the requested category.

    Parameters
    ----------
    category:
        One of ``"low" / "medium" / "high"``.
    duration_s:
        Nominal full-speed run length the total work is sized for.
    threads:
        CPU worker threads (default: category-typical -- 1 for low,
        1-2 for medium, 2-4 for high).
    gpu_demand:
        GPU busy fraction (0 for CPU-only benchmarks).
    seed:
        Drives all randomised choices, so traces are reproducible.
    num_phases:
        Number of phases in the repeating phase cycle (0 disables phases).
    """
    if category not in CATEGORIES:
        raise WorkloadError("unknown category %r" % category)
    if duration_s <= 0:
        raise WorkloadError("duration must be positive")
    rng = np.random.default_rng(seed)
    (act_lo, act_hi), (bg_lo, bg_hi), (mem_lo, mem_hi) = _CATEGORY_PROFILE[category]

    if threads is None:
        pick = {
            CATEGORY_LOW: (1,),
            CATEGORY_MEDIUM: (1, 2),
            CATEGORY_HIGH: (2, 3, 4),
        }[category]
        threads = int(rng.choice(pick))
    if threads < 1:
        raise WorkloadError("threads must be >= 1")

    phases = []
    for _ in range(max(0, num_phases)):
        phases.append(
            WorkloadPhase(
                duration_s=float(rng.uniform(4.0, 20.0)),
                demand=float(rng.uniform(0.6, 1.0)),
                gpu=float(rng.uniform(0.5, 1.0)) if gpu_demand > 0 else 1.0,
                mem=float(rng.uniform(0.8, 1.5)),
            )
        )

    return WorkloadTrace(
        name=name or "synthetic-%s-%d" % (category, seed),
        category=category,
        benchmark_type="synthetic",
        threads=threads,
        total_work_gcycles=duration_s * _REF_GHZ * threads,
        activity=float(rng.uniform(act_lo, act_hi)),
        gpu_demand=gpu_demand,
        gpu_activity=float(rng.uniform(0.8, 1.0)),
        mem_traffic=float(rng.uniform(mem_lo, mem_hi)),
        background_util=float(rng.uniform(bg_lo, bg_hi)),
        phases=tuple(phases),
        demand_jitter=float(rng.uniform(0.01, 0.05)),
    )
