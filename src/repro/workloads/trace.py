"""Workload trace primitives.

A benchmark couples to the power/thermal control stack through a small set
of behavioural quantities: how many CPU threads it keeps busy, how much
work (in reference big-core gigacycles) it must retire before finishing,
its switching-activity factor (the ``alpha`` of Eq. 4.1), the GPU load and
memory traffic it generates, and the background load the Android stack adds
("while running each benchmark all background processes were allowed to
run", Section 6.1.3).  Phases modulate these over time so the traces have
the burst structure real applications show.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.errors import WorkloadError

#: Category labels used by Table 6.4.
CATEGORY_LOW = "low"
CATEGORY_MEDIUM = "medium"
CATEGORY_HIGH = "high"
CATEGORIES = (CATEGORY_LOW, CATEGORY_MEDIUM, CATEGORY_HIGH)


@dataclass(frozen=True)
class WorkloadPhase:
    """A stretch of a workload with its own intensity multipliers.

    ``duration_s`` is measured in wall-clock benchmark time; the phase list
    repeats cyclically until the workload's total work is retired.
    """

    duration_s: float
    demand: float = 1.0  # CPU thread demand multiplier (0..1]
    gpu: float = 1.0  # GPU demand multiplier
    mem: float = 1.0  # memory traffic multiplier

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise WorkloadError("phase duration must be positive")
        if not 0.0 <= self.demand <= 1.0:
            raise WorkloadError("phase demand must be in [0, 1]")
        if self.gpu < 0 or self.mem < 0:
            raise WorkloadError("phase multipliers must be >= 0")


@dataclass(frozen=True)
class WorkloadTrace:
    """Static description of one benchmark."""

    name: str
    category: str
    benchmark_type: str  # Table 6.4 "Types" column
    threads: int
    total_work_gcycles: float
    #: Per-thread demand as a fraction of a big core's maximum speed.
    #: 1.0 = CPU-bound; < 1.0 = rate-limited (games, codecs).
    thread_demand: float = 1.0
    activity: float = 1.0  # alpha*C multiplier vs. the nominal core spec
    gpu_demand: float = 0.0  # GPU busy fraction demanded at max GPU freq
    gpu_activity: float = 1.0
    mem_traffic: float = 0.2  # normalised memory traffic at full speed
    background_util: float = 0.18  # Android stack load on every online core
    phases: Tuple[WorkloadPhase, ...] = field(default_factory=tuple)
    demand_jitter: float = 0.03  # seeded multiplicative jitter sigma

    def __post_init__(self) -> None:
        if self.category not in CATEGORIES:
            raise WorkloadError(
                "unknown category %r (want one of %s)" % (self.category, CATEGORIES)
            )
        if self.threads < 1:
            raise WorkloadError("a workload needs at least one thread")
        if self.total_work_gcycles <= 0:
            raise WorkloadError("total work must be positive")
        if not 0.0 < self.thread_demand <= 1.0:
            raise WorkloadError("thread_demand must be in (0, 1]")
        if not 0.0 <= self.gpu_demand <= 1.0:
            raise WorkloadError("gpu_demand must be in [0, 1]")
        if not 0.0 <= self.background_util < 1.0:
            raise WorkloadError("background_util must be in [0, 1)")

    @property
    def uses_gpu(self) -> bool:
        """Whether this workload meaningfully loads the GPU."""
        return self.gpu_demand > 0.05

    def phase_at(self, elapsed_s: float) -> WorkloadPhase:
        """The phase active at ``elapsed_s`` (phases repeat cyclically)."""
        if not self.phases:
            return WorkloadPhase(duration_s=1.0)
        cycle = sum(p.duration_s for p in self.phases)
        t = elapsed_s % cycle
        for phase in self.phases:
            if t < phase.duration_s:
                return phase
            t -= phase.duration_s
        return self.phases[-1]

    def nominal_duration_s(self, reference_freq_hz: float = 1.6e9) -> float:
        """Run time at full speed, accounting for the demand ceiling.

        Ignores phases/jitter; used to size benchmarks against the paper's
        reported run lengths.
        """
        per_thread = self.total_work_gcycles / self.threads
        return per_thread * 1e9 / (reference_freq_hz * self.thread_demand)


class WorkloadProgress:
    """Mutable run-time progress of one workload instance."""

    def __init__(self, trace: WorkloadTrace) -> None:
        self.trace = trace
        self._retired_gcycles = 0.0
        self._elapsed_s = 0.0

    @property
    def retired_gcycles(self) -> float:
        """Work retired so far."""
        return self._retired_gcycles

    @property
    def elapsed_s(self) -> float:
        """Wall-clock time the workload has been running."""
        return self._elapsed_s

    @property
    def fraction_done(self) -> float:
        """Completed fraction in [0, 1]."""
        return min(1.0, self._retired_gcycles / self.trace.total_work_gcycles)

    @property
    def done(self) -> bool:
        """Whether all work has been retired."""
        return self._retired_gcycles >= self.trace.total_work_gcycles

    def retire(self, gcycles: float, dt_s: float) -> None:
        """Account ``gcycles`` of completed work over ``dt_s`` seconds."""
        if gcycles < 0 or dt_s < 0:
            raise WorkloadError("work and time must be non-negative")
        self._retired_gcycles += gcycles
        self._elapsed_s += dt_s
