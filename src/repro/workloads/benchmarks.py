"""The 15 benchmarks of Table 6.4.

Eleven Mi-Bench programs, three game/video applications and the self-written
multi-threaded matrix multiplication.  Each is described behaviourally: the
work it retires, the threads it keeps busy, its switching-activity level
(which is what separates the Low / Medium / High power categories), and the
GPU/memory load it produces.  Work sizes are calibrated so the nominal
(fan-cooled, full-speed) run lengths land near the paper's plotted traces
(Dijkstra ~64 s, Patricia ~300 s, matrix multiplication ~60 s, Templerun
~100 s, Basicmath ~140 s, Blowfish ~280 s).

Per Section 6.1.3, the games run a matrix-multiplication instance in the
background "to overload the CPU", so their CPU thread count is high even
though the foreground work is GPU rendering.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import WorkloadError
from repro.workloads.trace import (
    CATEGORY_HIGH,
    CATEGORY_LOW,
    CATEGORY_MEDIUM,
    WorkloadPhase,
    WorkloadTrace,
)

#: Reference big-core frequency used to size total work (Hz -> Gcycles/s).
_REF_GHZ = 1.6


def _work(duration_s: float, threads: int) -> float:
    """Total work (Gcycles) for a nominal full-speed run of ``duration_s``."""
    return duration_s * _REF_GHZ * threads


# ---------------------------------------------------------------------------
# Mi-Bench: Security
# ---------------------------------------------------------------------------
BLOWFISH = WorkloadTrace(
    name="blowfish",
    category=CATEGORY_LOW,
    benchmark_type="security",
    threads=1,
    total_work_gcycles=_work(280.0, 1),
    activity=1.12,
    mem_traffic=0.18,
    background_util=0.22,
    phases=(
        WorkloadPhase(20.0, demand=1.0, mem=1.0),
        WorkloadPhase(8.0, demand=0.75, mem=1.4),  # key-schedule I/O bursts
    ),
)

SHA = WorkloadTrace(
    name="sha",
    category=CATEGORY_MEDIUM,
    benchmark_type="security",
    threads=1,
    total_work_gcycles=_work(110.0, 1),
    activity=1.25,
    mem_traffic=0.25,
    background_util=0.28,
)

# ---------------------------------------------------------------------------
# Mi-Bench: Network
# ---------------------------------------------------------------------------
DIJKSTRA = WorkloadTrace(
    name="dijkstra",
    category=CATEGORY_LOW,
    benchmark_type="network",
    threads=1,
    total_work_gcycles=_work(64.0, 1),
    activity=1.10,
    mem_traffic=0.22,
    background_util=0.25,
    phases=(
        WorkloadPhase(10.0, demand=1.0),
        WorkloadPhase(4.0, demand=0.8, mem=1.3),  # adjacency list walks
    ),
)

PATRICIA = WorkloadTrace(
    name="patricia",
    category=CATEGORY_MEDIUM,
    benchmark_type="network",
    threads=2,
    total_work_gcycles=_work(300.0, 2),
    activity=1.15,
    mem_traffic=0.30,
    background_util=0.22,
    phases=(
        WorkloadPhase(25.0, demand=1.0),
        WorkloadPhase(10.0, demand=0.7, mem=1.5),  # trie rebuild phases
    ),
)

# ---------------------------------------------------------------------------
# Mi-Bench: Computational
# ---------------------------------------------------------------------------
BASICMATH = WorkloadTrace(
    name="basicmath",
    category=CATEGORY_HIGH,
    benchmark_type="computational",
    threads=2,
    total_work_gcycles=_work(140.0, 2),
    activity=1.30,
    mem_traffic=0.20,
    background_util=0.25,
)

BITCOUNT = WorkloadTrace(
    name="bitcount",
    category=CATEGORY_MEDIUM,
    benchmark_type="computational",
    threads=1,
    total_work_gcycles=_work(95.0, 1),
    activity=1.28,
    mem_traffic=0.12,
    background_util=0.28,
)

QSORT = WorkloadTrace(
    name="qsort",
    category=CATEGORY_MEDIUM,
    benchmark_type="computational",
    threads=1,
    total_work_gcycles=_work(120.0, 1),
    activity=1.22,
    mem_traffic=0.35,
    background_util=0.28,
)

MATRIX_MULT = WorkloadTrace(
    name="matrix_mult",
    category=CATEGORY_HIGH,
    benchmark_type="computational",
    threads=4,
    total_work_gcycles=_work(60.0, 4),
    activity=1.10,
    mem_traffic=0.45,
    background_util=0.10,  # the four workers crowd out the background
)

# ---------------------------------------------------------------------------
# Mi-Bench: Telecommunications
# ---------------------------------------------------------------------------
CRC32 = WorkloadTrace(
    name="crc32",
    category=CATEGORY_LOW,
    benchmark_type="telecomm",
    threads=1,
    total_work_gcycles=_work(75.0, 1),
    activity=1.14,
    mem_traffic=0.30,
    background_util=0.22,
)

GSM = WorkloadTrace(
    name="gsm",
    category=CATEGORY_MEDIUM,
    benchmark_type="telecomm",
    threads=1,
    total_work_gcycles=_work(130.0, 1),
    activity=1.25,
    mem_traffic=0.22,
    background_util=0.28,
    phases=(
        WorkloadPhase(12.0, demand=1.0),
        WorkloadPhase(3.0, demand=0.6, mem=1.2),  # frame boundaries
    ),
)

FFT = WorkloadTrace(
    name="fft",
    category=CATEGORY_HIGH,
    benchmark_type="telecomm",
    threads=2,
    total_work_gcycles=_work(120.0, 2),
    activity=1.30,
    mem_traffic=0.40,
    background_util=0.25,
)

# ---------------------------------------------------------------------------
# Mi-Bench: Consumer
# ---------------------------------------------------------------------------
JPEG = WorkloadTrace(
    name="jpeg",
    category=CATEGORY_MEDIUM,
    benchmark_type="consumer",
    threads=1,
    total_work_gcycles=_work(100.0, 1),
    activity=1.22,
    mem_traffic=0.40,
    background_util=0.28,
    phases=(
        WorkloadPhase(6.0, demand=1.0, mem=1.0),  # encode
        WorkloadPhase(5.0, demand=0.9, mem=1.4),  # decode, more traffic
        WorkloadPhase(2.0, demand=0.5, mem=1.6),  # image load/store
    ),
)

# ---------------------------------------------------------------------------
# Games and video (Android applications)
# ---------------------------------------------------------------------------
ANGRY_BIRDS = WorkloadTrace(
    name="angry_birds",
    category=CATEGORY_HIGH,
    benchmark_type="game",
    threads=3,  # physics + render threads + background matrix multiply
    total_work_gcycles=_work(110.0, 3) * 0.70,
    thread_demand=0.70,
    activity=1.15,
    gpu_demand=0.80,
    gpu_activity=0.95,
    mem_traffic=0.45,
    background_util=0.15,
    phases=(
        WorkloadPhase(8.0, demand=1.0, gpu=1.0),  # gameplay
        WorkloadPhase(3.0, demand=0.6, gpu=0.5),  # menus / aiming
    ),
)

TEMPLERUN = WorkloadTrace(
    name="templerun",
    category=CATEGORY_HIGH,
    benchmark_type="game",
    threads=3,
    total_work_gcycles=_work(100.0, 3) * 0.75,
    thread_demand=0.75,
    activity=1.10,
    gpu_demand=0.85,
    gpu_activity=1.00,
    mem_traffic=0.50,
    background_util=0.15,
    phases=(
        WorkloadPhase(12.0, demand=1.0, gpu=1.0),
        WorkloadPhase(4.0, demand=0.95, gpu=0.92),  # respawn / transitions
    ),
)

YOUTUBE = WorkloadTrace(
    name="youtube",
    category=CATEGORY_LOW,
    benchmark_type="video",
    threads=1,
    total_work_gcycles=_work(150.0, 1) * 0.50,
    thread_demand=0.50,
    activity=0.90,
    gpu_demand=0.65,
    gpu_activity=0.80,
    mem_traffic=0.45,
    background_util=0.18,
    phases=(
        WorkloadPhase(10.0, demand=0.9, gpu=1.0),
        WorkloadPhase(5.0, demand=0.6, gpu=0.9, mem=1.2),  # buffering
    ),
)

#: All benchmarks of Table 6.4, in the paper's listing order.
ALL_BENCHMARKS: Tuple[WorkloadTrace, ...] = (
    BLOWFISH,
    SHA,
    DIJKSTRA,
    PATRICIA,
    BASICMATH,
    MATRIX_MULT,
    BITCOUNT,
    QSORT,
    CRC32,
    GSM,
    FFT,
    JPEG,
    ANGRY_BIRDS,
    TEMPLERUN,
    YOUTUBE,
)

_REGISTRY: Dict[str, WorkloadTrace] = {b.name: b for b in ALL_BENCHMARKS}


def get_benchmark(name: str) -> WorkloadTrace:
    """Look a benchmark up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise WorkloadError(
            "unknown benchmark %r (known: %s)" % (name, sorted(_REGISTRY))
        ) from None


def benchmark_names() -> List[str]:
    """All benchmark names in Table 6.4 order."""
    return [b.name for b in ALL_BENCHMARKS]


def benchmarks_by_category(category: str) -> List[WorkloadTrace]:
    """All benchmarks with the given power category."""
    hits = [b for b in ALL_BENCHMARKS if b.category == category]
    if not hits:
        raise WorkloadError("no benchmarks in category %r" % category)
    return hits


def table_6_4_rows() -> List[Tuple[str, str, str]]:
    """(type, benchmark, category) rows mirroring Table 6.4."""
    return [
        (b.benchmark_type, b.name, b.category) for b in ALL_BENCHMARKS
    ]
