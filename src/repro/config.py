"""Top-level simulation configuration.

All timing, thermal-constraint and noise knobs live here so that tests,
examples and the benchmark harness describe experiments declaratively.
Defaults reproduce the paper's setup: a 100 ms control period (the cpufreq
driver invocation period), a 1 s prediction window (10 control intervals),
and a 63 degC thermal constraint matching the fan controller's second step.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.units import celsius_to_kelvin


@dataclass(frozen=True)
class SimulationConfig:
    """Immutable bundle of experiment-level knobs.

    Parameters
    ----------
    control_period_s:
        Period at which governors and the DTPM algorithm run (paper: 100 ms).
    thermal_substep_s:
        Integration step of the ground-truth thermal RC network.  Must divide
        the control period.
    ambient_c:
        Ambient (room) temperature in Celsius.
    t_constraint_c:
        Maximum permissible hotspot temperature ``Tmax`` (paper: 63 degC).
    prediction_horizon_steps:
        Number of control intervals ahead the thermal predictor looks
        (paper: 10 intervals = 1 s).
    hotspot_delta_c:
        ``Delta`` of Eq. 5.9 -- the hottest-core temperature imbalance that
        triggers turning that core off.
    min_big_cores:
        The smallest big-cluster core count the policy will try before
        migrating everything to the little cluster (paper: three).
    temp_sensor_noise_c / temp_sensor_quantum_c:
        Gaussian noise sigma and quantisation step of the on-die thermal
        sensors (the Exynos TMU reports whole degrees).
    power_sensor_noise_rel:
        Relative Gaussian noise of the INA231-style power sensors.
    seed:
        Seed for every stochastic element (sensor noise, workload jitter).
    """

    control_period_s: float = 0.1
    thermal_substep_s: float = 0.01
    ambient_c: float = 25.0
    t_constraint_c: float = 63.0
    prediction_horizon_steps: int = 10
    hotspot_delta_c: float = 4.0
    min_big_cores: int = 3
    temp_sensor_noise_c: float = 0.15
    temp_sensor_quantum_c: float = 0.25
    power_sensor_noise_rel: float = 0.01
    seed: int = 2015

    def __post_init__(self) -> None:
        if self.control_period_s <= 0 or self.thermal_substep_s <= 0:
            raise ConfigurationError("periods must be positive")
        ratio = self.control_period_s / self.thermal_substep_s
        if abs(ratio - round(ratio)) > 1e-9:
            raise ConfigurationError(
                "thermal_substep_s must divide control_period_s"
            )
        if self.prediction_horizon_steps < 1:
            raise ConfigurationError("prediction horizon must be >= 1 step")
        if not 1 <= self.min_big_cores <= 4:
            raise ConfigurationError("min_big_cores must be in 1..4")

    @property
    def substeps_per_control(self) -> int:
        """Thermal integrator substeps per control interval."""
        return int(round(self.control_period_s / self.thermal_substep_s))

    @property
    def ambient_k(self) -> float:
        """Ambient temperature in Kelvin."""
        return celsius_to_kelvin(self.ambient_c)

    @property
    def t_constraint_k(self) -> float:
        """Thermal constraint in Kelvin."""
        return celsius_to_kelvin(self.t_constraint_c)

    @property
    def prediction_horizon_s(self) -> float:
        """Prediction window in seconds."""
        return self.prediction_horizon_steps * self.control_period_s

    def with_(self, **changes) -> "SimulationConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **changes)


#: Default configuration used across examples and benchmarks.
DEFAULT_CONFIG = SimulationConfig()
