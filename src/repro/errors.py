"""Exception hierarchy for the DTPM reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration mistakes from run-time model failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class WireError(ConfigurationError):
    """A wire-format payload (versioned JSON) could not be decoded."""


class PlatformError(ReproError):
    """Invalid operation requested on the simulated platform."""


class InvalidFrequencyError(PlatformError):
    """A frequency outside the device's OPP table was requested."""

    def __init__(self, frequency_hz: float, valid: tuple) -> None:
        self.frequency_hz = frequency_hz
        self.valid = tuple(valid)
        super().__init__(
            "frequency %.0f Hz is not in the OPP table %s"
            % (frequency_hz, [f / 1e6 for f in self.valid])
        )


class ClusterStateError(PlatformError):
    """Invalid cluster activation / hotplug request (e.g. zero active cores)."""


class ModelError(ReproError):
    """A power or thermal model failed or was used before being fitted."""


class NotFittedError(ModelError):
    """A model that requires fitting was used before ``fit`` was called."""


class IdentificationError(ModelError):
    """System identification could not produce a usable model."""


class BudgetError(ReproError):
    """Power-budget computation failed (e.g. non-positive budget row)."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class WorkloadError(ReproError):
    """Unknown benchmark or malformed workload trace."""
