"""Unit helpers and physical constants.

The library stores every quantity in SI base units internally:

========================  =============
quantity                  internal unit
========================  =============
time                      seconds
frequency                 hertz
power                     watts
temperature               kelvin
capacitance               farads
energy                    joules
thermal resistance        kelvin/watt
thermal capacitance       joule/kelvin
========================  =============

The paper (and the rendered tables/figures) use MHz/GHz and Celsius, so the
converters here are used at every API boundary that mirrors the paper.
"""

from __future__ import annotations

#: Absolute zero offset between Celsius and Kelvin.
KELVIN_OFFSET = 273.15

#: Boltzmann constant (J/K) - appears in the leakage current equation (4.2).
BOLTZMANN = 1.380649e-23

#: Elementary charge (C).
ELEMENTARY_CHARGE = 1.602176634e-19


def celsius_to_kelvin(celsius: float) -> float:
    """Convert a temperature from degrees Celsius to Kelvin."""
    return celsius + KELVIN_OFFSET


def kelvin_to_celsius(kelvin: float) -> float:
    """Convert a temperature from Kelvin to degrees Celsius."""
    return kelvin - KELVIN_OFFSET


def mhz(value: float) -> float:
    """Convert a frequency in MHz to Hz."""
    return value * 1e6


def ghz(value: float) -> float:
    """Convert a frequency in GHz to Hz."""
    return value * 1e9


def hz_to_mhz(value: float) -> float:
    """Convert a frequency in Hz to MHz."""
    return value / 1e6

def hz_to_ghz(value: float) -> float:
    """Convert a frequency in Hz to GHz."""
    return value / 1e9


def milliwatts(value: float) -> float:
    """Convert a power in mW to W."""
    return value * 1e-3


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into the closed interval [low, high]."""
    if low > high:
        raise ValueError("clamp: low %r > high %r" % (low, high))
    return max(low, min(high, value))
