"""Combined power model: leakage + dynamic (Section 4.1, Fig. 4.7).

One :class:`ResourcePowerModel` per measurable resource (big cluster,
little cluster, GPU, memory); the :class:`PowerModel` bundle mirrors the
power vector layout of Eq. 5.3 and is the single object the DTPM stack
consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import ModelError, NotFittedError
from repro.platform.specs import OppTable, POWER_RESOURCES, Resource
from repro.power.dynamic import AlphaCEstimator, DynamicPowerModel
from repro.power.leakage import LeakageModel


@dataclass
class PowerDecomposition:
    """One interval's total power split into components (W)."""

    total_w: float
    leakage_w: float
    dynamic_w: float


class ResourcePowerModel:
    """Leakage + dynamic model of one resource, updated from sensors."""

    def __init__(
        self,
        resource: Resource,
        leakage: LeakageModel,
        opp_table: Optional[OppTable] = None,
        estimator: Optional[AlphaCEstimator] = None,
    ) -> None:
        self.resource = resource
        self.leakage = leakage
        self.opp_table = opp_table
        self.dynamic = DynamicPowerModel(estimator)

    # -- observation --------------------------------------------------
    def observe(
        self,
        total_power_w: float,
        temperature_k: float,
        vdd: float,
        frequency_hz: float,
    ) -> PowerDecomposition:
        """Decompose one total-power reading and update alpha*C."""
        leak = self.leakage.power_w(temperature_k, vdd)
        dynamic = self.dynamic.observe(
            total_power_w, temperature_k, vdd, frequency_hz, self.leakage
        )
        return PowerDecomposition(
            total_w=total_power_w, leakage_w=leak, dynamic_w=dynamic
        )

    # -- prediction ----------------------------------------------------
    def predict_total_w(
        self, frequency_hz: float, temperature_k: float, vdd: Optional[float] = None
    ) -> float:
        """Predicted total power at an operating point (Eq. 4.1)."""
        if vdd is None:
            if self.opp_table is None:
                raise ModelError(
                    "%s: vdd required (no OPP table attached)" % self.resource
                )
            vdd = self.opp_table.voltage(frequency_hz)
        return (
            self.dynamic.predict_w(frequency_hz, vdd)
            + self.leakage.power_w(temperature_k, vdd)
        )

    def predict_leakage_w(self, temperature_k: float, vdd: float) -> float:
        """Predicted leakage power at temperature/voltage."""
        return self.leakage.power_w(temperature_k, vdd)


class PowerModel:
    """The full per-resource power model bundle.

    Index order follows :data:`repro.platform.specs.POWER_RESOURCES`
    (big, little, gpu, mem) -- the same layout as the thermal model's
    power input vector.
    """

    def __init__(self, models: Dict[Resource, ResourcePowerModel]) -> None:
        missing = [r for r in POWER_RESOURCES if r not in models]
        if missing:
            raise NotFittedError(
                "power model missing resources: %s" % [str(m) for m in missing]
            )
        self.models = dict(models)

    def __getitem__(self, resource: Resource) -> ResourcePowerModel:
        return self.models[resource]

    def observe_vector(
        self,
        powers_w: np.ndarray,
        big_temperature_k: float,
        operating_point: "OperatingPoint",
    ) -> Dict[Resource, PowerDecomposition]:
        """Feed one sensor snapshot through every resource model.

        ``powers_w`` follows the [big, little, gpu, mem] layout.  Only the
        currently active CPU cluster learns a new alpha*C (a gated cluster's
        sensor reads leakage only).
        """
        out: Dict[Resource, PowerDecomposition] = {}
        for i, resource in enumerate(POWER_RESOURCES):
            model = self.models[resource]
            point = operating_point.for_resource(resource)
            if point is None:
                continue
            vdd, freq = point
            out[resource] = model.observe(
                float(powers_w[i]), big_temperature_k, vdd, freq
            )
        return out

    def leakage_vector_w(
        self, temperature_k: float, operating_point: "OperatingPoint"
    ) -> np.ndarray:
        """Leakage estimate for each resource at the given temperature."""
        leaks = np.zeros(len(POWER_RESOURCES))
        for i, resource in enumerate(POWER_RESOURCES):
            point = operating_point.for_resource(resource)
            if point is None:
                continue
            vdd, _ = point
            leaks[i] = self.models[resource].predict_leakage_w(temperature_k, vdd)
        return leaks


@dataclass(frozen=True)
class OperatingPoint:
    """Voltage/frequency of every resource at one control interval.

    Inactive resources carry ``None`` and are skipped by model updates.
    """

    big: Optional[tuple]  # (vdd, frequency_hz) or None when gated
    little: Optional[tuple]
    gpu: Optional[tuple]
    mem: Optional[tuple]

    def for_resource(self, resource: Resource) -> Optional[tuple]:
        """(vdd, frequency) of a resource, or None if gated."""
        return {
            Resource.BIG: self.big,
            Resource.LITTLE: self.little,
            Resource.GPU: self.gpu,
            Resource.MEM: self.mem,
        }[resource]
