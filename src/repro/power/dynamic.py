"""Run-time dynamic power model (Section 4.1.2, Fig. 4.4).

At every control interval the platform's sensors provide the total power
and temperature of each resource.  The leakage model converts temperature
into a leakage estimate; the remainder is dynamic power, from which the
product ``alpha * C`` (activity factor x switching capacitance) is
extracted:

    alpha*C = (P_total - P_leak(T, Vdd)) / (Vdd^2 * f)

"This computation is continuously updated and an accurate reflection of
activity factor is obtained at run-time" -- implemented here as an
exponentially weighted moving average so single-sample sensor noise does
not whipsaw the frequency decisions.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ModelError
from repro.power.leakage import LeakageModel


class AlphaCEstimator:
    """EWMA estimator of the alpha*C product for one resource."""

    def __init__(
        self,
        initial_alpha_c_f: float = 0.1e-9,
        smoothing: float = 0.35,
        floor_f: float = 1e-12,
        ceiling_f: float = 20e-9,
    ) -> None:
        if not 0 < smoothing <= 1:
            raise ModelError("smoothing must be in (0, 1]")
        if not floor_f < ceiling_f:
            raise ModelError("floor must be below ceiling")
        self.smoothing = smoothing
        self.floor_f = floor_f
        self.ceiling_f = ceiling_f
        self._alpha_c = min(max(initial_alpha_c_f, floor_f), ceiling_f)
        self._samples = 0

    @property
    def alpha_c_f(self) -> float:
        """Current alpha*C estimate (F)."""
        return self._alpha_c

    @property
    def sample_count(self) -> int:
        """Number of samples absorbed so far."""
        return self._samples

    def update(self, dynamic_power_w: float, vdd: float, frequency_hz: float) -> float:
        """Absorb one interval's dynamic-power observation.

        Returns the updated alpha*C estimate.  Non-positive dynamic power
        (leakage model overshoot at idle) clamps the raw sample to the floor
        rather than going negative.
        """
        if vdd <= 0 or frequency_hz <= 0:
            raise ModelError("vdd and frequency must be positive")
        raw = dynamic_power_w / (vdd ** 2 * frequency_hz)
        raw = min(max(raw, self.floor_f), self.ceiling_f)
        if self._samples == 0:
            self._alpha_c = raw
        else:
            self._alpha_c += self.smoothing * (raw - self._alpha_c)
        self._samples += 1
        return self._alpha_c


class DynamicPowerModel:
    """Predicts dynamic power from the tracked alpha*C product.

    This is the model used in Eq. 5.7 to turn a dynamic power budget into a
    frequency: ``P_dyn = alpha*C * Vdd^2 * f``.
    """

    def __init__(self, estimator: Optional[AlphaCEstimator] = None) -> None:
        self.estimator = estimator or AlphaCEstimator()

    def predict_w(self, frequency_hz: float, vdd: float) -> float:
        """Dynamic power (W) at the given operating point."""
        if vdd <= 0 or frequency_hz <= 0:
            raise ModelError("vdd and frequency must be positive")
        return self.estimator.alpha_c_f * vdd ** 2 * frequency_hz

    def frequency_for_budget_hz(self, budget_w: float, vdd: float) -> float:
        """Invert Eq. 5.7: the frequency whose dynamic power equals budget.

        Note the returned frequency is continuous; the DTPM policy quantises
        it down to the OPP table.  A non-positive budget maps to 0 Hz.
        """
        if vdd <= 0:
            raise ModelError("vdd must be positive")
        if budget_w <= 0:
            return 0.0
        alpha_c = self.estimator.alpha_c_f
        if alpha_c <= 0:
            raise ModelError("alpha*C estimate is not positive")
        return budget_w / (alpha_c * vdd ** 2)

    def observe(
        self,
        total_power_w: float,
        temperature_k: float,
        vdd: float,
        frequency_hz: float,
        leakage_model: LeakageModel,
    ) -> float:
        """Fig. 4.4 pipeline: decompose a total-power reading, update alpha*C.

        Returns the dynamic component of the observation.
        """
        leak = leakage_model.power_w(temperature_k, vdd)
        dynamic = total_power_w - leak
        self.estimator.update(dynamic, vdd, frequency_hz)
        return dynamic
