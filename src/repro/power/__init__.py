"""Power modeling methodology of Chapter 4.1."""

from repro.power.characterization import (
    DEFAULT_SETPOINTS_C,
    FurnaceCharacterization,
    FurnacePoint,
    FurnaceRig,
    default_leakage_models,
    default_power_model,
)
from repro.power.dynamic import AlphaCEstimator, DynamicPowerModel
from repro.power.fitting import LeakageFit, fit_leakage, linear_fit
from repro.power.leakage import LeakageModel
from repro.power.model import (
    OperatingPoint,
    PowerDecomposition,
    PowerModel,
    ResourcePowerModel,
)

__all__ = [
    "DEFAULT_SETPOINTS_C",
    "FurnaceCharacterization",
    "FurnacePoint",
    "FurnaceRig",
    "default_leakage_models",
    "default_power_model",
    "AlphaCEstimator",
    "DynamicPowerModel",
    "LeakageFit",
    "fit_leakage",
    "linear_fit",
    "LeakageModel",
    "OperatingPoint",
    "PowerDecomposition",
    "PowerModel",
    "ResourcePowerModel",
]
