"""Leakage characterization with a temperature furnace (Section 4.1.1).

The paper places the Odroid board inside a temperature furnace (Fig. 4.1),
sweeps the ambient from 40 to 80 degC in 10 degC increments, runs a *light*
workload at fixed frequency and voltage so dynamic power stays constant,
and records each resource's power sensor.  The temperature-driven power
spread is then all leakage, and fitting Eq. 4.2 to it recovers
(c1, c2, I_gate) per resource.

:class:`FurnaceRig` reproduces that procedure against the simulated board:
it never touches the platform's ground-truth constants, only sensor data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import SimulationConfig
from repro.errors import ModelError
from repro.platform.board import OdroidBoard
from repro.platform.specs import PlatformSpec, POWER_RESOURCES, Resource
from repro.power.fitting import LeakageFit, fit_leakage
from repro.power.leakage import LeakageModel
from repro.power.model import PowerModel, ResourcePowerModel

#: Default furnace setpoints (Celsius), as in the paper.
DEFAULT_SETPOINTS_C: Tuple[float, ...] = (40.0, 50.0, 60.0, 70.0, 80.0)

#: Light-workload core utilisations: one thread plus background trickle.
_LIGHT_UTILS = (0.25, 0.05, 0.05, 0.05)
#: Light fixed GPU utilisation / memory traffic during the sweep.
_LIGHT_GPU_UTIL = 0.15
_LIGHT_MEM_TRAFFIC = 0.10


@dataclass
class FurnacePoint:
    """Averaged measurements at one furnace setpoint."""

    setpoint_c: float
    junction_temp_k: float
    powers_w: np.ndarray  # [big, little, gpu, mem] sensor averages


@dataclass
class FurnaceCharacterization:
    """Full characterization output: raw points + fitted models."""

    points_big_session: List[FurnacePoint] = field(default_factory=list)
    points_little_session: List[FurnacePoint] = field(default_factory=list)
    fits: Dict[Resource, LeakageFit] = field(default_factory=dict)

    def leakage_models(self) -> Dict[Resource, LeakageModel]:
        """Run-time leakage models built from the fits."""
        return {r: LeakageModel.from_fit(f) for r, f in self.fits.items()}


class FurnaceRig:
    """Drives the simulated board through the furnace procedure."""

    def __init__(
        self,
        spec: Optional[PlatformSpec] = None,
        config: Optional[SimulationConfig] = None,
        setpoints_c: Sequence[float] = DEFAULT_SETPOINTS_C,
        soak_s: float = 80.0,
        measure_s: float = 40.0,
        sample_period_s: float = 0.1,
        seed: int = 41,
    ) -> None:
        if measure_s >= soak_s:
            raise ModelError("measurement window must lie inside the soak")
        self.spec = spec or PlatformSpec()
        self.config = config or SimulationConfig()
        self.setpoints_c = tuple(setpoints_c)
        self.soak_s = soak_s
        self.measure_s = measure_s
        self.sample_period_s = sample_period_s
        self.seed = seed

    # ------------------------------------------------------------------
    def _run_setpoint(self, setpoint_c: float, cluster: Resource) -> FurnacePoint:
        """One soak at a furnace setpoint with the light workload."""
        config = self.config.with_(ambient_c=setpoint_c, seed=self.seed)
        board = OdroidBoard(self.spec, config, fan_enabled=False)
        # the furnace soaks the whole board, including the PCB mass
        board.network.set_uniform_temperature_k(config.ambient_k)

        if cluster is Resource.LITTLE:
            board.soc.switch_cluster(Resource.LITTLE)
            board.soc.little.set_frequency(board.soc.little.opp_table.f_min_hz)
            big_utils, little_utils = (0.0,) * 4, _LIGHT_UTILS
        else:
            board.soc.big.set_frequency(board.soc.big.opp_table.f_min_hz)
            big_utils, little_utils = _LIGHT_UTILS, (0.0,) * 4
        board.soc.gpu.set_frequency(board.soc.gpu.opp_table.f_min_hz)

        steps = int(round(self.soak_s / self.sample_period_s))
        measure_from = self.soak_s - self.measure_s
        temp_samples: List[float] = []
        power_samples: List[np.ndarray] = []
        for step in range(steps):
            board.step(
                big_utils,
                little_utils,
                gpu_utilisation=_LIGHT_GPU_UTIL,
                mem_traffic=_LIGHT_MEM_TRAFFIC,
                dt_s=self.sample_period_s,
            )
            if board.time_s >= measure_from:
                snap = board.read_sensors()
                temp_samples.append(float(np.mean(snap.temperatures_k)))
                power_samples.append(snap.powers_w)

        return FurnacePoint(
            setpoint_c=setpoint_c,
            junction_temp_k=float(np.mean(temp_samples)),
            powers_w=np.mean(np.stack(power_samples), axis=0),
        )

    # ------------------------------------------------------------------
    def characterize(self) -> FurnaceCharacterization:
        """Run both furnace sessions and fit all four leakage models.

        Session 1 runs the light workload on the *big* cluster and yields
        the big / GPU / memory curves (their sensors all see fixed dynamic
        power).  Session 2 repeats on the *little* cluster for its curve.
        """
        result = FurnaceCharacterization()
        for setpoint in self.setpoints_c:
            result.points_big_session.append(
                self._run_setpoint(setpoint, Resource.BIG)
            )
        for setpoint in self.setpoints_c:
            result.points_little_session.append(
                self._run_setpoint(setpoint, Resource.LITTLE)
            )

        temps_big = [p.junction_temp_k for p in result.points_big_session]
        temps_little = [p.junction_temp_k for p in result.points_little_session]
        idx = {r: i for i, r in enumerate(POWER_RESOURCES)}

        def powers(points: List[FurnacePoint], resource: Resource) -> List[float]:
            return [float(p.powers_w[idx[resource]]) for p in points]

        vdd_big = self.spec.big_opp.voltage(self.spec.big_opp.f_min_hz)
        vdd_little = self.spec.little_opp.voltage(self.spec.little_opp.f_min_hz)
        vdd_gpu = self.spec.gpu_opp.voltage(self.spec.gpu_opp.f_min_hz)

        result.fits[Resource.BIG] = fit_leakage(
            temps_big, powers(result.points_big_session, Resource.BIG), vdd_big
        )
        result.fits[Resource.GPU] = fit_leakage(
            temps_big, powers(result.points_big_session, Resource.GPU), vdd_gpu
        )
        result.fits[Resource.MEM] = fit_leakage(
            temps_big,
            powers(result.points_big_session, Resource.MEM),
            self.spec.mem_vdd,
        )
        result.fits[Resource.LITTLE] = fit_leakage(
            temps_little,
            powers(result.points_little_session, Resource.LITTLE),
            vdd_little,
        )
        return result

    def build_power_model(
        self, characterization: FurnaceCharacterization = None
    ) -> PowerModel:
        """Characterize (if needed) and assemble the run-time PowerModel."""
        if characterization is None:
            characterization = self.characterize()
        leakage = characterization.leakage_models()
        models = {
            Resource.BIG: ResourcePowerModel(
                Resource.BIG, leakage[Resource.BIG], self.spec.big_opp
            ),
            Resource.LITTLE: ResourcePowerModel(
                Resource.LITTLE, leakage[Resource.LITTLE], self.spec.little_opp
            ),
            Resource.GPU: ResourcePowerModel(
                Resource.GPU, leakage[Resource.GPU], self.spec.gpu_opp
            ),
            Resource.MEM: ResourcePowerModel(Resource.MEM, leakage[Resource.MEM]),
        }
        return PowerModel(models)


def default_leakage_models(spec: Optional[PlatformSpec] = None) -> Dict[Resource, LeakageModel]:
    """Pre-fitted leakage models for the default platform.

    Running the furnace takes a few simulated minutes; tests and examples
    that do not exercise characterization itself can use these cached fits
    (obtained by running :class:`FurnaceRig` once on the default platform).
    """
    return {
        Resource.BIG: LeakageModel(c1=7.690e-3, c2=-2900.0, i_gate=0.0),
        Resource.LITTLE: LeakageModel(c1=2.117e-3, c2=-2934.6, i_gate=0.0),
        Resource.GPU: LeakageModel(c1=4.478e-3, c2=-2905.4, i_gate=0.0),
        Resource.MEM: LeakageModel(c1=1.950e-3, c2=-2860.3, i_gate=0.0),
    }


def default_power_model(spec: Optional[PlatformSpec] = None) -> PowerModel:
    """A ready-to-use PowerModel with the cached default leakage fits."""
    spec = spec or PlatformSpec()
    leakage = default_leakage_models(spec)
    return PowerModel(
        {
            Resource.BIG: ResourcePowerModel(
                Resource.BIG, leakage[Resource.BIG], spec.big_opp
            ),
            Resource.LITTLE: ResourcePowerModel(
                Resource.LITTLE, leakage[Resource.LITTLE], spec.little_opp
            ),
            Resource.GPU: ResourcePowerModel(
                Resource.GPU, leakage[Resource.GPU], spec.gpu_opp
            ),
            Resource.MEM: ResourcePowerModel(Resource.MEM, leakage[Resource.MEM]),
        }
    )
