"""Batched ground-truth SoC power evaluation.

The serial plant asks :meth:`repro.platform.soc.ExynosSoc.power_state` for
one configuration at a time; a batched plant advances ``B`` independent
runs per control step, so the same Eq. 5.3 power breakdown has to be
evaluated for ``B`` (frequency, hotplug, utilisation, temperature) tuples
at once.  :class:`BatchPowerModel` does exactly that, as a pure
struct-of-arrays computation:

* everything that is constant over a control interval (voltages, per-core
  dynamic powers, hotplug masks) is folded once into a
  :class:`BatchPowerInputs`;
* the temperature-dependent leakage terms are re-evaluated every thermal
  substep from the lane temperatures.

Every operation is elementwise over the batch axis (the only reductions
run over the fixed four-core axis), so lane ``b`` of any batch computes
exactly what a batch of one would -- the property the batch/serial
byte-identity contract rests on.  ``tests/test_batch_sim.py`` pins each
term against the scalar :class:`~repro.platform.soc.ExynosSoc` path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.platform.cluster import (
    _GATED_LEAKAGE_SHARE,
    _UNCORE_LEAKAGE_SHARE,
)
from repro.platform.specs import PlatformSpec, Resource


@dataclass
class BatchPowerInputs:
    """Per-interval constants of the batched power evaluation.

    All arrays carry one row/entry per batch lane.  ``*_dyn_w`` terms do
    not depend on temperature, so they are computed once per control
    interval; only leakage varies across thermal substeps.
    """

    active_is_big: np.ndarray  # (B,) bool
    big_core_dyn_w: np.ndarray  # (B, 4) per-core dynamic power (online only)
    little_dyn_w: np.ndarray  # (B,) little-cluster dynamic total
    gpu_dyn_w: np.ndarray  # (B,)
    mem_dyn_w: np.ndarray  # (B,)
    vdd_big: np.ndarray  # (B,) active-voltage of the big cluster
    vdd_little: np.ndarray  # (B,)
    vdd_gpu: np.ndarray  # (B,)
    big_online: np.ndarray  # (B, 4) bool
    big_num_online: np.ndarray  # (B,)
    big_leak_share: np.ndarray  # (B,) uncore + per-core leakage share
    little_leak_share: np.ndarray  # (B,)


@dataclass
class BatchPowerState:
    """One substep's ground-truth power breakdown for every lane."""

    powers_w: np.ndarray  # (B, 4) totals in [big, little, gpu, mem] layout
    big_core_powers_w: np.ndarray  # (B, 4) per-core heat sources
    soc_total_w: np.ndarray  # (B,)
    dynamic_w: np.ndarray  # (B, 4) dynamic components, same layout
    leakage_w: np.ndarray  # (B, 4) leakage components, same layout


class BatchPowerModel:
    """Vectorised ground-truth power of one platform over a batch axis."""

    def __init__(self, spec: PlatformSpec) -> None:
        self.spec = spec
        self._vdd_big_gated = spec.big_opp.voltage(spec.big_opp.f_min_hz)
        self._vdd_little_gated = spec.little_opp.voltage(
            spec.little_opp.f_min_hz
        )

    # ------------------------------------------------------------------
    def interval_inputs(
        self,
        active_is_big: np.ndarray,
        big_freq_hz: np.ndarray,
        little_freq_hz: np.ndarray,
        gpu_freq_hz: np.ndarray,
        big_online: np.ndarray,
        little_online: np.ndarray,
        big_utils: np.ndarray,
        little_utils: np.ndarray,
        gpu_util: np.ndarray,
        mem_traffic: np.ndarray,
        cpu_activity: np.ndarray,
        gpu_activity: np.ndarray,
    ) -> BatchPowerInputs:
        """Fold the temperature-independent terms of one control interval."""
        spec = self.spec
        # the V(f) curves are pure elementwise arithmetic, so the scalar
        # OPP-table accessor evaluates whole frequency arrays directly
        vdd_big = spec.big_opp.voltage(big_freq_hz)
        vdd_little = spec.little_opp.voltage(little_freq_hz)
        vdd_gpu = spec.gpu_opp.voltage(gpu_freq_hz)

        # per-core dynamic power, replicating CoreSpec.dynamic_power's
        # operand order: ((((activity * C) * vdd^2) * f) * u)
        u_big = np.clip(big_utils, 0.0, 1.0) * big_online
        big_core_dyn = (
            cpu_activity * spec.big_core.switching_capacitance_f
            * vdd_big ** 2
            * big_freq_hz
        )[:, np.newaxis] * u_big
        big_core_dyn = big_core_dyn * active_is_big[:, np.newaxis]

        u_little = np.clip(little_utils, 0.0, 1.0) * little_online
        little_core_dyn = (
            cpu_activity * spec.little_core.switching_capacitance_f
            * vdd_little ** 2
            * little_freq_hz
        )[:, np.newaxis] * u_little
        little_dyn = np.sum(little_core_dyn, axis=1) * ~active_is_big

        gpu_dyn = (
            gpu_activity * spec.gpu_capacitance_f
            * vdd_gpu ** 2
            * gpu_freq_hz
            * gpu_util
        )
        mem_dyn = spec.mem_full_traffic_w * mem_traffic

        big_num_online = np.sum(big_online, axis=1)
        little_num_online = np.sum(little_online, axis=1)
        cores = float(spec.cores_per_cluster)
        big_leak_share = _UNCORE_LEAKAGE_SHARE + (
            1.0 - _UNCORE_LEAKAGE_SHARE
        ) * (big_num_online / cores)
        little_leak_share = _UNCORE_LEAKAGE_SHARE + (
            1.0 - _UNCORE_LEAKAGE_SHARE
        ) * (little_num_online / cores)

        return BatchPowerInputs(
            active_is_big=active_is_big,
            big_core_dyn_w=big_core_dyn,
            little_dyn_w=little_dyn,
            gpu_dyn_w=gpu_dyn,
            mem_dyn_w=mem_dyn,
            vdd_big=vdd_big,
            vdd_little=vdd_little,
            vdd_gpu=vdd_gpu,
            big_online=big_online,
            big_num_online=big_num_online,
            big_leak_share=big_leak_share,
            little_leak_share=little_leak_share,
        )

    # ------------------------------------------------------------------
    def evaluate(
        self,
        inputs: BatchPowerInputs,
        t_big_k: np.ndarray,
        t_little_k: np.ndarray,
        t_gpu_k: np.ndarray,
        t_mem_k: np.ndarray,
    ) -> BatchPowerState:
        """One substep's power breakdown at the given lane temperatures."""
        spec = self.spec
        leak = spec.leakage
        active = inputs.active_is_big

        big_leak = np.where(
            active,
            inputs.big_leak_share
            * leak[Resource.BIG].power(t_big_k, inputs.vdd_big),
            _GATED_LEAKAGE_SHARE
            * leak[Resource.BIG].power(t_big_k, self._vdd_big_gated),
        )
        little_leak = np.where(
            active,
            _GATED_LEAKAGE_SHARE
            * leak[Resource.LITTLE].power(t_little_k, self._vdd_little_gated),
            inputs.little_leak_share
            * leak[Resource.LITTLE].power(t_little_k, inputs.vdd_little),
        )
        gpu_leak = leak[Resource.GPU].power(t_gpu_k, inputs.vdd_gpu)
        mem_leak = leak[Resource.MEM].power(t_mem_k, spec.mem_vdd)

        big_dyn = np.sum(inputs.big_core_dyn_w, axis=1)
        big_total = big_dyn + big_leak
        little_total = inputs.little_dyn_w + little_leak
        gpu_total = inputs.gpu_dyn_w + gpu_leak
        mem_total = inputs.mem_dyn_w + mem_leak

        # per-core heat sources: dynamic + an even share of cluster
        # leakage over the online cores; a gated big cluster spreads its
        # residual leakage evenly over all four cores
        leak_each = big_leak / np.maximum(inputs.big_num_online, 1)
        core_powers = np.where(
            active[:, np.newaxis],
            inputs.big_core_dyn_w
            + leak_each[:, np.newaxis] * inputs.big_online,
            (big_leak / float(spec.cores_per_cluster))[:, np.newaxis],
        )

        powers = np.stack(
            [big_total, little_total, gpu_total, mem_total], axis=1
        )
        # same association as SocPowerState.total_w's python sum:
        # (((0 + big) + little) + gpu) + mem
        total = big_total + little_total + gpu_total + mem_total
        return BatchPowerState(
            powers_w=powers,
            big_core_powers_w=core_powers,
            soc_total_w=total,
            # big_core_dyn_w is already zeroed for gated lanes, so these
            # splits match the scalar ClusterPower decompositions exactly
            dynamic_w=np.stack(
                [big_dyn, inputs.little_dyn_w, inputs.gpu_dyn_w,
                 inputs.mem_dyn_w],
                axis=1,
            ),
            leakage_w=np.stack(
                [big_leak, little_leak, gpu_leak, mem_leak], axis=1
            ),
        )
