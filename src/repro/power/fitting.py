"""Nonlinear fitting utilities for the power-modeling workflow.

The paper "employ[s a] non-linear fitting tool to find the unknown
parameters c1, c2 and Igate assuming that dynamic power shows negligible
variation with temperature" (Section 4.1.1).  This module wraps
:func:`scipy.optimize.curve_fit` with physically sensible initial guesses
and bounds so the fit converges from raw furnace data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy.optimize import curve_fit

from repro.errors import ModelError


@dataclass(frozen=True)
class LeakageFit:
    """Result of a leakage-current fit.

    ``c1``/``c2``/``i_gate`` parameterise the leakage *current*
    ``I(T) = c1 T^2 exp(c2/T) + i_gate`` (Eq. 4.2); ``p_dynamic_w`` is the
    constant dynamic-power offset present during the furnace run.

    Identifiability note: a furnace sweep observes only *total* power, so
    the temperature-independent gate-leakage term ``Vdd * I_gate`` is
    perfectly confounded with the constant dynamic power of the light
    workload -- no estimator can split them.  The fit therefore pins
    ``i_gate`` to zero and lets ``p_dynamic_w`` absorb both constants; the
    run-time alpha*C estimator then re-absorbs the gate component into the
    dynamic model, keeping total-power predictions unbiased.
    """

    c1: float
    c2: float
    i_gate: float
    p_dynamic_w: float
    residual_rms_w: float

    def leakage_current(self, temperature_k: float) -> float:
        """Fitted leakage current (A) at ``temperature_k``."""
        return (
            self.c1 * temperature_k ** 2 * math.exp(self.c2 / temperature_k)
            + self.i_gate
        )


def _total_power_model(t_k, c1, c2, i_gate, p_dyn, vdd):
    return vdd * (c1 * t_k ** 2 * np.exp(c2 / t_k) + i_gate) + p_dyn


def fit_leakage(
    temperatures_k: Sequence[float],
    total_powers_w: Sequence[float],
    vdd: float,
) -> LeakageFit:
    """Fit (c1, c2, i_gate, P_dyn) from a furnace temperature sweep.

    Parameters
    ----------
    temperatures_k:
        Measured junction temperatures at each furnace setpoint (K).
    total_powers_w:
        Measured total resource power at each setpoint (W); the dynamic
        component is assumed constant across the sweep (light fixed-f
        workload), so the temperature dependence is all leakage.
    vdd:
        Supply voltage during the sweep (known from the OPP table).
    """
    t = np.asarray(temperatures_k, dtype=float)
    p = np.asarray(total_powers_w, dtype=float)
    if t.shape != p.shape or t.size < 4:
        raise ModelError(
            "leakage fit needs >= 4 matched (T, P) samples, got %d" % t.size
        )
    if np.any(t <= 0):
        raise ModelError("temperatures must be positive Kelvin")
    if vdd <= 0:
        raise ModelError("vdd must be positive")

    # Initial guess: attribute the power spread to the exponential term.
    p_span = max(1e-4, p.max() - p.min())
    c2_guess = -2500.0
    t_mid = float(np.mean(t))
    c1_guess = p_span / (vdd * t_mid ** 2 * math.exp(c2_guess / t_mid))
    guess = (c1_guess, c2_guess, float(p.min()) * 0.5)
    bounds = (
        (1e-9, -8000.0, 0.0),
        (10.0, -500.0, float(p.max())),
    )

    def model(t_k, c1, c2, p_const):
        return _total_power_model(t_k, c1, c2, 0.0, p_const, vdd)

    try:
        params, _ = curve_fit(
            model, t, p, p0=guess, bounds=bounds, maxfev=20000
        )
    except (RuntimeError, ValueError) as exc:
        raise ModelError("leakage fit did not converge: %s" % exc) from exc

    c1, c2, p_const = (float(v) for v in params)
    residual = p - model(t, c1, c2, p_const)
    rms = float(np.sqrt(np.mean(residual ** 2)))
    return LeakageFit(
        c1=c1, c2=c2, i_gate=0.0, p_dynamic_w=p_const, residual_rms_w=rms
    )


def linear_fit(x: Sequence[float], y: Sequence[float]) -> Tuple[float, float]:
    """Least-squares line ``y = slope * x + intercept``."""
    xs = np.asarray(x, dtype=float)
    ys = np.asarray(y, dtype=float)
    if xs.size != ys.size or xs.size < 2:
        raise ModelError("linear fit needs >= 2 matched samples")
    slope, intercept = np.polyfit(xs, ys, 1)
    return float(slope), float(intercept)
