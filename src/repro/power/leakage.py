"""The controller's leakage power model (Section 4.1.1, Eq. 4.2).

``P_leak(T, Vdd) = Vdd * (c1 * T^2 * exp(c2/T) + I_gate)``

The parameters are *fitted* from furnace measurements (see
:mod:`repro.power.characterization`), never copied from the platform spec:
the model knows only what the characterization procedure could observe.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.power.fitting import LeakageFit
from repro.units import celsius_to_kelvin


@dataclass(frozen=True)
class LeakageModel:
    """Fitted temperature-dependent leakage model for one resource."""

    c1: float
    c2: float
    i_gate: float

    def __post_init__(self) -> None:
        if self.c1 < 0 or self.i_gate < 0:
            raise ModelError("leakage coefficients must be non-negative")
        if self.c2 >= 0:
            raise ModelError(
                "c2 must be negative (condensed -q*Vth/nk form); got %r" % self.c2
            )

    @classmethod
    def from_fit(cls, fit: LeakageFit) -> "LeakageModel":
        """Build the run-time model from a furnace fit result."""
        return cls(c1=fit.c1, c2=fit.c2, i_gate=fit.i_gate)

    def nonlinear_factor(self, temperature_k):
        """The temperature-nonlinear part of Eq. 4.2, ``T^2 * exp(c2/T)``.

        Elementwise over arrays of any shape: one temperature per batch
        lane, or a whole ``(K, B)`` substep-chain trajectory in a single
        vectorised pass -- each element's value is independent of the
        array shape it rides in, so chained and per-substep evaluation
        agree bit-for-bit.
        """
        t = np.asarray(temperature_k, dtype=float)
        if np.any(t <= 0):
            raise ModelError("temperature must be positive Kelvin")
        return t ** 2 * np.exp(self.c2 / t)

    def current_a(self, temperature_k):
        """Leakage current (A) at ``temperature_k`` (scalar or array).

        Array inputs evaluate elementwise -- one temperature per batch
        lane, or an entire substep chain at once -- and return an array;
        scalars keep returning floats.  The operand order matches the
        fitted-form expression exactly (``(c1 * T^2) * exp + i_gate``) so
        historical pinned values survive the vectorisation.
        """
        t = np.asarray(temperature_k, dtype=float)
        if np.any(t <= 0):
            raise ModelError("temperature must be positive Kelvin")
        out = self.c1 * t ** 2 * np.exp(self.c2 / t) + self.i_gate
        return out if t.ndim else float(out)

    def power_w(self, temperature_k, vdd):
        """Leakage power (W) at temperature(s) (K) and supply voltage(s) (V)."""
        if np.any(np.asarray(vdd) <= 0):
            raise ModelError("vdd must be positive")
        return vdd * self.current_a(temperature_k)

    def power_at_celsius(self, temperature_c: float, vdd: float) -> float:
        """Convenience wrapper taking Celsius (paper figures use Celsius)."""
        return self.power_w(celsius_to_kelvin(temperature_c), vdd)
