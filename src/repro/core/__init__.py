"""The paper's primary contribution: predictive DTPM (Chapter 5 + Ch. 7)."""

from repro.core.budget import BudgetResult, PowerBudgetComputer
from repro.core.distribution import (
    Component,
    DistributionResult,
    exynos_components,
    solve_branch_and_bound,
    solve_greedy,
)
from repro.core.dtpm import DtpmGovernor, DtpmOutcome
from repro.core.policy import DtpmPolicy, PolicyDecision
from repro.core.predictor import ThermalForecast, ThermalPredictor

__all__ = [
    "BudgetResult",
    "PowerBudgetComputer",
    "Component",
    "DistributionResult",
    "exynos_components",
    "solve_branch_and_bound",
    "solve_greedy",
    "DtpmGovernor",
    "DtpmOutcome",
    "DtpmPolicy",
    "PolicyDecision",
    "ThermalForecast",
    "ThermalPredictor",
]
