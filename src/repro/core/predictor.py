"""Run-time thermal predictor (the "Temperature Prediction" block, Fig. 3.1).

Wraps the identified :class:`DiscreteThermalModel` with the operations the
DTPM loop needs every control interval: predict the temperature a horizon
ahead for a hypothetical power vector, and flag predicted violations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.thermal.state_space import DiscreteThermalModel


@dataclass(frozen=True)
class ThermalForecast:
    """Prediction outcome for one candidate power vector."""

    temps_k: np.ndarray
    max_temp_k: float
    hottest_core: int
    violation: bool
    margin_k: float  # constraint minus predicted max (negative = violation)


class ThermalPredictor:
    """Horizon-n temperature prediction against a constraint."""

    def __init__(
        self,
        model: DiscreteThermalModel,
        horizon_steps: int = 10,
        guard_band_k: float = 0.0,
    ) -> None:
        if horizon_steps < 1:
            raise ModelError("prediction horizon must be >= 1 step")
        if guard_band_k < 0:
            raise ModelError("guard band must be >= 0")
        self.model = model
        self.horizon_steps = horizon_steps
        self.guard_band_k = guard_band_k

    @property
    def horizon_s(self) -> float:
        """Prediction window in seconds."""
        return self.horizon_steps * self.model.ts_s

    def forecast(
        self,
        temps_k: np.ndarray,
        powers_w: np.ndarray,
        t_constraint_k: float,
    ) -> ThermalForecast:
        """Predict ``T[k+n]`` for a constant candidate power vector.

        The violation test applies the guard band: a prediction within
        ``guard_band_k`` of the constraint already counts as a violation so
        the controller acts one interval early rather than one late.
        """
        pred = self.model.predict_n_constant(temps_k, powers_w, self.horizon_steps)
        max_t = float(np.max(pred))
        limit = t_constraint_k - self.guard_band_k
        return ThermalForecast(
            temps_k=pred,
            max_temp_k=max_t,
            hottest_core=int(np.argmax(pred)),
            violation=max_t > limit,
            margin_k=t_constraint_k - max_t,
        )

    def forecast_trajectory(
        self, temps_k: np.ndarray, power_trajectory: np.ndarray
    ) -> np.ndarray:
        """Predicted temperatures over an explicit power trajectory."""
        return self.model.predict_horizon(temps_k, power_trajectory)
