"""Run-time power budget computation (Section 5.1, Eqs. 5.4-5.6).

Starting from the temperature constraint ``Tmax`` and the identified model,
work *backwards* to the largest power one resource may draw over the next
prediction window without any hotspot violating the constraint:

    B_i P[k] <= Tmax - A_i T[k]            (Eq. 5.4, one row per hotspot)

solved for equality on the hottest core's row (Eq. 5.5).  With a horizon of
``n`` control intervals the same algebra uses the n-step matrices of
Eq. 4.5 (setting n = 1 recovers the paper's equations verbatim):

    M_i P = Tmax - (A^n T)_i - (S_n d)_i,   M = sum_{j<n} A^j B

The non-targeted resources' powers are pinned at their measured values, so
the single scalar unknown is the budgeted resource's total power.  The
dynamic budget of Eq. 5.6 is obtained by subtracting the modelled leakage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import BudgetError
from repro.platform.specs import POWER_RESOURCES, Resource
from repro.thermal.state_space import DiscreteThermalModel

#: Smallest usable coefficient on the budgeted resource's power.  Below this
#: the identified row carries no information about the resource and solving
#: for it would explode numerically.
_MIN_COEFFICIENT = 1e-4


@dataclass(frozen=True)
class BudgetResult:
    """Outcome of one power-budget computation."""

    resource: Resource
    total_budget_w: float
    row: int  # hotspot row the budget was solved on
    rhs_k: float  # Tmax - A^n T - S_n d for that row (thermal headroom)
    coefficient: float  # M_{row, resource}
    horizon_steps: int

    def dynamic_budget_w(self, leakage_w: float) -> float:
        """Eq. 5.6: subtract the leakage component from the total budget."""
        return self.total_budget_w - leakage_w


class PowerBudgetComputer:
    """Computes per-resource power budgets from the thermal model."""

    def __init__(
        self,
        model: DiscreteThermalModel,
        horizon_steps: int = 10,
    ) -> None:
        if horizon_steps < 1:
            raise BudgetError("horizon must be >= 1 step")
        self.model = model
        self.horizon_steps = horizon_steps
        self._a_n, self._m_n, self._s_n = model.horizon_matrices(horizon_steps)
        self._resource_index = {r: i for i, r in enumerate(POWER_RESOURCES)}

    # ------------------------------------------------------------------
    def headroom_k(self, temps_k: np.ndarray, t_constraint_k: float) -> np.ndarray:
        """Per-hotspot thermal headroom ``Tmax - A^n T - S_n d`` (K)."""
        temps = np.asarray(temps_k, dtype=float)
        return (
            t_constraint_k
            - self._a_n @ temps
            - self._s_n @ self.model.offset
        )

    def compute(
        self,
        temps_k: np.ndarray,
        powers_w: np.ndarray,
        t_constraint_k: float,
        resource: Resource = Resource.BIG,
        row: Optional[int] = None,
    ) -> BudgetResult:
        """Solve the budget equation for one resource.

        Parameters
        ----------
        temps_k:
            Measured hotspot temperatures ``T[k]``.
        powers_w:
            Measured resource powers ``P[k]`` (big, little, gpu, mem); the
            non-budgeted entries are held at these values.
        t_constraint_k:
            The temperature constraint ``Tmax``.
        resource:
            Which resource's power to solve for (paper: the big cluster,
            Ch. 7 extends to GPU/little).
        row:
            Hotspot row to solve on.  Defaults to the paper's choice: the
            core "with the maximum temperature [that] is most likely to
            violate constraints" -- evaluated on the *predicted* horizon
            temperatures, falling back over rows whose coefficient on the
            budgeted resource is unusable.
        """
        temps = np.asarray(temps_k, dtype=float).reshape(-1)
        powers = np.asarray(powers_w, dtype=float).reshape(-1)
        if temps.shape[0] != self.model.num_states:
            raise BudgetError("temperature vector has wrong length")
        if powers.shape[0] != self.model.num_inputs:
            raise BudgetError("power vector has wrong length")
        j = self._resource_index[resource]
        rhs_all = self.headroom_k(temps, t_constraint_k)

        if row is None:
            candidates = self._rows_by_predicted_heat(temps, powers)
        else:
            candidates = [row]
        chosen = None
        for r in candidates:
            if abs(self._m_n[r, j]) >= _MIN_COEFFICIENT:
                chosen = r
                break
        if chosen is None:
            raise BudgetError(
                "no hotspot row has a usable coefficient for %s" % resource
            )

        m_row = self._m_n[chosen]
        other = float(m_row @ powers - m_row[j] * powers[j])
        budget = (float(rhs_all[chosen]) - other) / float(m_row[j])
        return BudgetResult(
            resource=resource,
            total_budget_w=budget,
            row=chosen,
            rhs_k=float(rhs_all[chosen]),
            coefficient=float(m_row[j]),
            horizon_steps=self.horizon_steps,
        )

    def compute_strict(
        self,
        temps_k: np.ndarray,
        powers_w: np.ndarray,
        t_constraint_k: float,
        resource: Resource = Resource.BIG,
    ) -> BudgetResult:
        """Most conservative budget: the minimum over all hotspot rows.

        The paper targets only the hottest core; this variant enforces
        Eq. 5.4 on every row simultaneously and is used by the ablation
        benchmarks.
        """
        results = []
        for r in range(self.model.num_states):
            j = self._resource_index[resource]
            if abs(self._m_n[r, j]) < _MIN_COEFFICIENT:
                continue
            results.append(
                self.compute(temps_k, powers_w, t_constraint_k, resource, row=r)
            )
        if not results:
            raise BudgetError("no usable row for %s" % resource)
        return min(results, key=lambda res: res.total_budget_w)

    # ------------------------------------------------------------------
    def _rows_by_predicted_heat(
        self, temps_k: np.ndarray, powers_w: np.ndarray
    ) -> list:
        """Hotspot rows sorted hottest-first on the horizon prediction."""
        pred = self._a_n @ temps_k + self._m_n @ powers_w + self._s_n @ self.model.offset
        return list(np.argsort(pred)[::-1])
