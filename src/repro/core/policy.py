"""DTPM configuration assignment (Section 5.2).

Once the power budget is known, the algorithm finds the configuration that
satisfies it while losing as little performance as possible, in the paper's
strict priority order:

1. stay on the big cluster and pick the largest frequency whose predicted
   total power fits the budget (Eq. 5.7 inverted, quantised to Table 6.1);
2. if even ``f_min`` does not fit, turn a big core off -- the *hottest*
   core when the inter-core temperature spread exceeds ``Delta``
   (Eq. 5.9), since some applications pin one core and heat it
   disproportionately;
3. only when the budget cannot be met with ``min_big_cores`` (paper: three)
   big cores at ``f_min`` does everything migrate to the little cluster;
4. reducing the GPU frequency (when the GPU is active) is the very last
   resort, because it has the biggest performance impact for the targeted
   game/video workloads.

The policy is stateful: it also implements the (paper-implicit) return path
from the little cluster back to big once the predicted temperature leaves
the danger zone for long enough.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.config import SimulationConfig
from repro.core.budget import BudgetResult, PowerBudgetComputer
from repro.errors import ConfigurationError
from repro.governors.base import PlatformConfig
from repro.platform.specs import PlatformSpec, Resource
from repro.power.model import PowerModel


@dataclass
class PolicyDecision:
    """The configuration chosen by the policy, with its reasoning."""

    config: PlatformConfig
    actions: List[str] = field(default_factory=list)
    core_turned_off: Optional[int] = None
    migrated_to_little: bool = False
    migrated_to_big: bool = False
    gpu_throttled: bool = False

    def describe(self) -> str:
        """Human-readable summary of what the policy did."""
        return "; ".join(self.actions) if self.actions else "no action"


class DtpmPolicy:
    """Budget-to-configuration mapping with cluster/core/GPU knobs."""

    def __init__(
        self,
        spec: Optional[PlatformSpec] = None,
        config: Optional[SimulationConfig] = None,
        return_margin_k: float = 2.0,
        return_hold_intervals: int = 30,
    ) -> None:
        self.spec = spec or PlatformSpec()
        self.config = config or SimulationConfig()
        self.return_margin_k = return_margin_k
        self.return_hold_intervals = return_hold_intervals
        self._return_counter = 0

    def reset(self) -> None:
        """Clear cross-interval state (new run)."""
        self._return_counter = 0

    # ------------------------------------------------------------------
    # power prediction helpers (the controller-side model, Eq. 4.1)
    # ------------------------------------------------------------------
    def predicted_cluster_power_w(
        self,
        power_model: PowerModel,
        resource: Resource,
        frequency_hz: float,
        online: int,
        online_now: int,
        temperature_k: float,
    ) -> float:
        """Predicted total cluster power at a candidate operating point.

        The tracked alpha*C product reflects the *current* number of busy
        cores; scaling it by ``online / online_now`` models the load that
        each hotplug change adds or removes (the kernel migrates the
        displaced tasks onto the remaining cores, but a saturated cluster
        loses the offlined core's throughput and hence its switching
        activity).
        """
        table = self.spec.opp_table(resource)
        vdd = table.voltage(frequency_hz)
        model = power_model[resource]
        scale = online / max(1, online_now)
        p_dyn = model.dynamic.predict_w(frequency_hz, vdd) * scale
        p_leak = model.leakage.power_w(temperature_k, vdd)
        return p_dyn + p_leak

    def f_budget_hz(
        self,
        power_model: PowerModel,
        resource: Resource,
        dynamic_budget_w: float,
    ) -> float:
        """Eq. 5.7 closed form: continuous frequency for a dynamic budget.

        Uses the *current* supply voltage ("Since current Vdd is also known
        from measurements, f_budget is calculated using Equation 5.7").
        The full policy refines this with a table search that accounts for
        the voltage change at each OPP.
        """
        table = self.spec.opp_table(resource)
        vdd_now = table.voltage(table.f_max_hz)
        return power_model[resource].dynamic.frequency_for_budget_hz(
            dynamic_budget_w, vdd_now
        )

    def best_frequency_for_budget(
        self,
        power_model: PowerModel,
        resource: Resource,
        budget_w: float,
        online: int,
        online_now: int,
        temperature_k: float,
    ) -> Optional[float]:
        """Largest OPP frequency whose predicted total power fits the budget.

        Returns ``None`` when even ``f_min`` exceeds the budget.
        """
        table = self.spec.opp_table(resource)
        for f in reversed(table.frequencies_hz):
            power = self.predicted_cluster_power_w(
                power_model, resource, f, online, online_now, temperature_k
            )
            if power <= budget_w:
                return f
        return None

    # ------------------------------------------------------------------
    # the assignment algorithm
    # ------------------------------------------------------------------
    def assign(
        self,
        budget: BudgetResult,
        budget_computer: PowerBudgetComputer,
        power_model: PowerModel,
        temps_k: np.ndarray,
        powers_w: np.ndarray,
        proposal: PlatformConfig,
        t_constraint_k: float,
        gpu_active: bool,
    ) -> PolicyDecision:
        """Map a power budget onto (cluster, cores, frequencies)."""
        if budget.resource is Resource.BIG and proposal.cluster is Resource.BIG:
            return self._assign_big(
                budget,
                budget_computer,
                power_model,
                temps_k,
                powers_w,
                proposal,
                t_constraint_k,
                gpu_active,
            )
        if proposal.cluster is Resource.LITTLE:
            return self._assign_little(
                budget_computer,
                power_model,
                temps_k,
                powers_w,
                proposal,
                t_constraint_k,
                gpu_active,
            )
        raise ConfigurationError(
            "budget resource %s does not match proposal cluster %s"
            % (budget.resource, proposal.cluster)
        )

    # -- big-cluster path -------------------------------------------------
    def _assign_big(
        self,
        budget: BudgetResult,
        budget_computer: PowerBudgetComputer,
        power_model: PowerModel,
        temps_k: np.ndarray,
        powers_w: np.ndarray,
        proposal: PlatformConfig,
        t_constraint_k: float,
        gpu_active: bool,
    ) -> PolicyDecision:
        decision = PolicyDecision(config=proposal)
        t_hot = float(np.max(temps_k))
        online_now = proposal.big_online
        budget_w = budget.total_budget_w

        online = online_now
        while online >= self.config.min_big_cores:
            f = self.best_frequency_for_budget(
                power_model, Resource.BIG, budget_w, online, online_now, t_hot
            )
            if f is not None:
                config = proposal.with_(big_freq_hz=f, big_online=online)
                if f < proposal.big_freq_hz:
                    decision.actions.append(
                        "capped big frequency %.0f -> %.0f MHz"
                        % (proposal.big_freq_hz / 1e6, f / 1e6)
                    )
                if online < online_now:
                    decision.actions.append(
                        "reduced big cores %d -> %d" % (online_now, online)
                    )
                    decision.core_turned_off = self._select_core_to_offline(temps_k)
                    if decision.core_turned_off is not None:
                        decision.actions.append(
                            "hottest core %d offlined (Eq. 5.9 spread >= Delta)"
                            % decision.core_turned_off
                        )
                decision.config = config
                return decision
            if online == self.config.min_big_cores:
                break
            online -= 1

        # Last resort: migrate everything to the little cluster.
        decision.migrated_to_little = True
        decision.actions.append(
            "budget %.2f W unreachable with %d big cores at f_min; "
            "migrating to little cluster" % (budget_w, self.config.min_big_cores)
        )
        little_config = proposal.with_(
            cluster=Resource.LITTLE,
            big_freq_hz=self.spec.big_opp.f_min_hz,
            little_online=self.spec.cores_per_cluster,
        )
        return self._assign_little(
            budget_computer,
            power_model,
            temps_k,
            powers_w,
            little_config,
            t_constraint_k,
            gpu_active,
            base_decision=decision,
        )

    # -- little-cluster path ------------------------------------------------
    def _assign_little(
        self,
        budget_computer: PowerBudgetComputer,
        power_model: PowerModel,
        temps_k: np.ndarray,
        powers_w: np.ndarray,
        proposal: PlatformConfig,
        t_constraint_k: float,
        gpu_active: bool,
        base_decision: PolicyDecision = None,
    ) -> PolicyDecision:
        decision = base_decision or PolicyDecision(config=proposal)
        t_hot = float(np.max(temps_k))
        little_budget = budget_computer.compute(
            temps_k, powers_w, t_constraint_k, resource=Resource.LITTLE
        )
        f = self.best_frequency_for_budget(
            power_model,
            Resource.LITTLE,
            little_budget.total_budget_w,
            proposal.little_online,
            proposal.little_online,
            t_hot,
        )
        if f is None:
            f = self.spec.little_opp.f_min_hz
            decision.actions.append("little cluster pinned at f_min")
            if gpu_active:
                gpu_f = self.spec.gpu_opp.step_down(
                    self.spec.gpu_opp.floor(proposal.gpu_freq_hz)
                )
                if gpu_f < proposal.gpu_freq_hz:
                    decision.gpu_throttled = True
                    decision.actions.append(
                        "GPU throttled to %.0f MHz (last resort)" % (gpu_f / 1e6)
                    )
                decision.config = proposal.with_(
                    little_freq_hz=f, gpu_freq_hz=gpu_f
                )
                return decision
        elif f < proposal.little_freq_hz:
            decision.actions.append(
                "capped little frequency %.0f -> %.0f MHz"
                % (proposal.little_freq_hz / 1e6, f / 1e6)
            )
        decision.config = proposal.with_(little_freq_hz=f)
        return decision

    # ------------------------------------------------------------------
    def _select_core_to_offline(self, temps_k: np.ndarray) -> Optional[int]:
        """Eq. 5.9: offline the hottest core when the spread exceeds Delta."""
        spread = float(np.max(temps_k) - np.min(temps_k))
        if spread >= self.config.hotspot_delta_c:
            return int(np.argmax(temps_k))
        return None

    # ------------------------------------------------------------------
    # return path: little -> big once safely cool
    # ------------------------------------------------------------------
    def consider_return_to_big(
        self,
        budget_computer: PowerBudgetComputer,
        power_model: PowerModel,
        temps_k: np.ndarray,
        powers_w: np.ndarray,
        proposal: PlatformConfig,
        t_constraint_k: float,
    ) -> Optional[PolicyDecision]:
        """While on the little cluster, test whether big is safe again.

        The big cluster is re-admitted at ``min_big_cores x f_min`` once its
        predicted power fits the budget with a margin, sustained for
        ``return_hold_intervals`` control intervals.
        """
        if proposal.cluster is not Resource.LITTLE:
            self._return_counter = 0
            return None
        t_hot = float(np.max(temps_k))
        try:
            budget = budget_computer.compute(
                temps_k,
                powers_w,
                t_constraint_k - self.return_margin_k,
                resource=Resource.BIG,
            )
        except Exception:
            self._return_counter = 0
            return None
        entry_power = self.predicted_cluster_power_w(
            power_model,
            Resource.BIG,
            self.spec.big_opp.f_min_hz,
            self.config.min_big_cores,
            self.config.min_big_cores,
            t_hot,
        )
        if entry_power <= budget.total_budget_w:
            self._return_counter += 1
        else:
            self._return_counter = 0
            return None
        if self._return_counter < self.return_hold_intervals:
            return None
        self._return_counter = 0
        config = proposal.with_(
            cluster=Resource.BIG,
            big_freq_hz=self.spec.big_opp.f_min_hz,
            big_online=self.config.min_big_cores,
        )
        decision = PolicyDecision(config=config, migrated_to_big=True)
        decision.actions.append(
            "returned to big cluster (%d cores at f_min)"
            % self.config.min_big_cores
        )
        return decision
