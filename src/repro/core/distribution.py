"""Power-budget distribution across heterogeneous components (Chapter 7).

The paper's future-work extension: split the dynamic power budget among the
big CPU, the GPU (and potentially more components), choosing per-component
frequencies that minimise the execution-time cost

    J(f_1 .. f_n) = sum_i c_i / f_i                       (Eq. 7.1)

subject to the cubic power constraint

    P(f_1 .. f_n) = sum_i a_i * f_i^3  <=  P_budget        (Eq. 7.2)

Frequencies are discrete (the OPP tables), which makes the exact problem a
combinatorial search; the paper notes branch-and-bound "solves this problem
theoretically, but is limited during implementation by the use of recursive
function in the linux kernel", so it deploys the greedy descent of Eq. 7.3:
repeatedly step down the component whose step costs the least extra J.

Both solvers are implemented here; frequencies are normalised to GHz so
``a_i`` is expressed in W/GHz^3 and the cubic term stays well-scaled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import BudgetError, ConfigurationError


@dataclass(frozen=True)
class Component:
    """One frequency-scalable component of the heterogeneous processor."""

    name: str
    frequencies_ghz: Tuple[float, ...]
    perf_coeff: float  # c_i of Eq. 7.1 (work per unit time at 1 GHz)
    power_coeff: float  # a_i of Eq. 7.2 (W at 1 GHz, cubic scaling)

    def __post_init__(self) -> None:
        freqs = tuple(self.frequencies_ghz)
        if len(freqs) < 1:
            raise ConfigurationError("component needs at least one OPP")
        if any(f <= 0 for f in freqs):
            raise ConfigurationError("frequencies must be positive")
        if any(b <= a for a, b in zip(freqs, freqs[1:])):
            raise ConfigurationError("frequencies must strictly increase")
        if self.perf_coeff <= 0 or self.power_coeff <= 0:
            raise ConfigurationError("coefficients must be positive")
        object.__setattr__(self, "frequencies_ghz", freqs)

    def cost(self, freq_ghz: float) -> float:
        """Execution-time contribution c_i / f_i."""
        return self.perf_coeff / freq_ghz

    def power(self, freq_ghz: float) -> float:
        """Power contribution a_i * f_i^3."""
        return self.power_coeff * freq_ghz ** 3


@dataclass(frozen=True)
class DistributionResult:
    """A frequency assignment with its cost and power."""

    frequencies_ghz: Dict[str, float]
    cost: float
    power_w: float
    feasible: bool
    nodes_explored: int = 0


def _evaluate(
    components: Sequence[Component], levels: Sequence[int]
) -> Tuple[float, float]:
    cost = 0.0
    power = 0.0
    for comp, level in zip(components, levels):
        f = comp.frequencies_ghz[level]
        cost += comp.cost(f)
        power += comp.power(f)
    return cost, power


def solve_branch_and_bound(
    components: Sequence[Component], budget_w: float
) -> DistributionResult:
    """Exact solution by depth-first branch and bound over OPP levels.

    Bounds: at each partial assignment, the optimistic completion assumes
    every remaining component runs at its maximum frequency (lowest cost);
    the branch is pruned when even that exceeds the incumbent, or when the
    partial power with all remaining components at *minimum* frequency
    already violates the budget.
    """
    if budget_w <= 0:
        raise BudgetError("budget must be positive")
    comps = list(components)
    if not comps:
        raise ConfigurationError("no components to distribute over")

    min_power_tail = [0.0] * (len(comps) + 1)
    best_cost_tail = [0.0] * (len(comps) + 1)
    for i in range(len(comps) - 1, -1, -1):
        min_power_tail[i] = min_power_tail[i + 1] + comps[i].power(
            comps[i].frequencies_ghz[0]
        )
        best_cost_tail[i] = best_cost_tail[i + 1] + comps[i].cost(
            comps[i].frequencies_ghz[-1]
        )

    best = {"cost": float("inf"), "levels": None}
    explored = {"n": 0}

    def descend(i: int, levels: List[int], cost: float, power: float) -> None:
        explored["n"] += 1
        if power + min_power_tail[i] > budget_w:
            return  # cannot become feasible
        if cost + best_cost_tail[i] >= best["cost"]:
            return  # cannot beat the incumbent
        if i == len(comps):
            best["cost"] = cost
            best["levels"] = list(levels)
            return
        comp = comps[i]
        # try fastest first so good incumbents appear early
        for level in range(len(comp.frequencies_ghz) - 1, -1, -1):
            f = comp.frequencies_ghz[level]
            levels.append(level)
            descend(i + 1, levels, cost + comp.cost(f), power + comp.power(f))
            levels.pop()

    descend(0, [], 0.0, 0.0)
    if best["levels"] is None:
        # infeasible even at all-minimum: report that assignment
        levels = [0] * len(comps)
        cost, power = _evaluate(comps, levels)
        return DistributionResult(
            frequencies_ghz={
                c.name: c.frequencies_ghz[0] for c in comps
            },
            cost=cost,
            power_w=power,
            feasible=False,
            nodes_explored=explored["n"],
        )
    cost, power = _evaluate(comps, best["levels"])
    return DistributionResult(
        frequencies_ghz={
            c.name: c.frequencies_ghz[lv] for c, lv in zip(comps, best["levels"])
        },
        cost=cost,
        power_w=power,
        feasible=True,
        nodes_explored=explored["n"],
    )


def solve_greedy(
    components: Sequence[Component], budget_w: float
) -> DistributionResult:
    """The paper's deployable heuristic (Eq. 7.3).

    Start from every component at its maximum frequency; while the power
    constraint is violated, step down the component whose single-step
    demotion increases J the least ("we throttle the frequency of the
    components which has least affect on performance").
    """
    if budget_w <= 0:
        raise BudgetError("budget must be positive")
    comps = list(components)
    if not comps:
        raise ConfigurationError("no components to distribute over")
    levels = [len(c.frequencies_ghz) - 1 for c in comps]
    steps = 0

    while True:
        cost, power = _evaluate(comps, levels)
        if power <= budget_w:
            return DistributionResult(
                frequencies_ghz={
                    c.name: c.frequencies_ghz[lv] for c, lv in zip(comps, levels)
                },
                cost=cost,
                power_w=power,
                feasible=True,
                nodes_explored=steps,
            )
        # pick the cheapest single step down (Eq. 7.3 comparison)
        best_idx = None
        best_delta = float("inf")
        for i, comp in enumerate(comps):
            if levels[i] == 0:
                continue
            f_now = comp.frequencies_ghz[levels[i]]
            f_down = comp.frequencies_ghz[levels[i] - 1]
            delta_j = comp.cost(f_down) - comp.cost(f_now)
            if delta_j < best_delta:
                best_delta = delta_j
                best_idx = i
        if best_idx is None:
            cost, power = _evaluate(comps, levels)
            return DistributionResult(
                frequencies_ghz={
                    c.name: c.frequencies_ghz[lv] for c, lv in zip(comps, levels)
                },
                cost=cost,
                power_w=power,
                feasible=False,
                nodes_explored=steps,
            )
        levels[best_idx] -= 1
        steps += 1


def exynos_components(
    big_perf: float = 1.0,
    gpu_perf: float = 0.6,
    little_perf: float = 0.25,
    include_little: bool = False,
) -> List[Component]:
    """Chapter-7 component set built from the platform's OPP tables.

    Power coefficients are calibrated so max-frequency powers match the
    platform's ground truth (big ~2.6 W at 1.6 GHz, GPU ~1.5 W at 533 MHz).
    """
    from repro.platform.specs import (
        BIG_FREQUENCIES_HZ,
        GPU_FREQUENCIES_HZ,
        LITTLE_FREQUENCIES_HZ,
    )

    comps = [
        Component(
            "big_cpu",
            tuple(f / 1e9 for f in BIG_FREQUENCIES_HZ),
            perf_coeff=big_perf,
            power_coeff=2.6 / 1.6 ** 3,
        ),
        Component(
            "gpu",
            tuple(f / 1e9 for f in GPU_FREQUENCIES_HZ),
            perf_coeff=gpu_perf,
            power_coeff=1.5 / 0.533 ** 3,
        ),
    ]
    if include_little:
        comps.append(
            Component(
                "little_cpu",
                tuple(f / 1e9 for f in LITTLE_FREQUENCIES_HZ),
                perf_coeff=little_perf,
                power_coeff=0.45 / 1.2 ** 3,
            )
        )
    return comps
