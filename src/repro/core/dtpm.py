"""The DTPM governor: prediction -> budget -> configuration (Fig. 3.1).

Runs once per control interval (100 ms, whenever the cpufreq driver runs).
It is deliberately *non-intrusive*: the stock governors' proposal passes
through untouched unless a thermal violation is predicted within the
1-second window, in which case the power budget machinery of Chapter 5
overwrites the proposal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.config import SimulationConfig
from repro.core.budget import BudgetResult, PowerBudgetComputer
from repro.core.policy import DtpmPolicy, PolicyDecision
from repro.core.predictor import ThermalForecast, ThermalPredictor
from repro.errors import BudgetError
from repro.governors.base import PlatformConfig
from repro.platform.board import SensorSnapshot
from repro.platform.specs import PlatformSpec, POWER_RESOURCES, Resource
from repro.power.model import OperatingPoint, PowerModel
from repro.thermal.state_space import DiscreteThermalModel


@dataclass
class DtpmOutcome:
    """Everything the DTPM governor did in one control interval."""

    config: PlatformConfig
    violation_predicted: bool
    forecast: ThermalForecast
    budget: Optional[BudgetResult] = None
    decision: Optional[PolicyDecision] = None

    @property
    def intervened(self) -> bool:
        """Whether the default proposal was overwritten."""
        return self.decision is not None


class DtpmGovernor:
    """Predictive dynamic thermal and power management controller."""

    def __init__(
        self,
        thermal_model: DiscreteThermalModel,
        power_model: PowerModel,
        spec: Optional[PlatformSpec] = None,
        config: Optional[SimulationConfig] = None,
        policy: Optional[DtpmPolicy] = None,
        guard_band_k: float = 0.75,
        observer=None,
    ) -> None:
        self.spec = spec or PlatformSpec()
        self.config = config or SimulationConfig()
        self.power_model = power_model
        #: Optional :class:`repro.thermal.observer.TemperatureObserver`.
        #: When set, sensor temperatures are Kalman-filtered through the
        #: identified model before prediction and budgeting (an extension;
        #: the paper feeds raw sensor values, which is the default here).
        self.observer = observer
        self.predictor = ThermalPredictor(
            thermal_model,
            horizon_steps=self.config.prediction_horizon_steps,
            guard_band_k=guard_band_k,
        )
        self.budget_computer = PowerBudgetComputer(
            thermal_model, horizon_steps=self.config.prediction_horizon_steps
        )
        self.policy = policy or DtpmPolicy(self.spec, self.config)

    def reset(self) -> None:
        """Clear run-scoped state."""
        self.policy.reset()
        if self.observer is not None:
            self.observer.reset()

    # ------------------------------------------------------------------
    def operating_point(self, config: PlatformConfig) -> OperatingPoint:
        """Voltage/frequency of each resource under a configuration."""
        big = little = None
        if config.cluster is Resource.BIG:
            big = (
                self.spec.big_opp.voltage(config.big_freq_hz),
                config.big_freq_hz,
            )
        else:
            little = (
                self.spec.little_opp.voltage(config.little_freq_hz),
                config.little_freq_hz,
            )
        gpu = (
            self.spec.gpu_opp.voltage(config.gpu_freq_hz),
            config.gpu_freq_hz,
        )
        # Memory has no DVFS: model it at its fixed rail with unit frequency
        # so the alpha*C tracker degenerates into a traffic tracker.
        mem = (self.spec.mem_vdd, 1.0)
        return OperatingPoint(big=big, little=little, gpu=gpu, mem=mem)

    def predicted_power_vector(
        self,
        snapshot: SensorSnapshot,
        current: PlatformConfig,
        proposal: PlatformConfig,
    ) -> np.ndarray:
        """Power vector expected if the proposal is applied.

        Resources whose operating point is unchanged keep their measured
        power (best available estimate); changed resources are re-predicted
        through the power model (Section 3: "the proposed power model uses
        the choice made by the default configuration to predict the power
        consumption before taking any action").
        """
        t_hot = float(np.max(snapshot.temperatures_k))
        powers = snapshot.powers_w.astype(float).copy()
        idx = {r: i for i, r in enumerate(POWER_RESOURCES)}

        if proposal.cluster is Resource.BIG:
            same = (
                current.cluster is Resource.BIG
                and abs(current.big_freq_hz - proposal.big_freq_hz) < 0.5
                and current.big_online == proposal.big_online
            )
            if not same:
                online_now = (
                    current.big_online
                    if current.cluster is Resource.BIG
                    else proposal.big_online
                )
                powers[idx[Resource.BIG]] = self.policy.predicted_cluster_power_w(
                    self.power_model,
                    Resource.BIG,
                    proposal.big_freq_hz,
                    proposal.big_online,
                    online_now,
                    t_hot,
                )
                powers[idx[Resource.LITTLE]] = 0.0
        else:
            same = (
                current.cluster is Resource.LITTLE
                and abs(current.little_freq_hz - proposal.little_freq_hz) < 0.5
            )
            if not same:
                online_now = (
                    current.little_online
                    if current.cluster is Resource.LITTLE
                    else proposal.little_online
                )
                powers[idx[Resource.LITTLE]] = self.policy.predicted_cluster_power_w(
                    self.power_model,
                    Resource.LITTLE,
                    proposal.little_freq_hz,
                    proposal.little_online,
                    online_now,
                    t_hot,
                )
                powers[idx[Resource.BIG]] = 0.0

        if abs(current.gpu_freq_hz - proposal.gpu_freq_hz) >= 0.5:
            gpu_model = self.power_model[Resource.GPU]
            v_new = self.spec.gpu_opp.voltage(proposal.gpu_freq_hz)
            powers[idx[Resource.GPU]] = (
                gpu_model.dynamic.predict_w(proposal.gpu_freq_hz, v_new)
                + gpu_model.leakage.power_w(t_hot, v_new)
            )
        return powers

    # ------------------------------------------------------------------
    def control(
        self,
        snapshot: SensorSnapshot,
        current: PlatformConfig,
        proposal: PlatformConfig,
        gpu_active: bool = False,
    ) -> DtpmOutcome:
        """One DTPM control interval.

        Parameters
        ----------
        snapshot:
            The sensor readings of this interval.
        current:
            The configuration the platform actually ran during the interval
            (needed to attribute the measured powers to operating points).
        proposal:
            What the default governors want to run next.
        gpu_active:
            Whether the GPU is meaningfully loaded (drives the last-resort
            GPU throttle).
        """
        # 1. feed the measurement into the power model (alpha*C tracking)
        t_hot = float(np.max(snapshot.temperatures_k))
        self.power_model.observe_vector(
            snapshot.powers_w, t_hot, self.operating_point(current)
        )

        # optional state filtering through the identified model
        temps_k = snapshot.temperatures_k
        if self.observer is not None:
            temps_k = self.observer.update(temps_k, snapshot.powers_w)

        # 2. predict the thermal outcome of the default proposal
        p_vec = self.predicted_power_vector(snapshot, current, proposal)
        forecast = self.predictor.forecast(
            temps_k, p_vec, self.config.t_constraint_k
        )

        if not forecast.violation:
            # non-intrusive path; possibly migrate back to big
            decision = self.policy.consider_return_to_big(
                self.budget_computer,
                self.power_model,
                temps_k,
                snapshot.powers_w,
                proposal,
                self.config.t_constraint_k,
            )
            return DtpmOutcome(
                config=decision.config if decision else proposal,
                violation_predicted=False,
                forecast=forecast,
                decision=decision,
            )

        # 3. violation predicted: compute the budget and reassign
        resource = (
            Resource.BIG if proposal.cluster is Resource.BIG else Resource.LITTLE
        )
        try:
            budget = self.budget_computer.compute(
                temps_k,
                snapshot.powers_w,
                self.config.t_constraint_k,
                resource=resource,
            )
        except BudgetError:
            # Unusable row: fall back to the most conservative safe config.
            fallback = proposal.with_(
                big_freq_hz=self.spec.big_opp.f_min_hz,
                little_freq_hz=self.spec.little_opp.f_min_hz,
            )
            decision = PolicyDecision(config=fallback)
            decision.actions.append("budget unsolvable; pinned f_min")
            return DtpmOutcome(
                config=fallback,
                violation_predicted=True,
                forecast=forecast,
                decision=decision,
            )

        decision = self.policy.assign(
            budget,
            self.budget_computer,
            self.power_model,
            temps_k,
            snapshot.powers_w,
            proposal,
            self.config.t_constraint_k,
            gpu_active,
        )
        return DtpmOutcome(
            config=decision.config,
            violation_predicted=True,
            forecast=forecast,
            budget=budget,
            decision=decision,
        )
