"""Ground-truth continuous-time thermal RC network.

This is the "physical silicon" of the simulation: a lumped thermal network
``Ct * dT/dt = -Gt * T(t) + P(t)`` (Eq. 4.3 of the paper) with an ambient
boundary node.  The DTPM controller never reads this model; it identifies
its own reduced-order discrete model from sensor data (Section 4.2.1), so
the reproduction inherits the same model-mismatch structure as the paper.

The network is integrated exactly over each substep using the matrix
exponential of the augmented system (zero-order hold on power), so the
simulation is unconditionally stable regardless of node time constants.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np
from scipy.linalg import expm

from repro.errors import ConfigurationError, SimulationError

#: Capacity of the per-network ``(dt, gain) -> (Ad, Bd)`` discretisation
#: cache.  Temperature-dependent ``nonlinear_factors`` quantise to a 0.05
#: grid, but long runs sweeping many fan states and operating points can
#: still touch an unbounded key set, so the cache evicts least-recently
#: used entries beyond this bound (an ``expm`` recompute on a miss is
#: cheap relative to unbounded memory growth).
DISC_CACHE_SIZE = 256

#: Capacity of the process-wide discretisation memo shared by
#: physics-identical network instances (see :meth:`ThermalRCNetwork._discretise`).
#: A suite fans out many simulators over the *same* platform physics --
#: every lane used to pay the ``expm`` for the same ``(A, dt)`` pairs its
#: siblings had already computed; the shared level dedupes that work
#: across instances.  Keys include a content hash of exactly the fields
#: ``physics_equal`` compares, so two networks share an entry iff they
#: would discretise identically -- the memo can therefore never change a
#: result, only skip a bit-identical recompute.
SHARED_DISC_CACHE_SIZE = 1024

_SHARED_DISC_LOCK = threading.Lock()
_SHARED_DISC_CACHE: "OrderedDict[Tuple[str, float, float], Tuple[np.ndarray, np.ndarray]]" = OrderedDict()


def clear_shared_disc_cache() -> None:
    """Drop the process-wide discretisation memo (test isolation)."""
    with _SHARED_DISC_LOCK:
        _SHARED_DISC_CACHE.clear()


@dataclass(frozen=True)
class ThermalNode:
    """One lumped thermal mass.

    Parameters
    ----------
    name:
        Unique node identifier (e.g. ``"big0"``, ``"case"``).
    capacitance_j_per_k:
        Thermal capacitance of the lump.
    g_ambient_w_per_k:
        Direct conductance from this node to the ambient boundary.
    cooled:
        Whether the fan multiplies this node's ambient conductance
        (true only for the case/heat-sink node on this platform).
    """

    name: str
    capacitance_j_per_k: float
    g_ambient_w_per_k: float = 0.0
    cooled: bool = False

    def __post_init__(self) -> None:
        if self.capacitance_j_per_k <= 0:
            raise ConfigurationError(
                "node %r: capacitance must be positive" % self.name
            )
        if self.g_ambient_w_per_k < 0:
            raise ConfigurationError(
                "node %r: ambient conductance must be >= 0" % self.name
            )


class ThermalRCNetwork:
    """Lumped thermal RC network with exact zero-order-hold integration."""

    def __init__(
        self,
        nodes: Sequence[ThermalNode],
        couplings: Sequence[Tuple[str, str, float]],
        ambient_k: float,
        nonlinear_cooling_coeff: float = 0.0,
    ) -> None:
        if not nodes:
            raise ConfigurationError("network needs at least one node")
        names = [n.name for n in nodes]
        if len(set(names)) != len(names):
            raise ConfigurationError("duplicate node names: %r" % names)

        self.nodes: Tuple[ThermalNode, ...] = tuple(nodes)
        self._index: Dict[str, int] = {n.name: i for i, n in enumerate(nodes)}
        self.ambient_k = float(ambient_k)
        n = len(nodes)

        # Conductance (Laplacian-like) matrix for node-node couplings.
        self._g_coupling = np.zeros((n, n))
        for a, b, g in couplings:
            if g <= 0:
                raise ConfigurationError(
                    "coupling %s-%s must have positive conductance" % (a, b)
                )
            ia, ib = self.index(a), self.index(b)
            if ia == ib:
                raise ConfigurationError("self-coupling on node %r" % a)
            self._g_coupling[ia, ia] += g
            self._g_coupling[ib, ib] += g
            self._g_coupling[ia, ib] -= g
            self._g_coupling[ib, ia] -= g

        self._g_ambient = np.array([n_.g_ambient_w_per_k for n_ in nodes])
        self._cooled_mask = np.array([n_.cooled for n_ in nodes], dtype=bool)
        self._capacitance = np.array([n_.capacitance_j_per_k for n_ in nodes])
        if not np.any(self._g_ambient > 0):
            raise ConfigurationError(
                "at least one node must couple to ambient, or heat never leaves"
            )

        self._temps_k = np.full(n, self.ambient_k)
        self._cooling_gain = 1.0
        # Natural convection + radiation improve as the case runs hotter;
        # this first-order correction multiplies the cooled nodes' ambient
        # conductance by (1 + coeff * (T_case - T_amb)), quantised so the
        # discretisation cache stays bounded.
        if nonlinear_cooling_coeff < 0:
            raise ConfigurationError("nonlinear cooling coeff must be >= 0")
        self.nonlinear_cooling_coeff = nonlinear_cooling_coeff
        # (dt, effective_gain) -> (Ad, Bd) discretisation LRU cache,
        # bounded at DISC_CACHE_SIZE entries (see discretise)
        self._disc_cache: "OrderedDict[Tuple[float, float], Tuple[np.ndarray, np.ndarray]]" = OrderedDict()
        # content hash of exactly the fields physics_equal compares: the
        # shared-memo namespace, so physics-identical instances hit each
        # other's discretisations and different physics never collide
        digest = hashlib.sha256()
        digest.update(
            repr(
                (
                    self.ambient_k,
                    self.nonlinear_cooling_coeff,
                    tuple(n_.name for n_ in nodes),
                )
            ).encode("utf-8")
        )
        digest.update(self._g_coupling.tobytes())
        digest.update(self._g_ambient.tobytes())
        digest.update(self._capacitance.tobytes())
        digest.update(self._cooled_mask.tobytes())
        self._physics_key = digest.hexdigest()

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of thermal nodes."""
        return len(self.nodes)

    def index(self, name: str) -> int:
        """Index of a node by name."""
        try:
            return self._index[name]
        except KeyError:
            raise ConfigurationError("unknown thermal node %r" % name) from None

    @property
    def temperatures_k(self) -> np.ndarray:
        """Copy of all node temperatures (K)."""
        return self._temps_k.copy()

    def physics_equal(self, other: "ThermalRCNetwork") -> bool:
        """Whether two networks share identical physical parameters.

        State (temperatures, cooling gain) is excluded -- this is the
        compatibility test the batched plant uses to decide that one
        discretisation cache can serve every lane.
        """
        return (
            self.ambient_k == other.ambient_k
            and self.nonlinear_cooling_coeff == other.nonlinear_cooling_coeff
            and tuple(n.name for n in self.nodes)
            == tuple(n.name for n in other.nodes)
            and np.array_equal(self._g_coupling, other._g_coupling)
            and np.array_equal(self._g_ambient, other._g_ambient)
            and np.array_equal(self._capacitance, other._capacitance)
            and np.array_equal(self._cooled_mask, other._cooled_mask)
        )

    def temperature_k(self, name: str) -> float:
        """Temperature of one node (K)."""
        return float(self._temps_k[self.index(name)])

    @property
    def cooling_gain(self) -> float:
        """Current multiplier on cooled nodes' ambient conductance."""
        return self._cooling_gain

    def set_cooling_gain(self, gain: float) -> None:
        """Set the fan-driven multiplier on cooled nodes' conductance."""
        if gain <= 0:
            raise ConfigurationError("cooling gain must be positive")
        self._cooling_gain = float(gain)

    def set_temperatures_k(self, temps_k: Sequence[float]) -> None:
        """Force all node temperatures (warm-start / test setup)."""
        temps = np.asarray(temps_k, dtype=float)
        if temps.shape != self._temps_k.shape:
            raise ConfigurationError(
                "expected %d temperatures" % self.num_nodes
            )
        self._temps_k = temps.copy()

    def set_uniform_temperature_k(self, temp_k: float) -> None:
        """Set every node to the same temperature."""
        self._temps_k = np.full(self.num_nodes, float(temp_k))

    # ------------------------------------------------------------------
    # dynamics
    # ------------------------------------------------------------------
    def _nonlinear_factor(self) -> float:
        """Quantised hot-case cooling improvement factor (>= 1)."""
        return float(self.nonlinear_factors(self._temps_k[np.newaxis, :])[0])

    def nonlinear_factors(self, temps_k: np.ndarray) -> np.ndarray:
        """Per-lane quantised cooling factors for a ``(B, N)`` temp batch.

        Every operation is elementwise over the batch axis (the only
        reduction runs over the fixed cooled-node axis), so lane ``b`` of a
        batch gets exactly the value a standalone ``(1, N)`` call would.
        """
        batch = temps_k.shape[0]
        if self.nonlinear_cooling_coeff <= 0 or not np.any(self._cooled_mask):
            return np.ones(batch)
        delta = (
            np.mean(temps_k[:, self._cooled_mask], axis=1) - self.ambient_k
        )
        factor = 1.0 + self.nonlinear_cooling_coeff * np.maximum(0.0, delta)
        return np.round(factor / 0.05) * 0.05

    def _effective_g(self, gain: float) -> np.ndarray:
        """Full conductance matrix including (fan-scaled) ambient legs."""
        g_amb = self._g_ambient.copy()
        g_amb[self._cooled_mask] *= gain
        return self._g_coupling + np.diag(g_amb), g_amb

    def _discretise(self, dt_s: float, gain: float) -> Tuple[np.ndarray, np.ndarray]:
        """Exact ZOH discretisation of the network for step ``dt_s``.

        Two memo levels: a per-instance LRU (``DISC_CACHE_SIZE`` entries,
        lock-free -- the quantised effective gains of a steady run touch a
        handful of keys) in front of the process-wide
        ``_SHARED_DISC_CACHE`` keyed by the instance's physics hash.  A
        suite builds one plant per simulator over identical platform
        physics; the shared level means only the *first* instance pays
        the ``expm`` for each ``(A, dt)`` pair -- every sibling gathers
        the same matrices (bit-identical: the memo stores, it never
        recomputes differently).  Matrices handed back are shared and
        must not be mutated (``discretise_stack`` copies via its gather).
        """
        key = (round(dt_s, 9), round(gain, 9))
        cached = self._disc_cache.get(key)
        if cached is not None:
            self._disc_cache.move_to_end(key)
            return cached
        shared_key = (self._physics_key, key[0], key[1])
        with _SHARED_DISC_LOCK:
            shared = _SHARED_DISC_CACHE.get(shared_key)
            if shared is not None:
                _SHARED_DISC_CACHE.move_to_end(shared_key)
        if shared is not None:
            self._disc_cache[key] = shared
            if len(self._disc_cache) > DISC_CACHE_SIZE:
                self._disc_cache.popitem(last=False)
            return shared

        g_full, g_amb = self._effective_g(gain)
        c_inv = 1.0 / self._capacitance
        m = -(c_inv[:, None] * g_full)  # continuous A
        # inputs: [P (n), Tamb (1)]
        n = self.num_nodes
        b = np.zeros((n, n + 1))
        b[:, :n] = np.diag(c_inv)
        b[:, n] = c_inv * g_amb
        # augmented exact ZOH
        aug = np.zeros((2 * n + 1, 2 * n + 1))
        aug[:n, :n] = m
        aug[:n, n:] = b
        phi = expm(aug * dt_s)
        ad = phi[:n, :n]
        bd = phi[:n, n:]
        self._disc_cache[key] = (ad, bd)
        if len(self._disc_cache) > DISC_CACHE_SIZE:
            self._disc_cache.popitem(last=False)
        with _SHARED_DISC_LOCK:
            _SHARED_DISC_CACHE[shared_key] = (ad, bd)
            if len(_SHARED_DISC_CACHE) > SHARED_DISC_CACHE_SIZE:
                _SHARED_DISC_CACHE.popitem(last=False)
        return ad, bd

    def discretise_stack(
        self, dt_s: float, gains: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-lane stacked ``(Ad, Bd)`` for a ``(B,)`` effective-gain vector.

        Lanes sharing a gain share one cached discretisation; the result
        gathers the unique matrices back to per-lane ``(B, N, N)`` /
        ``(B, N, N+1)`` stacks so a whole batch advances in one
        ``einsum`` regardless of how many distinct gains it spans.  The
        gather is a view-free fancy index, so mutating the result never
        corrupts the cache.
        """
        if dt_s <= 0:
            raise SimulationError("dt must be positive")
        n = self.num_nodes
        uniq, inv = np.unique(np.asarray(gains, dtype=float), return_inverse=True)
        ads = np.empty((uniq.shape[0], n, n))
        bds = np.empty((uniq.shape[0], n, n + 1))
        for g_i, gain in enumerate(uniq):
            ads[g_i], bds[g_i] = self._discretise(dt_s, float(gain))
        return ads[inv.reshape(-1)], bds[inv.reshape(-1)]

    def step(self, power_w: Sequence[float], dt_s: float) -> np.ndarray:
        """Advance the network by ``dt_s`` under constant node powers (W).

        This is the B=1 view of :meth:`step_batch`, so a standalone
        network and one lane of a batched plant integrate through the
        same code path (and therefore bit-identically).
        """
        p = np.asarray(power_w, dtype=float)
        if p.shape != (self.num_nodes,):
            raise SimulationError(
                "expected %d node powers, got shape %s" % (self.num_nodes, p.shape)
            )
        self._temps_k = self.step_batch(
            self._temps_k[np.newaxis, :],
            p[np.newaxis, :],
            dt_s,
            np.array([self._cooling_gain]),
        )[0]
        return self._temps_k.copy()

    def step_batch(
        self,
        temps_k: np.ndarray,
        power_w: np.ndarray,
        dt_s: float,
        cooling_gains: np.ndarray,
    ) -> np.ndarray:
        """Advance ``B`` independent thermal states by one substep.

        Parameters
        ----------
        temps_k:
            ``(B, N)`` node temperatures, one row per lane.  Not mutated;
            the instance's own state is untouched (lanes own their state).
        power_w:
            ``(B, N)`` node powers.
        cooling_gains:
            ``(B,)`` fan-driven multipliers on the cooled nodes' ambient
            conductance (each lane's fan runs its own controller).

        Lanes sharing an effective conductance share one cached
        ``(Ad, Bd)`` pair (gathered to a per-lane stack by
        :meth:`discretise_stack`); the update is one ``einsum`` over the
        fixed node axis, so each lane's result is independent of which
        other lanes ride in the batch -- the property the batch/serial
        byte-identity contract rests on.
        """
        if dt_s <= 0:
            raise SimulationError("dt must be positive")
        temps_k = np.asarray(temps_k, dtype=float)
        power_w = np.asarray(power_w, dtype=float)
        batch = temps_k.shape[0]
        if temps_k.shape != (batch, self.num_nodes) or power_w.shape != (
            batch,
            self.num_nodes,
        ):
            raise SimulationError(
                "expected (B, %d) temps and powers, got %s and %s"
                % (self.num_nodes, temps_k.shape, power_w.shape)
            )
        gains = np.asarray(cooling_gains, dtype=float) * self.nonlinear_factors(
            temps_k
        )
        u = np.concatenate(
            [power_w, np.full((batch, 1), self.ambient_k)], axis=1
        )
        # one gathered-stack einsum instead of a per-unique-gain Python
        # loop; bit-identical per lane to the grouped "ij,bj->bi" form
        # (einsum accumulates over the node axis in the same order)
        ad, bd = self.discretise_stack(dt_s, gains)
        return np.einsum("bij,bj->bi", ad, temps_k) + np.einsum(
            "bij,bj->bi", bd, u
        )

    def steady_state_k(self, power_w: Sequence[float]) -> np.ndarray:
        """Steady-state temperatures for constant node powers (K).

        With nonlinear cooling enabled the effective conductance depends on
        the (unknown) steady case temperature, so the solve iterates to a
        fixed point; convergence is fast because the correction is mild.
        """
        p = np.asarray(power_w, dtype=float)
        if p.shape != (self.num_nodes,):
            raise SimulationError("expected %d node powers" % self.num_nodes)
        factor = 1.0
        temps = np.full(self.num_nodes, self.ambient_k)
        for _ in range(50):
            g_full, g_amb = self._effective_g(self._cooling_gain * factor)
            rhs = p + g_amb * self.ambient_k
            temps = np.linalg.solve(g_full, rhs)
            if self.nonlinear_cooling_coeff <= 0 or not np.any(self._cooled_mask):
                break
            delta = float(np.mean(temps[self._cooled_mask])) - self.ambient_k
            new_factor = 1.0 + self.nonlinear_cooling_coeff * max(0.0, delta)
            if abs(new_factor - factor) < 1e-6:
                break
            factor = 0.5 * factor + 0.5 * new_factor
        return temps

    def dominant_time_constants_s(self) -> np.ndarray:
        """Sorted (descending) time constants at the current operating point."""
        g_full, _ = self._effective_g(
            self._cooling_gain * self._nonlinear_factor()
        )
        m = -np.diag(1.0 / self._capacitance) @ g_full
        eigvals = np.linalg.eigvals(m)
        taus = -1.0 / np.real(eigvals)
        return np.sort(taus)[::-1]


def node_power_vector(
    network: ThermalRCNetwork, powers: Dict[str, float]
) -> np.ndarray:
    """Build a node-power vector from a name->watts mapping.

    Nodes not mentioned get zero power; unknown names raise.
    """
    vec = np.zeros(network.num_nodes)
    for name, watts in powers.items():
        vec[network.index(name)] = watts
    return vec
