"""Thermal model validation metrics (Section 4.2.2, Figs. 4.9/4.10/6.2).

The paper validates the identified model by predicting the temperature
``n`` control intervals ahead at every step of a benchmark run, then
comparing predictions against the measurements recorded at those times.
Errors are reported both in degrees Celsius and as a percentage of the
measured Celsius reading (the paper quotes "3 % (1 degC)").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.errors import ModelError
from repro.thermal.state_space import DiscreteThermalModel
from repro.units import KELVIN_OFFSET


@dataclass(frozen=True)
class PredictionErrorReport:
    """Aggregate prediction-error statistics for one horizon."""

    horizon_steps: int
    horizon_s: float
    mean_abs_c: float
    max_abs_c: float
    rms_c: float
    mean_pct: float
    max_pct: float
    samples: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            "horizon %.1fs: mean |err| %.2f degC (%.2f %%), max %.2f degC"
            % (self.horizon_s, self.mean_abs_c, self.mean_pct, self.max_abs_c)
        )


def horizon_predictions(
    model: DiscreteThermalModel,
    temps_k: np.ndarray,
    powers_w: np.ndarray,
    horizon_steps: int,
) -> np.ndarray:
    """Predict ``T[k + horizon]`` from every start index k.

    Uses the *actual* logged power trajectory over the window (Eq. 4.5),
    which is what the paper's end-of-run validation does.  Returns an array
    of shape (steps - horizon, N) aligned so row k is the prediction of the
    measurement ``temps_k[k + horizon]``.
    """
    temps = np.asarray(temps_k, dtype=float)
    powers = np.asarray(powers_w, dtype=float)
    if temps.ndim != 2 or powers.ndim != 2 or temps.shape[0] != powers.shape[0]:
        raise ModelError("temps and powers must be aligned 2-D time series")
    steps = temps.shape[0]
    if horizon_steps < 1 or horizon_steps >= steps:
        raise ModelError(
            "horizon %d outside series of length %d" % (horizon_steps, steps)
        )
    out = np.empty((steps - horizon_steps, temps.shape[1]))
    for k in range(steps - horizon_steps):
        window = powers[k : k + horizon_steps]
        out[k] = model.predict_horizon(temps[k], window)[-1]
    return out


def prediction_error_report(
    model: DiscreteThermalModel,
    temps_k: np.ndarray,
    powers_w: np.ndarray,
    horizon_steps: int,
) -> PredictionErrorReport:
    """Full error statistics for one prediction horizon."""
    preds = horizon_predictions(model, temps_k, powers_w, horizon_steps)
    actual = np.asarray(temps_k, dtype=float)[horizon_steps:]
    err_c = preds - actual  # Kelvin differences == Celsius differences
    abs_err = np.abs(err_c)
    actual_c = actual - KELVIN_OFFSET
    with np.errstate(divide="ignore", invalid="ignore"):
        pct = 100.0 * abs_err / np.maximum(actual_c, 1e-9)
    return PredictionErrorReport(
        horizon_steps=horizon_steps,
        horizon_s=horizon_steps * model.ts_s,
        mean_abs_c=float(np.mean(abs_err)),
        max_abs_c=float(np.max(abs_err)),
        rms_c=float(np.sqrt(np.mean(err_c ** 2))),
        mean_pct=float(np.mean(pct)),
        max_pct=float(np.max(pct)),
        samples=int(abs_err.size),
    )


def error_vs_horizon(
    model: DiscreteThermalModel,
    temps_k: np.ndarray,
    powers_w: np.ndarray,
    horizons_steps: Sequence[int],
) -> Dict[int, PredictionErrorReport]:
    """Error reports over a sweep of horizons (Fig. 4.10's x-axis)."""
    return {
        h: prediction_error_report(model, temps_k, powers_w, h)
        for h in horizons_steps
    }
