"""Thermal modeling: ground-truth plant, PRBS, system identification."""

from repro.thermal.floorplan import (
    BIG_CORE_NODES,
    CASE_NODE,
    DEFAULT_THERMAL_CONSTANTS,
    GPU_NODE,
    LITTLE_NODE,
    MEM_NODE,
    build_exynos_network,
    hotspot_temperatures_k,
    node_powers,
    resource_temperatures_k,
)
from repro.thermal.observer import TemperatureObserver
from repro.thermal.prbs import PrbsSignal, balance, prbs_bits, prbs_levels
from repro.thermal.rc_network import ThermalNode, ThermalRCNetwork, node_power_vector
from repro.thermal.state_space import DiscreteThermalModel
from repro.thermal.sysid import (
    IdentificationSession,
    PrbsExperiment,
    SystemIdentifier,
    identify_default_model,
)
from repro.thermal.validation import (
    PredictionErrorReport,
    error_vs_horizon,
    horizon_predictions,
    prediction_error_report,
)

__all__ = [
    "TemperatureObserver",
    "BIG_CORE_NODES",
    "CASE_NODE",
    "DEFAULT_THERMAL_CONSTANTS",
    "GPU_NODE",
    "LITTLE_NODE",
    "MEM_NODE",
    "build_exynos_network",
    "hotspot_temperatures_k",
    "node_powers",
    "resource_temperatures_k",
    "PrbsSignal",
    "balance",
    "prbs_bits",
    "prbs_levels",
    "ThermalNode",
    "ThermalRCNetwork",
    "node_power_vector",
    "DiscreteThermalModel",
    "IdentificationSession",
    "PrbsExperiment",
    "SystemIdentifier",
    "identify_default_model",
    "PredictionErrorReport",
    "error_vs_horizon",
    "horizon_predictions",
    "prediction_error_report",
]
