"""Fused exponential-integrator substep kernels for the batched plant.

The batched plant advances every control interval through ``K`` thermal
substeps (Eq. 4.3 of the paper, discretised exactly per substep).  Since
the node power injected into the RC network is held over the whole
interval (zero-order hold, see :mod:`repro.platform.state`), the only
quantities that can change *within* an interval are the fan speed and
the quantised nonlinear cooling factor -- and in the common case neither
does.  This module exploits that:

* :func:`advance_held_interval` first runs the **fused chain**: one
  stacked-propagator pass that applies the per-lane ``(Ad, Bd)`` pair
  ``K`` times with the interval-entry effective gains, recording the
  whole substep trajectory.  A vectorised validation pass then replays
  the fan threshold automaton and the nonlinear-factor quantisation over
  the trajectory *without stepping Python per substep*; lanes whose fan
  speed or leakage-coupled cooling gain would have changed mid-interval
  ("dirty" lanes) are re-integrated through the per-substep fallback
  from their entry state.  Clean lanes keep the fused result, which is
  byte-identical to what the fallback would have produced (the chain
  applies exactly the same gathered-stack ``einsum`` per substep, with
  ``Bd @ u`` hoisted -- the same operation on the same operands).
* The **per-substep fallback** (:func:`substep_loop`) interleaves gain
  regrouping and the fan automaton with every substep -- the reference
  semantics, and the only path dirty lanes take.
* An optional **numba backend** JIT-compiles the chain.  It is selected
  with ``REPRO_KERNEL=numba`` and requires the ``jit`` extra
  (``pip install repro-dtpm[jit]``); results agree with the NumPy chain
  to within a documented tolerance (~1 ulp -- the JIT accumulates the
  node-axis dot products in the same order, but is free to fuse
  multiply-adds), so it is opt-in and never the default: the pure-NumPy
  path defines the pinned bit-exact results.

Backend selection (``REPRO_KERNEL`` environment variable):

``numpy`` (default)
    Fused chain + validation + fallback, pure NumPy.
``numpy-substep``
    Per-substep fallback for every lane.  Reference implementation --
    byte-identical to ``numpy`` by the contract above, and the baseline
    the parity tests and kernel benchmarks compare against.
``numba``
    Fused chain JIT-compiled with numba (optional extra).

Every kernel is elementwise over the batch axis and per-lane path
selection depends only on that lane's own trajectory, so lane ``b`` of a
batch computes exactly what a batch of one would -- the batch/serial
byte-identity contract of ``tests/test_batch_sim.py``.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.thermal.rc_network import ThermalRCNetwork

#: Environment variable selecting the substep kernel backend.
ENV_VAR = "REPRO_KERNEL"

#: Recognised ``REPRO_KERNEL`` values.
BACKENDS = ("numpy", "numpy-substep", "numba")

try:  # pragma: no cover - exercised only on the numba CI leg
    import numba as _numba
except ImportError:  # numba is an optional extra (pip install repro-dtpm[jit])
    _numba = None

#: Whether the optional numba JIT backend is importable.
HAVE_NUMBA = _numba is not None

_numba_chain = None


def active_backend() -> str:
    """Resolve the substep kernel backend from ``REPRO_KERNEL``.

    Raises a :class:`~repro.errors.ConfigurationError` for unknown names
    and when ``numba`` is requested but not installed, so a mis-set
    environment fails loudly at run start instead of silently falling
    back to a different numeric path.
    """
    name = os.environ.get(ENV_VAR, "").strip() or "numpy"
    if name not in BACKENDS:
        raise ConfigurationError(
            "unknown %s=%r (expected one of %s)"
            % (ENV_VAR, name, "|".join(BACKENDS))
        )
    if name == "numba" and not HAVE_NUMBA:
        raise ConfigurationError(
            "%s=numba but numba is not installed; "
            "pip install repro-dtpm[jit]" % ENV_VAR
        )
    return name


# ---------------------------------------------------------------------------
# fan threshold automaton (vectorised over lanes)
# ---------------------------------------------------------------------------
def fan_step(
    speed: np.ndarray,
    enabled: np.ndarray,
    max_hot_k: np.ndarray,
    up_k: np.ndarray,
    hyst_k: float,
) -> np.ndarray:
    """One vectorised step of the hysteretic fan threshold controller.

    Elementwise transcription of :meth:`repro.platform.fan.Fan.update`:
    speed jumps straight up to the highest crossed threshold, steps down
    one level at a time once the temperature falls the hysteresis below
    the engaging threshold, and a disabled fan pins to OFF.
    """
    target = (
        (max_hot_k > up_k[0]).astype(np.int64)
        + (max_hot_k > up_k[1])
        + (max_hot_k > up_k[2])
    )
    rising = target > speed
    engage = up_k[np.clip(speed - 1, 0, 2)]
    falling = ~rising & (target < speed) & (max_hot_k < engage - hyst_k)
    new = np.where(rising, target, np.where(falling, speed - 1, speed))
    return np.where(enabled, new, 0)


# ---------------------------------------------------------------------------
# fused chain
# ---------------------------------------------------------------------------
def fused_chain(
    ad: np.ndarray, bu: np.ndarray, temps_k: np.ndarray, substeps: int
) -> np.ndarray:
    """Apply the per-lane one-step propagator ``K`` times, keeping the
    trajectory.

    ``traj[k]`` holds the temperatures *after* substep ``k``; the loop
    body is the exact gathered-stack ``einsum`` of
    :meth:`~repro.thermal.rc_network.ThermalRCNetwork.step_batch` with
    the (constant) input contribution ``bu = Bd @ u`` hoisted, so a lane
    whose gains really stay constant gets bit-identical temperatures to
    per-substep stepping.
    """
    traj = np.empty((substeps,) + temps_k.shape)
    t = temps_k
    for k in range(substeps):
        t = np.einsum("bij,bj->bi", ad, t) + bu
        traj[k] = t
    return traj


def _numba_fused_chain():  # pragma: no cover - exercised on the numba CI leg
    """Lazily compile (and memoise) the numba version of the chain."""
    global _numba_chain
    if _numba_chain is None:

        @_numba.njit(cache=True, fastmath=False)
        def chain(ad, bu, temps_k, substeps):
            batch, n = temps_k.shape
            traj = np.empty((substeps, batch, n))
            t = temps_k.copy()
            for k in range(substeps):
                for b in range(batch):  # repro-lint: disable=RPR032 -- numba-compiled body; explicit loops beat einsum inside njit
                    for i in range(n):
                        acc = 0.0
                        for j in range(n):
                            acc += ad[b, i, j] * t[b, j]
                        traj[k, b, i] = acc + bu[b, i]
                t = traj[k]
            return traj

        _numba_chain = chain
    return _numba_chain


# ---------------------------------------------------------------------------
# trajectory validation
# ---------------------------------------------------------------------------
def dirty_lanes(
    network: ThermalRCNetwork,
    traj: np.ndarray,
    nl_entry: np.ndarray,
    cooling_gain: np.ndarray,
    fan_speed: np.ndarray,
    fan_enabled: np.ndarray,
    up_k: np.ndarray,
    hyst_k: float,
    fan_gains: np.ndarray,
    hot_idx: np.ndarray,
) -> np.ndarray:
    """Which lanes' fused trajectories are invalid (``(B,)`` bool).

    A lane is dirty when per-substep stepping would have diverged from
    the constant-gain assumption the chain integrated under:

    * its entry cooling gain differs from the fan table entry for its
      speed (an externally forced gain -- the very first interval after a
      warm start can hit this when the table's OFF gain is not 1.0);
    * the quantised nonlinear cooling factor changes at any intermediate
      pre-step point of the trajectory; or
    * the fan threshold automaton would change speed at any of the ``K``
      post-substep updates (evaluated against the entry speed, which is
      exact: while no transition has fired, the automaton's state *is*
      the entry speed, and the first firing marks the lane dirty).

    Everything is elementwise over lanes; the substep axis only ever
    reduces via ``any``.
    """
    substeps, batch, n = traj.shape
    dirty = cooling_gain != fan_gains[fan_speed]
    if substeps > 1:
        nl = network.nonlinear_factors(
            traj[:-1].reshape((substeps - 1) * batch, n)
        ).reshape(substeps - 1, batch)
        dirty |= np.any(nl != nl_entry, axis=0)
    max_hot = np.max(traj[:, :, hot_idx], axis=2)  # (K, B)
    target = (
        (max_hot > up_k[0]).astype(np.int64)
        + (max_hot > up_k[1])
        + (max_hot > up_k[2])
    )
    any_up = np.any(target > fan_speed, axis=0)
    engage = up_k[np.clip(fan_speed - 1, 0, 2)]
    any_down = np.any(
        (target < fan_speed) & (max_hot < engage - hyst_k), axis=0
    )
    dirty |= np.where(fan_enabled, any_up | any_down, fan_speed != 0)
    return dirty


# ---------------------------------------------------------------------------
# per-substep fallback (reference semantics)
# ---------------------------------------------------------------------------
def substep_loop(
    network: ThermalRCNetwork,
    temps_k: np.ndarray,
    cooling_gain: np.ndarray,
    fan_speed: np.ndarray,
    fan_enabled: np.ndarray,
    u: np.ndarray,
    dt_s: float,
    substeps: int,
    up_k: np.ndarray,
    hyst_k: float,
    fan_gains: np.ndarray,
    hot_idx: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Advance lanes substep-by-substep under held node power.

    The reference interval semantics: every substep regroups the lanes
    by effective gain (fan gain x quantised nonlinear factor), advances
    the RC network one step, and runs the fan automaton on the new
    hotspots.  Returns the final temperatures ``(B, N)`` and the
    post-update fan speed after every substep ``(B, K)``.
    """
    batch = temps_k.shape[0]
    speeds = np.empty((batch, substeps), dtype=np.int64)
    gain = cooling_gain
    speed = fan_speed
    t = temps_k
    for k in range(substeps):
        gains = gain * network.nonlinear_factors(t)
        ad, bd = network.discretise_stack(dt_s, gains)
        t = np.einsum("bij,bj->bi", ad, t) + np.einsum("bij,bj->bi", bd, u)
        max_hot = np.max(t[:, hot_idx], axis=1)
        speed = fan_step(speed, fan_enabled, max_hot, up_k, hyst_k)
        speeds[:, k] = speed
        gain = fan_gains[speed]
    return t, speeds


# ---------------------------------------------------------------------------
# the fused interval kernel
# ---------------------------------------------------------------------------
def advance_held_interval(
    network: ThermalRCNetwork,
    temps_k: np.ndarray,
    cooling_gain: np.ndarray,
    fan_speed: np.ndarray,
    fan_enabled: np.ndarray,
    u: np.ndarray,
    dt_s: float,
    substeps: int,
    up_k: np.ndarray,
    hyst_k: float,
    fan_gains: np.ndarray,
    hot_idx: np.ndarray,
    backend: Optional[str] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Advance ``B`` lanes through the ``K`` substeps of one interval.

    ``u`` is the ``(B, N+1)`` held input (node powers + ambient) of the
    whole interval.  Returns ``(final_temps (B, N), speeds (B, K))``
    where ``speeds[:, k]`` is each lane's fan speed after substep ``k``'s
    controller update (the meter prices substep ``k`` at that speed).

    The fast path integrates every lane with its interval-entry
    effective gain in one chained propagator pass, then validates the
    trajectory (see :func:`dirty_lanes`); only lanes that would actually
    have switched fan speed or crossed a nonlinear-factor quantisation
    boundary re-run through :func:`substep_loop`.  Both paths execute
    the same operations on the same operands for a clean lane, so which
    path a lane takes is unobservable in the results.
    """
    backend = backend or active_backend()
    if backend == "numpy-substep":
        return substep_loop(
            network, temps_k, cooling_gain, fan_speed, fan_enabled,
            u, dt_s, substeps, up_k, hyst_k, fan_gains, hot_idx,
        )

    nl_entry = network.nonlinear_factors(temps_k)
    gains = cooling_gain * nl_entry
    ad, bd = network.discretise_stack(dt_s, gains)
    bu = np.einsum("bij,bj->bi", bd, u)

    if backend == "numba":  # pragma: no cover - exercised on the numba leg
        traj = _numba_fused_chain()(ad, bu, temps_k, substeps)
    else:
        traj = fused_chain(ad, bu, temps_k, substeps)

    dirty = dirty_lanes(
        network, traj, nl_entry, cooling_gain, fan_speed, fan_enabled,
        up_k, hyst_k, fan_gains, hot_idx,
    )

    final = traj[-1]
    speeds = np.repeat(fan_speed[:, np.newaxis], substeps, axis=1)
    if np.any(dirty):
        d_final, d_speeds = substep_loop(
            network,
            temps_k[dirty],
            cooling_gain[dirty],
            fan_speed[dirty],
            fan_enabled[dirty],
            u[dirty],
            dt_s,
            substeps,
            up_k,
            hyst_k,
            fan_gains,
            hot_idx,
        )
        final[dirty] = d_final
        speeds[dirty] = d_speeds
    return final, speeds
