"""Model-based temperature observer (state filtering).

Section 4 of the paper notes that hotspots without sensors "need to be
modeled as an unobservable node [40]", and the Exynos TMU's coarse
quantisation adds measurement noise on the nodes that *are* sensed.  This
module provides a steady-state Kalman filter over the identified discrete
model: it fuses the model's one-step prediction with each new sensor
reading, producing a smoothed state estimate the predictor and budget can
consume instead of raw readings.

This is an optional extension -- the paper feeds raw sensor values into
Eq. 5.5 and so does the default :class:`repro.core.dtpm.DtpmGovernor` --
but it measurably reduces the effective sensor noise and is the natural
hook for platforms with fewer sensors than hotspots.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.linalg import solve_discrete_are

from repro.errors import ModelError
from repro.thermal.state_space import DiscreteThermalModel


class TemperatureObserver:
    """Steady-state Kalman filter on the identified thermal model.

    The model is ``T[k+1] = A T[k] + B P[k] + d + w`` with process noise
    covariance ``Q`` (model mismatch) and measurement ``y = T + v`` with
    sensor covariance ``R``.  The stationary gain is computed once from
    the discrete algebraic Riccati equation.
    """

    def __init__(
        self,
        model: DiscreteThermalModel,
        process_noise_k: float = 0.15,
        measurement_noise_k: float = 0.25,
    ) -> None:
        if process_noise_k <= 0 or measurement_noise_k <= 0:
            raise ModelError("noise standard deviations must be positive")
        self.model = model
        n = model.num_states
        q = process_noise_k ** 2 * np.eye(n)
        r = measurement_noise_k ** 2 * np.eye(n)
        # P solves the filter DARE for (A^T, C^T) with C = I
        try:
            p = solve_discrete_are(model.a.T, np.eye(n), q, r)
        except Exception as exc:  # pragma: no cover - scipy failure path
            raise ModelError("observer Riccati solve failed: %s" % exc) from exc
        self._gain = p @ np.linalg.inv(p + r)
        self._state: Optional[np.ndarray] = None
        self._last_powers: Optional[np.ndarray] = None

    @property
    def gain(self) -> np.ndarray:
        """The stationary Kalman gain (N x N)."""
        return self._gain.copy()

    @property
    def state_k(self) -> Optional[np.ndarray]:
        """Current filtered temperature estimate (K), or None before init."""
        return None if self._state is None else self._state.copy()

    def reset(self) -> None:
        """Forget all state (new run)."""
        self._state = None
        self._last_powers = None

    def update(
        self, measured_temps_k: np.ndarray, powers_w: np.ndarray
    ) -> np.ndarray:
        """Fuse one sensor snapshot; returns the filtered temperatures.

        ``powers_w`` is the power vector that applied over the *elapsed*
        interval (it drives the time-update from the previous estimate).
        """
        y = np.asarray(measured_temps_k, dtype=float).reshape(-1)
        p = np.asarray(powers_w, dtype=float).reshape(-1)
        if y.shape[0] != self.model.num_states:
            raise ModelError("measurement length mismatch")
        if p.shape[0] != self.model.num_inputs:
            raise ModelError("power vector length mismatch")

        if self._state is None:
            self._state = y.copy()
        else:
            predicted = self.model.predict_next(self._state, self._last_powers)
            self._state = predicted + self._gain @ (y - predicted)
        self._last_powers = p
        return self._state.copy()

    def innovation_k(
        self, measured_temps_k: np.ndarray
    ) -> Optional[np.ndarray]:
        """Measurement-minus-prediction residual for the last update."""
        if self._state is None or self._last_powers is None:
            return None
        y = np.asarray(measured_temps_k, dtype=float).reshape(-1)
        predicted = self.model.predict_next(self._state, self._last_powers)
        return y - predicted
