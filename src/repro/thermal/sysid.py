"""System identification of the thermal model (Section 4.2.1).

The paper's protocol, reproduced here against the simulated board:

1. excite **one resource at a time** with a PRBS power signal (big-cluster
   frequency toggled between f_min and f_max, then the little cluster, the
   GPU and memory) while the other resources are held constant or minimal;
2. log the hotspot temperatures ``T[k]`` and the resource powers ``P[k]``
   through the platform's (noisy) sensors at the 100 ms control period;
3. estimate (A, B) of ``T[k+1] = A T[k] + B P[k] + d`` by least squares
   (we use ridge-regularised LS; the paper used the MATLAB System
   Identification Toolbox, which solves the same prediction-error problem).

Both a joint estimator over all sessions and the paper's staged
per-resource estimator are provided.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.config import SimulationConfig
from repro.errors import IdentificationError
from repro.platform.specs import PlatformSpec, POWER_RESOURCES, Resource
from repro.thermal.prbs import PrbsSignal
from repro.thermal.state_space import DiscreteThermalModel


@dataclass
class IdentificationSession:
    """Logged input/output data from one PRBS excitation run."""

    resource: Resource
    temps_k: np.ndarray  # (steps, 4) sensed hotspot temperatures
    powers_w: np.ndarray  # (steps, 4) sensed resource powers
    ts_s: float

    def __post_init__(self) -> None:
        self.temps_k = np.asarray(self.temps_k, dtype=float)
        self.powers_w = np.asarray(self.powers_w, dtype=float)
        if self.temps_k.ndim != 2 or self.powers_w.ndim != 2:
            raise IdentificationError("session data must be 2-D time series")
        if self.temps_k.shape[0] != self.powers_w.shape[0]:
            raise IdentificationError("temps and powers must align in time")
        if self.temps_k.shape[0] < 32:
            raise IdentificationError(
                "session too short (%d samples)" % self.temps_k.shape[0]
            )

    @property
    def steps(self) -> int:
        return self.temps_k.shape[0]


class PrbsExperiment:
    """Runs the per-resource PRBS excitation against a simulated board.

    Identification runs with the fan disabled, matching the deployment
    condition of the DTPM algorithm (which exists to *replace* the fan).
    A safety throttle drops the excitation to its low level above
    ``safety_temp_c`` -- the paper likewise limited run time on hot
    workloads "to avoid physical damage to the device".
    """

    def __init__(
        self,
        spec: Optional[PlatformSpec] = None,
        config: Optional[SimulationConfig] = None,
        duration_s: float = 1050.0,
        chip_s: float = 2.0,
        prbs_order: int = 9,
        safety_temp_c: float = 78.0,
        seed: int = 7,
    ) -> None:
        self.spec = spec or PlatformSpec()
        self.config = config or SimulationConfig()
        self.duration_s = duration_s
        self.chip_s = chip_s
        self.prbs_order = prbs_order
        self.safety_temp_c = safety_temp_c
        self.seed = seed

    # ------------------------------------------------------------------
    def run_session(self, resource: Resource) -> IdentificationSession:
        """Excite one resource with PRBS and log sensor data."""
        # Imported here: the board itself depends on repro.thermal (for the
        # ground-truth plant), so a module-level import would be circular.
        from repro.platform.board import OdroidBoard

        # zlib.crc32, not hash(): str hashing is randomised per process
        # (PYTHONHASHSEED), which would identify a slightly different model
        # in every interpreter and defeat cross-process result caching.
        config = self.config.with_(
            seed=self.seed + zlib.crc32(resource.value.encode("ascii")) % 1000
        )
        board = OdroidBoard(self.spec, config, fan_enabled=False)
        board.warm_start(hotspot_c=config.ambient_c + 12.0)

        # Constant background so the B columns are not confounded.
        gpu_util, mem_traffic = 0.05, 0.15
        big_utils = (1.0, 1.0, 1.0, 1.0)
        little_utils = (0.0,) * 4
        board.soc.gpu.set_frequency(self.spec.gpu_opp.f_min_hz)

        # Per-core utilisation PRBS during the CPU sessions decorrelates the
        # four hotspot sensors, so identification can attribute each core's
        # future temperature to its *own* present temperature instead of the
        # cluster average -- essential for the budget equation to target the
        # hottest core (Eq. 5.5) under imbalanced real workloads.
        # Chips are long (~2 spread time constants) so inter-core temperature
        # differences fully develop and the spread mode is identifiable.
        core_signals = [
            PrbsSignal(0.25, 1.0, self.chip_s * 5.0, self.prbs_order, seed=17 + i)
            for i in range(4)
        ]

        if resource is Resource.BIG:
            signal = PrbsSignal(
                self.spec.big_opp.f_min_hz,
                self.spec.big_opp.f_max_hz,
                self.chip_s,
                self.prbs_order,
                seed=3,
            )
        elif resource is Resource.LITTLE:
            board.soc.switch_cluster(Resource.LITTLE)
            big_utils, little_utils = (0.0,) * 4, (1.0, 1.0, 1.0, 1.0)
            signal = PrbsSignal(
                self.spec.little_opp.f_min_hz,
                self.spec.little_opp.f_max_hz,
                self.chip_s,
                self.prbs_order,
                seed=5,
            )
        elif resource is Resource.GPU:
            board.soc.big.set_frequency(self.spec.big_opp.f_min_hz)
            big_utils = (0.2, 0.05, 0.05, 0.05)
            gpu_util = 0.85
            signal = PrbsSignal(
                self.spec.gpu_opp.f_min_hz,
                self.spec.gpu_opp.f_max_hz,
                self.chip_s,
                self.prbs_order,
                seed=11,
            )
        elif resource is Resource.MEM:
            board.soc.big.set_frequency(self.spec.big_opp.f_min_hz)
            big_utils = (0.2, 0.05, 0.05, 0.05)
            signal = PrbsSignal(0.05, 0.95, self.chip_s, self.prbs_order, seed=13)
        else:  # pragma: no cover - defensive
            raise IdentificationError("unknown resource %r" % resource)

        dt = self.config.control_period_s
        steps = int(round(self.duration_s / dt))
        temps: List[np.ndarray] = []
        powers: List[np.ndarray] = []
        for step in range(steps):
            level = signal.value_at(step * dt)
            hot_c = float(np.max(board.true_hotspots_k())) - 273.15
            throttled = hot_c > self.safety_temp_c
            if resource in (Resource.BIG, Resource.LITTLE):
                utils = tuple(s.value_at(step * dt) for s in core_signals)
                if resource is Resource.BIG:
                    big_utils = utils
                else:
                    little_utils = utils
            if resource is Resource.BIG:
                board.soc.big.set_frequency(signal.low if throttled else level)
            elif resource is Resource.LITTLE:
                board.soc.little.set_frequency(signal.low if throttled else level)
            elif resource is Resource.GPU:
                board.soc.gpu.set_frequency(signal.low if throttled else level)
            else:
                mem_traffic = signal.low if throttled else level

            board.step(
                big_utils,
                little_utils,
                gpu_utilisation=gpu_util,
                mem_traffic=mem_traffic,
                dt_s=dt,
            )
            snap = board.read_sensors()
            temps.append(snap.temperatures_k)
            powers.append(snap.powers_w)

        return IdentificationSession(
            resource=resource,
            temps_k=np.stack(temps),
            powers_w=np.stack(powers),
            ts_s=dt,
        )

    def run_all(self) -> List[IdentificationSession]:
        """Run the four per-resource sessions in the paper's order."""
        return [self.run_session(r) for r in POWER_RESOURCES]


class SystemIdentifier:
    """Least-squares estimation of the discrete thermal model."""

    def __init__(self, ridge: float = 1e-6) -> None:
        if ridge < 0:
            raise IdentificationError("ridge penalty must be >= 0")
        self.ridge = ridge

    # ------------------------------------------------------------------
    def identify(
        self, sessions: Sequence[IdentificationSession]
    ) -> DiscreteThermalModel:
        """Joint prediction-error estimate over all sessions.

        Each session primarily informs the B column of its excited resource
        (the only input with variance there); pooling the sessions in one
        regression yields consistent (A, B, d) in a single solve.
        """
        if not sessions:
            raise IdentificationError("no identification sessions provided")
        ts = sessions[0].ts_s
        phis, targets = [], []
        for session in sessions:
            if abs(session.ts_s - ts) > 1e-12:
                raise IdentificationError("sessions have mixed sampling periods")
            t, p = session.temps_k, session.powers_w
            phis.append(np.hstack([t[:-1], p[:-1], np.ones((session.steps - 1, 1))]))
            targets.append(t[1:])
        phi = np.vstack(phis)
        y = np.vstack(targets)
        theta = self._solve(phi, y)
        n_t = y.shape[1]
        n_p = phi.shape[1] - n_t - 1
        a = theta[:n_t].T
        b = theta[n_t : n_t + n_p].T
        d = theta[-1]
        model = DiscreteThermalModel(a=a, b=b, offset=d, ts_s=ts)
        self._check_model(model)
        return model

    def identify_staged(
        self, sessions: Sequence[IdentificationSession]
    ) -> DiscreteThermalModel:
        """The paper's staged protocol: per-resource parameter estimation.

        The big-cluster session (largest excitation) fixes A and B's big
        column; each later session estimates only its own B column against
        the residual dynamics.  "Individual test signals for different power
        resources are applied and corresponding parameters are modeled."
        """
        by_resource: Dict[Resource, IdentificationSession] = {
            s.resource: s for s in sessions
        }
        if Resource.BIG not in by_resource:
            raise IdentificationError("staged identification needs a BIG session")
        big = by_resource[Resource.BIG]
        idx = {r: i for i, r in enumerate(POWER_RESOURCES)}
        ts = big.ts_s

        t, p = big.temps_k, big.powers_w
        phi = np.hstack(
            [t[:-1], p[:-1, idx[Resource.BIG]][:, None], np.ones((big.steps - 1, 1))]
        )
        theta = self._solve(phi, t[1:])
        n_t = t.shape[1]
        a = theta[:n_t].T
        b = np.zeros((n_t, len(POWER_RESOURCES)))
        b[:, idx[Resource.BIG]] = theta[n_t]
        c_big = theta[-1]  # d + sum_j b_j * mean(P_j const in session 1)

        session1_means = {
            r: float(np.mean(p[:, idx[r]]))
            for r in POWER_RESOURCES
            if r is not Resource.BIG
        }

        for resource in (Resource.LITTLE, Resource.GPU, Resource.MEM):
            session = by_resource.get(resource)
            if session is None:
                continue
            t_s, p_s = session.temps_k, session.powers_w
            residual = t_s[1:] - t_s[:-1] @ a.T
            phi_s = np.hstack(
                [p_s[:-1, idx[resource]][:, None], np.ones((session.steps - 1, 1))]
            )
            theta_s = self._solve(phi_s, residual)
            b[:, idx[resource]] = theta_s[0]

        # Undo the constant-input absorption from the big session.
        d = c_big.copy()
        for resource, mean_p in session1_means.items():
            d = d - b[:, idx[resource]] * mean_p

        model = DiscreteThermalModel(a=a, b=b, offset=d, ts_s=ts)
        self._check_model(model)
        return model

    def identify_structured(
        self,
        sessions: Sequence[IdentificationSession],
        spread_clamp: tuple = (0.90, 0.995),
    ) -> DiscreteThermalModel:
        """Structured estimate exploiting the symmetric core layout.

        An unstructured one-step least-squares fit explains the hotspot
        *common mode* (all cores rising together with cluster power) very
        well, but systematically underestimates how long an individually
        hot core stays hot -- the spread mode's excitation comes from
        per-core power that is not observable through the cluster-level
        power sensors, so its persistence is poorly identified.  The DTPM
        budget (Eq. 5.5) targets the hottest core, so that persistence is
        exactly what matters.

        This estimator splits the problem along the floorplan's symmetry:

        * the mean hotspot temperature is fitted against the power vector
          (pooled over all sessions) -- a scalar model with the same inputs
          as Eq. 5.3;
        * the deviation of each core from the mean is fitted as a scalar
          AR(1) on the big-cluster session and clamped to a physically
          sensible range;
        * the 4x4 (A, B) of Eq. 5.3 is then assembled as
          ``A = lam_s I + (a_c - lam_s)/N J`` and ``B = 1 b_c^T``, which
          reproduces both fits exactly.
        """
        if not sessions:
            raise IdentificationError("no identification sessions provided")
        big = next((s for s in sessions if s.resource is Resource.BIG), None)
        if big is None:
            raise IdentificationError("structured identification needs a BIG session")
        ts = sessions[0].ts_s
        n = big.temps_k.shape[1]

        # common mode: mean temperature vs. full power vector
        phis, targets = [], []
        for session in sessions:
            mean_t = session.temps_k.mean(axis=1)
            phis.append(
                np.hstack(
                    [
                        mean_t[:-1, None],
                        session.powers_w[:-1],
                        np.ones((session.steps - 1, 1)),
                    ]
                )
            )
            targets.append(mean_t[1:, None])
        theta = self._solve(np.vstack(phis), np.vstack(targets))
        a_common = float(theta[0, 0])
        b_common = theta[1:-1, 0]
        d_common = float(theta[-1, 0])

        # Spread mode: per-core deviation AR(1) on the big session.  Plain
        # least squares is attenuated by sensor noise on the regressor
        # (errors-in-variables); using the one-sample-lagged spread as an
        # instrument is consistent because the sensors' noise is white.
        spread = big.temps_k - big.temps_k.mean(axis=1, keepdims=True)
        z = spread[:-2].ravel()  # instrument: spread[k-1]
        x = spread[1:-1].ravel()  # regressor: spread[k]
        y = spread[2:].ravel()  # target: spread[k+1]
        denom = float(z @ x)
        if abs(denom) <= 1e-12:
            raise IdentificationError("no inter-core spread in the big session")
        lam_spread = float(z @ y) / denom
        lam_spread = min(max(lam_spread, spread_clamp[0]), spread_clamp[1])

        a = lam_spread * np.eye(n) + ((a_common - lam_spread) / n) * np.ones((n, n))
        b = np.tile(b_common, (n, 1))
        d = np.full(n, d_common)
        model = DiscreteThermalModel(a=a, b=b, offset=d, ts_s=ts)
        self._check_model(model)
        return model

    # ------------------------------------------------------------------
    def _solve(self, phi: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Ridge-regularised least squares ``theta = argmin |phi theta - y|``."""
        scale = np.maximum(np.abs(phi).max(axis=0), 1e-12)
        phi_n = phi / scale
        gram = phi_n.T @ phi_n + self.ridge * phi.shape[0] * np.eye(phi.shape[1])
        theta = np.linalg.solve(gram, phi_n.T @ y)
        return theta / scale[:, None]

    @staticmethod
    def _check_model(model: DiscreteThermalModel) -> None:
        if not np.all(np.isfinite(model.a)) or not np.all(np.isfinite(model.b)):
            raise IdentificationError("identified model has non-finite entries")
        if model.spectral_radius() >= 1.0:
            raise IdentificationError(
                "identified model is unstable (rho=%.4f); excitation data is "
                "likely insufficient" % model.spectral_radius()
            )


def identify_default_model(
    spec: Optional[PlatformSpec] = None,
    config: Optional[SimulationConfig] = None,
    duration_s: float = 1050.0,
    staged: bool = False,
) -> DiscreteThermalModel:
    """Convenience: run the full PRBS campaign and identify a model."""
    experiment = PrbsExperiment(spec, config, duration_s=duration_s)
    sessions = experiment.run_all()
    identifier = SystemIdentifier()
    if staged:
        return identifier.identify_staged(sessions)
    return identifier.identify(sessions)
