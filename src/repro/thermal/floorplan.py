"""Builder for the Exynos-5410-like ground-truth thermal network.

The network is deliberately *higher order* than the 4-state model the DTPM
controller identifies: four big-core hotspot nodes (the only ones with
thermal sensors, as on the Odroid-XU+E), lumped little-cluster / GPU /
memory nodes, and a slow case/skin node that the fan cools.  The reduced
4x4 model of Eq. 5.3 therefore has to *approximate* this plant, which is
what produces the paper's ~3 % one-second prediction error.

Calibration targets (see DESIGN.md section 5):

* fully loaded big cluster without fan drives hotspots past 80 degC on a
  25 degC ambient (Fig. 1.1 "without fan" behaviour);
* the fan at full speed holds the same workload near 60-65 degC;
* case time constant of several hundred seconds, hotspot time constants of
  a few seconds (visible in the PRBS response of Fig. 4.8).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.thermal.rc_network import ThermalNode, ThermalRCNetwork

#: Names of the four hotspot nodes (one per big core), in sensor order.
BIG_CORE_NODES: Tuple[str, ...] = ("big0", "big1", "big2", "big3")
#: Name of the lumped little-cluster node.
LITTLE_NODE = "little"
#: Name of the GPU node.
GPU_NODE = "gpu"
#: Name of the memory node.
MEM_NODE = "mem"
#: Name of the case/heatsink node cooled by the fan.
CASE_NODE = "case"
#: Name of the board/PCB node behind the case (slow thermal mass).
BOARD_NODE = "board"

#: Default physical constants of the ground-truth plant.
DEFAULT_THERMAL_CONSTANTS: Dict[str, float] = {
    "big_core_capacitance": 0.9,      # J/K per hotspot lump (tau ~ 7 s)
    "little_capacitance": 1.6,
    "gpu_capacitance": 2.0,
    "mem_capacitance": 1.8,
    "case_capacitance": 1.5,          # small heatsink the fan blows on
    "board_capacitance": 40.0,        # PCB + connectors: the slow drift pole
    "g_big_core_case": 0.050,         # W/K per big core to case
    "g_big_core_adjacent": 0.050,     # W/K between grid-adjacent big cores
    "g_big_core_gpu": 0.008,          # W/K weak big-core <-> GPU spreading
    "g_little_case": 0.15,
    "g_gpu_case": 0.10,
    "g_mem_case": 0.12,
    "g_case_ambient": 0.036,          # W/K at ambient; fan multiplies this
    "g_case_board": 0.10,             # W/K conduction into the PCB
    "g_board_ambient": 0.028,         # W/K free convection off the PCB
    "case_cooling_nonlinearity": 0.008,  # 1/K improvement when the case is hot
}


def build_exynos_network(
    ambient_k: float,
    constants: Dict[str, float] = None,
) -> ThermalRCNetwork:
    """Construct the 8-node ground-truth network.

    Parameters
    ----------
    ambient_k:
        Ambient boundary temperature (K).
    constants:
        Optional overrides of :data:`DEFAULT_THERMAL_CONSTANTS` entries.
    """
    c = dict(DEFAULT_THERMAL_CONSTANTS)
    if constants:
        unknown = set(constants) - set(c)
        if unknown:
            raise ConfigurationError(
                "unknown thermal constants: %s" % sorted(unknown)
            )
        c.update(constants)

    nodes = [
        ThermalNode("big0", c["big_core_capacitance"]),
        ThermalNode("big1", c["big_core_capacitance"]),
        ThermalNode("big2", c["big_core_capacitance"]),
        ThermalNode("big3", c["big_core_capacitance"]),
        ThermalNode(LITTLE_NODE, c["little_capacitance"]),
        ThermalNode(GPU_NODE, c["gpu_capacitance"]),
        ThermalNode(MEM_NODE, c["mem_capacitance"]),
        ThermalNode(
            CASE_NODE,
            c["case_capacitance"],
            g_ambient_w_per_k=c["g_case_ambient"],
            cooled=True,
        ),
        ThermalNode(
            BOARD_NODE,
            c["board_capacitance"],
            g_ambient_w_per_k=c["g_board_ambient"],
        ),
    ]

    couplings = []
    # every on-die block spreads into the case
    for core in BIG_CORE_NODES:
        couplings.append((core, CASE_NODE, c["g_big_core_case"]))
    couplings.append((LITTLE_NODE, CASE_NODE, c["g_little_case"]))
    couplings.append((GPU_NODE, CASE_NODE, c["g_gpu_case"]))
    couplings.append((MEM_NODE, CASE_NODE, c["g_mem_case"]))
    couplings.append((CASE_NODE, BOARD_NODE, c["g_case_board"]))
    # big cores laid out as a 2x2 grid: lateral conduction between neighbours
    adjacency = (("big0", "big1"), ("big0", "big2"), ("big1", "big3"), ("big2", "big3"))
    for a, b in adjacency:
        couplings.append((a, b, c["g_big_core_adjacent"]))
    # weak spreading path from the big cluster to the adjacent GPU block
    for core in BIG_CORE_NODES:
        couplings.append((core, GPU_NODE, c["g_big_core_gpu"]))

    return ThermalRCNetwork(
        nodes,
        couplings,
        ambient_k,
        nonlinear_cooling_coeff=c["case_cooling_nonlinearity"],
    )


def node_powers(
    network: ThermalRCNetwork,
    big_core_powers_w: Sequence[float],
    little_w: float,
    gpu_w: float,
    mem_w: float,
) -> np.ndarray:
    """Assemble the node-power vector from per-resource powers.

    ``big_core_powers_w`` carries one entry per big core (dynamic power of
    that core plus its share of cluster leakage); the other resources are
    lumped single nodes.  The case node generates no heat.
    """
    if len(big_core_powers_w) != len(BIG_CORE_NODES):
        raise ConfigurationError(
            "expected %d big-core powers" % len(BIG_CORE_NODES)
        )
    vec = np.zeros(network.num_nodes)
    for name, watts in zip(BIG_CORE_NODES, big_core_powers_w):
        vec[network.index(name)] = watts
    vec[network.index(LITTLE_NODE)] = little_w
    vec[network.index(GPU_NODE)] = gpu_w
    vec[network.index(MEM_NODE)] = mem_w
    return vec


def hot_indices(network: ThermalRCNetwork) -> np.ndarray:
    """Node indices of the four sensed hotspot (big-core) nodes.

    The fan threshold controller and the fused substep kernels reduce
    over these to get each lane's maximum core temperature.
    """
    return np.array([network.index(n) for n in BIG_CORE_NODES])


def hotspot_temperatures_k(network: ThermalRCNetwork) -> np.ndarray:
    """True temperatures (K) of the four sensed hotspot nodes."""
    temps = network.temperatures_k
    return np.array([temps[network.index(n)] for n in BIG_CORE_NODES])


def resource_temperatures_k(network: ThermalRCNetwork) -> Dict[str, float]:
    """True temperatures of every named block (for ground-truth power)."""
    return {
        "big": float(np.mean(hotspot_temperatures_k(network))),
        "little": network.temperature_k(LITTLE_NODE),
        "gpu": network.temperature_k(GPU_NODE),
        "mem": network.temperature_k(MEM_NODE),
        "case": network.temperature_k(CASE_NODE),
        "board": network.temperature_k(BOARD_NODE),
    }
