"""Discrete-time LTI thermal model (Eqs. 4.4 and 4.5).

``T[k+1] = A T[k] + B P[k] + d``

with ``T`` the four hotspot temperatures and ``P`` the four resource powers
(Eq. 5.3 layout).  The affine term ``d`` absorbs the ambient boundary
inflow: the paper writes the model without it because its derivation starts
from deviation variables; estimating ``d`` alongside (A, B) is the
equivalent formulation when working with absolute sensor temperatures.
Setting ``d = 0`` recovers the paper's exact equations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import ModelError


@dataclass(frozen=True)
class DiscreteThermalModel:
    """Identified state-space thermal model.

    Attributes
    ----------
    a:
        State matrix (N x N) -- dependence of future core temperatures on
        current ones (own and neighbouring cores).
    b:
        Input matrix (N x M) -- dependence on the resource power vector.
    offset:
        Affine term (N,) absorbing the ambient inflow.
    ts_s:
        Sampling period the model was identified at.
    """

    a: np.ndarray
    b: np.ndarray
    offset: Optional[np.ndarray] = None
    ts_s: float = 0.1

    def __post_init__(self) -> None:
        a = np.atleast_2d(np.asarray(self.a, dtype=float))
        b = np.atleast_2d(np.asarray(self.b, dtype=float))
        if a.shape[0] != a.shape[1]:
            raise ModelError("A must be square, got %s" % (a.shape,))
        if b.shape[0] != a.shape[0]:
            raise ModelError(
                "B rows (%d) must match A size (%d)" % (b.shape[0], a.shape[0])
            )
        offset = self.offset
        if offset is None:
            offset = np.zeros(a.shape[0])
        offset = np.asarray(offset, dtype=float).reshape(-1)
        if offset.shape[0] != a.shape[0]:
            raise ModelError("offset length must match A size")
        if self.ts_s <= 0:
            raise ModelError("sampling period must be positive")
        object.__setattr__(self, "a", a)
        object.__setattr__(self, "b", b)
        object.__setattr__(self, "offset", offset)

    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        """Number of thermal states (sensed hotspots)."""
        return self.a.shape[0]

    @property
    def num_inputs(self) -> int:
        """Number of power inputs."""
        return self.b.shape[1]

    def spectral_radius(self) -> float:
        """Largest |eigenvalue| of A; < 1 means the model is stable."""
        return float(np.max(np.abs(np.linalg.eigvals(self.a))))

    def is_stable(self) -> bool:
        """Whether the identified model is asymptotically stable."""
        return self.spectral_radius() < 1.0

    def dc_gain(self) -> np.ndarray:
        """Steady-state temperature rise per watt: ``(I - A)^-1 B``."""
        eye = np.eye(self.num_states)
        return np.linalg.solve(eye - self.a, self.b)

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def predict_next(self, temps: Sequence[float], powers: Sequence[float]) -> np.ndarray:
        """One-step prediction ``T[k+1]`` (Eq. 4.4)."""
        t = self._check_state(temps)
        p = self._check_input(powers)
        return self.a @ t + self.b @ p + self.offset

    def predict_next_batch(
        self, temps: np.ndarray, powers: np.ndarray
    ) -> np.ndarray:
        """One-step prediction for ``B`` independent states at once.

        ``temps`` has shape (B, N) and ``powers`` (B, M); returns (B, N).
        The contraction runs over the fixed state/input axes only (einsum,
        no BLAS), so row ``b`` equals ``predict_next(temps[b], powers[b])``
        for every batch size -- the batched controller evaluation can be
        checked lane-for-lane against the scalar one.
        """
        t = np.atleast_2d(np.asarray(temps, dtype=float))
        p = np.atleast_2d(np.asarray(powers, dtype=float))
        if t.shape[1] != self.num_states:
            raise ModelError(
                "expected %d temperature columns, got %d"
                % (self.num_states, t.shape[1])
            )
        if p.shape[1] != self.num_inputs:
            raise ModelError(
                "expected %d power columns, got %d"
                % (self.num_inputs, p.shape[1])
            )
        if t.shape[0] != p.shape[0]:
            raise ModelError(
                "batch sizes differ: %d temps vs %d powers"
                % (t.shape[0], p.shape[0])
            )
        return (
            np.einsum("ij,bj->bi", self.a, t)
            + np.einsum("ij,bj->bi", self.b, p)
            + self.offset
        )

    def predict_horizon(
        self,
        temps: Sequence[float],
        power_trajectory: np.ndarray,
    ) -> np.ndarray:
        """Multi-step prediction along a power trajectory (Eq. 4.5).

        ``power_trajectory`` has shape (n, M): the power vector applied over
        each of the next n intervals.  Returns the predicted temperatures
        after each interval, shape (n, N).
        """
        traj = np.atleast_2d(np.asarray(power_trajectory, dtype=float))
        if traj.shape[1] != self.num_inputs:
            raise ModelError(
                "power trajectory must have %d columns" % self.num_inputs
            )
        t = self._check_state(temps)
        out = np.empty((traj.shape[0], self.num_states))
        for i in range(traj.shape[0]):
            t = self.a @ t + self.b @ traj[i] + self.offset
            out[i] = t
        return out

    def predict_n_constant(
        self, temps: Sequence[float], powers: Sequence[float], n: int
    ) -> np.ndarray:
        """``T[k+n]`` assuming the power vector stays constant (Eq. 4.5)."""
        a_n, m_n, s_n = self.horizon_matrices(n)
        t = self._check_state(temps)
        p = self._check_input(powers)
        return a_n @ t + m_n @ p + s_n @ self.offset

    def horizon_matrices(self, n: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(A^n, sum_i A^i B, sum_i A^i) for an n-step constant-power window.

        These are the matrices of Eq. 4.5 specialised to a constant power
        vector; the power-budget computation (Eq. 5.5 generalised to an
        n-interval window) consumes them directly.
        """
        if n < 1:
            raise ModelError("horizon must be >= 1 step")
        a_pow = np.eye(self.num_states)
        s_n = np.zeros_like(self.a)
        for _ in range(n):
            s_n = s_n + a_pow
            a_pow = self.a @ a_pow
        m_n = s_n @ self.b
        return a_pow, m_n, s_n

    # ------------------------------------------------------------------
    def _check_state(self, temps: Sequence[float]) -> np.ndarray:
        t = np.asarray(temps, dtype=float).reshape(-1)
        if t.shape[0] != self.num_states:
            raise ModelError(
                "expected %d temperatures, got %d" % (self.num_states, t.shape[0])
            )
        return t

    def _check_input(self, powers: Sequence[float]) -> np.ndarray:
        p = np.asarray(powers, dtype=float).reshape(-1)
        if p.shape[0] != self.num_inputs:
            raise ModelError(
                "expected %d powers, got %d" % (self.num_inputs, p.shape[0])
            )
        return p
