"""Pseudo-random binary sequence (PRBS) generation for system identification.

Section 4.2.1: "we oscillated the frequency of big cores between the
minimum and maximum values using a pseudo-random bit sequence (PRBS) ...
The PRBS input is generated to cover a frequency spectrum, which is much
broader than that excited by an arbitrary application."

A maximal-length LFSR produces the classic PRBS-n sequences; each chip is
held for a configurable dwell so the excitation bandwidth matches the
thermal dynamics (seconds) rather than the control period (100 ms).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError

#: Feedback tap positions (1-based, including the output bit) for
#: maximal-length LFSRs of common orders.
_TAPS = {
    4: (4, 3),
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    9: (9, 5),
    10: (10, 7),
    11: (11, 9),
}


def prbs_bits(order: int, length: int = None, seed: int = 1) -> np.ndarray:
    """Generate a PRBS-``order`` bit sequence ({0, 1} valued).

    Parameters
    ----------
    order:
        LFSR register length; the sequence period is ``2**order - 1``.
    length:
        Number of bits to emit (defaults to one full period).
    seed:
        Non-zero initial register state.
    """
    if order not in _TAPS:
        raise ConfigurationError(
            "unsupported PRBS order %d (supported: %s)"
            % (order, sorted(_TAPS))
        )
    period = 2 ** order - 1
    if length is None:
        length = period
    if length < 1:
        raise ConfigurationError("length must be >= 1")
    state = seed % (2 ** order)
    if state == 0:
        state = 1
    # Right-shifting Fibonacci LFSR: the output is the LSB and the feedback
    # bit (XOR of the reflected tap positions) enters at the MSB.
    tap_shifts = [order - tap for tap in _TAPS[order]]
    bits = np.empty(length, dtype=np.int8)
    for i in range(length):
        bits[i] = state & 1
        feedback = 0
        for shift in tap_shifts:
            feedback ^= (state >> shift) & 1
        state = (state >> 1) | (feedback << (order - 1))
    return bits


def prbs_levels(order: int, length: int = None, seed: int = 1) -> np.ndarray:
    """PRBS sequence mapped to {-1, +1}."""
    return prbs_bits(order, length, seed).astype(np.int8) * 2 - 1


@dataclass(frozen=True)
class PrbsSignal:
    """A two-level PRBS excitation with a chip dwell time.

    ``low`` / ``high`` are the two actuator levels (e.g. f_min and f_max of
    the big cluster); ``chip_s`` is how long each PRBS bit is held.
    """

    low: float
    high: float
    chip_s: float
    order: int = 9
    seed: int = 1

    def __post_init__(self) -> None:
        if self.chip_s <= 0:
            raise ConfigurationError("chip dwell must be positive")
        if self.high <= self.low:
            raise ConfigurationError("high level must exceed low level")

    def value_at(self, time_s: float) -> float:
        """Actuator level at ``time_s`` (sequence repeats past one period)."""
        period = 2 ** self.order - 1
        chip = int(time_s / self.chip_s) % period
        bit = prbs_bits(self.order, chip + 1, self.seed)[chip]
        return self.high if bit else self.low

    def sample(self, duration_s: float, sample_period_s: float) -> np.ndarray:
        """The signal sampled on a regular grid over ``duration_s``."""
        if sample_period_s <= 0:
            raise ConfigurationError("sample period must be positive")
        n = int(round(duration_s / sample_period_s))
        bits = prbs_bits(self.order, seed=self.seed)
        period = bits.size
        out = np.empty(n)
        for i in range(n):
            chip = int(i * sample_period_s / self.chip_s) % period
            out[i] = self.high if bits[chip] else self.low
        return out


def balance(bits: Sequence[int]) -> float:
    """Fraction of ones in a bit sequence (maximal PRBS: ~0.5 + 1/2N)."""
    arr = np.asarray(bits)
    if arr.size == 0:
        raise ConfigurationError("empty sequence")
    return float(np.mean(arr))
