"""Versioned JSON wire schema for :class:`RunSpec` and :class:`ExperimentMatrix`.

Until now specs were constructor-only dataclasses: every consumer had to
import the package and build them in-process.  This module gives them a
canonical, versioned rendering (``"schema": 1``) that travels as plain
JSON -- the contract of the evaluation service (:mod:`repro.service`),
the CLI's grid construction and any out-of-process client.

The round trip is **lossless by value**: ``spec_from_wire(spec_to_wire(s))``
reconstructs a spec that compares equal to ``s`` field for field, so its
content key (:func:`repro.runner.spec.spec_key`) is *identical* -- wire
transport never invalidates a cache entry.  Workloads that match a
registered Table-6.4 benchmark by value compress to their name on the
wire (and resolve back through :func:`get_benchmark`); custom traces
travel inline with their phase lists.

Decoding is strict: unknown keys, missing required fields and malformed
structures raise :class:`~repro.errors.WireError` (a
:class:`ConfigurationError`) with the offending path in the message, so
the service can answer malformed payloads with a structured 400 instead
of a stack trace.  Domain validation (positive durations, known modes,
guard-band applicability) stays where it always was -- in the dataclass
``__post_init__`` -- and surfaces as :class:`ConfigurationError` too.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Iterable, Optional, Tuple

from repro.config import SimulationConfig
from repro.errors import WireError, WorkloadError
from repro.platform.specs import (
    CoreSpec,
    LeakageSpec,
    OppTable,
    PlatformSpec,
    Resource,
    VoltageCurve,
)
from repro.runner.spec import ExperimentMatrix, RunSpec
from repro.sim.engine import ThermalMode
from repro.workloads.benchmarks import get_benchmark
from repro.workloads.trace import WorkloadPhase, WorkloadTrace

#: Version of the wire rendering this module reads and writes.  Bump it
#: when a field changes meaning; decoding rejects any other value, so a
#: client and server never silently disagree about a payload's shape.
WIRE_SCHEMA = 1

_MODES: Dict[str, ThermalMode] = {m.value: m for m in ThermalMode}
_RESOURCES: Dict[str, Resource] = {r.value: r for r in Resource}


def _require_mapping(obj: Any, where: str) -> dict:
    if not isinstance(obj, dict):
        raise WireError(
            "%s must be a JSON object, got %s" % (where, type(obj).__name__)
        )
    return obj


def _require_list(obj: Any, where: str) -> list:
    if not isinstance(obj, (list, tuple)):
        raise WireError(
            "%s must be a JSON array, got %s" % (where, type(obj).__name__)
        )
    return list(obj)


def _reject_unknown(payload: dict, known: Iterable[str], where: str) -> None:
    unknown = sorted(set(payload) - set(known))
    if unknown:
        raise WireError(
            "%s has unknown field(s) %s (schema %d knows %s)"
            % (where, ", ".join(unknown), WIRE_SCHEMA, ", ".join(sorted(known)))
        )


def _mode_from_wire(obj: Any, where: str) -> ThermalMode:
    try:
        return _MODES[obj]
    except (KeyError, TypeError):
        raise WireError(
            "%s must be one of %s, got %r"
            % (where, ", ".join(sorted(_MODES)), obj)
        ) from None


def _dataclass_defaults(cls: type) -> Dict[str, object]:
    out = {}
    for f in dataclasses.fields(cls):
        if f.default is not dataclasses.MISSING:
            out[f.name] = f.default
    return out


def _scalars_to_wire(obj: Any) -> dict:
    """Flat dataclass (scalar fields only) -> plain field dict."""
    return {f.name: getattr(obj, f.name) for f in dataclasses.fields(obj)}


def _scalars_from_wire(cls: type, obj: Any, where: str) -> Any:
    payload = _require_mapping(obj, where)
    names = [f.name for f in dataclasses.fields(cls)]
    _reject_unknown(payload, names, where)
    required = [
        f.name
        for f in dataclasses.fields(cls)
        if f.default is dataclasses.MISSING
        and f.default_factory is dataclasses.MISSING
    ]
    missing = sorted(set(required) - set(payload))
    if missing:
        raise WireError(
            "%s is missing required field(s) %s" % (where, ", ".join(missing))
        )
    return cls(**payload)


# ---------------------------------------------------------------------------
# workloads
# ---------------------------------------------------------------------------
_WORKLOAD_FIELDS = [f.name for f in dataclasses.fields(WorkloadTrace)]


def workload_to_wire(workload: WorkloadTrace) -> Any:
    """A workload as wire JSON: its name when it *is* that benchmark.

    Registered benchmarks compress to their name (resolved back through
    :func:`get_benchmark`, which returns an equal trace, so content keys
    survive the round trip); anything else travels inline.
    """
    try:
        if get_benchmark(workload.name) == workload:
            return workload.name
    except WorkloadError:
        pass
    payload = _scalars_to_wire(workload)
    payload["phases"] = [_scalars_to_wire(p) for p in workload.phases]
    return payload


def workload_from_wire(obj: Any, where: str = "workload") -> WorkloadTrace:
    """Resolve a wire workload: a benchmark name or an inline trace."""
    if isinstance(obj, str):
        try:
            return get_benchmark(obj)
        except WorkloadError as exc:
            raise WireError("%s: %s" % (where, exc)) from None
    payload = dict(_require_mapping(obj, where))
    _reject_unknown(payload, _WORKLOAD_FIELDS, where)
    phases = tuple(
        _scalars_from_wire(
            WorkloadPhase, p, "%s.phases[%d]" % (where, i)
        )
        for i, p in enumerate(_require_list(
            payload.pop("phases", []), where + ".phases"
        ))
    )
    missing = sorted(
        {"name", "category", "benchmark_type", "threads",
         "total_work_gcycles"} - set(payload)
    )
    if missing:
        raise WireError(
            "%s is missing required field(s) %s" % (where, ", ".join(missing))
        )
    return WorkloadTrace(phases=phases, **payload)


# ---------------------------------------------------------------------------
# configuration and platform
# ---------------------------------------------------------------------------
def config_to_wire(config: Optional[SimulationConfig]) -> Optional[dict]:
    return None if config is None else _scalars_to_wire(config)


def config_from_wire(obj: Any, where: str = "config") -> Optional[SimulationConfig]:
    if obj is None:
        return None
    return _scalars_from_wire(SimulationConfig, obj, where)


def _opp_to_wire(table: OppTable) -> dict:
    return {
        "name": table.name,
        "frequencies_hz": list(table.frequencies_hz),
        "voltage_curve": _scalars_to_wire(table.voltage_curve),
    }


def _opp_from_wire(obj: Any, where: str) -> OppTable:
    payload = _require_mapping(obj, where)
    _reject_unknown(
        payload, ("name", "frequencies_hz", "voltage_curve"), where
    )
    try:
        name = payload["name"]
        freqs = payload["frequencies_hz"]
        curve = payload["voltage_curve"]
    except KeyError as exc:
        raise WireError("%s is missing field %s" % (where, exc)) from None
    return OppTable(
        name=name,
        frequencies_hz=tuple(_require_list(freqs, where + ".frequencies_hz")),
        voltage_curve=_scalars_from_wire(
            VoltageCurve, curve, where + ".voltage_curve"
        ),
    )


def platform_to_wire(platform: Optional[PlatformSpec]) -> Optional[dict]:
    if platform is None:
        return None
    return {
        "big_opp": _opp_to_wire(platform.big_opp),
        "little_opp": _opp_to_wire(platform.little_opp),
        "gpu_opp": _opp_to_wire(platform.gpu_opp),
        "big_core": _scalars_to_wire(platform.big_core),
        "little_core": _scalars_to_wire(platform.little_core),
        "gpu_capacitance_f": platform.gpu_capacitance_f,
        "mem_full_traffic_w": platform.mem_full_traffic_w,
        "mem_vdd": platform.mem_vdd,
        "leakage": {
            resource.value: _scalars_to_wire(spec)
            for resource, spec in sorted(
                platform.leakage.items(), key=lambda kv: kv[0].value
            )
        },
        "platform_static_power_w": platform.platform_static_power_w,
        "fan_power_w": list(platform.fan_power_w),
        "fan_conductance_gain": list(platform.fan_conductance_gain),
        "cores_per_cluster": platform.cores_per_cluster,
    }


_PLATFORM_FIELDS = [f.name for f in dataclasses.fields(PlatformSpec)]


def platform_from_wire(obj: Any, where: str = "platform") -> Optional[PlatformSpec]:
    if obj is None:
        return None
    payload = dict(_require_mapping(obj, where))
    _reject_unknown(payload, _PLATFORM_FIELDS, where)
    kwargs = {}
    for name in ("big_opp", "little_opp", "gpu_opp"):
        if name in payload:
            kwargs[name] = _opp_from_wire(
                payload.pop(name), "%s.%s" % (where, name)
            )
    for name in ("big_core", "little_core"):
        if name in payload:
            kwargs[name] = _scalars_from_wire(
                CoreSpec, payload.pop(name), "%s.%s" % (where, name)
            )
    if "leakage" in payload:
        leakage = {}
        for key, value in _require_mapping(
            payload.pop("leakage"), where + ".leakage"
        ).items():
            if key not in _RESOURCES:
                raise WireError(
                    "%s.leakage key must be one of %s, got %r"
                    % (where, ", ".join(sorted(_RESOURCES)), key)
                )
            leakage[_RESOURCES[key]] = _scalars_from_wire(
                LeakageSpec, value, "%s.leakage[%s]" % (where, key)
            )
        kwargs["leakage"] = leakage
    for name in ("fan_power_w", "fan_conductance_gain"):
        if name in payload:
            kwargs[name] = tuple(
                _require_list(payload.pop(name), "%s.%s" % (where, name))
            )
    kwargs.update(payload)
    return PlatformSpec(**kwargs)


# ---------------------------------------------------------------------------
# RunSpec
# ---------------------------------------------------------------------------
_SPEC_FIELDS = (
    "schema", "workload", "mode", "config", "platform", "guard_band_k",
    "warm_start_c", "max_duration_s", "seed", "history", "idle_gap_s",
    "history_modes",
)
_SPEC_DEFAULTS = _dataclass_defaults(RunSpec)


def _check_schema(payload: dict, where: str) -> None:
    if "schema" not in payload:
        raise WireError(
            '%s is missing the "schema" version field (current: %d)'
            % (where, WIRE_SCHEMA)
        )
    if payload["schema"] != WIRE_SCHEMA:
        raise WireError(
            "%s has unsupported schema %r (this build speaks %d)"
            % (where, payload["schema"], WIRE_SCHEMA)
        )


def spec_to_wire(spec: RunSpec) -> dict:
    """The canonical ``"schema": 1`` JSON rendering of one spec."""
    return {
        "schema": WIRE_SCHEMA,
        "workload": workload_to_wire(spec.workload),
        "mode": spec.mode.value,
        "config": config_to_wire(spec.config),
        "platform": platform_to_wire(spec.platform),
        "guard_band_k": spec.guard_band_k,
        "warm_start_c": spec.warm_start_c,
        "max_duration_s": spec.max_duration_s,
        "seed": spec.seed,
        "history": [workload_to_wire(w) for w in spec.history],
        "idle_gap_s": spec.idle_gap_s,
        "history_modes": [m.value for m in spec.history_modes],
    }


def spec_from_wire(obj: Any, where: str = "spec") -> RunSpec:
    """Decode one wire spec; the inverse of :func:`spec_to_wire`.

    Only ``workload`` and ``mode`` are required beyond ``schema``; every
    omitted field takes the :class:`RunSpec` default, so hand-written
    payloads stay small.
    """
    payload = _require_mapping(obj, where)
    _check_schema(payload, where)
    _reject_unknown(payload, _SPEC_FIELDS, where)
    for name in ("workload", "mode"):
        if name not in payload:
            raise WireError(
                "%s is missing required field %r" % (where, name)
            )

    def default(name: str) -> Any:
        return payload.get(name, _SPEC_DEFAULTS[name])

    return RunSpec(
        workload=workload_from_wire(payload["workload"], where + ".workload"),
        mode=_mode_from_wire(payload["mode"], where + ".mode"),
        config=config_from_wire(default("config"), where + ".config"),
        platform=platform_from_wire(
            default("platform"), where + ".platform"
        ),
        guard_band_k=default("guard_band_k"),
        warm_start_c=default("warm_start_c"),
        max_duration_s=default("max_duration_s"),
        seed=default("seed"),
        history=tuple(
            workload_from_wire(w, "%s.history[%d]" % (where, i))
            for i, w in enumerate(
                _require_list(default("history"), where + ".history")
            )
        ),
        idle_gap_s=default("idle_gap_s"),
        history_modes=tuple(
            _mode_from_wire(m, "%s.history_modes[%d]" % (where, i))
            for i, m in enumerate(
                _require_list(
                    default("history_modes"), where + ".history_modes"
                )
            )
        ),
    )


# ---------------------------------------------------------------------------
# ExperimentMatrix
# ---------------------------------------------------------------------------
_MATRIX_FIELDS = (
    "schema", "workloads", "modes", "configs", "guard_bands_k", "platform",
    "warm_start_c", "max_duration_s", "base_seed", "schedules", "idle_gap_s",
)
_MATRIX_DEFAULTS = _dataclass_defaults(ExperimentMatrix)


def _schedule_entry_to_wire(entry: Any) -> Any:
    if isinstance(entry, tuple):
        workload, mode = entry
        return {"workload": workload_to_wire(workload), "mode": mode.value}
    return workload_to_wire(entry)


def _schedule_entry_from_wire(obj: Any, where: str) -> Any:
    if isinstance(obj, dict) and set(obj) == {"workload", "mode"}:
        return (
            workload_from_wire(obj["workload"], where + ".workload"),
            _mode_from_wire(obj["mode"], where + ".mode"),
        )
    return workload_from_wire(obj, where)


def matrix_to_wire(matrix: ExperimentMatrix) -> dict:
    """The canonical ``"schema": 1`` JSON rendering of one grid."""
    return {
        "schema": WIRE_SCHEMA,
        "workloads": [workload_to_wire(w) for w in matrix.workloads],
        "modes": [m.value for m in matrix.modes],
        "configs": [config_to_wire(c) for c in matrix.configs],
        "guard_bands_k": list(matrix.guard_bands_k),
        "platform": platform_to_wire(matrix.platform),
        "warm_start_c": matrix.warm_start_c,
        "max_duration_s": matrix.max_duration_s,
        "base_seed": matrix.base_seed,
        "schedules": [
            [_schedule_entry_to_wire(entry) for entry in schedule]
            for schedule in matrix.schedules
        ],
        "idle_gap_s": matrix.idle_gap_s,
    }


def matrix_from_wire(obj: Any, where: str = "matrix") -> ExperimentMatrix:
    """Decode one wire grid; the inverse of :func:`matrix_to_wire`."""
    payload = _require_mapping(obj, where)
    _check_schema(payload, where)
    _reject_unknown(payload, _MATRIX_FIELDS, where)

    def default(name: str) -> Any:
        return payload.get(name, _MATRIX_DEFAULTS[name])

    modes: Tuple[ThermalMode, ...] = _MATRIX_DEFAULTS["modes"]
    if "modes" in payload:
        modes = tuple(
            _mode_from_wire(m, "%s.modes[%d]" % (where, i))
            for i, m in enumerate(
                _require_list(payload["modes"], where + ".modes")
            )
        )
    configs: Tuple[Optional[SimulationConfig], ...] = (None,)
    if "configs" in payload:
        configs = tuple(
            config_from_wire(c, "%s.configs[%d]" % (where, i))
            for i, c in enumerate(
                _require_list(payload["configs"], where + ".configs")
            )
        )
    return ExperimentMatrix(
        workloads=tuple(
            workload_from_wire(w, "%s.workloads[%d]" % (where, i))
            for i, w in enumerate(
                _require_list(default("workloads"), where + ".workloads")
            )
        ),
        modes=modes,
        configs=configs,
        guard_bands_k=tuple(
            _require_list(default("guard_bands_k"), where + ".guard_bands_k")
        ),
        platform=platform_from_wire(default("platform"), where + ".platform"),
        warm_start_c=default("warm_start_c"),
        max_duration_s=default("max_duration_s"),
        base_seed=default("base_seed"),
        schedules=tuple(
            tuple(
                _schedule_entry_from_wire(
                    entry, "%s.schedules[%d][%d]" % (where, i, j)
                )
                for j, entry in enumerate(
                    _require_list(
                        schedule, "%s.schedules[%d]" % (where, i)
                    )
                )
            )
            for i, schedule in enumerate(
                _require_list(default("schedules"), where + ".schedules")
            )
        ),
        idle_gap_s=default("idle_gap_s"),
    )
