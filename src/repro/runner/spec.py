"""Declarative experiment descriptions and their stable identities.

A :class:`RunSpec` is everything needed to reproduce one closed-loop
simulation: the workload, the Section-6.2 thermal configuration, the
simulation knobs and the platform.  An :class:`ExperimentMatrix` is a
declarative grid over those axes -- the shape behind every figure, table
and ablation of the paper's evaluation -- and expands to an ordered list
of specs with deterministic per-spec seeds.

Both are frozen and hashable into a *stable content key* (:func:`spec_key`)
so results can be cached on disk across processes: two specs with the same
key describe byte-identical experiments, and the key additionally folds in
a fingerprint of the controller's identified models
(:func:`model_fingerprint`) because a DTPM run is only reproducible given
the same (A, B) matrices and leakage fits.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.platform.specs import PlatformSpec
from repro.sim.engine import ThermalMode
from repro.sim.models import ModelBundle
from repro.sim.scenario import resolve_schedule_entry
from repro.workloads.benchmarks import get_benchmark
from repro.workloads.trace import WorkloadTrace

#: Bumped whenever the simulation semantics behind a cached result change
#: in a way the spec itself cannot express (trace columns, engine fixes).
#: 2: the plant went batch-vectorised (einsum/ufunc evaluation replaced
#: per-run BLAS/scalar calls), which moves results by ~1 ulp.
#: 3: control intervals hold ground-truth power for their whole duration
#: (zero-order hold at the interval-entry temperatures) so the fused
#: substep kernels can integrate a whole interval per propagator pass;
#: per-substep power re-evaluation survives only on the scenario
#: idle-cooldown path.
CACHE_FORMAT = 3


def _canonical(obj: Any) -> Any:
    """Convert a spec-graph object to a canonical JSON-able structure.

    Dataclasses become ``{"__class__": name, **fields}``, enums their value,
    numpy scalars/arrays plain python, and dict keys are stringified so the
    final ``json.dumps(..., sort_keys=True)`` is deterministic.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return float(obj)
    if isinstance(obj, enum.Enum):
        return str(obj.value)
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return [_canonical(v) for v in obj.tolist()]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out = {"__class__": type(obj).__name__}
        for f in dataclasses.fields(obj):
            out[f.name] = _canonical(getattr(obj, f.name))
        # fields introduced after entries were already cached on disk are
        # omitted at their default value, so pre-existing keys (and the v1
        # artifacts stored under them) stay reachable
        for name, default in getattr(
            type(obj), "CANONICAL_OMIT_DEFAULTS", {}
        ).items():
            if name in out and out[name] == _canonical(default):
                del out[name]
        return out
    if isinstance(obj, dict):
        return {str(_canonical(k)): _canonical(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    raise ConfigurationError(
        "cannot canonicalise %r for hashing" % type(obj).__name__
    )


def canonical_json(obj: Any) -> str:
    """Deterministic JSON rendering of a canonicalised object graph."""
    return json.dumps(
        _canonical(obj), sort_keys=True, separators=(",", ":")
    )


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def model_fingerprint(models: Optional[ModelBundle]) -> Optional[str]:
    """Stable hash of the identified models a DTPM run depends on.

    Covers the thermal state-space matrices and the characterized leakage
    fits.  The dynamic alpha*C estimators are excluded deliberately: the
    governor re-instantiates them fresh for every run, so they are part of
    the execution, not of the inputs.
    """
    if models is None:
        return None
    thermal = models.thermal
    material = {
        "a": thermal.a,
        "b": thermal.b,
        "offset": thermal.offset,
        "ts_s": thermal.ts_s,
        "leakage": {
            str(resource.value): model.leakage
            for resource, model in models.power.models.items()
        },
    }
    return _digest(canonical_json(material))


@dataclass(frozen=True)
class RunSpec:
    """Complete, immutable description of one closed-loop simulation.

    Every field feeds the execution; nothing presentational lives here, so
    equal specs always produce byte-identical :class:`RunResult` payloads
    (given the same models) and may share one cache entry.

    A spec with a non-empty ``history`` describes one position of a
    *scenario schedule*: ``workload`` runs on a device that just executed
    the ``history`` workloads back to back (thermal state carried across
    runs by :class:`~repro.sim.scenario.ScenarioRunner`, with
    ``idle_gap_s`` of near-idle cooling before each carried run).  The
    spec's result is that of the **final** workload; :meth:`chain` names
    the per-position specs of the whole sequence.  ``warm_start_c`` is
    the device state before the first run of the sequence, and ``seed``
    is the scenario's base seed (position ``i`` runs with ``seed + i``).

    ``history_modes`` optionally gives each history position its own
    thermal configuration (a day under the stock governor before a
    DTPM-managed app); empty means every position runs under ``mode``.
    A ``history_modes`` equal to ``mode`` everywhere normalises to empty,
    so uniform schedules keep one canonical identity (and their
    pre-existing cache keys).
    """

    workload: WorkloadTrace
    mode: ThermalMode
    config: Optional[SimulationConfig] = None
    platform: Optional[PlatformSpec] = None
    #: Override of the DTPM predictor's act-early margin (DTPM mode only).
    guard_band_k: Optional[float] = None
    warm_start_c: Optional[float] = 52.0
    max_duration_s: float = 900.0
    #: Overrides ``config.seed`` when set (the matrix derives these).
    seed: Optional[int] = None
    #: Workloads that ran before this one on the same device (a scenario).
    history: Tuple[WorkloadTrace, ...] = ()
    #: Near-idle cooling gap before each carried run of a scenario.
    idle_gap_s: float = 0.0
    #: Per-position thermal modes of ``history`` (empty: all run ``mode``).
    history_modes: Tuple[ThermalMode, ...] = ()

    #: Omitted from the content key at their defaults so keys (and cached
    #: artifacts) from before the scenario fields existed stay valid.
    CANONICAL_OMIT_DEFAULTS = {
        "history": (),
        "idle_gap_s": 0.0,
        "history_modes": (),
    }

    def __post_init__(self) -> None:
        if not isinstance(self.workload, WorkloadTrace):
            raise ConfigurationError(
                "workload must be a WorkloadTrace (got %r)"
                % type(self.workload).__name__
            )
        if not isinstance(self.mode, ThermalMode):
            raise ConfigurationError(
                "mode must be a ThermalMode (got %r)" % (self.mode,)
            )
        if self.max_duration_s <= 0:
            raise ConfigurationError("max_duration_s must be positive")
        object.__setattr__(self, "history", tuple(self.history))
        for w in self.history:
            if not isinstance(w, WorkloadTrace):
                raise ConfigurationError(
                    "history entries must be WorkloadTraces (got %r)"
                    % type(w).__name__
                )
        object.__setattr__(self, "history_modes", tuple(self.history_modes))
        for m in self.history_modes:
            if not isinstance(m, ThermalMode):
                raise ConfigurationError(
                    "history_modes entries must be ThermalModes (got %r)"
                    % (m,)
                )
        if self.history_modes:
            if len(self.history_modes) != len(self.history):
                raise ConfigurationError(
                    "history_modes names %d modes for %d history workloads"
                    % (len(self.history_modes), len(self.history))
                )
            # a uniform schedule has one canonical identity: no mode list
            if all(m is self.mode for m in self.history_modes):
                object.__setattr__(self, "history_modes", ())
        if self.guard_band_k is not None and not (
            self.mode is ThermalMode.DTPM
            or ThermalMode.DTPM in self.history_modes
        ):
            raise ConfigurationError(
                "guard_band_k only applies to DTPM runs (mode is %s)"
                % self.mode
            )
        if self.idle_gap_s < 0:
            raise ConfigurationError("idle_gap_s must be >= 0")
        if self.idle_gap_s and not self.history:
            raise ConfigurationError(
                "idle_gap_s only applies to scenario specs "
                "(this spec has an empty history)"
            )

    @classmethod
    def for_benchmark(cls, name: str, mode: ThermalMode, **kwargs: Any) -> "RunSpec":
        """Spec for a Table-6.4 benchmark looked up by name."""
        return cls(workload=get_benchmark(name), mode=mode, **kwargs)

    def to_dict(self) -> dict:
        """Canonical versioned (``"schema": 1``) JSON-able rendering.

        The wire contract of the evaluation service and the CLI:
        ``RunSpec.from_dict(spec.to_dict())`` reconstructs an equal spec,
        so :func:`spec_key` -- and therefore every cached artifact --
        survives the round trip unchanged.  See :mod:`repro.runner.wire`.
        """
        from repro.runner.wire import spec_to_wire

        return spec_to_wire(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "RunSpec":
        """Decode a :meth:`to_dict` payload (strict; versioned).

        Raises :class:`~repro.errors.WireError` on structural problems
        (unknown fields, missing ``schema``) and
        :class:`ConfigurationError` on domain violations.
        """
        from repro.runner.wire import spec_from_wire

        return spec_from_wire(payload)

    @property
    def needs_models(self) -> bool:
        """Whether executing this spec requires an identified ModelBundle."""
        return (
            self.mode is ThermalMode.DTPM
            or ThermalMode.DTPM in self.history_modes
        )

    @property
    def position(self) -> int:
        """This spec's 0-based position along its scenario chain.

        0 for plain specs; scheduled specs sit ``len(history)`` runs into
        their sequence.  The suite analytics layer groups per-position
        reductions (stability/power deltas along a diurnal chain) by this
        value.
        """
        return len(self.history)

    @property
    def schedule(self) -> Tuple[WorkloadTrace, ...]:
        """The full workload sequence this spec's execution simulates."""
        return self.history + (self.workload,)

    @property
    def schedule_modes(self) -> Tuple[ThermalMode, ...]:
        """Per-position thermal modes of the full schedule."""
        if self.history_modes:
            return self.history_modes + (self.mode,)
        return (self.mode,) * (len(self.history) + 1)

    def chain(self) -> List["RunSpec"]:
        """Per-position specs of the schedule, last one being ``self``.

        Executing the last position simulates every earlier one on the
        way, so a runner that executes ``chain()[-1]`` can harvest (and
        cache) all intermediate positions for free.  A guard band rides
        only on positions whose sub-chain involves DTPM (it cannot
        affect a DTPM-free prefix, and specs reject the combination).
        """
        sequence = self.schedule
        modes = self.schedule_modes
        out = []
        for i, w in enumerate(sequence):
            guard = (
                self.guard_band_k
                if ThermalMode.DTPM in modes[: i + 1]
                else None
            )
            out.append(
                dataclasses.replace(
                    self,
                    workload=w,
                    mode=modes[i],
                    history=sequence[:i],
                    history_modes=modes[:i],
                    guard_band_k=guard,
                    idle_gap_s=self.idle_gap_s if i else 0.0,
                )
            )
        return out

    def describe(self) -> str:
        """Short human-readable tag (for logs and progress lines)."""
        extras = []
        if self.history:
            if self.history_modes:
                tags = [
                    "%s:%s" % (w.name, m.value)
                    for w, m in zip(self.history, self.history_modes)
                ]
            else:
                tags = [w.name for w in self.history]
            extras.append("after %s" % "+".join(tags))
        if self.idle_gap_s:
            extras.append("gap=%gs" % self.idle_gap_s)
        if self.guard_band_k is not None:
            extras.append("gb=%.2fK" % self.guard_band_k)
        if self.seed is not None:
            extras.append("seed=%d" % self.seed)
        suffix = (" [%s]" % ", ".join(extras)) if extras else ""
        return "%s/%s%s" % (self.workload.name, self.mode.value, suffix)


def spec_key(spec: RunSpec, models: Optional[ModelBundle] = None) -> str:
    """Content-addressed identity of (spec, models, cache format).

    The model fingerprint participates only when the spec actually consumes
    the models, so fan-cooled baseline runs stay cache-valid across model
    re-identification.
    """
    material = {
        "format": CACHE_FORMAT,
        "spec": spec,
        "models": model_fingerprint(models) if spec.needs_models else None,
    }
    return _digest(canonical_json(material))


WorkloadLike = Union[WorkloadTrace, str]
#: One matrix schedule position: a workload, or a (workload, mode) pair
#: pinning that position to a thermal mode regardless of the modes axis.
ScheduleEntryLike = Union[WorkloadLike, Tuple[WorkloadLike, Union[ThermalMode, str]]]


def _resolve_workloads(
    workloads: Sequence[WorkloadLike],
) -> Tuple[WorkloadTrace, ...]:
    resolved = []
    for w in workloads:
        resolved.append(get_benchmark(w) if isinstance(w, str) else w)
    return tuple(resolved)


def _resolve_schedule(
    entries: Sequence[ScheduleEntryLike],
) -> Tuple[object, ...]:
    """Normalise schedule entries: names resolve, pairs keep their mode."""
    return tuple(resolve_schedule_entry(entry) for entry in entries)


def _entry_workload(entry: Any) -> WorkloadTrace:
    return entry[0] if isinstance(entry, tuple) else entry


def _entry_mode(entry: Any, default: ThermalMode) -> ThermalMode:
    return entry[1] if isinstance(entry, tuple) else default


@dataclass(frozen=True)
class ExperimentMatrix:
    """A declarative grid of simulations: the cartesian product of axes.

    Expansion order is workload-major, then mode, config, guard band --
    stable by construction, so per-spec seeds derived from ``base_seed``
    are deterministic and independent of how the runner schedules work.

    Beyond single workloads, the grid can carry *scenario schedules*:
    back-to-back workload sequences executed on one warm device
    (``schedules`` axis).  Each schedule expands to one spec **per
    position** (so results come back per app, individually cached), and
    all positions of a schedule share one derived seed -- the scenario's
    base seed -- because they are one physical experiment.

    Schedule positions are workloads (or benchmark names), or
    ``(workload, mode)`` pairs that pin the position to a thermal mode:
    pinned positions keep their mode while the rest of the schedule
    follows the ``modes`` axis, which is how mixed chains like "a stock
    governor all day, then one DTPM-managed app" enter the grid (see
    also :func:`repro.sim.scenario.diurnal`).
    """

    workloads: Tuple[WorkloadTrace, ...] = ()
    modes: Tuple[ThermalMode, ...] = (ThermalMode.DTPM,)
    configs: Tuple[Optional[SimulationConfig], ...] = (None,)
    guard_bands_k: Tuple[Optional[float], ...] = (None,)
    platform: Optional[PlatformSpec] = None
    warm_start_c: Optional[float] = 52.0
    max_duration_s: float = 900.0
    #: When set, atom ``i`` of the expansion runs with seed ``base_seed + i``
    #: (an atom is one workload or one whole schedule); when None every run
    #: uses its config's seed (the paper's default).
    base_seed: Optional[int] = None
    #: Back-to-back workload sequences (thermal state carried across runs).
    schedules: Tuple[Tuple[WorkloadTrace, ...], ...] = ()
    #: Near-idle cooling gap between consecutive runs of each schedule.
    idle_gap_s: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "workloads", _resolve_workloads(tuple(self.workloads))
        )
        object.__setattr__(self, "modes", tuple(self.modes))
        object.__setattr__(self, "configs", tuple(self.configs))
        object.__setattr__(self, "guard_bands_k", tuple(self.guard_bands_k))
        object.__setattr__(
            self,
            "schedules",
            tuple(
                _resolve_schedule(tuple(schedule))
                for schedule in self.schedules
            ),
        )
        if any(not schedule for schedule in self.schedules):
            raise ConfigurationError("schedules must not be empty sequences")
        if self.idle_gap_s < 0:
            raise ConfigurationError("idle_gap_s must be >= 0")
        if not self.workloads and not self.schedules:
            raise ConfigurationError("matrix axis 'workloads' is empty")
        for name in ("modes", "configs", "guard_bands_k"):
            if not getattr(self, name):
                raise ConfigurationError("matrix axis %r is empty" % name)
        if any(
            gb is not None and m is not ThermalMode.DTPM
            for gb in self.guard_bands_k
            for m in self.modes
        ):
            raise ConfigurationError(
                "guard-band axis requires all modes to be DTPM"
            )

    def to_dict(self) -> dict:
        """Canonical versioned (``"schema": 1``) JSON-able rendering.

        ``ExperimentMatrix.from_dict(m.to_dict())`` expands to the same
        ordered spec list with identical content keys; see
        :mod:`repro.runner.wire`.
        """
        from repro.runner.wire import matrix_to_wire

        return matrix_to_wire(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentMatrix":
        """Decode a :meth:`to_dict` payload (strict; versioned)."""
        from repro.runner.wire import matrix_from_wire

        return matrix_from_wire(payload)

    def _atoms(self) -> List[Tuple[WorkloadTrace, ...]]:
        """Single workloads and schedules, uniformly as sequences."""
        return [(w,) for w in self.workloads] + list(self.schedules)

    def __len__(self) -> int:
        positions = sum(len(atom) for atom in self._atoms())
        return (
            positions
            * len(self.modes)
            * len(self.configs)
            * len(self.guard_bands_k)
        )

    def specs(self) -> List[RunSpec]:
        """Expand the grid into its ordered list of run specs."""
        out: List[RunSpec] = []
        index = 0
        for atom in self._atoms():
            for mode in self.modes:
                for config in self.configs:
                    for guard in self.guard_bands_k:
                        seed = (
                            None
                            if self.base_seed is None
                            else self.base_seed + index
                        )
                        workloads = tuple(
                            _entry_workload(e) for e in atom
                        )
                        pos_modes = tuple(
                            _entry_mode(e, mode) for e in atom
                        )
                        for k in range(len(atom)):
                            guard_k = (
                                guard
                                if ThermalMode.DTPM in pos_modes[: k + 1]
                                else None
                            )
                            out.append(
                                RunSpec(
                                    workload=workloads[k],
                                    mode=pos_modes[k],
                                    config=config,
                                    platform=self.platform,
                                    guard_band_k=guard_k,
                                    warm_start_c=self.warm_start_c,
                                    max_duration_s=self.max_duration_s,
                                    seed=seed,
                                    history=workloads[:k],
                                    history_modes=pos_modes[:k],
                                    idle_gap_s=(
                                        self.idle_gap_s if k else 0.0
                                    ),
                                )
                            )
                        index += 1
        return out

    def __iter__(self) -> Iterator[RunSpec]:
        return iter(self.specs())
