"""Executing one :class:`RunSpec` -- the runner's unit of work.

This is the single place that turns a declarative spec into a configured
:class:`Simulator`; the serial path, the process-pool workers and the
legacy ``repro.sim.experiment`` helpers all funnel through it, which is
what makes cached, serial and parallel execution byte-identical.
"""

from __future__ import annotations

from typing import Optional

from repro.config import SimulationConfig
from repro.core.dtpm import DtpmGovernor
from repro.platform.specs import PlatformSpec
from repro.sim.engine import Simulator, ThermalMode
from repro.sim.models import ModelBundle, default_models
from repro.sim.run_result import RunResult
from repro.runner.spec import RunSpec


def make_dtpm_governor(
    models: Optional[ModelBundle] = None,
    spec: Optional[PlatformSpec] = None,
    config: Optional[SimulationConfig] = None,
    guard_band_k: Optional[float] = None,
) -> DtpmGovernor:
    """Assemble a DTPM governor from a model bundle.

    The power model is re-instantiated so each run starts with fresh
    alpha*C estimators (the leakage fits are shared -- they are static
    characterization products).
    """
    from repro.power.characterization import default_power_model

    models = models or default_models()
    spec = spec or PlatformSpec()
    power = default_power_model(spec)
    # carry over the characterized leakage fits
    for resource, fitted in models.power.models.items():
        power.models[resource].leakage = fitted.leakage
    kwargs = {}
    if guard_band_k is not None:
        kwargs["guard_band_k"] = guard_band_k
    return DtpmGovernor(models.thermal, power, spec=spec, config=config, **kwargs)


def execute_spec(
    spec: RunSpec, models: Optional[ModelBundle] = None
) -> RunResult:
    """Run one spec to completion.

    Pure given (spec, models): equal inputs produce equal results, which is
    the property the content-addressed cache and the parallel runner rely
    on.
    """
    config = spec.config
    dtpm = None
    if spec.mode is ThermalMode.DTPM:
        dtpm = make_dtpm_governor(
            models,
            spec=spec.platform,
            config=config,
            guard_band_k=spec.guard_band_k,
        )
    sim = Simulator(
        spec.workload,
        spec.mode,
        dtpm=dtpm,
        spec=spec.platform,
        config=config,
        warm_start_c=spec.warm_start_c,
        max_duration_s=spec.max_duration_s,
        seed=spec.seed,
    )
    return sim.run()
