"""Executing :class:`RunSpec`\\ s -- the runner's units of work.

This is the single place that turns declarative specs into configured
:class:`Simulator`\\ s; the serial path, the process-pool workers and the
legacy ``repro.sim.experiment`` helpers all funnel through it, which is
what makes cached, serial and parallel execution byte-identical.

:func:`execute_batch` is the throughput path: it packs *compatible* specs
(same plant shape -- platform spec and control/substep/ambient timing)
into batches so one process advances many runs per control step.  Plain
specs lock-step through a :class:`~repro.sim.engine.BatchSimulator`;
scheduled (history-carrying) specs of the same plant shape and chain
length lock-step through a
:class:`~repro.sim.scenario.BatchScenarioRunner` with aligned chain
positions.  Because the batched engines are byte-identical to the serial
ones lane-for-lane, batching is purely an execution detail: results and
cache content keys do not depend on it.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

from repro.config import SimulationConfig
from repro.core.dtpm import DtpmGovernor
from repro.errors import ConfigurationError
from repro.platform.specs import PlatformSpec
from repro.sim.engine import BatchSimulator, Simulator, ThermalMode
from repro.sim.models import ModelBundle, default_models
from repro.sim.run_result import RunResult
from repro.sim.scenario import BatchScenarioRunner, ScenarioRunner
from repro.runner.spec import RunSpec, canonical_json

#: Environment knob for the in-worker batch width (``repro-dtpm --batch``
#: takes precedence when given on the command line).
BATCH_ENV = "REPRO_BATCH"

#: Default number of runs one worker advances per control step.
DEFAULT_BATCH = 8


def default_batch() -> int:
    """The batch width to use when the caller does not pick one.

    ``$REPRO_BATCH`` overrides the built-in default; ``1`` disables
    packing (every run steps alone, the pre-batching behaviour).
    """
    raw = os.environ.get(BATCH_ENV, "").strip()
    if not raw:
        return DEFAULT_BATCH
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            "%s must be a positive integer, got %r" % (BATCH_ENV, raw)
        ) from None
    if value < 1:
        raise ConfigurationError(
            "%s must be a positive integer, got %r" % (BATCH_ENV, raw)
        )
    return value


def make_dtpm_governor(
    models: Optional[ModelBundle] = None,
    spec: Optional[PlatformSpec] = None,
    config: Optional[SimulationConfig] = None,
    guard_band_k: Optional[float] = None,
) -> DtpmGovernor:
    """Assemble a DTPM governor from a model bundle.

    The power model is re-instantiated so each run starts with fresh
    alpha*C estimators (the leakage fits are shared -- they are static
    characterization products).
    """
    from repro.power.characterization import default_power_model

    models = models or default_models()
    spec = spec or PlatformSpec()
    power = default_power_model(spec)
    # carry over the characterized leakage fits
    for resource, fitted in models.power.models.items():
        power.models[resource].leakage = fitted.leakage
    kwargs = {}
    if guard_band_k is not None:
        kwargs["guard_band_k"] = guard_band_k
    return DtpmGovernor(models.thermal, power, spec=spec, config=config, **kwargs)


def build_simulator(
    spec: RunSpec, models: Optional[ModelBundle] = None
) -> Simulator:
    """Configure the :class:`Simulator` for one plain (no-history) spec."""
    dtpm = None
    if spec.mode is ThermalMode.DTPM:
        dtpm = make_dtpm_governor(
            models,
            spec=spec.platform,
            config=spec.config,
            guard_band_k=spec.guard_band_k,
        )
    return Simulator(
        spec.workload,
        spec.mode,
        dtpm=dtpm,
        spec=spec.platform,
        config=spec.config,
        warm_start_c=spec.warm_start_c,
        max_duration_s=spec.max_duration_s,
        seed=spec.seed,
    )


def execute_spec(
    spec: RunSpec, models: Optional[ModelBundle] = None
) -> RunResult:
    """Run one spec to completion.

    Pure given (spec, models): equal inputs produce equal results, which is
    the property the content-addressed cache and the parallel runner rely
    on.  A spec with scenario ``history`` simulates the whole sequence and
    returns the final position's result (use :func:`execute_schedule` to
    harvest every position).
    """
    if spec.history:
        return execute_schedule(spec, models)[-1]
    return build_simulator(spec, models).run()


def execute_schedule(
    spec: RunSpec, models: Optional[ModelBundle] = None
) -> List[RunResult]:
    """Run a spec's full scenario chain; result ``i`` is ``spec.chain()[i]``'s.

    Thermal state carries across the sequence through a
    :class:`ScenarioRunner` on one platform instance.  Position ``i``'s
    result is byte-identical whether that position is executed standalone
    (as its own chain) or harvested from a longer schedule, because the
    simulation up to position ``i`` is the same either way -- that is what
    lets every position share one content-addressed cache entry.
    """
    if not spec.history:
        return [execute_spec(spec, models)]
    return execute_schedules([spec], models)[0]


def _scenario_runner(
    spec: RunSpec, models: Optional[ModelBundle]
) -> ScenarioRunner:
    """One lane's (governor-equipped) scenario runner for a scheduled spec."""
    dtpm = None
    if spec.needs_models:
        dtpm = make_dtpm_governor(
            models,
            spec=spec.platform,
            config=spec.config,
            guard_band_k=spec.guard_band_k,
        )
    return ScenarioRunner(
        spec.mode,
        dtpm=dtpm,
        spec=spec.platform,
        config=spec.config,
        initial_temp_c=spec.warm_start_c,
        idle_gap_s=spec.idle_gap_s,
        max_duration_s=spec.max_duration_s,
        base_seed=spec.seed,
        annotate=False,
    )


def execute_schedules(
    specs: Sequence[RunSpec], models: Optional[ModelBundle] = None
) -> List[List[RunResult]]:
    """Run several scenario chains in lock-step; element ``i`` is spec
    ``i``'s full chain of results.

    All specs must be scheduled (non-empty ``history``) and share one
    plant shape (:func:`plant_shape_key`); chain lengths, modes, seeds
    and idle gaps are free to vary per lane.  The chains advance through
    one :class:`~repro.sim.scenario.BatchScenarioRunner` -- aligned
    positions, batched idle gaps, per-lane governor carry-over -- and a
    batch of ``N`` chains is byte-identical to ``N`` serial
    :func:`execute_schedule` calls.
    """
    runners = [_scenario_runner(spec, models) for spec in specs]
    return BatchScenarioRunner(runners).run(
        [list(spec.schedule) for spec in specs],
        [list(spec.schedule_modes) for spec in specs],
    )


# ---------------------------------------------------------------------------
# batched execution: many runs per control step inside one process
# ---------------------------------------------------------------------------
def plant_shape_key(spec: RunSpec) -> str:
    """Grouping key of specs whose plants can lock-step in one batch.

    Two runs can share a :class:`BatchSimulator` when their physical
    plants are identical: same platform spec and same control-period /
    thermal-substep / ambient timing.  Everything else (mode, workload,
    seed, duration, noise levels, constraint, guard band) stays per lane.
    """
    config = spec.config or SimulationConfig()
    return canonical_json(
        {
            "platform": spec.platform,
            "control_period_s": config.control_period_s,
            "thermal_substep_s": config.thermal_substep_s,
            "ambient_c": config.ambient_c,
        }
    )


def plan_batches(
    specs: Sequence[RunSpec], batch_size: int
) -> List[List[int]]:
    """Partition spec indices into executable jobs.

    Plain specs pack into same-plant-shape groups of at most
    ``batch_size``, in spec order.  Scheduled (history-carrying) specs
    pack likewise, but only with schedules of the same chain length --
    their chain positions lock-step through one
    :class:`~repro.sim.scenario.BatchScenarioRunner`, so aligned lanes
    keep every position of the batch busy.  Plain and scheduled specs
    never share a job (their execution engines differ).  Jobs come back
    ordered by their first spec index, so serial and pool execution walk
    the same deterministic plan.
    """
    if batch_size < 1:
        raise ConfigurationError("batch size must be >= 1")
    jobs: List[List[int]] = []
    open_groups: Dict[object, List[int]] = {}
    for i, spec in enumerate(specs):
        if batch_size == 1:
            jobs.append([i])
            continue
        if spec.history:
            key = ("schedule", plant_shape_key(spec), len(spec.schedule))
        else:
            key = ("plain", plant_shape_key(spec))
        group = open_groups.setdefault(key, [])
        group.append(i)
        if len(group) >= batch_size:
            jobs.append(group)
            del open_groups[key]
    jobs.extend(open_groups.values())
    jobs.sort(key=lambda job: job[0])
    return jobs


def execute_batch(
    specs: Sequence[RunSpec],
    models: Optional[ModelBundle] = None,
    batch_size: Optional[int] = None,
) -> List[List[RunResult]]:
    """Execute specs with in-process batching; chains come back in order.

    The drop-in batched equivalent of ``[execute_schedule(s) for s in
    specs]``: element ``i`` is spec ``i``'s full chain of results (a
    single-element list for plain specs).  Compatible plain specs advance
    together through one :class:`~repro.sim.engine.BatchSimulator`;
    compatible scheduled specs lock-step their chains through one
    :class:`~repro.sim.scenario.BatchScenarioRunner`.  Because the
    batched engines are lane-for-lane byte-identical to the serial ones,
    the batch width never changes any result.
    """
    specs = list(specs)
    if batch_size is None:
        batch_size = default_batch()
    results: List[Optional[List[RunResult]]] = [None] * len(specs)
    for job in plan_batches(specs, batch_size):
        if len(job) == 1 and batch_size == 1:
            results[job[0]] = execute_schedule(specs[job[0]], models)
            continue
        if specs[job[0]].history:
            for i, chain in zip(
                job, execute_schedules([specs[i] for i in job], models)
            ):
                results[i] = chain
            continue
        sims = [build_simulator(specs[i], models) for i in job]
        for i, result in zip(job, BatchSimulator(sims).run()):
            results[i] = [result]
    return results
