"""Executing one :class:`RunSpec` -- the runner's unit of work.

This is the single place that turns a declarative spec into a configured
:class:`Simulator`; the serial path, the process-pool workers and the
legacy ``repro.sim.experiment`` helpers all funnel through it, which is
what makes cached, serial and parallel execution byte-identical.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import SimulationConfig
from repro.core.dtpm import DtpmGovernor
from repro.platform.specs import PlatformSpec
from repro.sim.engine import Simulator, ThermalMode
from repro.sim.models import ModelBundle, default_models
from repro.sim.run_result import RunResult
from repro.sim.scenario import ScenarioRunner
from repro.runner.spec import RunSpec


def make_dtpm_governor(
    models: Optional[ModelBundle] = None,
    spec: Optional[PlatformSpec] = None,
    config: Optional[SimulationConfig] = None,
    guard_band_k: Optional[float] = None,
) -> DtpmGovernor:
    """Assemble a DTPM governor from a model bundle.

    The power model is re-instantiated so each run starts with fresh
    alpha*C estimators (the leakage fits are shared -- they are static
    characterization products).
    """
    from repro.power.characterization import default_power_model

    models = models or default_models()
    spec = spec or PlatformSpec()
    power = default_power_model(spec)
    # carry over the characterized leakage fits
    for resource, fitted in models.power.models.items():
        power.models[resource].leakage = fitted.leakage
    kwargs = {}
    if guard_band_k is not None:
        kwargs["guard_band_k"] = guard_band_k
    return DtpmGovernor(models.thermal, power, spec=spec, config=config, **kwargs)


def execute_spec(
    spec: RunSpec, models: Optional[ModelBundle] = None
) -> RunResult:
    """Run one spec to completion.

    Pure given (spec, models): equal inputs produce equal results, which is
    the property the content-addressed cache and the parallel runner rely
    on.  A spec with scenario ``history`` simulates the whole sequence and
    returns the final position's result (use :func:`execute_schedule` to
    harvest every position).
    """
    if spec.history:
        return execute_schedule(spec, models)[-1]
    config = spec.config
    dtpm = None
    if spec.mode is ThermalMode.DTPM:
        dtpm = make_dtpm_governor(
            models,
            spec=spec.platform,
            config=config,
            guard_band_k=spec.guard_band_k,
        )
    sim = Simulator(
        spec.workload,
        spec.mode,
        dtpm=dtpm,
        spec=spec.platform,
        config=config,
        warm_start_c=spec.warm_start_c,
        max_duration_s=spec.max_duration_s,
        seed=spec.seed,
    )
    return sim.run()


def execute_schedule(
    spec: RunSpec, models: Optional[ModelBundle] = None
) -> List[RunResult]:
    """Run a spec's full scenario chain; result ``i`` is ``spec.chain()[i]``'s.

    Thermal state carries across the sequence through a
    :class:`ScenarioRunner` on one platform instance.  Position ``i``'s
    result is byte-identical whether that position is executed standalone
    (as its own chain) or harvested from a longer schedule, because the
    simulation up to position ``i`` is the same either way -- that is what
    lets every position share one content-addressed cache entry.
    """
    if not spec.history:
        return [execute_spec(spec, models)]
    dtpm = None
    if spec.mode is ThermalMode.DTPM:
        dtpm = make_dtpm_governor(
            models,
            spec=spec.platform,
            config=spec.config,
            guard_band_k=spec.guard_band_k,
        )
    scenario = ScenarioRunner(
        spec.mode,
        dtpm=dtpm,
        spec=spec.platform,
        config=spec.config,
        initial_temp_c=spec.warm_start_c,
        idle_gap_s=spec.idle_gap_s,
        max_duration_s=spec.max_duration_s,
        base_seed=spec.seed,
        annotate=False,
    )
    return scenario.run(list(spec.schedule))
