"""Content-addressed result cache for closed-loop runs.

Results are stored as canonical JSON under ``<root>/<key[:2]>/<key>.json``
where ``key`` is the :func:`repro.runner.spec.spec_key` of the experiment.
The rendering is deterministic (sorted keys, repr-round-tripped floats), so
two equal :class:`RunResult` objects serialise to byte-identical payloads
-- which is also how the test-suite checks serial and parallel execution
agree.

A cache without a root directory is an in-process memo (used by the
benchmark harness when ``REPRO_CACHE_DIR`` is unset); with a root it
persists across processes and CI jobs.  Writes are atomic (temp file +
``os.replace``) so concurrent writers at worst waste a little work.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import SimulationError
from repro.sim.run_result import RunResult, TraceRecorder

#: Environment variable pointing the default cache at a shared directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def result_to_payload(result: RunResult) -> dict:
    """Serialise a RunResult to a JSON-able payload (lossless for floats)."""
    return {
        "benchmark": result.benchmark,
        "mode": result.mode,
        "completed": result.completed,
        "execution_time_s": result.execution_time_s,
        "average_platform_power_w": result.average_platform_power_w,
        "energy_j": result.energy_j,
        "interventions": result.interventions,
        "violations_predicted": result.violations_predicted,
        "cluster_migrations": result.cluster_migrations,
        "cores_offlined": result.cores_offlined,
        "notes": list(result.notes),
        "trace": {
            "columns": result.trace.columns,
            "rows": result.trace.rows(),
        },
    }


def payload_to_result(payload: dict) -> RunResult:
    """Rebuild a RunResult from :func:`result_to_payload` output."""
    trace = TraceRecorder.from_rows(
        payload["trace"]["columns"], payload["trace"]["rows"]
    )
    return RunResult(
        benchmark=payload["benchmark"],
        mode=payload["mode"],
        completed=payload["completed"],
        execution_time_s=payload["execution_time_s"],
        average_platform_power_w=payload["average_platform_power_w"],
        energy_j=payload["energy_j"],
        trace=trace,
        interventions=payload["interventions"],
        violations_predicted=payload["violations_predicted"],
        cluster_migrations=payload["cluster_migrations"],
        cores_offlined=payload["cores_offlined"],
        notes=list(payload["notes"]),
    )


def payload_bytes(payload: dict) -> bytes:
    """Canonical byte rendering (the unit of byte-identity comparisons)."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def result_bytes(result: RunResult) -> bytes:
    """Canonical byte rendering of a result."""
    return payload_bytes(result_to_payload(result))


def default_cache_dir() -> Optional[str]:
    """The shared cache directory, if ``REPRO_CACHE_DIR`` names one."""
    path = os.environ.get(CACHE_DIR_ENV, "").strip()
    return path or None


@dataclass
class CacheStats:
    """Hit/miss/store counters of one ResultCache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0


class ResultCache:
    """Content-addressed RunResult store (in-memory + optional disk)."""

    def __init__(self, root: Optional[str] = None, memory: bool = True) -> None:
        if root is None and not memory:
            raise SimulationError(
                "a cache needs a root directory or the memory layer"
            )
        self.root = os.path.abspath(root) if root else None
        # decoded results, so repeated in-process hits skip JSON parsing
        # (callers share the object, like the old per-session run memo)
        self._memory: Optional[Dict[str, RunResult]] = {} if memory else None
        self.stats = CacheStats()

    @classmethod
    def from_env(cls) -> "ResultCache":
        """Disk-backed cache at ``$REPRO_CACHE_DIR``, else in-memory only."""
        return cls(root=default_cache_dir())

    # ------------------------------------------------------------------
    def _path(self, key: str) -> str:
        assert self.root is not None
        return os.path.join(self.root, key[:2], key + ".json")

    def _load_disk(self, key: str) -> Optional[RunResult]:
        if self.root is None:
            return None
        try:
            with open(self._path(key), "rb") as fh:
                blob = fh.read()
        except OSError:
            return None
        try:
            return payload_to_result(json.loads(blob.decode("utf-8")))
        except (ValueError, KeyError, SimulationError):
            # corrupt/stale entry: treat as a miss, let the writer replace it
            return None

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[RunResult]:
        """The cached result for ``key``, or None on a miss."""
        if self._memory is not None and key in self._memory:
            self.stats.hits += 1
            return self._memory[key]
        result = self._load_disk(key)
        if result is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        if self._memory is not None:
            self._memory[key] = result
        return result

    def put(self, key: str, result: RunResult) -> None:
        """Store a result under its content key."""
        if self._memory is not None:
            self._memory[key] = result
        if self.root is not None:
            blob = result_bytes(result)
            path = self._path(key)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=os.path.dirname(path), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(blob)
                os.replace(tmp, path)
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        self.stats.stores += 1

    def __contains__(self, key: str) -> bool:
        if self._memory is not None and key in self._memory:
            return True
        return self.root is not None and os.path.exists(self._path(key))

    def __len__(self) -> int:
        """Number of distinct entries reachable from this cache."""
        keys = set(self._memory or ())
        if self.root is not None and os.path.isdir(self.root):
            for shard in os.listdir(self.root):
                shard_dir = os.path.join(self.root, shard)
                if not os.path.isdir(shard_dir):
                    continue
                for name in os.listdir(shard_dir):
                    if name.endswith(".json"):
                        keys.add(name[: -len(".json")])
        return len(keys)
